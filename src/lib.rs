//! # a64fx-spmv — Modelling Data Locality of SpMV on the A64FX
//!
//! A full reproduction of Breiter, Trotter & Fürlinger, *"Modelling Data
//! Locality of Sparse Matrix-Vector Multiplication on the A64FX"*
//! (SC-W 2023), as a Rust workspace. This facade crate re-exports the
//! member crates:
//!
//! * [`sparsemat`] — COO/CSR formats, SpMV kernels (sequential, parallel,
//!   merge-based), partitioning, statistics, Matrix Market I/O, RCM;
//! * [`memtrace`] — SpMV memory-trace generation from the sparsity
//!   pattern (methods A and B), MCS-lock trace collation, interleaving;
//! * [`reuse`] — reuse-distance engines: exact Fenwick stack, the Kim
//!   et al. marker stack, partitioned-cache accounting (Eq. 2);
//! * [`a64fx`] — the A64FX memory-hierarchy simulator: sector-cache way
//!   partitioning, stream prefetcher, PMU counters, timing model;
//! * [`locality_core`] — the paper's cache-miss model: classification,
//!   methods (A)/(B), concurrent prediction, error metrics;
//! * [`corpus`] — synthetic matrix corpus and Table 1 analogues;
//! * [`locality_engine`] — parallel batch prediction engine with
//!   fingerprint-keyed profile caching (`spmv-locality batch`);
//! * [`valid`] — differential validation harness cross-checking the
//!   prediction pipelines against each other and against the simulator
//!   over a stratified working-set-class corpus
//!   (`spmv-locality validate`);
//! * [`obs`] — offline telemetry: hierarchical spans, counters,
//!   log2 histograms and peak-RSS checkpoints behind a no-op global
//!   sink, surfaced by `--metrics <path>` on every subcommand.
//!
//! ## Quickstart
//!
//! ```
//! use a64fx_spmv::prelude::*;
//!
//! // A matrix whose working set exceeds one L2 segment.
//! let matrix = corpus::suite::corpus(1, 16, 42).remove(0).matrix;
//! let cfg = MachineConfig::a64fx_scaled(16);
//!
//! // What does the locality model say the sector cache buys us?
//! let preds = predict(
//!     &matrix,
//!     &cfg,
//!     Method::B,
//!     &[SectorSetting::Off, SectorSetting::L2Ways(5)],
//!     1,
//! );
//! println!(
//!     "L2 misses/iteration: {} (off) vs {} (5 ways)",
//!     preds[0].l2_misses, preds[1].l2_misses
//! );
//! // The streamed matrix data exceeds either partition, so its per-line
//! // misses are always part of the prediction.
//! assert!(preds.iter().all(|p| p.l2_misses > 0));
//! ```

pub use a64fx;
pub use corpus;
pub use locality_core;
pub use locality_engine;
pub use machine;
pub use memtrace;
pub use obs;
pub use reuse;
pub use sparsemat;
pub use valid;

/// Commonly used items in one import.
pub mod prelude {
    pub use a64fx::{
        estimate, simulate_spmv, MachineConfig, Performance, PmuSnapshot, PrefetchConfig, SimResult,
    };
    pub use locality_core::predict::{predict, Method, Prediction, SectorSetting};
    pub use locality_core::{
        classify_for, ErrorSummary, FormatSpec, LocalityProfile, MatrixClass, ReorderSpec,
        RhsLayout, ScenarioSpec, SpmvWorkload, Workload,
    };
    pub use locality_engine::{
        ecm_for, run_batch, BatchResult, BatchSpec, EcmSummary, ProfileCache,
    };
    pub use machine::{CacheHierarchy, HierarchyConfig, MachineParseError, MachineSpec};
    pub use memtrace::{Access, Array, ArraySet, DataLayout};
    pub use reuse::{ExactStack, MarkerStack, PartitionedStack, ReuseHistogram};
    pub use sparsemat::{spmv, CooMatrix, CsrMatrix, MatrixStats, RowPartition};
    pub use valid::{run_validation, ValidationConfig, ValidationReport};
}
