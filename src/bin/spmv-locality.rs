//! `spmv-locality` — command-line front end to the locality model and the
//! A64FX simulator.
//!
//! ```text
//! spmv-locality analyze  <matrix.mtx> [--threads N] [--scale N]
//!                        [--format csr|sell:C,S] [--reorder none|rcm]
//!                        [--rhs K] [--rhs-layout row|col] [--workload W]
//!                        [--machine M] [--ecm]
//! spmv-locality tune     <matrix.mtx> [--threads N] [--scale N]
//!                        [--format csr|sell:C,S] [--reorder none|rcm]
//!                        [--rhs K] [--rhs-layout row|col] [--workload W]
//!                        [--machine M] [--ecm]
//! spmv-locality simulate <matrix.mtx> [--threads N] [--scale N] [--l2-ways W]
//!                        [--reorder none|rcm]
//! spmv-locality batch    <spec-file>  [--workers N] [--format F] [--reorder R]
//!                        [--rhs K] [--rhs-layout row|col] [--workload W]
//!                        [--deadline-ms N] [--machine M]... [--ecm]
//! spmv-locality validate [--matrices N] [--seed S] [--workers N] [--smoke]
//!                        [--format csr|sell:C,S] [--reorder none|rcm]
//!                        [--machine M]
//! spmv-locality serve    [--unix PATH] [--tcp ADDR] [--executors N]
//!                        [--queue N] [--cache N] [--max-line BYTES]
//!                        [--deadline-ms N] [--machine M]
//! ```
//!
//! `analyze` prints the matrix statistics, its §3.1 classification and the
//! model's predicted misses; `tune` sweeps every legal sector split and
//! recommends one; `simulate` runs the machine simulator and reports the
//! PMU counters and estimated performance; `batch` runs a whole work list
//! of predictions on the parallel engine (see `BatchSpec::parse` for the
//! spec format) and prints one JSON line per job plus a summary line with
//! the profile-cache accounting; `validate` runs the differential
//! validation harness over a stratified random corpus, printing one JSON
//! line per divergence plus a summary line, and exits nonzero if any
//! invariant was violated (see `EXPERIMENTS.md`, "Divergence triage");
//! `serve` runs the long-lived prediction daemon — line-delimited JSON
//! requests over a Unix socket and/or TCP, sharing one LRU profile cache
//! across requests (see README, "Prediction service", for the wire
//! protocol). `serve` drains gracefully on SIGINT/SIGTERM or a protocol
//! `shutdown` request.
//!
//! `--format` selects the storage format the model analyses (`csr`, or
//! `sell:C,S` for SELL-C-σ with chunk size `C` and sorting window `S`);
//! `--reorder rcm` applies Reverse Cuthill–McKee before the format
//! conversion. For `batch` they override the spec file's directives; for
//! `validate`, `--format csr` skips the SELL invariant reruns and
//! `--format sell:C,S` replaces the default (8, 32) view (the C=1, σ=1
//! cross-format pass always runs). The simulator is CSR-only, so
//! `simulate` accepts `--reorder` but not a SELL `--format`.
//!
//! `--rhs K` traces a `K`-right-hand-side SpMM instead of the single
//! vector SpMV (`--rhs-layout` picks row-major interleaved RHS, the
//! default, or `col` for separate vectors); `--workload cg` traces a full
//! conjugate-gradient iteration (the SpMV plus the solver's vector
//! sweeps, see `examples/cg_solver.rs`), `--workload spmm:K[,row|col]`
//! is the spelled-out SpMM form. With `--rhs 1` every output is
//! byte-identical to the plain SpMV. The simulator executes the SpMV
//! kernel itself, so `simulate` accepts neither flag.
//!
//! `--machine M` selects the cache hierarchy the model analyses: the
//! `a64fx` preset (the default — byte-identical output to builds before
//! the machine abstraction existed), `generic-x86` (a 3-level
//! Skylake-like hierarchy with 64 B lines), or a `custom:<spec>` string
//! (see README, "Machine models", for the grammar). For `batch` the flag
//! may repeat — the batch then sweeps every machine per matrix — and
//! overrides the spec file's `machine` directives; for `serve` it sets
//! the default machine applied to requests whose spec names none; for
//! `validate` it retargets the harness (non-a64fx machines run the
//! model-only plan). The simulator is A64FX-only, so `simulate` takes no
//! `--machine`. `--ecm` (analyze, tune, batch) attaches ECM-style
//! throughput estimates — in-core plus per-link transfer times composed
//! into Gflop/s — to every prediction.
//!
//! `--metrics <path>` (every subcommand) enables the telemetry subsystem
//! and writes its structured JSON metrics document — span tree with wall
//! times, counters, histograms, peak-RSS checkpoints — to `<path>` when
//! the command finishes. Telemetry is a side channel: the command's
//! stdout (including batch/validate JSON lines) is byte-identical with
//! and without it.

use a64fx_spmv::prelude::*;

struct Cli {
    command: String,
    path: String,
    threads: usize,
    scale: usize,
    l2_ways: usize,
    format: FormatSpec,
    reorder: ReorderSpec,
    scenario: ScenarioPick,
    machine: MachineSpec,
    ecm: bool,
    metrics: Option<String>,
}

/// Accumulates the `--rhs`/`--rhs-layout`/`--workload` flags, which may
/// arrive in any order, and resolves them into one [`ScenarioSpec`].
#[derive(Default)]
struct ScenarioPick {
    rhs: Option<usize>,
    rhs_layout: Option<RhsLayout>,
    workload: Option<ScenarioSpec>,
}

impl ScenarioPick {
    fn resolve(&self) -> ScenarioSpec {
        match (self.workload, self.rhs) {
            (Some(_), Some(_)) => {
                eprintln!("spmv-locality: --workload and --rhs are mutually exclusive");
                std::process::exit(2);
            }
            (Some(w), None) => {
                if self.rhs_layout.is_some() && !matches!(w, ScenarioSpec::Spmm { .. }) {
                    eprintln!("spmv-locality: --rhs-layout only applies to SpMM workloads");
                    std::process::exit(2);
                }
                match (w, self.rhs_layout) {
                    (ScenarioSpec::Spmm { k, .. }, Some(layout)) => {
                        ScenarioSpec::Spmm { k, layout }
                    }
                    _ => w,
                }
            }
            (None, Some(k)) => ScenarioSpec::Spmm {
                k,
                layout: self.rhs_layout.unwrap_or_default(),
            },
            (None, None) => {
                if self.rhs_layout.is_some() {
                    eprintln!("spmv-locality: --rhs-layout needs --rhs or --workload spmm:K");
                    std::process::exit(2);
                }
                ScenarioSpec::Spmv
            }
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spmv-locality <analyze|tune|simulate> <matrix.mtx> \
         [--threads N] [--scale N] [--l2-ways W] \
         [--format csr|sell:C,S] [--reorder none|rcm] \
         [--rhs K] [--rhs-layout row|col] [--workload spmv|cg|spmm:K] \
         [--machine a64fx|generic-x86|custom:SPEC] [--ecm] [--metrics PATH]\n\
         \x20      spmv-locality batch <spec-file> [--workers N] \
         [--format F] [--reorder R] [--rhs K] [--rhs-layout row|col] \
         [--workload W] [--machine M]... [--ecm] [--metrics PATH]\n\
         \x20      spmv-locality validate [--matrices N] [--seed S] \
         [--workers N] [--smoke] [--format F] [--reorder R] [--machine M] \
         [--metrics PATH]\n\
         \x20      spmv-locality serve [--unix PATH] [--tcp ADDR] \
         [--executors N] [--queue N] [--cache N] [--max-line BYTES] \
         [--deadline-ms N] [--machine M] [--metrics PATH] \
         [--sample-ms N] [--prometheus ADDR] [--flight-file PATH] \
         [--trace-buffer N]"
    );
    std::process::exit(2);
}

/// Turns telemetry on (clean slate + a `start` RSS checkpoint) when a
/// `--metrics` path was given. Recording costs nothing otherwise: the
/// global sink stays disabled.
fn metrics_setup(path: &Option<String>) {
    if path.is_some() {
        obs::reset();
        obs::enable();
        obs::rss_checkpoint("start");
    }
}

/// Writes the metrics document for a finished command. The document is a
/// side channel — it never touches the command's stdout.
fn metrics_write(path: &Option<String>, command: &str) {
    let Some(path) = path else { return };
    obs::rss_checkpoint("end");
    let aggregate = obs::snapshot();
    let doc = obs::MetricsDoc {
        command,
        aggregate: &aggregate,
    };
    if let Err(e) = std::fs::write(path, doc.to_json()) {
        eprintln!("spmv-locality: failed to write metrics to {path}: {e}");
        std::process::exit(1);
    }
}

/// Parses the value of a `--format` flag, exiting with the parse error.
fn parse_format(value: Option<String>) -> FormatSpec {
    FormatSpec::parse(value.as_deref().unwrap_or("")).unwrap_or_else(|e| {
        eprintln!("spmv-locality: {e}");
        std::process::exit(2);
    })
}

/// Parses the value of a `--reorder` flag, exiting with the parse error.
fn parse_reorder(value: Option<String>) -> ReorderSpec {
    ReorderSpec::parse(value.as_deref().unwrap_or("")).unwrap_or_else(|e| {
        eprintln!("spmv-locality: {e}");
        std::process::exit(2);
    })
}

/// Parses the value of a `--rhs-layout` flag, exiting with the parse error.
fn parse_rhs_layout(value: Option<String>) -> RhsLayout {
    RhsLayout::parse(value.as_deref().unwrap_or("")).unwrap_or_else(|e| {
        eprintln!("spmv-locality: {e}");
        std::process::exit(2);
    })
}

/// Parses the value of a `--workload` flag, exiting with the parse error.
fn parse_workload(value: Option<String>) -> ScenarioSpec {
    ScenarioSpec::parse(value.as_deref().unwrap_or("")).unwrap_or_else(|e| {
        eprintln!("spmv-locality: {e}");
        std::process::exit(2);
    })
}

/// Parses the value of a `--machine` flag, exiting with the parse error.
fn parse_machine(value: Option<String>) -> MachineSpec {
    MachineSpec::parse(value.as_deref().unwrap_or("")).unwrap_or_else(|e| {
        eprintln!("spmv-locality: {e}");
        std::process::exit(2);
    })
}

/// Picks the sweep setting with the fewest predicted misses for `tune`.
///
/// Returns a typed error instead of panicking when the sweep is empty —
/// a degenerate machine shape (no legal way split) must exit with a
/// diagnostic, not a `min_by_key(...).unwrap()` backtrace.
fn tune_recommendation(preds: &[Prediction]) -> Result<&Prediction, String> {
    preds.iter().min_by_key(|p| p.l2_misses).ok_or_else(|| {
        "the sector sweep produced no predictions \
         (this machine shape has no legal sector setting)"
            .to_string()
    })
}

/// `validate` subcommand: the differential validation harness. JSON
/// divergence lines plus a summary on stdout, human accounting on
/// stderr; exit 1 if any invariant was violated.
fn run_validate_command(args: impl Iterator<Item = String>) -> ! {
    let mut config = valid::ValidationConfig::default();
    let mut metrics = None;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("spmv-locality: expected a number after {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--matrices" => config.matrices = value("--matrices").max(1),
            "--seed" => config.seed = value("--seed") as u64,
            "--workers" => config.workers = value("--workers"),
            "--smoke" => config.smoke = true,
            "--format" => {
                config.sell_formats = Some(match parse_format(args.next()) {
                    FormatSpec::Csr => Vec::new(),
                    FormatSpec::Sell { chunk_size, sigma } => vec![(chunk_size, sigma)],
                });
            }
            "--reorder" => config.reorder = parse_reorder(args.next()),
            "--machine" => config.machine = parse_machine(args.next()),
            "--metrics" => metrics = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    metrics_setup(&metrics);
    let report = valid::run_validation(&config);
    metrics_write(&metrics, "validate");
    print!("{}", report.to_json_lines());
    let s = &report.stats;
    eprintln!(
        "# {} matrices (class 1/2/3a/3b: {}/{}/{}/{}), {} checks, {} divergences",
        s.matrices,
        s.by_class[0],
        s.by_class[1],
        s.by_class[2],
        s.by_class[3],
        s.checks_run,
        s.divergences
    );
    std::process::exit(if report.passed() { 0 } else { 1 });
}

/// `serve` subcommand: the long-lived prediction daemon. Runs until a
/// signal or protocol `shutdown`, then drains in-flight requests and
/// prints an accounting line to stderr.
fn run_serve_command(args: impl Iterator<Item = String>) -> ! {
    let mut config = serve::ServeConfig::default();
    let mut metrics = None;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("spmv-locality: expected a number after {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--unix" => {
                config.unix = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--tcp" => config.tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--executors" => config.executors = value("--executors").max(1),
            "--queue" => config.queue = value("--queue"),
            "--cache" => config.cache = value("--cache").max(1),
            "--max-line" => config.max_line = value("--max-line").max(1),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(value("--deadline-ms").max(1) as u64);
            }
            "--machine" => config.default_machine = Some(parse_machine(args.next())),
            "--metrics" => metrics = Some(args.next().unwrap_or_else(|| usage())),
            "--sample-ms" => config.sample_ms = value("--sample-ms") as u64,
            "--prometheus" => {
                config.prometheus = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--flight-file" => {
                config.flight_file = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--trace-buffer" => config.trace_buffer = value("--trace-buffer"),
            _ => usage(),
        }
    }
    metrics_setup(&metrics);
    let unix_path = config.unix.clone();
    let tcp_addr = config.tcp.clone();
    let prometheus = config.prometheus.clone();
    serve::signal::install_handlers();
    let server = serve::Server::bind(config).unwrap_or_else(|e| {
        eprintln!("spmv-locality serve: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &unix_path {
        eprintln!("# serve: listening on unix {}", path.display());
    }
    if tcp_addr.is_some() {
        if let Some(addr) = server.tcp_addr() {
            eprintln!("# serve: listening on tcp {addr}");
        }
    }
    if prometheus.is_some() {
        if let Some(addr) = server.prometheus_addr() {
            eprintln!("# serve: prometheus exposition on http://{addr}/metrics");
        }
    }
    let summary = server.run();
    metrics_write(&metrics, "serve");
    eprintln!(
        "# serve: {} connection(s), {} request(s), {} completed, {} error(s), {} drained",
        summary.connections, summary.requests, summary.completed, summary.errors, summary.drained
    );
    std::process::exit(0);
}

/// `batch` subcommand: run a spec file on the engine, JSON lines out.
/// Command-line `--workers`/`--format`/`--reorder`/`--deadline-ms`
/// override the spec file's directives.
fn run_batch_command(spec_path: &str, args: impl Iterator<Item = String>) -> ! {
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("failed to read {spec_path}: {e}");
        std::process::exit(1);
    });
    let mut spec = BatchSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        std::process::exit(1);
    });
    let mut metrics = None;
    let mut scenario = ScenarioPick::default();
    let mut machines: Vec<MachineSpec> = Vec::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--machine" => {
                let m = parse_machine(args.next());
                if machines.contains(&m) {
                    eprintln!("spmv-locality: duplicate --machine {}", m.label());
                    std::process::exit(2);
                }
                machines.push(m);
            }
            "--ecm" => spec.ecm = true,
            "--workers" => {
                spec.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("spmv-locality: expected a number after --workers");
                    std::process::exit(2);
                });
            }
            "--format" => spec.format = parse_format(args.next()),
            "--reorder" => spec.reorder = parse_reorder(args.next()),
            "--rhs" => {
                let k = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| {
                        eprintln!("spmv-locality: expected a positive count after --rhs");
                        std::process::exit(2);
                    });
                scenario.rhs = Some(k);
            }
            "--rhs-layout" => scenario.rhs_layout = Some(parse_rhs_layout(args.next())),
            "--workload" => scenario.workload = Some(parse_workload(args.next())),
            "--deadline-ms" => {
                let ms = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("spmv-locality: expected a number after --deadline-ms");
                        std::process::exit(2);
                    });
                spec.deadline_ms = Some(ms.max(1));
            }
            "--metrics" => metrics = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if scenario.rhs.is_some() || scenario.workload.is_some() || scenario.rhs_layout.is_some() {
        spec.scenario = scenario.resolve();
    }
    if !machines.is_empty() {
        spec.machines = machines;
    }
    metrics_setup(&metrics);
    match run_batch(&spec) {
        Ok(result) => {
            metrics_write(&metrics, "batch");
            print!("{}", result.to_json_lines());
            eprintln!(
                "# {} jobs over {} matrices: {} profiles computed, {} cache hits",
                result.stats.jobs,
                result.stats.matrices,
                result.stats.profile_computations,
                result.stats.profile_hits
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage());
    if command == "validate" {
        run_validate_command(args);
    }
    if command == "serve" {
        run_serve_command(args);
    }
    let path = args.next().unwrap_or_else(|| usage());
    if command == "batch" {
        run_batch_command(&path, args);
    }
    let mut cli = Cli {
        command,
        path,
        threads: 48,
        scale: 1,
        l2_ways: 5,
        format: FormatSpec::Csr,
        reorder: ReorderSpec::None,
        scenario: ScenarioPick::default(),
        machine: MachineSpec::A64fx,
        ecm: false,
        metrics: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("spmv-locality: expected a number after {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--threads" => cli.threads = value("--threads"),
            "--scale" => cli.scale = value("--scale"),
            "--l2-ways" => cli.l2_ways = value("--l2-ways"),
            "--format" => cli.format = parse_format(args.next()),
            "--reorder" => cli.reorder = parse_reorder(args.next()),
            "--rhs" => cli.scenario.rhs = Some(value("--rhs").max(1)),
            "--rhs-layout" => cli.scenario.rhs_layout = Some(parse_rhs_layout(args.next())),
            "--workload" => cli.scenario.workload = Some(parse_workload(args.next())),
            "--machine" => cli.machine = parse_machine(args.next()),
            "--ecm" => cli.ecm = true,
            "--metrics" => cli.metrics = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if cli.command == "simulate" && cli.format != FormatSpec::Csr {
        eprintln!("spmv-locality: the simulator is CSR-only (drop --format or use csr)");
        std::process::exit(2);
    }
    if cli.command == "simulate" && cli.scenario.resolve() != ScenarioSpec::Spmv {
        eprintln!(
            "spmv-locality: the simulator executes the plain SpMV kernel \
             (drop --rhs/--workload)"
        );
        std::process::exit(2);
    }
    if cli.command == "simulate" && (!cli.machine.is_default() || cli.ecm) {
        eprintln!(
            "spmv-locality: the simulator models the A64FX and reports its own \
             performance estimate (drop --machine/--ecm)"
        );
        std::process::exit(2);
    }
    cli
}

/// The modeled machine: the selected hierarchy at the CLI's scale and
/// thread count. For the default a64fx preset this is byte-identical to
/// the historical `a64fx_scaled(scale).with_cores(threads)` config.
fn machine_of(
    spec: &MachineSpec,
    scale: usize,
    threads: usize,
) -> (HierarchyConfig, MachineConfig) {
    let hier = spec.hierarchy(scale).with_cores(threads.max(1));
    let cfg = MachineConfig::from_hierarchy(&hier);
    (hier, cfg)
}

fn main() {
    let cli = parse_cli();
    metrics_setup(&cli.metrics);
    let matrix = sparsemat::mm::read_csr_file(&cli.path)
        .unwrap_or_else(|e| {
            eprintln!("failed to read {}: {e}", cli.path);
            std::process::exit(1);
        })
        .clone();
    let (hier, cfg) = machine_of(&cli.machine, cli.scale, cli.threads);
    // Reorder first so statistics, classification and predictions all see
    // the same row order; then build the requested format view, then wrap
    // it in the scenario view (SpMM/CG) if one was requested.
    let matrix = cli.reorder.apply(matrix);
    let stats = MatrixStats::compute(&matrix);
    let scenario = cli.scenario.resolve();
    if scenario == ScenarioSpec::Cg && matrix.num_rows() != matrix.num_cols() {
        eprintln!(
            "spmv-locality: a CG iteration needs a square matrix, got {}x{}",
            matrix.num_rows(),
            matrix.num_cols()
        );
        std::process::exit(2);
    }
    let workload = scenario.apply(cli.format.build(matrix.clone()));

    match cli.command.as_str() {
        "analyze" => {
            println!("matrix      : {}", cli.path);
            if cli.reorder != ReorderSpec::None {
                println!("reorder     : {}", cli.reorder.label());
            }
            if !cli.machine.is_default() {
                println!("machine     : {}", cli.machine.label());
            }
            println!(
                "rows x cols : {} x {}",
                matrix.num_rows(),
                matrix.num_cols()
            );
            println!(
                "nonzeros    : {} ({:.2}/row, CV {:.2})",
                matrix.nnz(),
                stats.row_nnz_mean,
                stats.row_nnz_cv
            );
            println!(
                "CSR bytes   : {:.2} MiB",
                matrix.matrix_bytes() as f64 / (1 << 20) as f64
            );
            if cli.format != FormatSpec::Csr {
                println!("format      : {}", cli.format.label());
                // Stored entries, not gathers: an SpMM view widens
                // `x_refs` k-fold while the stored stream is unchanged.
                println!(
                    "stored      : {} entries ({:+.1} % padding), {:.2} MiB",
                    workload.stream_entries(),
                    100.0 * (workload.stream_entries() as f64 - matrix.nnz() as f64)
                        / matrix.nnz().max(1) as f64,
                    workload.matrix_bytes() as f64 / (1 << 20) as f64
                );
            }
            if scenario != ScenarioSpec::Spmv {
                println!("workload    : {}", scenario.label());
                println!(
                    "x refs/iter : {} ({} per stored entry)",
                    workload.x_refs(),
                    workload.x_refs() / workload.stream_entries().max(1)
                );
            }
            println!(
                "working set : {:.2} MiB",
                workload.working_set_bytes() as f64 / (1 << 20) as f64
            );
            println!("bandwidth   : {}", stats.bandwidth);
            let class_cfg = cfg.clone().with_l2_sector(cli.l2_ways.min(cfg.l2.ways - 1));
            println!(
                "class ({} L2 ways for the matrix stream): {}",
                cli.l2_ways,
                classify_for(&workload, &class_cfg, cli.threads).label()
            );
            let preds = predict(
                &workload,
                &cfg,
                Method::B,
                &[SectorSetting::Off, SectorSetting::L2Ways(cli.l2_ways)],
                cli.threads,
            );
            println!(
                "model (B)   : {} misses/iter without sector cache, {} with {} ways ({:+.1} %)",
                preds[0].l2_misses,
                preds[1].l2_misses,
                cli.l2_ways,
                100.0 * (preds[0].l2_misses as f64 - preds[1].l2_misses as f64)
                    / preds[0].l2_misses.max(1) as f64
            );
            if cli.ecm {
                for p in &preds {
                    let e = ecm_for(&workload, &hier, p);
                    println!(
                        "ECM ({:<7}): {:.2} Gflop/s, {:.3} ms/iter, bottleneck {}",
                        p.setting.label(),
                        e.gflops,
                        e.t_total_s * 1e3,
                        e.bottleneck
                    );
                }
            }
        }
        "tune" => {
            let settings: Vec<SectorSetting> = std::iter::once(SectorSetting::Off)
                .chain((1..cfg.l2.ways).map(SectorSetting::L2Ways))
                .collect();
            let preds = predict(&workload, &cfg, Method::B, &settings, cli.threads);
            if cli.ecm {
                println!("{:<10} {:>14} {:>12}", "setting", "pred. misses", "Gflop/s");
                for p in &preds {
                    let e = ecm_for(&workload, &hier, p);
                    println!(
                        "{:<10} {:>14} {:>12.2}",
                        p.setting.label(),
                        p.l2_misses,
                        e.gflops
                    );
                }
            } else {
                println!("{:<10} {:>14}", "setting", "pred. misses");
                for p in &preds {
                    println!("{:<10} {:>14}", p.setting.label(), p.l2_misses);
                }
            }
            match tune_recommendation(&preds) {
                Ok(best) => {
                    println!("recommendation: sector cache {}", best.setting.label());
                }
                Err(e) => {
                    eprintln!("spmv-locality: {e}");
                    std::process::exit(2);
                }
            }
        }
        "simulate" => {
            let (cfg, sector) = if cli.l2_ways > 0 {
                (cfg.with_l2_sector(cli.l2_ways), ArraySet::MATRIX_STREAM)
            } else {
                (cfg, ArraySet::EMPTY)
            };
            let sim = simulate_spmv(&matrix, &cfg, sector, cli.threads, 1);
            let perf = estimate(&cfg, matrix.nnz(), &sim);
            println!("L2D_CACHE_REFILL    : {}", sim.pmu.l2d_cache_refill);
            println!("L2D_CACHE_REFILL_DM : {}", sim.pmu.l2d_cache_refill_dm);
            println!("L2D_CACHE_WB        : {}", sim.pmu.l2d_cache_wb);
            println!("L1D_CACHE_REFILL    : {}", sim.pmu.l1d_cache_refill);
            println!("L2 misses (paper)   : {}", sim.pmu.l2_misses());
            println!(
                "memory traffic      : {:.2} MiB/iter",
                sim.pmu.memory_bytes(cfg.l2.line_bytes) as f64 / (1 << 20) as f64
            );
            println!("est. time           : {:.3} ms/iter", perf.seconds * 1e3);
            println!(
                "est. performance    : {:.1} Gflop/s ({:?}-bound)",
                perf.gflops, perf.bottleneck
            );
            println!("est. bandwidth      : {:.1} GB/s", perf.bandwidth_gbs);
        }
        _ => usage(),
    }
    metrics_write(&cli.metrics, &cli.command);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_recommendation_picks_fewest_misses() {
        let pred = |setting, l2_misses| Prediction {
            setting,
            l2_misses,
            by_array: [0; 5],
        };
        let preds = [
            pred(SectorSetting::Off, 900),
            pred(SectorSetting::L2Ways(2), 350),
            pred(SectorSetting::L2Ways(3), 400),
        ];
        let best = tune_recommendation(&preds).unwrap();
        assert_eq!(best.setting, SectorSetting::L2Ways(2));
    }

    #[test]
    fn tune_recommendation_reports_empty_sweep_as_error() {
        // Regression: this used to be `min_by_key(...).unwrap()`, which
        // panicked on an empty sweep instead of failing with a message.
        let err = tune_recommendation(&[]).unwrap_err();
        assert!(err.contains("no predictions"), "{err}");
    }

    #[test]
    fn scenario_pick_resolves_flag_combinations() {
        assert_eq!(ScenarioPick::default().resolve(), ScenarioSpec::Spmv);
        let pick = ScenarioPick {
            rhs: Some(4),
            ..Default::default()
        };
        assert_eq!(
            pick.resolve(),
            ScenarioSpec::Spmm {
                k: 4,
                layout: RhsLayout::Interleaved
            }
        );
        let pick = ScenarioPick {
            rhs: Some(4),
            rhs_layout: Some(RhsLayout::Separate),
            ..Default::default()
        };
        assert_eq!(
            pick.resolve(),
            ScenarioSpec::Spmm {
                k: 4,
                layout: RhsLayout::Separate
            }
        );
        let pick = ScenarioPick {
            workload: Some(ScenarioSpec::Spmm {
                k: 8,
                layout: RhsLayout::Interleaved,
            }),
            rhs_layout: Some(RhsLayout::Separate),
            ..Default::default()
        };
        assert_eq!(
            pick.resolve(),
            ScenarioSpec::Spmm {
                k: 8,
                layout: RhsLayout::Separate
            }
        );
        let pick = ScenarioPick {
            workload: Some(ScenarioSpec::Cg),
            ..Default::default()
        };
        assert_eq!(pick.resolve(), ScenarioSpec::Cg);
    }
}
