#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#
# The build environment has no crates registry, so every cargo call runs
# --offline; the workspace is self-contained (see crates/compat/).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --workspace --release --offline

echo "== cargo test (offline) =="
cargo test --workspace -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "ci: all gates passed"
