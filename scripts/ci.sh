#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#
# The build environment has no crates registry, so every cargo call runs
# --offline; the workspace is self-contained (see crates/compat/).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --workspace --release --offline

echo "== cargo test (offline) =="
cargo test --workspace -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== validate smoke: differential harness =="
# Fast tier of the differential validation harness (spmv-locality
# validate): 16 stratified matrices through every prediction pipeline
# and the simulator, exits nonzero on any invariant divergence. The full
# 200-matrix corpus is the release gate (see EXPERIMENTS.md).
cargo run --release --offline --bin spmv-locality -- \
    validate --matrices 16 --smoke

echo "== bench smoke: streaming pipeline (BENCH_pr2.json) =="
# Small corpus so the gate stays fast; emits refs/sec for the marker and
# exact streaming pipelines vs the seed materialised replay, plus VmHWM
# peak-RSS checkpoints, as BENCH_pr2.json at the repo root.
cargo run --release --offline -p spmv-bench --bin bench_pr2 -- \
    --count 4 --scale 64 --threads 8

echo "== bench smoke: block-batched pipeline (BENCH_pr7.json) =="
# The block-batched marker pipeline on the canonical spec, with its two
# built-in acceptance checks armed: the sharded parallel mode must not
# run slower than the serial mode (beyond measurement noise), and the
# marker throughput must stay within 20% of the floor below — a
# conservative bound (well under the checked-in BENCH_pr7.json rate) so
# only a structural regression trips it, not a noisy CI host.
cargo run --release --offline -p spmv-bench --bin bench_pr7 -- \
    --count 4 --scale 64 --threads 8 --floor 20000000

echo "== bench trajectory: cross-PR marker-throughput gate =="
# Both BENCH_*.json files were regenerated on this host just above, so
# the cross-PR comparison is same-host: the newest PR's streaming_marker
# rate must be within 10% of the best earlier one.
cargo run --release --offline -p spmv-bench --bin bench_trajectory -- \
    --dir . --tolerance 10

echo "== telemetry smoke: batch --metrics (spmv-obs) =="
# The metrics sink must never change the report: run the same tiny batch
# with and without --metrics (and with different worker counts) and
# byte-compare the JSON-lines output, then check the metrics document is
# valid JSON whose span tree covers the pipeline stages end to end.
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
printf 'corpus count=2 scale=64 seed=7\nmethods A,B\nsettings off,2,5\nthreads 2\nscale 64\n' \
    > "$OBS_TMP/jobs.spec"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/jobs.spec" --workers 1 > "$OBS_TMP/report_plain.jsonl"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/jobs.spec" --workers 4 --metrics "$OBS_TMP/metrics.json" \
    > "$OBS_TMP/report_metrics.jsonl"
cmp "$OBS_TMP/report_plain.jsonl" "$OBS_TMP/report_metrics.jsonl" || {
    echo "ci: batch report changed under --metrics / worker count" >&2
    exit 1
}
python3 - "$OBS_TMP/metrics.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "spmv-obs/1", doc["schema"]

names = set()
def walk(spans):
    for s in spans:
        names.add(s["name"])
        walk(s["children"])
walk(doc["spans"])
for span in ("batch.run", "cache.lookup", "profile.build",
             "profile.domain", "reuse_stack.extract", "trace.stream"):
    assert span in names, f"missing span {span}; saw {sorted(names)}"
assert doc["counters"]["engine.cache.computations"] > 0, doc["counters"]
assert doc["counters"]["memtrace.cursor.refs"] > 0, doc["counters"]
# Block-probe accounting from the marker stacks' line index: every
# bulk-probed reference costs at least one slot inspection (exactly one
# on the dense direct-mapped index), and a pre-sized/direct-mapped index
# never rehashes mid-trace.
probe_refs = doc["counters"]["reuse.linetable.block_probe_refs"]
probe_steps = doc["counters"]["reuse.linetable.block_probe_steps"]
assert probe_refs > 0, doc["counters"]
assert probe_steps >= probe_refs, (probe_steps, probe_refs)
assert doc["counters"].get("reuse.linetable.rehashes", 0) == 0, doc["counters"]
assert doc["histograms"], "no histograms recorded"
assert doc["rss_checkpoints"], "no RSS checkpoints recorded"
print(f"telemetry smoke ok: {len(names)} span names, "
      f"{len(doc['counters'])} counters, {len(doc['histograms'])} histograms")
EOF

echo "== serve smoke: prediction daemon vs batch oracle =="
# The serve daemon on a temp Unix socket, driven by a scripted client:
# responses must byte-match the batch command on the same spec (modulo
# the id framing), a repeated request must be served from the shared
# LRU cache, and a SIGTERM with work in flight must drain it (non-zero
# drained count, exit 0, socket file removed).
printf 'corpus count=4 scale=64 seed=9\nmethods A,B\nsettings paper\nthreads 1\nscale 64\nworkers 1\n' \
    > "$OBS_TMP/serve.spec"
# Seconds of uncached work (scale-4 machine) so the SIGTERM below is
# guaranteed to land while the request is in flight.
printf 'corpus count=1 scale=4 seed=3\nsettings paper\nmethods B\nthreads 4\nscale 4\nworkers 2\n' \
    > "$OBS_TMP/serve_heavy.spec"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/serve.spec" > "$OBS_TMP/serve_oracle.jsonl"
cargo run --release --offline --bin spmv-locality -- \
    serve --unix "$OBS_TMP/serve.sock" --executors 2 \
    2> "$OBS_TMP/serve_stderr.txt" &
SERVE_PID=$!
SERVE_SMOKE=0
python3 - "$OBS_TMP" "$SERVE_PID" <<'EOF' || SERVE_SMOKE=$?
import json, os, signal, socket, sys, time

tmp, serve_pid = sys.argv[1], int(sys.argv[2])
sock_path = os.path.join(tmp, "serve.sock")
for _ in range(400):
    if os.path.exists(sock_path):
        break
    time.sleep(0.025)
else:
    sys.exit("serve daemon never bound its socket")

spec = open(os.path.join(tmp, "serve.spec")).read()
heavy = open(os.path.join(tmp, "serve_heavy.spec")).read()
oracle = [l for l in open(os.path.join(tmp, "serve_oracle.jsonl"))
          if '"job":' in l]

s = socket.socket(socket.AF_UNIX)
s.connect(sock_path)
f = s.makefile("rw")

def predict(rid, text):
    f.write(json.dumps({"id": rid, "spec": text}) + "\n")
    f.flush()
    reports, done = [], None
    while done is None:
        line = f.readline()
        msg = json.loads(line)
        assert msg["id"] == rid, line
        if "done" in msg:
            done = msg["done"]
        else:
            prefix = '{"id":"%s","report":' % rid
            assert line.startswith(prefix) and line.rstrip().endswith("}"), line
            reports.append(line.rstrip()[len(prefix):-1] + "\n")
    return reports, done

# Responses byte-match the batch oracle under the framing.
reports, done = predict("c1", spec)
assert reports == oracle, "serve payloads differ from batch output"
assert done["profile_computations"] == 8, done  # 4 matrices x 2 methods

# The repeat is served entirely from the shared cache.
_, done = predict("c2", spec)
assert done == {"matrices": 4, "jobs": 56, "profile_hits": 56,
                "profile_computations": 0}, done

# Typed error for a malformed line; the session survives.
f.write("definitely not json\n"); f.flush()
err = json.loads(f.readline())
assert err["error"]["code"] == "bad_request", err

# STATUS exposes the cache SLO counters.
f.write('{"id":"s1","status":true}\n'); f.flush()
body = json.loads(f.readline())["status"]
assert body["counters"]["engine.cache.computations"] == 8, body["counters"]
assert body["counters"]["engine.cache.hits"] == 104, body["counters"]

# SIGTERM with a request in flight: the daemon drains it — the full
# response still arrives — then exits cleanly.
f.write(json.dumps({"id": "c3", "spec": heavy}) + "\n")
f.flush()
time.sleep(0.4)  # let the daemon pick the request up first
os.kill(serve_pid, signal.SIGTERM)
done = None
while done is None:
    msg = json.loads(f.readline())
    assert msg["id"] == "c3", msg
    if "done" in msg:
        done = msg["done"]
assert done["jobs"] == 7, done
print("serve smoke ok: oracle match, cache reuse, typed errors, drain")
EOF
if [ "$SERVE_SMOKE" -ne 0 ]; then
    kill "$SERVE_PID" 2>/dev/null || true
    echo "ci: serve smoke client failed" >&2
    exit 1
fi
SERVE_EXIT=0
wait "$SERVE_PID" || SERVE_EXIT=$?
[ "$SERVE_EXIT" -eq 0 ] || { echo "ci: serve daemon exited $SERVE_EXIT" >&2; exit 1; }
grep -q ' drained' "$OBS_TMP/serve_stderr.txt" || {
    echo "ci: serve summary line missing" >&2; exit 1
}
if grep -q ' 0 drained' "$OBS_TMP/serve_stderr.txt"; then
    echo "ci: SIGTERM landed with no work in flight (drained 0)" >&2
    exit 1
fi
[ ! -e "$OBS_TMP/serve.sock" ] || { echo "ci: socket file not cleaned up" >&2; exit 1; }

echo "== observability smoke: METRICS scrapes, HTTP exposition, SIGQUIT dump =="
# A second daemon with the full observability plane armed: the METRICS
# verb scraped twice (exposition must stay parseable and the request
# counter must increase between scrapes), the side-car Prometheus HTTP
# listener, the rolling STATUS series off the 100ms sampler, and the
# flight recorder — a queue-full rejection must surface as an
# `overloaded` event in the SIGQUIT dump, and SIGQUIT itself must leave
# the daemon running (clean protocol shutdown afterwards, exit 0).
cargo run --release --offline --bin spmv-locality -- \
    serve --unix "$OBS_TMP/obs_serve.sock" --executors 1 --queue 1 \
    --sample-ms 100 --prometheus 127.0.0.1:0 \
    --flight-file "$OBS_TMP/flight.txt" \
    2> "$OBS_TMP/obs_serve_stderr.txt" &
OBS_SERVE_PID=$!
OBS_SMOKE=0
python3 - "$OBS_TMP" "$OBS_SERVE_PID" <<'EOF' || OBS_SMOKE=$?
import json, os, re, signal, socket, sys, time, urllib.request

tmp, serve_pid = sys.argv[1], int(sys.argv[2])
sock_path = os.path.join(tmp, "obs_serve.sock")
for _ in range(400):
    if os.path.exists(sock_path):
        break
    time.sleep(0.025)
else:
    sys.exit("obs serve daemon never bound its socket")

spec = open(os.path.join(tmp, "serve.spec")).read()
heavy = open(os.path.join(tmp, "serve_heavy.spec")).read()

s = socket.socket(socket.AF_UNIX)
s.connect(sock_path)
f = s.makefile("rw")

def send(obj):
    f.write(json.dumps(obj) + "\n"); f.flush()

def predict(rid, text):
    send({"id": rid, "spec": text})
    done = None
    while done is None:
        msg = json.loads(f.readline())
        assert msg["id"] == rid, msg
        if "done" in msg:
            done = msg["done"]
    return done

SAMPLE = re.compile(r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9.eE+]+$')
def scrape(rid):
    send({"id": rid, "metrics": True})
    msg = json.loads(f.readline())
    assert msg["id"] == rid, msg
    values = {}
    for line in msg["metrics"].splitlines():
        if line.startswith("#"):
            assert line.startswith("# TYPE "), line
            continue
        assert SAMPLE.match(line), f"bad exposition line: {line!r}"
        name, value = line.rsplit(" ", 1)
        values[name] = float(value)
    assert values, "empty exposition"
    return values

predict("o1", spec)
m1 = scrape("m1")
assert m1["spmv_serve_completed"] == 1, m1
predict("o2", spec)
m2 = scrape("m2")
assert m2["spmv_serve_completed"] == 2, m2
assert m2["spmv_serve_requests"] > m1["spmv_serve_requests"], (m1, m2)

# The TRACE tree for the first (uncached) request has the full ladder.
send({"id": "t1", "trace": "o1"})
trace = json.loads(f.readline())["trace"]
phases = {p["name"]: p for p in trace["phases"]}
for name in ("queue-wait", "cache-lookup", "compute", "stream-out"):
    assert phases[name]["wall_ns"] > 0, (name, trace)

# The side-car Prometheus listener serves the same exposition over HTTP.
stderr_text = open(os.path.join(tmp, "obs_serve_stderr.txt")).read()
m = re.search(r"prometheus exposition on (http://\S+/metrics)", stderr_text)
assert m, stderr_text
body = urllib.request.urlopen(m.group(1), timeout=10).read().decode()
assert "# TYPE spmv_serve_completed counter" in body, body[:400]

# STATUS carries the rolling series (sampler is on a 100ms tick).
send({"id": "s1", "status": True})
status = json.loads(f.readline())["status"]
series = status["series"]
assert series["samples"] >= 2, series
assert set(series["windows"]) == {"10s", "1m", "5m"}, series

# Fill the one-slot queue: the heavy request occupies the executor, one
# more queues, and the next is rejected `overloaded` — that rejection
# must show up in the flight-recorder dump below.
send({"id": "h1", "spec": heavy})
time.sleep(0.4)  # let the executor pick the heavy request up
send({"id": "q1", "spec": spec})
send({"id": "r1", "spec": spec})
msg = None
while msg is None or msg["id"] != "r1":
    msg = json.loads(f.readline())
assert msg["error"]["code"] == "overloaded", msg

# SIGQUIT dumps the flight recorder without killing the daemon.
os.kill(serve_pid, signal.SIGQUIT)
flight = os.path.join(tmp, "flight.txt")
for _ in range(200):
    if os.path.exists(flight) and "flight-recorder end" in open(flight).read():
        break
    time.sleep(0.025)
else:
    sys.exit("SIGQUIT produced no flight-recorder dump")

# Clean shutdown via the protocol: in-flight work drains first.
send({"id": "bye", "shutdown": True})
for rid in ("h1", "q1"):
    done = None
    while done is None:
        msg = json.loads(f.readline())
        if msg["id"] == rid and "done" in msg:
            done = msg["done"]
print("observability smoke ok: metrics x2, trace, http scrape, series, dump")
EOF
if [ "$OBS_SMOKE" -ne 0 ]; then
    kill "$OBS_SERVE_PID" 2>/dev/null || true
    echo "ci: observability smoke client failed" >&2
    exit 1
fi
OBS_SERVE_EXIT=0
wait "$OBS_SERVE_PID" || OBS_SERVE_EXIT=$?
[ "$OBS_SERVE_EXIT" -eq 0 ] || {
    echo "ci: obs serve daemon exited $OBS_SERVE_EXIT" >&2; exit 1
}
grep -q '# flight-recorder dump' "$OBS_TMP/flight.txt" || {
    echo "ci: flight file is missing the dump header" >&2; exit 1
}
grep -q '"kind": "overloaded"' "$OBS_TMP/flight.txt" || {
    echo "ci: flight dump is missing the overloaded rejection" >&2; exit 1
}
grep -q '# flight-recorder dump' "$OBS_TMP/obs_serve_stderr.txt" || {
    echo "ci: SIGQUIT dump did not reach stderr" >&2; exit 1
}

echo "== format smoke: CSR vs SELL-C-sigma (exp_sell) =="
# Tiny corpus through both storage formats: exercises the SELL trace
# derivation, the partitioned accounting on padded streams, and the
# CSR-vs-SELL comparison table end to end.
cargo run --release --offline -p spmv-bench --bin exp_sell -- \
    --count 2 --scale 64

echo "== scenario smoke: SpMM k-sweep and CG batches =="
# The kernel-scenario axis end to end: --rhs 1 must be byte-identical to
# the plain run (shared cache keys, shared bytes), --rhs 4 must tag its
# jobs (@rhs4) and amplify the predicted misses, and `workload cg` must
# tag (@cg) and run the square corpus clean.
printf 'corpus count=2 scale=64 seed=11\nmethods A,B\nsettings off,5\nthreads 2\nscale 64\n' \
    > "$OBS_TMP/scenario.spec"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/scenario.spec" > "$OBS_TMP/scn_plain.jsonl"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/scenario.spec" --rhs 1 > "$OBS_TMP/scn_rhs1.jsonl"
cmp "$OBS_TMP/scn_plain.jsonl" "$OBS_TMP/scn_rhs1.jsonl" || {
    echo "ci: --rhs 1 batch is not byte-identical to plain SpMV" >&2
    exit 1
}
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/scenario.spec" --rhs 4 > "$OBS_TMP/scn_rhs4.jsonl"
grep -q '@rhs4' "$OBS_TMP/scn_rhs4.jsonl" || {
    echo "ci: --rhs 4 jobs are not @rhs4-tagged" >&2; exit 1
}
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/scenario.spec" --workload cg > "$OBS_TMP/scn_cg.jsonl"
grep -q '@cg' "$OBS_TMP/scn_cg.jsonl" || {
    echo "ci: CG jobs are not @cg-tagged" >&2; exit 1
}
python3 - "$OBS_TMP" <<'EOF'
import json, os, sys

tmp = sys.argv[1]
def misses(name):
    total = 0
    for line in open(os.path.join(tmp, name)):
        doc = json.loads(line)
        if "job" in doc:
            total += doc["l2_misses"]
    return total

plain, rhs4, cg = misses("scn_plain.jsonl"), misses("scn_rhs4.jsonl"), misses("scn_cg.jsonl")
assert rhs4 > plain, f"4-RHS misses did not amplify: {rhs4} vs {plain}"
assert cg >= plain, f"CG-iteration misses below its inner SpMV: {cg} vs {plain}"
print(f"scenario smoke ok: misses {plain} (spmv) -> {rhs4} (rhs 4), {cg} (cg)")
EOF

echo "== machine smoke: presets, ECM, and the frozen a64fx oracle =="
# The a64fx preset — implicit default and explicit --machine a64fx —
# must stay byte-identical to the frozen pre-refactor batch output
# (results/batch_pr2_oracle.jsonl, same spec as the telemetry smoke);
# generic-x86 must run the same spec end to end with machine-tagged
# jobs and ECM throughput estimates attached, and must clear the
# model-only validation pass (the default a64fx harness already ran
# above with the simulator armed).
cmp results/batch_pr2_oracle.jsonl "$OBS_TMP/report_plain.jsonl" || {
    echo "ci: default-machine batch drifted from the frozen oracle" >&2
    exit 1
}
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/jobs.spec" --machine a64fx > "$OBS_TMP/machine_a64fx.jsonl"
cmp results/batch_pr2_oracle.jsonl "$OBS_TMP/machine_a64fx.jsonl" || {
    echo "ci: --machine a64fx drifted from the frozen pre-refactor oracle" >&2
    exit 1
}
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/jobs.spec" --machine generic-x86 --ecm \
    > "$OBS_TMP/machine_x86.jsonl"
grep -q '"machine":"generic-x86"' "$OBS_TMP/machine_x86.jsonl" || {
    echo "ci: generic-x86 jobs are not machine-tagged" >&2; exit 1
}
grep -q '"ecm":{"gflops":' "$OBS_TMP/machine_x86.jsonl" || {
    echo "ci: --ecm attached no throughput estimates" >&2; exit 1
}
cargo run --release --offline --bin spmv-locality -- \
    validate --matrices 4 --smoke --machine generic-x86

echo "ci: all gates passed"
