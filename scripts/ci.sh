#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#
# The build environment has no crates registry, so every cargo call runs
# --offline; the workspace is self-contained (see crates/compat/).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --workspace --release --offline

echo "== cargo test (offline) =="
cargo test --workspace -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== validate smoke: differential harness =="
# Fast tier of the differential validation harness (spmv-locality
# validate): 16 stratified matrices through every prediction pipeline
# and the simulator, exits nonzero on any invariant divergence. The full
# 200-matrix corpus is the release gate (see EXPERIMENTS.md).
cargo run --release --offline --bin spmv-locality -- \
    validate --matrices 16 --smoke

echo "== bench smoke: streaming pipeline (BENCH_pr2.json) =="
# Small corpus so the gate stays fast; emits refs/sec for the marker and
# exact streaming pipelines vs the seed materialised replay, plus VmHWM
# peak-RSS checkpoints, as BENCH_pr2.json at the repo root.
cargo run --release --offline -p spmv-bench --bin bench_pr2 -- \
    --count 4 --scale 64 --threads 8

echo "== format smoke: CSR vs SELL-C-sigma (exp_sell) =="
# Tiny corpus through both storage formats: exercises the SELL trace
# derivation, the partitioned accounting on padded streams, and the
# CSR-vs-SELL comparison table end to end.
cargo run --release --offline -p spmv-bench --bin exp_sell -- \
    --count 2 --scale 64

echo "ci: all gates passed"
