#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#
# The build environment has no crates registry, so every cargo call runs
# --offline; the workspace is self-contained (see crates/compat/).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --workspace --release --offline

echo "== cargo test (offline) =="
cargo test --workspace -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== validate smoke: differential harness =="
# Fast tier of the differential validation harness (spmv-locality
# validate): 16 stratified matrices through every prediction pipeline
# and the simulator, exits nonzero on any invariant divergence. The full
# 200-matrix corpus is the release gate (see EXPERIMENTS.md).
cargo run --release --offline --bin spmv-locality -- \
    validate --matrices 16 --smoke

echo "== bench smoke: streaming pipeline (BENCH_pr2.json) =="
# Small corpus so the gate stays fast; emits refs/sec for the marker and
# exact streaming pipelines vs the seed materialised replay, plus VmHWM
# peak-RSS checkpoints, as BENCH_pr2.json at the repo root.
cargo run --release --offline -p spmv-bench --bin bench_pr2 -- \
    --count 4 --scale 64 --threads 8

echo "== telemetry smoke: batch --metrics (spmv-obs) =="
# The metrics sink must never change the report: run the same tiny batch
# with and without --metrics (and with different worker counts) and
# byte-compare the JSON-lines output, then check the metrics document is
# valid JSON whose span tree covers the pipeline stages end to end.
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
printf 'corpus count=2 scale=64 seed=7\nmethods A,B\nsettings off,2,5\nthreads 2\nscale 64\n' \
    > "$OBS_TMP/jobs.spec"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/jobs.spec" --workers 1 > "$OBS_TMP/report_plain.jsonl"
cargo run --release --offline --bin spmv-locality -- \
    batch "$OBS_TMP/jobs.spec" --workers 4 --metrics "$OBS_TMP/metrics.json" \
    > "$OBS_TMP/report_metrics.jsonl"
cmp "$OBS_TMP/report_plain.jsonl" "$OBS_TMP/report_metrics.jsonl" || {
    echo "ci: batch report changed under --metrics / worker count" >&2
    exit 1
}
python3 - "$OBS_TMP/metrics.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "spmv-obs/1", doc["schema"]

names = set()
def walk(spans):
    for s in spans:
        names.add(s["name"])
        walk(s["children"])
walk(doc["spans"])
for span in ("batch.run", "cache.lookup", "profile.build",
             "profile.domain", "reuse_stack.extract", "trace.stream"):
    assert span in names, f"missing span {span}; saw {sorted(names)}"
assert doc["counters"]["engine.cache.computations"] > 0, doc["counters"]
assert doc["counters"]["memtrace.cursor.refs"] > 0, doc["counters"]
assert doc["histograms"], "no histograms recorded"
assert doc["rss_checkpoints"], "no RSS checkpoints recorded"
print(f"telemetry smoke ok: {len(names)} span names, "
      f"{len(doc['counters'])} counters, {len(doc['histograms'])} histograms")
EOF

echo "== format smoke: CSR vs SELL-C-sigma (exp_sell) =="
# Tiny corpus through both storage formats: exercises the SELL trace
# derivation, the partitioned accounting on padded streams, and the
# CSR-vs-SELL comparison table end to end.
cargo run --release --offline -p spmv-bench --bin exp_sell -- \
    --count 2 --scale 64

echo "ci: all gates passed"
