//! Property test of the streaming trace pipeline: for arbitrary CSR
//! patterns, thread counts, and sector sweeps, the engine's JSON-lines
//! reports (streaming cursors, marker quantization, parallel domains)
//! must be byte-identical to reports rendered from the seed
//! materialise-then-replay pipeline, and byte-identical across worker
//! counts.

use a64fx::MachineConfig;
use locality_core::{LocalityProfile, Method, SectorSetting};
use locality_engine::{run_on, BatchSpec, Report};
use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};
use std::collections::HashMap;

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (4usize..60)
        .prop_flat_map(|n| {
            let entries = prop::collection::vec((0..n, 0..n), 1..n * 6);
            (Just(n), entries)
        })
        .prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c) in entries {
                coo.push(r, c, 1.0);
            }
            coo.to_csr()
        })
}

/// A random sector sweep: a deduplicated mix of off and 1..=7 ways.
fn arb_settings() -> impl Strategy<Value = Vec<SectorSetting>> {
    prop::collection::btree_set(0usize..8, 1..5).prop_map(|ways| {
        ways.into_iter()
            .map(|w| {
                if w == 0 {
                    SectorSetting::Off
                } else {
                    SectorSetting::L2Ways(w)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full-engine property the tentpole must uphold: random matrix,
    /// thread count, and sweep; the streaming parallel-domain pipeline's
    /// reports equal the materialised oracle's rendering byte for byte,
    /// for every worker count.
    #[test]
    fn streaming_reports_match_materialized_oracle(
        m in arb_matrix(),
        threads in 1usize..6,
        settings in arb_settings(),
    ) {
        let spec = BatchSpec {
            sources: Vec::new(),
            methods: vec![Method::A, Method::B],
            settings: settings.clone(),
            threads,
            scale: 64,
            workers: 1,
            ..BatchSpec::default()
        };
        let matrices = [("prop", &m)];
        let base = run_on(&spec, &matrices);

        // Worker-count invariance of the whole JSON-lines artifact.
        for workers in [2usize, 5] {
            let spec_w = BatchSpec { workers, ..spec.clone() };
            let got = run_on(&spec_w, &matrices);
            prop_assert_eq!(
                got.to_json_lines(),
                base.to_json_lines(),
                "workers {} diverged",
                workers
            );
        }

        // The oracle: re-derive every prediction on the seed
        // materialise-then-replay pipeline and render it through the same
        // report format. Byte-identical lines mean the streaming path's
        // predictions are bit-identical, not merely close.
        let cfg = MachineConfig::a64fx_scaled(64).with_cores(threads);
        let mut oracles: HashMap<Method, LocalityProfile> = HashMap::new();
        for report in &base.reports {
            let profile = oracles.entry(report.method).or_insert_with(|| {
                LocalityProfile::compute_materialized(&m, &cfg, report.method, threads)
            });
            let prediction = profile.evaluate(&cfg, &[report.setting])[0];
            let oracle = Report {
                prediction,
                ..report.clone()
            };
            prop_assert_eq!(
                oracle.to_json_line(),
                report.to_json_line(),
                "method {:?} setting {:?}",
                report.method,
                report.setting
            );
        }
    }

    /// The sweep-restricted (marker) and capacity-independent (exact)
    /// streaming profiles answer identically at the tracked settings.
    #[test]
    fn sweep_profile_matches_exact_profile(
        m in arb_matrix(),
        threads in 1usize..5,
        settings in arb_settings(),
    ) {
        let cfg = MachineConfig::a64fx_scaled(64).with_cores(threads);
        for method in [Method::A, Method::B] {
            let exact = LocalityProfile::compute(&m, &cfg, method, threads);
            let sweep =
                LocalityProfile::compute_for_sweep(&m, &cfg, method, threads, &settings);
            prop_assert_eq!(
                sweep.evaluate(&cfg, &settings),
                exact.evaluate(&cfg, &settings),
                "method {:?}",
                method
            );
        }
    }
}
