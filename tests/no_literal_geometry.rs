//! Regression guard for the single-source-of-truth hardware geometry.
//!
//! PR 9 moved every A64FX cache constant (256 B lines, 8 MiB L2 segments,
//! way counts) into the `machine` crate. This test walks the workspace
//! sources and fails if a hard-coded line-size or segment-size literal
//! creeps back in outside `crates/machine` — everything else must go
//! through [`machine::A64FX_LINE_BYTES`], `CacheGeometry::new`, or a
//! `HierarchyConfig` preset.

use std::fs;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under `dir`, recursively.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True if the line hard-codes a geometry constant that must come from the
/// machine crate instead.
fn offending(line: &str) -> Option<&'static str> {
    let code = line.split("//").next().unwrap_or(line);
    // A64FX line size passed positionally to a layout builder.
    if code.contains("layout(256") {
        return Some("literal 256-byte line passed to layout()");
    }
    // The 8 MiB L2 segment spelled as a shift expression.
    if code.contains("(8 << 20") {
        return Some("literal 8 MiB L2 size; derive from MachineConfig/HierarchyConfig");
    }
    // Struct-literal or assignment of a numeric line size.
    if let Some(idx) = code.find("line_bytes") {
        let rest = code[idx + "line_bytes".len()..].trim_start();
        for sep in [":", "="] {
            if let Some(value) = rest.strip_prefix(sep) {
                let value = value.trim_start();
                if value.starts_with(|c: char| c.is_ascii_digit()) {
                    return Some("numeric line_bytes; use CacheGeometry::new or A64FX_LINE_BYTES");
                }
            }
        }
    }
    // Closed-form helpers called with the literal A64FX line.
    if code.contains(", 256")
        && [
            "::of(&",
            "DataLayout::new(&",
            "stream_misses_",
            "memory_bytes(",
        ]
        .iter()
        .any(|needle| code.contains(needle))
    {
        return Some("literal 256-byte line passed to a geometry helper");
    }
    None
}

#[test]
fn geometry_constants_live_only_in_the_machine_crate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let path = entry.path();
            // The machine crate is the source of truth — literals are its job.
            if path.is_dir() && path.file_name().is_some_and(|n| n != "machine") {
                rust_sources(&path.join("src"), &mut files);
            }
        }
    }
    rust_sources(&root.join("src"), &mut files);
    rust_sources(&root.join("tests"), &mut files);
    rust_sources(&root.join("examples"), &mut files);
    assert!(
        files.len() > 20,
        "workspace walk found only {} files; test is miswired",
        files.len()
    );

    let this_file = Path::new(file!()).file_name().unwrap().to_owned();
    let mut violations = Vec::new();
    for path in files {
        if path.file_name() == Some(this_file.as_ref()) {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap_or_default();
        for (lineno, line) in text.lines().enumerate() {
            if let Some(why) = offending(line) {
                violations.push(format!(
                    "{}:{}: {why}\n    {}",
                    path.strip_prefix(root).unwrap_or(&path).display(),
                    lineno + 1,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "hard-coded cache geometry outside crates/machine:\n{}",
        violations.join("\n")
    );
}
