//! Property-based tests of RCM reordering over the corpus generators:
//! the permuted matrix is the same linear operator under relabelling, so
//! nnz, pattern symmetry and SpMV results (up to the permutation) are all
//! preserved on every structural family the evaluation corpus draws from.

use proptest::prelude::*;
use sparsemat::{reorder, spmv, CsrMatrix};
use std::collections::HashSet;

/// The sparsity pattern as a set of `(row, col)` coordinates.
fn pattern(a: &CsrMatrix) -> HashSet<(usize, usize)> {
    (0..a.num_rows())
        .flat_map(|r| a.row(r).map(move |(c, _)| (r, c)))
        .collect()
}

/// Whether the pattern is structurally symmetric.
fn pattern_symmetric(a: &CsrMatrix) -> bool {
    let p = pattern(a);
    p.iter().all(|&(r, c)| p.contains(&(c, r)))
}

/// Checks every RCM invariant on one matrix.
fn check_rcm_invariants(a: &CsrMatrix, name: &str) {
    let perm = reorder::reverse_cuthill_mckee(a);
    let pm = a.permute_symmetric(&perm);
    prop_assert_eq!(
        &pm,
        &reorder::rcm_reorder(a),
        "rcm_reorder must equal permute_symmetric(reverse_cuthill_mckee) on {}",
        name
    );

    // Same operator, same storage volume.
    prop_assert_eq!(pm.nnz(), a.nnz(), "nnz changed on {}", name);
    prop_assert_eq!(pm.num_rows(), a.num_rows());
    prop_assert_eq!(pm.num_cols(), a.num_cols());

    // A symmetric permutation relabels rows and columns together, so
    // structural symmetry is invariant either way.
    prop_assert_eq!(
        pattern_symmetric(&pm),
        pattern_symmetric(a),
        "pattern symmetry changed on {}",
        name
    );

    // The permuted pattern is exactly the relabelled original pattern.
    let mut inv = vec![0usize; a.num_rows()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let relabelled: HashSet<(usize, usize)> = pattern(a)
        .into_iter()
        .map(|(r, c)| (inv[r], inv[c]))
        .collect();
    prop_assert_eq!(
        pattern(&pm),
        relabelled,
        "pattern not relabelled on {}",
        name
    );

    // SpMV results agree up to the permutation: y'[new] == y[perm[new]]
    // when x is permuted the same way.
    let n = a.num_rows();
    let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 31) as f64 - 15.0).collect();
    let px: Vec<f64> = perm.iter().map(|&old| x[old]).collect();
    let mut y = vec![0.0; n];
    let mut py = vec![0.0; n];
    spmv::spmv_seq(a, &x, &mut y);
    spmv::spmv_seq(&pm, &px, &mut py);
    for (new, &old) in perm.iter().enumerate() {
        prop_assert!(
            (py[new] - y[old]).abs() <= 1e-9 * y[old].abs().max(1.0),
            "SpMV diverged at row {} of {}: {} vs {}",
            new,
            name,
            py[new],
            y[old]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All RCM invariants hold on every structural family of the
    /// evaluation corpus, for arbitrary corpus seeds.
    #[test]
    fn rcm_invariants_hold_on_corpus_generators(seed in 0u64..1_000_000) {
        for nm in corpus::corpus(7, 256, seed) {
            check_rcm_invariants(&nm.matrix, &nm.name);
        }
    }

    /// Same invariants on the dedicated generators the suite composes
    /// (banded and tridiagonal-plus-random reach patterns the mixed
    /// corpus may sample thinly).
    #[test]
    fn rcm_invariants_hold_on_banded_generators(
        n in 16usize..400,
        band in 1usize..32,
        per_row in 1usize..8,
        seed in 0u64..100_000,
    ) {
        let banded = corpus::banded::random_banded(n, band.min(n - 1), per_row, seed);
        check_rcm_invariants(&banded, "random_banded");
        let tri = corpus::banded::tridiag_plus_random(n, per_row, seed);
        check_rcm_invariants(&tri, "tridiag_plus_random");
    }
}
