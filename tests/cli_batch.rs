//! Integration tests driving the `spmv-locality` binary: error paths must
//! exit nonzero with a diagnostic on stderr (never a panic backtrace), and
//! the happy path must emit the documented JSON lines.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_spmv-locality");

/// A per-test scratch directory under the target temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spmv-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn batch_missing_matrix_path_reports_engine_error() {
    let dir = scratch("missing-matrix");
    let spec = dir.join("jobs.spec");
    let missing = dir.join("no-such-matrix.mtx");
    std::fs::write(
        &spec,
        format!(
            "mtx {}\nsettings off\nthreads 1\nscale 64\n",
            missing.display()
        ),
    )
    .unwrap();

    let out = Command::new(BIN)
        .args(["batch", spec.to_str().unwrap()])
        .output()
        .expect("spawn spmv-locality");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("cannot load") && stderr.contains("no-such-matrix.mtx"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn batch_bad_spec_reports_line_number() {
    let dir = scratch("bad-spec");
    let spec = dir.join("jobs.spec");
    std::fs::write(&spec, "corpus count=banana\n").unwrap();

    let out = Command::new(BIN)
        .args(["batch", spec.to_str().unwrap()])
        .output()
        .expect("spawn spmv-locality");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("line 1"), "stderr: {stderr}");
}

#[test]
fn bad_flag_value_exits_cleanly() {
    let out = Command::new(BIN)
        .args(["analyze", "whatever.mtx", "--threads", "notanumber"])
        .output()
        .expect("spawn spmv-locality");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("expected a number after --threads"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn batch_happy_path_emits_json_lines() {
    let dir = scratch("happy");
    let mtx = dir.join("tiny.mtx");
    // 4x4 tridiagonal-ish matrix, general real.
    std::fs::write(
        &mtx,
        "%%MatrixMarket matrix coordinate real general\n\
         4 4 7\n1 1 2.0\n1 2 -1.0\n2 2 2.0\n2 3 -1.0\n3 3 2.0\n3 4 -1.0\n4 4 2.0\n",
    )
    .unwrap();
    let spec = dir.join("jobs.spec");
    std::fs::write(
        &spec,
        format!(
            "mtx {}\nmethods A,B\nsettings off,5\nthreads 1\nscale 64\nworkers 1\n",
            mtx.display()
        ),
    )
    .unwrap();

    let out = Command::new(BIN)
        .args(["batch", spec.to_str().unwrap()])
        .output()
        .expect("spawn spmv-locality");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    // 2 methods x 2 settings = 4 job lines plus one summary line.
    let job_lines: Vec<&str> = stdout.lines().filter(|l| l.contains("\"job\":")).collect();
    assert_eq!(job_lines.len(), 4, "stdout: {stdout}");
    assert!(job_lines.iter().all(|l| l.contains("\"l2_misses\":")));
    assert!(stdout.lines().any(|l| l.contains("\"summary\":")));
}

#[test]
fn batch_metrics_flag_writes_json_without_changing_report() {
    let dir = scratch("metrics");
    let spec = dir.join("jobs.spec");
    std::fs::write(
        &spec,
        "corpus count=2 scale=64 seed=7\nmethods A,B\nsettings off,5\nthreads 2\nscale 64\nworkers 2\n",
    )
    .unwrap();

    let plain = Command::new(BIN)
        .args(["batch", spec.to_str().unwrap()])
        .output()
        .expect("spawn spmv-locality");
    assert_eq!(
        plain.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&plain.stderr)
    );

    let metrics_path = dir.join("metrics.json");
    let with_metrics = Command::new(BIN)
        .args([
            "batch",
            spec.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn spmv-locality");
    assert_eq!(
        with_metrics.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&with_metrics.stderr)
    );

    // Telemetry is a pure side channel: the report bytes must not move.
    assert_eq!(
        plain.stdout, with_metrics.stdout,
        "--metrics changed the batch report"
    );

    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    a64fx_spmv::obs::json::validate(&metrics).expect("metrics output is well-formed JSON");
    assert!(metrics.contains("\"schema\": \"spmv-obs/1\""), "{metrics}");
    assert!(metrics.contains("\"command\": \"batch\""), "{metrics}");
    // The span tree must cover the pipeline stages end to end.
    for span in [
        "batch.run",
        "cache.lookup",
        "profile.build",
        "profile.domain",
        "reuse_stack.extract",
        "trace.stream",
    ] {
        assert!(
            metrics.contains(&format!("\"name\": \"{span}\"")),
            "missing span {span}: {metrics}"
        );
    }
    for counter in ["engine.cache.computations", "memtrace.cursor.refs"] {
        assert!(metrics.contains(counter), "missing counter {counter}");
    }
    assert!(metrics.contains("\"rss_checkpoints\""), "{metrics}");
}
