//! Listing 1 end-to-end: the paper's exact FCC pragmas configure the
//! simulated machine, and the resulting run matches the equivalent
//! builder-API configuration.

use a64fx::{directives, simulate_spmv, MachineConfig};
use a64fx_spmv::prelude::*;

#[test]
fn listing1_pragmas_reproduce_builder_config() {
    let (cfg, sector1) = directives::apply(
        MachineConfig::a64fx_scaled(64),
        &[
            "#pragma procedure scache_isolate_way L2=5",
            "#pragma procedure scache_isolate_assign a colidx",
        ],
    )
    .expect("Listing 1 must parse");
    assert_eq!(sector1, ArraySet::MATRIX_STREAM);

    let matrix = corpus::banded::random_banded(4096, 256, 12, 3);
    let via_pragmas = simulate_spmv(&matrix, &cfg, sector1, 1, 1);

    let builder_cfg = MachineConfig::a64fx_scaled(64).with_l2_sector(5);
    let via_builder = simulate_spmv(&matrix, &builder_cfg, ArraySet::MATRIX_STREAM, 1, 1);

    assert_eq!(via_pragmas.pmu, via_builder.pmu);
}

#[test]
fn l1_way_pragma_applies_to_l1() {
    let (cfg, _) = directives::apply(
        MachineConfig::a64fx_scaled(16),
        &[
            "scache_isolate_way L2=4 L1=1",
            "scache_isolate_assign a colidx",
        ],
    )
    .unwrap();
    assert_eq!(cfg.l2_sector.sector1_ways, 4);
    assert_eq!(cfg.l1_sector.sector1_ways, 1);
}

#[test]
fn assigning_x_alone_is_expressible() {
    // The paper's §3.2.2 case (3): "assigning only x to partition 0".
    let (_, sector1) = directives::apply(
        MachineConfig::a64fx(),
        &["scache_isolate_way L2=11", "scache_isolate_assign x"],
    )
    .unwrap();
    assert!(sector1.contains(Array::X));
    assert!(!sector1.contains(Array::A));
}
