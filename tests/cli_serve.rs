//! Integration tests for `spmv-locality serve`: the daemon runs as a real
//! subprocess on a Unix socket, driven by real clients. The load-bearing
//! acceptance checks live here — report payloads byte-identical to the
//! `batch` command, cross-request cache hits visible through `STATUS`,
//! typed errors for malformed/overload/deadline paths, and a SIGTERM
//! drain that finishes in-flight work.

use serve::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_spmv-locality");

/// A spec small enough to answer promptly: 2 matrices × 2 methods × 2
/// settings = 8 jobs over 4 distinct (matrix, method) profiles.
const SPEC: &str =
    "corpus count=2 scale=64 seed=7\nmethods A,B\nsettings off,5\nthreads 1\nscale 64\nworkers 1\n";

/// A spec whose single profile takes seconds to compute (scale-8 machine,
/// scale-8 corpus matrix): deadline and drain tests need in-flight time.
const HEAVY_SPEC: &str =
    "corpus count=1 scale=8 seed=3\nsettings paper\nmethods B\nthreads 4\nscale 8\nworkers 2\n";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spmv-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(name: &str, extra: &[&str]) -> Daemon {
        let socket = scratch(name).join("serve.sock");
        let mut child = Command::new(BIN)
            .arg("serve")
            .args(["--unix", socket.to_str().unwrap()])
            .args(extra)
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve daemon");
        for _ in 0..400 {
            if socket.exists() {
                return Daemon { child, socket };
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        // Reap the stuck daemon before failing so it cannot linger.
        let _ = child.kill();
        let _ = child.wait();
        panic!("daemon did not create {}", socket.display());
    }

    fn connect(&self) -> Client {
        let stream = UnixStream::connect(&self.socket).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Waits for the daemon to exit and returns (exit code, stderr).
    fn wait(self) -> (i32, String) {
        let out = self.child.wait_with_output().expect("daemon exit");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn predict(&mut self, id: &str, spec: &str, deadline_ms: Option<u64>) {
        let deadline = match deadline_ms {
            Some(ms) => format!(",\"deadline_ms\":{ms}"),
            None => String::new(),
        };
        self.send(&format!(
            "{{\"id\":\"{id}\",\"spec\":\"{}\"{deadline}}}",
            spec.replace('\n', "\\n")
        ));
    }

    fn recv_raw(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(line.ends_with('\n'), "connection closed mid-response");
        line.truncate(line.len() - 1);
        line
    }

    fn recv(&mut self) -> Json {
        let line = self.recv_raw();
        Json::parse(&line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
    }

    /// Reads a predict response stream to its end; returns the raw report
    /// lines and the `done` body.
    fn recv_stream(&mut self, id: &str) -> (Vec<String>, Json) {
        let mut reports = Vec::new();
        loop {
            let raw = self.recv_raw();
            let line = Json::parse(&raw).unwrap_or_else(|e| panic!("bad line {raw:?}: {e}"));
            assert_eq!(
                line.get("id").and_then(Json::as_str),
                Some(id),
                "interleaved response for another request: {raw}"
            );
            if let Some(done) = line.get("done") {
                return (reports, done.clone());
            }
            assert!(
                line.get("report").is_some(),
                "expected report or done, got {raw}"
            );
            reports.push(raw);
        }
    }
}

fn error_code(line: &Json) -> String {
    line.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("not an error line"))
        .to_string()
}

/// Strips the `{"id":"..","report":` prefix and trailing `}` framing,
/// recovering the exact batch-command payload.
fn strip_framing(line: &str, id: &str) -> String {
    let prefix = format!("{{\"id\":\"{id}\",\"report\":");
    assert!(
        line.starts_with(&prefix) && line.ends_with('}'),
        "unexpected framing: {line}"
    );
    line[prefix.len()..line.len() - 1].to_string()
}

#[test]
fn serve_matches_batch_and_shares_cache_across_requests() {
    // Oracle: the batch command on the same spec.
    let dir = scratch("oracle");
    let spec_path = dir.join("jobs.spec");
    std::fs::write(&spec_path, SPEC).unwrap();
    let batch = Command::new(BIN)
        .args(["batch", spec_path.to_str().unwrap()])
        .output()
        .expect("run batch oracle");
    assert_eq!(batch.status.code(), Some(0));
    let oracle: Vec<String> = String::from_utf8_lossy(&batch.stdout)
        .lines()
        .filter(|l| l.contains("\"job\":"))
        .map(str::to_string)
        .collect();
    assert_eq!(oracle.len(), 8);

    let daemon = Daemon::start("match-batch", &[]);
    let mut client = daemon.connect();

    // First request computes the 4 profiles; responses are the batch
    // payloads byte-for-byte under the id framing.
    client.predict("c1", SPEC, None);
    let (reports, done) = client.recv_stream("c1");
    let payloads: Vec<String> = reports.iter().map(|l| strip_framing(l, "c1")).collect();
    assert_eq!(payloads, oracle, "serve payloads differ from batch output");
    assert_eq!(done.get("jobs").and_then(Json::as_u64), Some(8));
    assert_eq!(
        done.get("profile_computations").and_then(Json::as_u64),
        Some(4)
    );
    assert_eq!(done.get("profile_hits").and_then(Json::as_u64), Some(4));

    // Two concurrent clients resubmitting the same matrices: everything
    // is served from the shared cache (the OnceLock slots make the
    // computation exactly-once even under the race).
    let handles: Vec<_> = ["t1", "t2"]
        .into_iter()
        .map(|id| {
            let mut c = daemon.connect();
            std::thread::spawn(move || {
                c.predict(id, SPEC, None);
                let (reports, done) = c.recv_stream(id);
                assert_eq!(reports.len(), 8);
                assert_eq!(done.get("profile_hits").and_then(Json::as_u64), Some(8));
                assert_eq!(
                    done.get("profile_computations").and_then(Json::as_u64),
                    Some(0)
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // STATUS exposes the cache SLO counters: 4 computations ever, every
    // other lookup a hit (4 + 8 + 8 = 20).
    client.send(r#"{"id":"s1","status":true}"#);
    let status = client.recv();
    let body = status.get("status").cloned().expect("status body");
    let counter = |name: &str| {
        body.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("engine.cache.computations"), 4);
    assert_eq!(counter("engine.cache.hits"), 20);
    assert_eq!(counter("serve.completed"), 3);
    assert!(
        body.get("gauges")
            .and_then(|g| g.get("engine.cache.hit_rate_pct"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 80
    );

    // Malformed lines get a typed rejection without killing the session.
    client.send("{oops");
    let error = client.recv();
    assert_eq!(error_code(&error), "bad_request");
    client.send(r#"{"id":"c9","spec":"frobnicate the matrix"}"#);
    let error = client.recv();
    assert_eq!(error.get("id").and_then(Json::as_str), Some("c9"));
    assert_eq!(error_code(&error), "bad_request");

    // Protocol shutdown: acknowledged, then a clean exit.
    client.send(r#"{"id":"q1","shutdown":true}"#);
    let ack = client.recv();
    assert!(ack.get("shutdown").is_some(), "expected shutdown ack");
    let (code, stderr) = daemon.wait();
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stderr.contains("3 completed"), "stderr: {stderr}");
}

#[test]
fn serve_stays_byte_exact_under_concurrent_status_and_metrics_polling() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // Oracle: the batch command on the same spec.
    let dir = scratch("poll-oracle");
    let spec_path = dir.join("jobs.spec");
    std::fs::write(&spec_path, SPEC).unwrap();
    let batch = Command::new(BIN)
        .args(["batch", spec_path.to_str().unwrap()])
        .output()
        .expect("run batch oracle");
    assert_eq!(batch.status.code(), Some(0));
    let oracle: Vec<String> = String::from_utf8_lossy(&batch.stdout)
        .lines()
        .filter(|l| l.contains("\"job\":"))
        .map(str::to_string)
        .collect();
    assert_eq!(oracle.len(), 8);

    let daemon = Daemon::start("polling", &["--sample-ms", "50"]);

    // A second connection hammers STATUS and METRICS the whole time:
    // every response must parse, the exposition must round-trip the
    // Prometheus checker, and the completion counter must be monotonic
    // across both views.
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        let mut c = daemon.connect();
        std::thread::spawn(move || {
            let mut last_completed = 0u64;
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                c.send(r#"{"id":"ps","status":true}"#);
                let body = c.recv().get("status").cloned().expect("status body");
                let completed = body
                    .get("counters")
                    .and_then(|cs| cs.get("serve.completed"))
                    .and_then(Json::as_u64)
                    .expect("serve.completed counter");
                assert!(completed >= last_completed, "STATUS counter went backwards");
                last_completed = completed;
                assert!(body.get("series").is_some(), "STATUS lost its series block");

                c.send(r#"{"id":"pm","metrics":true}"#);
                let text = c
                    .recv()
                    .get("metrics")
                    .and_then(Json::as_str)
                    .expect("metrics body")
                    .to_string();
                let samples = a64fx_spmv::obs::prom::check(&text)
                    .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
                assert!(samples > 0, "empty exposition");
                let exposed = text
                    .lines()
                    .find_map(|l| l.strip_prefix("spmv_serve_completed "))
                    .and_then(|v| v.parse::<u64>().ok())
                    .expect("spmv_serve_completed sample");
                assert!(exposed >= last_completed, "METRICS counter went backwards");
                last_completed = exposed;
                polls += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            polls
        })
    };

    // Meanwhile the main client runs real predictions; the report
    // payloads must stay byte-identical to the batch oracle under the
    // concurrent polling load.
    let mut client = daemon.connect();
    for (i, id) in ["c1", "c2", "c3"].into_iter().enumerate() {
        client.predict(id, SPEC, None);
        let (reports, done) = client.recv_stream(id);
        let payloads: Vec<String> = reports.iter().map(|l| strip_framing(l, id)).collect();
        assert_eq!(payloads, oracle, "request {i} drifted from the oracle");
        assert_eq!(done.get("jobs").and_then(Json::as_u64), Some(8));
    }

    stop.store(true, Ordering::Relaxed);
    let polls = poller.join().expect("poller thread");
    assert!(polls > 0, "poller never completed a round");

    // Final state: all three predictions visible in both views.
    client.send(r#"{"id":"sf","status":true}"#);
    let body = client.recv().get("status").cloned().expect("status body");
    assert_eq!(
        body.get("counters")
            .and_then(|cs| cs.get("serve.completed"))
            .and_then(Json::as_u64),
        Some(3)
    );

    client.send(r#"{"id":"q","shutdown":true}"#);
    client.recv();
    let (code, stderr) = daemon.wait();
    assert_eq!(code, 0, "stderr: {stderr}");
}

#[test]
fn serve_overload_and_oversized_lines_are_typed_errors() {
    // queue 0: no predict request is ever admitted — the deterministic
    // way to exercise the backpressure rejection.
    let daemon = Daemon::start("overload", &["--queue", "0", "--max-line", "256"]);
    let mut client = daemon.connect();

    client.predict("o1", SPEC, None);
    let error = client.recv();
    assert_eq!(error.get("id").and_then(Json::as_str), Some("o1"));
    assert_eq!(error_code(&error), "overloaded");

    // A line over the cap is rejected, and the session keeps working.
    client.send(&format!(
        "{{\"id\":\"big\",\"spec\":\"{}\"}}",
        "x".repeat(512)
    ));
    let error = client.recv();
    assert_eq!(error_code(&error), "oversized_line");
    client.send(r#"{"id":"s","status":true}"#);
    let status = client.recv();
    assert!(status.get("status").is_some(), "session should survive");

    client.send(r#"{"id":"q","shutdown":true}"#);
    client.recv();
    let (code, stderr) = daemon.wait();
    assert_eq!(code, 0, "stderr: {stderr}");
}

#[test]
fn serve_deadline_exceeded_is_a_typed_error_not_a_hang() {
    let daemon = Daemon::start("deadline", &[]);
    let mut client = daemon.connect();

    // A 1 ms budget against seconds of work: the engine's cancellation
    // checkpoints must surface a typed error promptly.
    client.predict("d1", HEAVY_SPEC, Some(1));
    let error = client.recv();
    assert_eq!(error.get("id").and_then(Json::as_str), Some("d1"));
    assert_eq!(error_code(&error), "deadline_exceeded");

    // The daemon is still healthy afterwards.
    client.predict("d2", SPEC, None);
    let (reports, _) = client.recv_stream("d2");
    assert_eq!(reports.len(), 8);

    client.send(r#"{"id":"q","shutdown":true}"#);
    client.recv();
    let (code, stderr) = daemon.wait();
    assert_eq!(code, 0, "stderr: {stderr}");
}

#[test]
fn serve_sigterm_drains_inflight_work() {
    let daemon = Daemon::start("drain", &[]);
    let mut client = daemon.connect();

    // Submit seconds of work, then SIGTERM while it is in flight.
    client.predict("w1", HEAVY_SPEC, None);
    std::thread::sleep(Duration::from_millis(200));
    let term = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    // The drained job still answers in full on the open connection.
    let (reports, done) = client.recv_stream("w1");
    assert_eq!(reports.len(), 7);
    assert_eq!(done.get("jobs").and_then(Json::as_u64), Some(7));

    let (code, stderr) = daemon.wait();
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stderr.contains("1 drained"), "stderr: {stderr}");
}
