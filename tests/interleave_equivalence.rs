//! The MCS-lock-based concurrent collation (what the paper implements)
//! versus the deterministic round-robin interleaving (what the prediction
//! uses): on equal-rate threads they must yield statistically equivalent
//! shared-cache miss counts.

use memtrace::interleave::{mcs_interleave, round_robin};
use memtrace::{Access, Array};
use reuse::MarkerStack;

/// Builds per-thread x-access traces with mixed locality.
fn per_thread_traces(threads: usize, len: usize, seed: u64) -> Vec<Vec<Access>> {
    (0..threads)
        .map(|t| {
            let mut state = seed.wrapping_add(t as u64) | 1;
            (0..len)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // Half shared working set, half thread-private stream.
                    let line = if i % 2 == 0 {
                        (state >> 33) % 256
                    } else {
                        10_000 + t as u64 * 1_000 + (i as u64 / 2)
                    };
                    Access::load(line, Array::X)
                })
                .collect()
        })
        .collect()
}

fn misses(trace: &[Access], caps: &[usize]) -> Vec<u64> {
    let mut stack = MarkerStack::new(caps);
    for a in trace {
        stack.access(a.line, a.array);
    }
    (0..stack.capacities().len())
        .map(|j| stack.misses(j))
        .collect()
}

#[test]
fn interleaving_invariant_miss_counts_at_footprint_capacity() {
    // At a capacity that holds the entire shared footprint, every
    // interleaving produces exactly the cold misses — MCS and round-robin
    // must agree bit-for-bit regardless of scheduling.
    let traces = per_thread_traces(8, 4000, 42);
    let footprint: std::collections::HashSet<u64> =
        traces.iter().flatten().map(|a| a.line).collect();
    let caps = [footprint.len()];
    let rr = misses(&round_robin(&traces, 1), &caps);
    let mcs = misses(&mcs_interleave(&traces, 1), &caps);
    assert_eq!(rr, mcs);
    assert_eq!(rr[0] as usize, footprint.len());
}

#[test]
fn mcs_and_round_robin_give_similar_miss_counts() {
    // Fine-grained equivalence requires threads to actually run
    // concurrently at similar rates; on a single-CPU host the OS serialises
    // them into large bursts (the timing dependence the paper's §4.5.5
    // acknowledges), so this check only runs with real parallelism.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus < 4 {
        eprintln!("skipping fine-grained MCS comparison: only {cpus} CPU(s)");
        return;
    }
    let traces = per_thread_traces(8, 4000, 42);
    let caps = [512usize, 1024, 4096];
    let rr = misses(&round_robin(&traces, 1), &caps);
    let mcs = misses(&mcs_interleave(&traces, 1), &caps);
    for (j, (&a, &b)) in rr.iter().zip(&mcs).enumerate() {
        let rel = (a as f64 - b as f64).abs() / a.max(1) as f64;
        assert!(
            rel < 0.15,
            "capacity {}: round-robin {a} vs MCS {b} ({:.1}% apart)",
            caps[j],
            rel * 100.0
        );
    }
}

#[test]
fn chunk_size_barely_changes_counts() {
    // The paper submits accesses in chunks through the MCS queue; the
    // shared-cache miss counts should be insensitive to the chunk size for
    // equal-rate threads.
    let traces = per_thread_traces(4, 3000, 7);
    let caps = [128usize, 512];
    let fine = misses(&round_robin(&traces, 1), &caps);
    let coarse = misses(&round_robin(&traces, 64), &caps);
    for (j, (&a, &b)) in fine.iter().zip(&coarse).enumerate() {
        let rel = (a as f64 - b as f64).abs() / a.max(1) as f64;
        assert!(
            rel < 0.10,
            "capacity {}: chunk 1 {a} vs chunk 64 {b}",
            caps[j]
        );
    }
}

#[test]
fn interleavings_preserve_reference_multiset() {
    let traces = per_thread_traces(5, 500, 9);
    let mut rr: Vec<u64> = round_robin(&traces, 3).iter().map(|a| a.line).collect();
    let mut mcs: Vec<u64> = mcs_interleave(&traces, 3).iter().map(|a| a.line).collect();
    rr.sort_unstable();
    mcs.sort_unstable();
    assert_eq!(rr, mcs);
}
