//! Property-based tests of the locality model and trace machinery on
//! arbitrary sparse matrices.

use a64fx::MachineConfig;
use locality_core::predict::{predict, Method, SectorSetting};
use memtrace::spmv_trace::{trace_len, trace_spmv};
use memtrace::{Array, CountSink, DataLayout};
use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (4usize..60)
        .prop_flat_map(|n| {
            let entries = prop::collection::vec((0..n, 0..n), 1..n * 6);
            (Just(n), entries)
        })
        .prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c) in entries {
                coo.push(r, c, 1.0);
            }
            coo.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The trace generator emits exactly the reference counts of Fig. 1b:
    /// M+1 rowptr, K each of a/colidx/x, M y-stores.
    #[test]
    fn trace_reference_counts(m in arb_matrix()) {
        let layout = DataLayout::new(&m, 64);
        let mut sink = CountSink::new();
        trace_spmv(&m, &layout, &mut sink);
        prop_assert_eq!(sink.counts[Array::RowPtr as usize] as usize, m.num_rows() + 1);
        prop_assert_eq!(sink.counts[Array::A as usize] as usize, m.nnz());
        prop_assert_eq!(sink.counts[Array::ColIdx as usize] as usize, m.nnz());
        prop_assert_eq!(sink.counts[Array::X as usize] as usize, m.nnz());
        prop_assert_eq!(sink.counts[Array::Y as usize] as usize, m.num_rows());
        prop_assert_eq!(sink.writes as usize, m.num_rows());
        prop_assert_eq!(sink.total() as usize, trace_len(m.num_rows(), m.nnz()));
    }

    /// Layout assigns every reference a line inside its own array's range.
    #[test]
    fn layout_lines_stay_in_range(m in arb_matrix()) {
        let layout = DataLayout::new(&m, 64);
        let mut sink = memtrace::VecSink::new();
        trace_spmv(&m, &layout, &mut sink);
        for a in &sink.trace {
            prop_assert_eq!(layout.array_of_line(a.line), Some(a.array));
        }
    }

    /// Model predictions are deterministic and respect by-array totals.
    #[test]
    fn predictions_consistent(m in arb_matrix(), threads in 1usize..4) {
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(3)];
        for method in [Method::A, Method::B] {
            let p1 = predict(&m, &cfg, method, &settings, threads);
            let p2 = predict(&m, &cfg, method, &settings, threads);
            prop_assert_eq!(&p1, &p2, "non-deterministic {:?}", method);
            for p in &p1 {
                prop_assert_eq!(p.by_array.iter().sum::<u64>(), p.l2_misses);
            }
        }
    }

    /// A giant cache predicts zero steady-state misses (everything fits).
    #[test]
    fn huge_cache_predicts_zero(m in arb_matrix()) {
        // Full-size A64FX: these tiny matrices always fit.
        let cfg = MachineConfig::a64fx();
        for method in [Method::A, Method::B] {
            let p = predict(&m, &cfg, method, &[SectorSetting::Off], 1);
            prop_assert_eq!(p[0].l2_misses, 0, "{:?}", method);
        }
    }

    /// Predictions shrink (weakly) as the sector-0 partition grows, for
    /// the partition-0 arrays.
    #[test]
    fn partition0_misses_monotone_in_capacity(m in arb_matrix()) {
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings: Vec<SectorSetting> =
            (2..8).rev().map(SectorSetting::L2Ways).collect();
        let preds = predict(&m, &cfg, Method::A, &settings, 1);
        // Settings are in decreasing sector-1 ways, i.e. increasing
        // partition-0 capacity: x/y/rowptr misses must not increase.
        for w in preds.windows(2) {
            let p0_prev: u64 = w[0].misses_of(Array::X)
                + w[0].misses_of(Array::Y)
                + w[0].misses_of(Array::RowPtr);
            let p0_next: u64 = w[1].misses_of(Array::X)
                + w[1].misses_of(Array::Y)
                + w[1].misses_of(Array::RowPtr);
            prop_assert!(p0_next <= p0_prev);
        }
    }
}
