//! End-to-end validation: the locality model's predictions against the
//! A64FX simulator — the same comparison the paper's §4.5 makes against
//! PMU measurements.

use a64fx_spmv::prelude::*;
use locality_core::predict::SectorSetting;

fn small_corpus() -> Vec<(String, CsrMatrix)> {
    corpus::corpus(6, 64, 99)
        .into_iter()
        .map(|nm| (nm.name, nm.matrix))
        .collect()
}

/// Percentage error of prediction vs. measurement.
fn err_pct(measured: u64, predicted: u64) -> f64 {
    100.0 * (measured as f64 - predicted as f64).abs() / measured.max(1) as f64
}

/// With true-LRU replacement and the prefetcher off, the only gap between
/// the model (fully associative LRU) and the simulator (16-way sets) is
/// set-conflict noise — predictions must land within a few percent.
#[test]
fn method_a_matches_lru_simulator_sequential() {
    for (name, matrix) in small_corpus() {
        let mut cfg = MachineConfig::a64fx_scaled(64).with_prefetch(PrefetchConfig::off());
        cfg.replacement = a64fx::Replacement::Lru;
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(4)];
        let preds = locality_core::predict::predict(&matrix, &cfg, Method::A, &settings, 1);

        let base = simulate_spmv(&matrix, &cfg, ArraySet::EMPTY, 1, 1);
        let cfg4 = cfg.clone().with_l2_sector(4);
        let part = simulate_spmv(&matrix, &cfg4, ArraySet::MATRIX_STREAM, 1, 1);

        let e_off = err_pct(base.pmu.l2_misses(), preds[0].l2_misses);
        let e_4w = err_pct(part.pmu.l2_misses(), preds[1].l2_misses);
        assert!(
            e_off < 8.0,
            "{name}: unpartitioned error {e_off:.1}% (measured {}, predicted {})",
            base.pmu.l2_misses(),
            preds[0].l2_misses
        );
        assert!(
            e_4w < 8.0,
            "{name}: partitioned error {e_4w:.1}% (measured {}, predicted {})",
            part.pmu.l2_misses(),
            preds[1].l2_misses
        );
    }
}

/// Against the realistic default machine (bit-PLRU + prefetching), method
/// (A) stays within the ~10 % band the paper reports as its worst cases.
///
/// Matrices with heavy irregular `x` traffic (power-law) are excluded at
/// this scale: the prefetch distance does not shrink with the scaled
/// cache, so the §4.3 premature-eviction effect is disproportionately
/// amplified on them (the paper's own hard cases reach ~10 % error on
/// real hardware, Table 2 discussion and §4.5.5).
#[test]
fn method_a_tracks_default_simulator() {
    for (name, matrix) in small_corpus() {
        if name.starts_with("powlaw") || name.starts_with("circuit") {
            continue;
        }
        let cfg = MachineConfig::a64fx_scaled(64);
        let preds = locality_core::predict::predict(
            &matrix,
            &cfg,
            Method::A,
            &[SectorSetting::L2Ways(5)],
            1,
        );
        let cfg5 = cfg.clone().with_l2_sector(5);
        let sim = simulate_spmv(&matrix, &cfg5, ArraySet::MATRIX_STREAM, 1, 1);
        let e = err_pct(sim.pmu.l2_misses(), preds[0].l2_misses);
        assert!(
            e < 10.0,
            "{name}: error {e:.1}% (measured {}, predicted {})",
            sim.pmu.l2_misses(),
            preds[0].l2_misses
        );
    }
}

/// Parallel prediction: per-domain concurrent reuse distance against the
/// 8-thread simulator.
#[test]
fn method_a_parallel_prediction_is_sound() {
    for (name, matrix) in small_corpus().into_iter().take(3) {
        let mut cfg = MachineConfig::a64fx_scaled(64).with_prefetch(PrefetchConfig::off());
        cfg.replacement = a64fx::Replacement::Lru;
        cfg.cores_per_domain = 2;
        let threads = 8;
        let preds = locality_core::predict::predict(
            &matrix,
            &cfg,
            Method::A,
            &[SectorSetting::Off],
            threads,
        );
        let sim = simulate_spmv(&matrix, &cfg, ArraySet::EMPTY, threads, 1);
        let e = err_pct(sim.pmu.l2_misses(), preds[0].l2_misses);
        assert!(
            e < 10.0,
            "{name}: parallel error {e:.1}% (measured {}, predicted {})",
            sim.pmu.l2_misses(),
            preds[0].l2_misses
        );
    }
}

/// The model's quantitative claim: the predicted *change* in misses from
/// enabling the sector cache tracks the simulated change to within a few
/// percent of the baseline. (Sign agreement alone is not guaranteed: the
/// fully associative model cannot see set-conflict changes, which on real
/// hardware too produce the paper's Fig. 2 outliers.)
#[test]
fn model_and_simulator_agree_on_sector_benefit_magnitude() {
    for (name, matrix) in small_corpus() {
        let cfg = MachineConfig::a64fx_scaled(64).with_prefetch(PrefetchConfig::off());
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(5)];
        let preds = locality_core::predict::predict(&matrix, &cfg, Method::A, &settings, 1);
        let base = simulate_spmv(&matrix, &cfg, ArraySet::EMPTY, 1, 1);
        let cfg5 = cfg.clone().with_l2_sector(5);
        let part = simulate_spmv(&matrix, &cfg5, ArraySet::MATRIX_STREAM, 1, 1);

        let sim_red = base.pmu.l2_misses() as f64 - part.pmu.l2_misses() as f64;
        let model_red = preds[0].l2_misses as f64 - preds[1].l2_misses as f64;
        let rel_gap = (sim_red - model_red).abs() / base.pmu.l2_misses().max(1) as f64;
        assert!(
            rel_gap < 0.06,
            "{name}: simulated reduction {sim_red}, modelled {model_red} \
             ({:.1}% of baseline apart)",
            rel_gap * 100.0
        );
    }
}

/// Method (B) stays within a loose band of method (A) on the corpus
/// (it is an approximation; the paper's Table 2 shows it slightly worse).
#[test]
fn method_b_tracks_method_a() {
    for (name, matrix) in small_corpus() {
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings = [SectorSetting::L2Ways(4)];
        let a = locality_core::predict::predict(&matrix, &cfg, Method::A, &settings, 1);
        let b = locality_core::predict::predict(&matrix, &cfg, Method::B, &settings, 1);
        let e = err_pct(a[0].l2_misses, b[0].l2_misses);
        assert!(
            e < 25.0,
            "{name}: method B diverges {e:.1}% from A ({} vs {})",
            a[0].l2_misses,
            b[0].l2_misses
        );
    }
}
