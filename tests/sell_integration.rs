//! End-to-end SELL-C-σ integration: numerics against CSR, trace-driven
//! simulation through the A64FX machine, and the sector-cache story for
//! the chunked format.

use a64fx::{Machine, MachineConfig, PrefetchConfig};
use a64fx_spmv::prelude::*;
use memtrace::sell_trace::{sell_layout, trace_sell_spmv};
use memtrace::{CountSink, TraceCursor};
use proptest::prelude::*;

fn banded(n: usize, band: usize, per_row: usize, seed: u64) -> CsrMatrix {
    corpus::banded::random_banded(n, band, per_row, seed)
}

#[test]
fn sell_numerics_match_csr_on_corpus_matrices() {
    for nm in corpus::corpus(4, 64, 5) {
        let a = &nm.matrix;
        let sell = sparsemat::SellMatrix::from_csr(a, 8, 64);
        let x: Vec<f64> = (0..a.num_cols()).map(|i| ((i * 7) % 13) as f64).collect();
        let mut y_csr = vec![0.0; a.num_rows()];
        let mut y_sell = vec![0.0; a.num_rows()];
        spmv::spmv_seq(a, &x, &mut y_csr);
        sell.spmv(&x, &mut y_sell);
        for (c, s) in y_csr.iter().zip(&y_sell) {
            assert!((c - s).abs() < 1e-9, "{}", nm.name);
        }
    }
}

/// Replays a SELL trace through the machine (warm-up + measured).
fn simulate_sell(sell: &sparsemat::SellMatrix, cfg: &MachineConfig, sector1: ArraySet) -> u64 {
    let layout = sell_layout(sell, cfg.l2.line_bytes);
    let mut trace = memtrace::VecSink::new();
    trace_sell_spmv(sell, &layout, &mut trace);
    let mut machine = Machine::new(cfg.clone().with_cores(1), sector1);
    for a in &trace.trace {
        machine.demand_access(0, *a);
    }
    machine.reset_stats();
    for a in &trace.trace {
        machine.demand_access(0, *a);
    }
    machine.pmu().l2_misses()
}

#[test]
fn sell_sector_cache_protects_reusable_data_like_csr() {
    let a = banded(6000, 400, 24, 9);
    let sell = sparsemat::SellMatrix::from_csr(&a, 8, 64);
    let cfg = MachineConfig::a64fx_scaled(64).with_prefetch(PrefetchConfig::off());

    let base = simulate_sell(&sell, &cfg, ArraySet::EMPTY);
    let cfg5 = cfg.clone().with_l2_sector(5);
    let part = simulate_sell(&sell, &cfg5, ArraySet::MATRIX_STREAM);
    // The padded stream exceeds the cache either way; partitioning must
    // not increase misses for this class-(2)-like banded matrix.
    assert!(
        part <= base,
        "SELL sector-on should not hurt: {part} vs {base}"
    );
}

#[test]
fn sell_padding_shows_up_as_extra_stream_traffic() {
    // Skewed rows force padding; the SELL stream traffic (lines of the
    // padded arrays) must exceed CSR's in proportion.
    let mut coo = sparsemat::CooMatrix::new(4096, 4096);
    let mut state = 3u64;
    for r in 0..4096usize {
        let len = if r % 8 == 0 { 32 } else { 2 };
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            coo.push(r, (state >> 33) as usize % 4096, 1.0);
        }
    }
    let a = coo.to_csr();
    // sigma = C: padding inside each chunk is decided by its widest row.
    let sell = sparsemat::SellMatrix::from_csr(&a, 8, 8);
    assert!(sell.padding_ratio() > 1.5, "ratio {}", sell.padding_ratio());

    let cfg = MachineConfig::a64fx_scaled(64).with_prefetch(PrefetchConfig::off());
    let sell_misses = simulate_sell(&sell, &cfg, ArraySet::EMPTY);
    let csr = a64fx::simulate_spmv(&a, &cfg, ArraySet::EMPTY, 1, 1);
    assert!(
        sell_misses > csr.pmu.l2_misses(),
        "padding must cost stream misses: {sell_misses} vs {}",
        csr.pmu.l2_misses()
    );

    // A large sorting window recovers most of the padding.
    let sorted = sparsemat::SellMatrix::from_csr(&a, 8, 512);
    assert!(sorted.padding_ratio() < sell.padding_ratio());
}

/// Per-array reference counts of one full workload trace.
fn count_trace(workload: &Workload) -> CountSink {
    let layout = workload.layout(memtrace::A64FX_LINE_BYTES);
    let mut sink = CountSink::new();
    workload
        .trace_cursor(&layout, 0..workload.num_work_items())
        .drain_into(&mut sink);
    sink
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// SELL with C=1, σ=1 stores each row as its own chunk with no
    /// padding, so its trace is the CSR trace except for the documented
    /// metadata difference: CSR reads `rows + 1` rowptr bounds (one loop
    /// entry plus one bound per row) while SELL reads one descriptor per
    /// chunk, i.e. exactly `rows`. Every other per-array count matches
    /// exactly on random corpus matrices.
    #[test]
    fn sell_1_1_trace_matches_csr_except_metadata(seed in 0u64..1_000_000) {
        for nm in corpus::corpus(5, 256, seed) {
            let rows = nm.matrix.num_rows() as u64;
            let nnz = nm.matrix.nnz() as u64;
            let csr = Workload::build(nm.matrix.clone(), FormatSpec::Csr, ReorderSpec::None);
            let sell = Workload::build(
                nm.matrix.clone(),
                FormatSpec::Sell { chunk_size: 1, sigma: 1 },
                ReorderSpec::None,
            );
            prop_assert_eq!(sell.x_refs(), csr.x_refs(), "C=1 must not pad {}", &nm.name);

            let c = count_trace(&csr);
            let s = count_trace(&sell);
            for array in [Array::A, Array::ColIdx, Array::X, Array::Y] {
                prop_assert_eq!(
                    s.counts[array as usize],
                    c.counts[array as usize],
                    "array {} count diverged on {}",
                    array.name(),
                    &nm.name
                );
            }
            prop_assert_eq!(c.counts[Array::RowPtr as usize], rows + 1);
            prop_assert_eq!(s.counts[Array::RowPtr as usize], rows);
            prop_assert_eq!(s.writes, c.writes);
            prop_assert_eq!(c.counts.iter().sum::<u64>(), 1 + 2 * rows + 3 * nnz);
            prop_assert_eq!(s.counts.iter().sum::<u64>(), 2 * rows + 3 * nnz);
        }
    }

    /// For general (C, σ) the only trace differences against CSR are the
    /// documented padding terms: the streamed arrays grow from `nnz` to
    /// `stored_entries()` references and the metadata shrinks to one
    /// descriptor per chunk; `x` gathers track the padded stream and `y`
    /// stays one store per row.
    #[test]
    fn sell_padding_terms_account_for_all_trace_growth(
        seed in 0u64..1_000_000,
        chunk in 1usize..32,
        sigma_mult in 1usize..8,
    ) {
        let nm = &corpus::corpus(3, 256, seed)[(seed % 3) as usize];
        let rows = nm.matrix.num_rows() as u64;
        let sell_m = sparsemat::SellMatrix::from_csr(&nm.matrix, chunk, chunk * sigma_mult);
        let stored = sell_m.stored_entries() as u64;
        let chunks = sell_m.num_chunks() as u64;
        prop_assert!(stored >= nm.matrix.nnz() as u64);

        let s = count_trace(&Workload::Sell(sell_m));
        prop_assert_eq!(s.counts[Array::A as usize], stored);
        prop_assert_eq!(s.counts[Array::ColIdx as usize], stored);
        prop_assert_eq!(s.counts[Array::X as usize], stored);
        prop_assert_eq!(s.counts[Array::Y as usize], rows);
        prop_assert_eq!(s.counts[Array::RowPtr as usize], chunks);
    }
}
