//! Property-based tests of the reuse-distance engines: the marker stack
//! (production path) must agree exactly with the Fenwick-based exact
//! processor and the naive LRU-stack oracle on arbitrary traces, and the
//! partitioned accounting must decompose into independent caches.

use memtrace::interleave::{domain_groups, round_robin};
use memtrace::{Access, Array, ArraySet};
use proptest::prelude::*;
use reuse::{naive, ExactStack, MarkerStack, PartitionedStack, ReuseHistogram, SampledStack};

fn arb_trace(max_len: usize, universe: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..universe, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact stack distances equal the naive oracle's on any trace.
    #[test]
    fn exact_equals_naive(trace in arb_trace(400, 40)) {
        let expect = naive::reuse_distances(&trace);
        let mut s = ExactStack::new();
        for (i, &l) in trace.iter().enumerate() {
            prop_assert_eq!(s.access(l), expect[i]);
        }
    }

    /// Marker-stack miss counts equal histogram-derived miss counts for
    /// every tracked capacity, on any trace.
    #[test]
    fn markers_equal_exact(
        trace in arb_trace(500, 64),
        caps in prop::collection::btree_set(1usize..80, 1..6),
    ) {
        let caps: Vec<usize> = caps.into_iter().collect();
        let mut ms = MarkerStack::new(&caps);
        let mut hist = ReuseHistogram::new();
        let mut ex = ExactStack::new();
        for &l in &trace {
            ms.access(l, Array::X);
            hist.record(ex.access(l));
        }
        for (j, &c) in ms.capacities().to_vec().iter().enumerate() {
            prop_assert_eq!(ms.misses(j), hist.misses(c), "capacity {}", c);
        }
        ms.check_invariants();
    }

    /// Marker-stack and exact-stack miss counts agree on round-robin
    /// interleaved multi-domain traces — the exact reference order the
    /// streaming pipeline replays per L2 domain. Each domain is an
    /// independent cache, so the agreement must hold domain by domain,
    /// and the marker stack's quantized histogram must reproduce the
    /// same miss counts at every tracked capacity.
    #[test]
    fn markers_equal_exact_on_interleaved_domains(
        per_thread in prop::collection::vec(arb_trace(150, 48), 1..7),
        cores_per_domain in 1usize..4,
        caps in prop::collection::btree_set(1usize..64, 1..5),
    ) {
        let caps: Vec<usize> = caps.into_iter().collect();
        let traces: Vec<Vec<Access>> = per_thread
            .iter()
            .map(|t| t.iter().map(|&l| Access::load(l, Array::X)).collect())
            .collect();
        for (d, span) in domain_groups(traces.len(), cores_per_domain).into_iter().enumerate() {
            let interleaved = round_robin(&traces[span], 1);
            let mut ms = MarkerStack::new(&caps);
            let mut hist = ReuseHistogram::new();
            let mut ex = ExactStack::new();
            for a in &interleaved {
                ms.access(a.line, a.array);
                hist.record(ex.access(a.line));
            }
            let quantized = ms.quantized_histogram(Array::X);
            for (j, &c) in caps.iter().enumerate() {
                prop_assert_eq!(ms.misses(j), hist.misses(c), "domain {} capacity {}", d, c);
                prop_assert_eq!(quantized.misses(c), hist.misses(c), "domain {} capacity {}", d, c);
            }
            ms.check_invariants();
        }
    }

    /// The marker stack's internal invariants survive arbitrary
    /// warm-up/reset/measure interleavings.
    #[test]
    fn marker_invariants_after_reset(
        warm in arb_trace(200, 32),
        measured in arb_trace(200, 32),
    ) {
        let mut ms = MarkerStack::new(&[1, 5, 17]);
        for &l in &warm {
            ms.access(l, Array::A);
        }
        ms.reset_counters();
        prop_assert_eq!(ms.accesses(), 0);
        for &l in &measured {
            ms.access(l, Array::A);
        }
        prop_assert_eq!(ms.accesses(), measured.len() as u64);
        ms.check_invariants();
    }

    /// Partitioned accounting (Eq. 2) equals two independent caches fed
    /// with the routed sub-traces.
    #[test]
    fn partitioned_decomposes(trace in prop::collection::vec((0u64..64, 0u8..5), 0..400)) {
        let accesses: Vec<Access> = trace
            .iter()
            .map(|&(l, a)| {
                let array = [Array::X, Array::Y, Array::A, Array::ColIdx, Array::RowPtr]
                    [a as usize];
                // Keep the line spaces of the partitions disjoint, as real
                // array layouts are.
                Access::load(l + a as u64 * 1000, array)
            })
            .collect();
        let sector1 = ArraySet::MATRIX_STREAM;
        let mut ps = PartitionedStack::new(sector1, &[16], &[4]);
        let mut solo0 = MarkerStack::new(&[16]);
        let mut solo1 = MarkerStack::new(&[4]);
        for acc in &accesses {
            ps.access(acc.line, acc.array);
            if sector1.contains(acc.array) {
                solo1.access(acc.line, acc.array);
            } else {
                solo0.access(acc.line, acc.array);
            }
        }
        prop_assert_eq!(ps.partition0().misses(0), solo0.misses(0));
        prop_assert_eq!(ps.partition1().misses(0), solo1.misses(0));
        prop_assert_eq!(ps.total_misses(0, 0), solo0.misses(0) + solo1.misses(0));
    }

    /// The LRU miss curve is monotonically non-increasing in capacity.
    #[test]
    fn miss_curve_monotone(trace in arb_trace(400, 50)) {
        let hist = ExactStack::histogram_of(trace.iter().copied());
        let mut prev = u64::MAX;
        for cap in 1..60 {
            let m = hist.misses(cap);
            prop_assert!(m <= prev);
            prev = m;
        }
        // And a cache bigger than the universe only takes cold misses.
        prop_assert_eq!(hist.misses(64), hist.cold());
    }
}

proptest! {
    // Fewer cases: each one replays a 100k-access trace through nine
    // estimators.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// SHARDS-style sampling tracks the exact miss ratio at every shift
    /// 0..=8. Shift 0 must reproduce the exact curve bit-for-bit; higher
    /// shifts get a statistical tolerance that widens as the expected
    /// sampled-line population (`universe >> shift`) shrinks. The `1/R`
    /// distance rescale is an exact integer multiply (`d * 2^shift`) on a
    /// distance that excludes the referenced line itself — the unbiased
    /// SHARDS form — so a systematic rounding bias would show up here as
    /// a one-sided failure across seeds.
    #[test]
    fn sampled_tracks_exact_across_shifts(seed in 0u64..(1 << 20)) {
        const LEN: usize = 100_000;
        const UNIVERSE: u64 = 10_000;
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        let trace: Vec<u64> = (0..LEN)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % UNIVERSE
            })
            .collect();
        let mut hist = ReuseHistogram::new();
        let mut ex = ExactStack::new();
        let mut stacks: Vec<SampledStack> =
            (0..=8).map(|s| SampledStack::new(s).unwrap()).collect();
        for &l in &trace {
            hist.record(ex.access(l));
            for s in &mut stacks {
                s.access(l);
            }
        }
        for (shift, s) in stacks.iter().enumerate() {
            // ~3-sigma band for cluster sampling by line: the error is
            // driven by which lines land in the sample, so it scales with
            // 1/sqrt(expected sampled lines), not sampled accesses.
            let expected_lines = (UNIVERSE >> shift) as f64;
            let tol = 0.02 + 1.5 / expected_lines.sqrt();
            for cap in [500usize, 2000, 6000, 12000] {
                if shift == 0 {
                    prop_assert_eq!(s.estimated_misses(cap), hist.misses(cap));
                    continue;
                }
                let truth = hist.misses(cap) as f64 / LEN as f64;
                let est = s.estimated_miss_ratio(cap);
                prop_assert!(
                    (est - truth).abs() < tol,
                    "shift {} capacity {}: true {:.4} vs est {:.4} (tol {:.4})",
                    shift, cap, truth, est, tol
                );
            }
        }
    }
}
