//! Property-based tests of the SpMV kernels and matrix transformations:
//! all kernels compute the same product; format conversions and
//! permutations preserve semantics.

use proptest::prelude::*;
use sparsemat::{reorder, spmv, CooMatrix, CsrMatrix, RowPartition};

/// Arbitrary sparse matrix as (rows, cols, entries).
fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..40, 1usize..40)
        .prop_flat_map(|(rows, cols)| {
            let entries = prop::collection::vec((0..rows, 0..cols, -100i32..100), 0..rows * 4);
            (Just(rows), Just(cols), entries)
        })
        .prop_map(|(rows, cols, entries)| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in entries {
                coo.push(r, c, v as f64 / 4.0);
            }
            coo.to_csr()
        })
}

/// Arbitrary square symmetric-pattern matrix (for RCM).
fn arb_square() -> impl Strategy<Value = CsrMatrix> {
    (2usize..30)
        .prop_flat_map(|n| {
            let entries = prop::collection::vec((0..n, 0..n, 1i32..10), 0..n * 3);
            (Just(n), entries)
        })
        .prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for v in 0..n {
                coo.push(v, v, 1.0);
            }
            for (r, c, v) in entries {
                coo.push_symmetric(r, c, v as f64);
            }
            coo.to_csr()
        })
}

fn dense_ref(a: &CsrMatrix, x: &[f64], y0: &[f64]) -> Vec<f64> {
    let mut y = y0.to_vec();
    for (r, yr) in y.iter_mut().enumerate() {
        for (c, v) in a.row(r) {
            *yr += v * x[c];
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential, parallel and merge-based SpMV all equal the dense
    /// reference on arbitrary matrices.
    #[test]
    fn all_kernels_agree(a in arb_matrix(), threads in 1usize..6) {
        let x: Vec<f64> = (0..a.num_cols()).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let y0: Vec<f64> = (0..a.num_rows()).map(|i| i as f64 * 0.25).collect();
        let expect = dense_ref(&a, &x, &y0);

        let mut y = y0.clone();
        spmv::spmv_seq(&a, &x, &mut y);
        for (g, w) in y.iter().zip(&expect) {
            prop_assert!((g - w).abs() < 1e-9);
        }

        let mut y = y0.clone();
        let p = RowPartition::static_rows(a.num_rows(), threads);
        spmv::spmv_parallel(&a, &x, &mut y, &p);
        for (g, w) in y.iter().zip(&expect) {
            prop_assert!((g - w).abs() < 1e-9);
        }

        let mut y = y0.clone();
        let bp = RowPartition::balanced_nnz(&a, threads);
        spmv::spmv_parallel(&a, &x, &mut y, &bp);
        for (g, w) in y.iter().zip(&expect) {
            prop_assert!((g - w).abs() < 1e-9);
        }

        let mut y = y0.clone();
        spmv::spmv_merge(&a, &x, &mut y, threads);
        for (g, w) in y.iter().zip(&expect) {
            prop_assert!((g - w).abs() < 1e-9, "merge with {} threads", threads);
        }
    }

    /// COO -> CSR -> COO -> CSR is a fixed point.
    #[test]
    fn format_roundtrip(a in arb_matrix()) {
        let b = a.to_coo().to_csr();
        prop_assert_eq!(a, b);
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution(a in arb_matrix()) {
        let t = a.transpose();
        prop_assert_eq!(t.nnz(), a.nnz());
        prop_assert_eq!(t.transpose(), a);
    }

    /// RCM produces a valid permutation and never increases the bandwidth
    /// of a path-connected... of any symmetric-pattern matrix by more than
    /// the trivial bound (n - 1).
    #[test]
    fn rcm_is_valid_permutation(a in arb_square()) {
        let perm = reorder::reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..a.num_rows()).collect::<Vec<_>>());
        let bw = reorder::permuted_bandwidth(&a, &perm);
        prop_assert!(bw <= a.num_rows().saturating_sub(1));
        // The permuted matrix is a legal CSR with the same nnz.
        let pm = a.permute_symmetric(&perm);
        prop_assert_eq!(pm.nnz(), a.nnz());
    }

    /// Partition blocks are contiguous, disjoint and cover all rows for
    /// both partitioners.
    #[test]
    fn partitions_cover(a in arb_matrix(), threads in 1usize..8) {
        for p in [
            RowPartition::static_rows(a.num_rows(), threads),
            RowPartition::balanced_nnz(&a, threads),
        ] {
            prop_assert_eq!(p.num_parts(), threads);
            prop_assert_eq!(p.bounds()[0], 0);
            prop_assert_eq!(*p.bounds().last().unwrap(), a.num_rows());
            for w in p.bounds().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
