//! Property-based tests of the cache simulator against the reuse-distance
//! theory it must embody: a fully associative LRU cache's hits and misses
//! are *exactly* predicted by Eq. (1).

use a64fx::{Cache, CacheGeometry, Outcome, Replacement, Request, SectorPolicy};
use proptest::prelude::*;
use reuse::naive::NaiveStack;

const LINE: usize = 64;

fn fully_associative(lines: usize, repl: Replacement) -> Cache {
    let geom = CacheGeometry::new(lines * LINE, lines, LINE);
    Cache::new(geom, SectorPolicy::OFF, repl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A fully associative LRU cache misses exactly when the reuse
    /// distance reaches its capacity (Eq. 1 of the paper).
    #[test]
    fn fully_associative_lru_obeys_eq1(
        trace in prop::collection::vec(0u64..40, 1..300),
        capacity in 1usize..24,
    ) {
        let mut cache = fully_associative(capacity, Replacement::Lru);
        let mut stack = NaiveStack::new();
        for (i, &line) in trace.iter().enumerate() {
            let outcome = cache.access(line, 0, Request::Load);
            let rd = stack.access(line);
            let expect_miss = match rd {
                None => true,
                Some(d) => d >= capacity as u64,
            };
            match outcome {
                Outcome::Hit { .. } => prop_assert!(!expect_miss, "access {i} should miss"),
                Outcome::Miss { .. } => prop_assert!(expect_miss, "access {i} should hit"),
                Outcome::WritebackMiss => unreachable!(),
            }
        }
    }

    /// Every accessed line is resident immediately afterwards, whatever the
    /// replacement policy or sector assignment.
    #[test]
    fn accessed_line_is_resident(
        trace in prop::collection::vec((0u64..100, 0u8..2), 1..200),
        repl in prop::sample::select(vec![Replacement::Lru, Replacement::BitPlru]),
    ) {
        let geom = CacheGeometry::new(4 * 4 * LINE, 4, LINE);
        let mut cache = Cache::new(geom, SectorPolicy { sector1_ways: 2 }, repl);
        for &(line, sector) in &trace {
            cache.access(line, sector, Request::Load);
            prop_assert!(cache.contains(line));
        }
    }

    /// With partitioning on, a sector-1 stream can never evict sector-0
    /// residents: after filling sector 0, streaming arbitrary sector-1
    /// lines leaves every sector-0 line resident.
    #[test]
    fn sector_isolation_protects_other_sector(
        stream in prop::collection::vec(1000u64..2000, 1..200),
    ) {
        // 1 set, 8 ways, 3 for sector 1 -> 5 for sector 0.
        let geom = CacheGeometry::new(8 * LINE, 8, LINE);
        let mut cache = Cache::new(geom, SectorPolicy { sector1_ways: 3 }, Replacement::Lru);
        let residents: Vec<u64> = (0..5).collect();
        for &l in &residents {
            cache.access(l, 0, Request::Load);
        }
        for &l in &stream {
            cache.access(l, 1, Request::Load);
        }
        for &l in &residents {
            prop_assert!(cache.contains(l), "sector-0 line {l} was evicted");
        }
    }

    /// Dirty lines produce exactly one writeback when evicted, clean lines
    /// none: the number of writebacks never exceeds the number of stores.
    #[test]
    fn writebacks_bounded_by_stores(
        trace in prop::collection::vec((0u64..64, prop::bool::ANY), 1..300),
    ) {
        let geom = CacheGeometry::new(2 * 4 * LINE, 2, LINE);
        let mut cache = Cache::new(geom, SectorPolicy::OFF, Replacement::Lru);
        let mut stores = 0u64;
        for &(line, write) in &trace {
            let req = if write { stores += 1; Request::Store } else { Request::Load };
            cache.access(line, 0, req);
        }
        prop_assert!(cache.stats().writebacks <= stores);
    }

    /// Counter conservation: demand hits + demand misses = demand accesses.
    #[test]
    fn demand_counters_conserve(
        trace in prop::collection::vec(0u64..128, 1..300),
    ) {
        let geom = CacheGeometry::new(4 * 8 * LINE, 4, LINE);
        let mut cache = Cache::new(geom, SectorPolicy::OFF, Replacement::BitPlru);
        for &line in &trace {
            cache.access(line, 0, Request::Load);
        }
        let s = cache.stats();
        prop_assert_eq!(s.demand_hits + s.demand_misses, s.demand_accesses);
        prop_assert_eq!(s.demand_accesses as usize, trace.len());
    }
}
