//! Telemetry invariants over the real prediction pipeline:
//!
//! * the batch report is byte-identical with telemetry on vs off and for
//!   any worker count (telemetry is a pure side channel);
//! * the model-result part of the aggregate (cache and batch accounting,
//!   profile builds, exact-stack totals, derived histograms) is identical
//!   for 1 vs N workers, i.e. thread-local collector merging is
//!   order-insensitive. Work-volume telemetry is excluded by design: the
//!   capacity-shard fan-out sizes itself to the pool, and every shard
//!   replays its domain stream, so trace-generation counters legitimately
//!   grow with worker count (the *reports* still don't — see above).
//!
//! Telemetry state is process-global, so every test serialises on one
//! mutex and leaves the sink disabled.

use a64fx_spmv::obs;
use a64fx_spmv::prelude::*;
use std::sync::Mutex;

/// Serialises tests that touch the global telemetry state.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const SPEC: &str = "corpus count=6 scale=64 seed=11\n\
                    methods A,B\n\
                    settings off,2,5\n\
                    threads 4\n\
                    scale 64\n";

fn batch_report(workers: usize, telemetry: bool) -> String {
    let mut spec = BatchSpec::parse(SPEC).expect("spec parses");
    spec.workers = workers;
    obs::reset();
    if telemetry {
        obs::enable();
    } else {
        obs::disable();
    }
    let out = run_batch(&spec).expect("batch runs").to_json_lines();
    obs::disable();
    out
}

#[test]
fn report_bytes_identical_with_and_without_telemetry() {
    let _guard = obs_lock();
    let plain = batch_report(1, false);
    let with_telemetry = batch_report(1, true);
    assert!(
        plain == with_telemetry,
        "telemetry must not change report bytes"
    );
    assert!(plain.contains("\"summary\":"));
}

#[test]
fn report_bytes_identical_with_the_full_observability_plane() {
    let _guard = obs_lock();
    use locality_engine::{run_streaming, run_streaming_traced, CancelToken};

    // Everything off: the plain streaming run is the byte oracle.
    obs::reset();
    obs::disable();
    let spec = BatchSpec::parse(SPEC).expect("spec parses");
    let token = CancelToken::never();
    let mut plain = String::new();
    run_streaming(&spec, &ProfileCache::new(), &token, |r| {
        plain.push_str(&r.to_json_line());
        plain.push('\n');
    })
    .expect("plain streaming runs");

    // Everything on: global metrics sink, flight-recorder ring, and a
    // live per-request trace ctx — the whole serve observability plane.
    obs::reset();
    obs::enable();
    obs::events::enable(obs::events::DEFAULT_CAPACITY);
    let ctx = obs::RequestCtx::new("full-plane");
    let mut traced = String::new();
    run_streaming_traced(&spec, &ProfileCache::new(), &token, &ctx, |r| {
        traced.push_str(&r.to_json_line());
        traced.push('\n');
    })
    .expect("traced streaming runs");
    obs::events::disable();
    obs::disable();

    assert!(
        plain == traced,
        "the observability plane must not change report bytes"
    );
    let trace = ctx.finish().expect("live ctx yields a trace");
    assert!(trace.total_ns > 0);
    assert!(trace.root.get(&["cache-lookup"]).is_some());
}

#[test]
fn report_bytes_identical_across_worker_counts() {
    let _guard = obs_lock();
    let one = batch_report(1, true);
    for workers in [2, 4, 8] {
        let many = batch_report(workers, true);
        assert!(one == many, "report differs with {workers} workers");
    }
}

#[test]
fn deterministic_aggregate_is_worker_count_invariant() {
    let _guard = obs_lock();
    // Same batch under 1 and 4 workers: wall times, steal counts and
    // per-worker job distribution legitimately differ, but the
    // deterministic view — counters like trace reference totals and cache
    // computations, histograms, span counts on the deterministic paths —
    // must merge to the same aggregate regardless of scheduling.
    let snap = |workers: usize| {
        let mut spec = BatchSpec::parse(SPEC).expect("spec parses");
        spec.workers = workers;
        obs::reset();
        obs::enable();
        run_batch(&spec).expect("batch runs");
        let agg = obs::snapshot();
        obs::disable();
        agg
    };
    let base = snap(1);
    let wide = snap(4);

    let mut det1 = base.deterministic_view();
    let mut det4 = wide.deterministic_view();
    // Schedule-dependent by design: who stole what, how jobs spread over
    // workers, how many worker spans the pools opened — and, since the
    // capacity-shard fan-out sizes itself to the pool width, the *work
    // volume* of the tracked pipeline: every shard replays the domain
    // stream against its slice of the capacity grid, so cursor feeds and
    // references, marker-stack traffic, line-index telemetry and the
    // per-shard `profile.domain` spans all grow with worker count.
    // Everything that describes the *model's results* — cache and batch
    // accounting, profile builds, exact-stack totals, the derived
    // histograms, the `cache.lookup`/`profile.build` span counts — must
    // match exactly.
    for agg in [&mut det1, &mut det4] {
        agg.counters.remove("engine.pool.steals");
        agg.counters.remove("engine.pool.jobs");
        for work in [
            "memtrace.cursor.feeds",
            "memtrace.cursor.refs",
            "reuse.marker.accesses",
            "reuse.marker.warm_accesses",
            "reuse.linetable.block_probe_refs",
            "reuse.linetable.block_probe_steps",
            "reuse.linetable.entries",
            "reuse.linetable.displacement_total",
        ] {
            agg.counters.remove(work);
        }
        agg.histograms.remove("engine.pool.jobs_per_worker");
        agg.histograms.remove("memtrace.stream.refs");
        agg.histograms.remove("reuse.marker.depth");
        if let Some(pool) = agg.roots.get_mut("pool.worker") {
            pool.count = 0;
            pool.children.remove("profile.domain");
        }
    }
    assert_eq!(
        det1, det4,
        "deterministic telemetry must not depend on worker count"
    );

    // Sanity: the invariant part actually saw the pipeline.
    assert!(base.counters["memtrace.cursor.refs"] > 0);
    assert_eq!(base.counters["engine.cache.computations"], 12); // 6 matrices x 2 methods
    assert_eq!(base.counters["engine.cache.hits"], 24); // 12 profiles x 2 extra settings
    assert_eq!(base.counters["engine.batch.jobs"], 36);
    // Sharding only ever *adds* replay work, never removes any.
    assert!(wide.counters["memtrace.cursor.refs"] >= base.counters["memtrace.cursor.refs"]);
}

#[test]
fn disabled_telemetry_records_nothing_during_batch() {
    let _guard = obs_lock();
    obs::reset();
    obs::disable();
    let spec = BatchSpec::parse(SPEC).expect("spec parses");
    run_batch(&spec).expect("batch runs");
    let agg = obs::snapshot();
    assert!(agg.counters.is_empty(), "counters: {:?}", agg.counters);
    assert!(agg.roots.is_empty());
    assert!(agg.histograms.is_empty());
}
