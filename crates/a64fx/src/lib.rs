//! A64FX memory-hierarchy simulator.
//!
//! The "measured" side of the reproduction: since the A64FX hardware, the
//! Fujitsu compiler's sector-cache directives and the PMU are unavailable,
//! this crate simulates the machine the paper measures on:
//!
//! * [`config::MachineConfig`] — 48 cores in 4 NUMA domains, private
//!   64 KiB 4-way L1D, shared 8 MiB 16-way L2 per domain, 256 B lines
//!   ([`config::MachineConfig::a64fx`]), plus a capacity-scaled variant for
//!   corpus-size experiments.
//! * [`cache::Cache`] — set-associative, write-back/write-allocate, with
//!   **way-based sector partitioning**: victims are chosen within the
//!   incoming line's sector ways, hits are sector-blind.
//! * [`prefetch::StreamPrefetcher`] — ascending-stream prefetcher with
//!   configurable distance (the paper's §4.3 prefetch-distance effect).
//! * [`hierarchy::Machine`] — request flow L1 → L2 → memory, per-core
//!   prefetch training, writeback propagation.
//! * [`counters::PmuSnapshot`] — A64FX PMU event names and the paper's
//!   derived formulas (L2 misses, demand misses, memory bytes).
//! * [`sim_spmv`] — replays SpMV traces (warm-up + measured iteration).
//! * [`timing`] — roofline-style time/Gflop/s estimate from the counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod counters;
pub mod directives;
pub mod hierarchy;
pub mod prefetch;
pub mod sim_spmv;
pub mod timing;

pub use cache::{Cache, CacheStats, Outcome, Request};
pub use config::{CacheGeometry, MachineConfig, PrefetchConfig, Replacement, SectorPolicy};
pub use counters::PmuSnapshot;
pub use hierarchy::Machine;
pub use machine::{CacheHierarchy, HierarchyConfig, A64FX_LINE_BYTES};
pub use sim_spmv::{simulate_spmv, simulate_spmv_partitioned, simulate_spmv_swpf, SimResult};
pub use timing::{estimate, Bottleneck, Performance};
