//! Per-core stream prefetcher.
//!
//! The A64FX hardware prefetcher detects sequential streams and runs a
//! configurable distance ahead of the demand accesses ("hardware prefetch
//! assistance", which the paper's §4.3 uses to shorten the distance). This
//! model tracks up to `streams` ascending line streams per core. When a
//! demand access extends a stream, the prefetcher emits the lines between
//! its previous frontier and `demand + distance`.
//!
//! CSR SpMV has four natural streams (`a`, `colidx`, `rowptr`, `y`) plus
//! the irregular `x` accesses, which do not form streams and therefore get
//! no prefetch — matching the demand-miss structure the paper observes.

/// One tracked stream.
#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Most recent demand line observed in this stream.
    last_demand: u64,
    /// Highest line already prefetched (frontier).
    frontier: u64,
    /// LRU stamp for stream-table replacement.
    stamp: u64,
    valid: bool,
}

/// A per-core ascending-stride stream prefetcher.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    distance: u64,
    clock: u64,
    enabled: bool,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `num_streams` stream slots running
    /// `distance` lines ahead. `distance == 0` or `num_streams == 0`
    /// disables it.
    pub fn new(num_streams: usize, distance: usize) -> Self {
        StreamPrefetcher {
            streams: vec![
                Stream {
                    last_demand: 0,
                    frontier: 0,
                    stamp: 0,
                    valid: false
                };
                num_streams
            ],
            distance: distance as u64,
            clock: 0,
            enabled: num_streams > 0 && distance > 0,
        }
    }

    /// A disabled prefetcher.
    pub fn off() -> Self {
        Self::new(0, 0)
    }

    /// Is the prefetcher active?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Observes a demand access to `line` and appends the lines to prefetch
    /// to `out` (empty when the access does not extend a stream).
    ///
    /// Detection rule: an access to `last_demand + 1` (or a line already
    /// inside the prefetched window) extends the stream; any other access
    /// allocates a new stream slot (LRU replacement) without prefetching —
    /// a stream must prove itself with one sequential step first.
    pub fn observe(&mut self, line: u64, out: &mut Vec<u64>) {
        if !self.enabled {
            return;
        }
        self.clock += 1;

        // Find a stream this access extends: exactly the next line, or a
        // line within the already-prefetched window (demand catching up).
        let hit = self.streams.iter().position(|s| {
            s.valid && line > s.last_demand && line <= s.frontier.max(s.last_demand + 1)
        });

        if let Some(i) = hit {
            let (from, to) = {
                let s = &mut self.streams[i];
                s.last_demand = line;
                s.stamp = self.clock;
                let target = line + self.distance;
                let from = s.frontier.max(line);
                s.frontier = s.frontier.max(target);
                (from + 1, target)
            };
            for l in from..=to {
                out.push(l);
            }
            return;
        }

        // Re-touch of the current head of a stream: keep it warm.
        if let Some(s) = self
            .streams
            .iter_mut()
            .find(|s| s.valid && s.last_demand == line)
        {
            s.stamp = self.clock;
            return;
        }

        // Allocate a new candidate stream (LRU slot).
        let slot = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| if s.valid { s.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("prefetcher has at least one stream slot");
        self.streams[slot] = Stream {
            last_demand: line,
            frontier: line,
            stamp: self.clock,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(pf: &mut StreamPrefetcher, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        pf.observe(line, &mut out);
        out
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut pf = StreamPrefetcher::off();
        assert!(!pf.enabled());
        assert!(collect(&mut pf, 1).is_empty());
        assert!(collect(&mut pf, 2).is_empty());
    }

    #[test]
    fn first_access_trains_no_prefetch() {
        let mut pf = StreamPrefetcher::new(4, 4);
        assert!(collect(&mut pf, 100).is_empty());
    }

    #[test]
    fn second_sequential_access_triggers_window() {
        let mut pf = StreamPrefetcher::new(4, 4);
        collect(&mut pf, 100);
        let out = collect(&mut pf, 101);
        // Prefetch up to 101 + 4, starting past the frontier (101).
        assert_eq!(out, vec![102, 103, 104, 105]);
    }

    #[test]
    fn steady_stream_prefetches_one_line_per_access() {
        let mut pf = StreamPrefetcher::new(4, 4);
        collect(&mut pf, 0);
        collect(&mut pf, 1); // window now reaches 5
        assert_eq!(collect(&mut pf, 2), vec![6]);
        assert_eq!(collect(&mut pf, 3), vec![7]);
        assert_eq!(collect(&mut pf, 4), vec![8]);
    }

    #[test]
    fn random_accesses_never_prefetch() {
        let mut pf = StreamPrefetcher::new(4, 8);
        let mut total = 0;
        // Far-apart lines cannot extend each other.
        for l in [10u64, 5000, 93, 777, 40000, 12, 888, 123456] {
            total += collect(&mut pf, l).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn multiple_concurrent_streams() {
        let mut pf = StreamPrefetcher::new(4, 2);
        // Interleave two streams at 0.. and 1000..
        collect(&mut pf, 0);
        collect(&mut pf, 1000);
        let a = collect(&mut pf, 1);
        let b = collect(&mut pf, 1001);
        assert_eq!(a, vec![2, 3]);
        assert_eq!(b, vec![1002, 1003]);
        assert_eq!(collect(&mut pf, 2), vec![4]);
        assert_eq!(collect(&mut pf, 1002), vec![1004]);
    }

    #[test]
    fn stream_table_lru_replacement() {
        let mut pf = StreamPrefetcher::new(2, 2);
        collect(&mut pf, 0); // stream A candidate
        collect(&mut pf, 1000); // stream B candidate
        collect(&mut pf, 2000); // evicts A (LRU)
                                // B is still live and extends.
        assert_eq!(collect(&mut pf, 1001), vec![1002, 1003]);
        // A was evicted: 1 does not extend anything (and evicts stream C).
        assert!(collect(&mut pf, 1).is_empty());
    }

    #[test]
    fn demand_catching_up_inside_window_extends() {
        let mut pf = StreamPrefetcher::new(2, 4);
        collect(&mut pf, 10);
        collect(&mut pf, 11); // frontier 15
                              // Demand jumps to 14 (still inside the window): stream continues,
                              // frontier advances to 18 without re-prefetching 12..15.
        let out = collect(&mut pf, 14);
        assert_eq!(out, vec![16, 17, 18]);
    }
}
