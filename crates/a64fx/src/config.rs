//! Machine configuration: cache geometry, topology, sector-cache policy.
//!
//! The defaults model the Fujitsu A64FX as described in the paper's §4.1
//! and the A64FX microarchitecture manual: 48 cores in four NUMA domains
//! (CMGs), each core with a private 64 KiB 4-way L1D, each domain with an
//! 8 MiB 16-way shared L2, 256-byte cache lines throughout, and HBM2 with
//! a 1024 GB/s theoretical (≈ 800 GB/s sustainable) aggregate bandwidth.
//!
//! [`MachineConfig::a64fx_scaled`] shrinks all capacities by a factor while
//! keeping way counts, line size and topology, so the full corpus can be
//! simulated at laptop scale with identical working-set/cache *ratios* —
//! the quantities every effect in the paper depends on (see DESIGN.md).

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// whole sets).
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines % self.ways,
            0,
            "cache size must be a whole number of sets"
        );
        assert_eq!(self.size_bytes % self.line_bytes, 0);
        lines / self.ways
    }

    /// Total capacity in cache lines.
    pub fn total_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Capacity in lines of a sector occupying `ways` of this cache's ways.
    pub fn sector_lines(&self, ways: usize) -> usize {
        self.num_sets() * ways
    }
}

/// Replacement policy used within each sector of a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// True least-recently-used (what the paper's model assumes).
    Lru,
    /// Bit-PLRU (MRU bits): the pseudo-LRU approximation; the paper notes
    /// the A64FX's policy is undisclosed but assumed pseudo-LRU. This is
    /// the simulator default so the "measured" side carries a realistic
    /// model-vs-hardware gap.
    #[default]
    BitPlru,
}

/// Sector-cache configuration for one cache level.
///
/// Way-based partitioning as on the A64FX: `sector1_ways` ways are carved
/// out for sector 1 (the non-temporal data in the paper's usage) and the
/// remaining ways belong to sector 0. `sector1_ways == 0` means the sector
/// cache is disabled for this level (all data shares all ways).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SectorPolicy {
    /// Ways allocated to sector 1; 0 disables partitioning.
    pub sector1_ways: usize,
}

impl SectorPolicy {
    /// Partitioning disabled.
    pub const OFF: SectorPolicy = SectorPolicy { sector1_ways: 0 };

    /// Enables partitioning with the given sector-1 way count.
    pub fn ways(sector1_ways: usize) -> Self {
        SectorPolicy { sector1_ways }
    }

    /// Is partitioning active?
    pub fn enabled(&self) -> bool {
        self.sector1_ways > 0
    }
}

/// Hardware-prefetcher configuration (per core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Master enable.
    pub enabled: bool,
    /// How many lines ahead of the demand stream the L2 prefetcher runs.
    /// The A64FX hardware prefetch assistance allows adjusting this; the
    /// paper's §4.3 reduces it to show the small-sector eviction effect.
    pub l2_distance: usize,
    /// How many lines ahead the L1 prefetcher runs (0 disables L1
    /// prefetch fills).
    pub l1_distance: usize,
    /// Number of independent streams tracked per core.
    pub streams: usize,
}

impl PrefetchConfig {
    /// A64FX-like default: aggressive L2 streaming, 16 lines (4 KiB) ahead
    /// per stream.
    pub fn a64fx() -> Self {
        PrefetchConfig {
            enabled: true,
            l2_distance: 16,
            l1_distance: 2,
            streams: 8,
        }
    }

    /// Prefetching disabled.
    pub fn off() -> Self {
        PrefetchConfig {
            enabled: false,
            l2_distance: 0,
            l1_distance: 0,
            streams: 0,
        }
    }
}

/// Parameters of the analytic timing model (see `timing`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingParams {
    /// Core clock in Hz (Wisteria FX1000 A64FX: 2.2 GHz).
    pub clock_hz: f64,
    /// Compute cost per nonzero in cycles (indexed CSR gather limits the
    /// SVE pipelines well below peak FMA throughput).
    pub cycles_per_nnz: f64,
    /// Sustainable memory bandwidth per NUMA domain in bytes/s
    /// (≈ 800 GB/s aggregate over 4 domains).
    pub domain_bandwidth: f64,
    /// Average latency cost of one L2 demand miss in seconds, after
    /// overlap by out-of-order execution / multiple outstanding misses.
    pub demand_miss_cost: f64,
    /// Average cost of one L1 refill (hit in L2) in seconds, after overlap.
    pub l1_refill_cost: f64,
}

impl TimingParams {
    /// Calibrated A64FX-like defaults.
    ///
    /// Calibration anchors (see EXPERIMENTS.md): the compute ceiling
    /// (2 flops / 1.2 cycles × 48 cores × 2.2 GHz ≈ 176 Gflop/s) sits above
    /// the 12-bytes-per-nonzero streaming bandwidth ceiling (~133 Gflop/s
    /// at 800 GB/s), making streaming SpMV memory-bound as on the real
    /// machine; the demand-miss cost (~110 ns HBM2 latency over ~6.5
    /// effective outstanding misses) pins the latency-bound irregular
    /// matrices near the paper's 5–10 Gflop/s.
    pub fn a64fx() -> Self {
        TimingParams {
            clock_hz: 2.2e9,
            cycles_per_nnz: 1.2,
            domain_bandwidth: 200.0e9,
            demand_miss_cost: 110.0e-9 / 6.5,
            // ~37 cycle L2 hit latency, heavily pipelined.
            l1_refill_cost: 37.0 / 2.2e9 / 24.0,
        }
    }
}

/// Full machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Total number of cores (= hardware threads used).
    pub num_cores: usize,
    /// Cores sharing each L2 (per NUMA domain / CMG).
    pub cores_per_domain: usize,
    /// Private L1D geometry.
    pub l1: CacheGeometry,
    /// Shared per-domain L2 geometry.
    pub l2: CacheGeometry,
    /// L1 sector policy.
    pub l1_sector: SectorPolicy,
    /// L2 sector policy.
    pub l2_sector: SectorPolicy,
    /// Replacement policy (both levels).
    pub replacement: Replacement,
    /// Prefetcher configuration.
    pub prefetch: PrefetchConfig,
    /// Timing-model parameters.
    pub timing: TimingParams,
}

impl MachineConfig {
    /// The full-size A64FX: 48 cores, 4 domains, 64 KiB 4-way L1D,
    /// 8 MiB 16-way L2 per domain, 256 B lines.
    pub fn a64fx() -> Self {
        MachineConfig {
            num_cores: 48,
            cores_per_domain: 12,
            l1: CacheGeometry {
                size_bytes: 64 << 10,
                ways: 4,
                line_bytes: 256,
            },
            l2: CacheGeometry {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: 256,
            },
            l1_sector: SectorPolicy::OFF,
            l2_sector: SectorPolicy::OFF,
            replacement: Replacement::default(),
            prefetch: PrefetchConfig::a64fx(),
            timing: TimingParams::a64fx(),
        }
    }

    /// A capacity-scaled A64FX: identical ways, line size and topology,
    /// with L1/L2 capacities divided by `factor`. Working-set/cache ratios
    /// — the quantities the paper's effects depend on — are preserved when
    /// the workload is scaled by the same factor.
    ///
    /// # Panics
    ///
    /// Panics if the scaled caches would not have a whole number of sets.
    pub fn a64fx_scaled(factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        let mut cfg = Self::a64fx();
        cfg.l1.size_bytes /= factor;
        cfg.l2.size_bytes /= factor;
        // The prefetch distance must shrink with the cache so the per-set
        // pressure of in-flight prefetched lines — which governs the §4.3
        // premature-eviction regime — is preserved: a sector way holds
        // `sets` lines and `sets` shrinks by `factor`, while the number of
        // threads and streams per thread is unchanged. Linear scaling
        // (floored at 2 so prefetching stays meaningful) keeps the
        // small-sector instability at 2 ways without poisoning 4+ ways
        // (validated in exp_prefetch).
        cfg.prefetch.l2_distance = (cfg.prefetch.l2_distance / factor).max(2);
        // Validate geometry early.
        let _ = cfg.l1.num_sets();
        let _ = cfg.l2.num_sets();
        cfg
    }

    /// Number of NUMA domains in use for `num_cores`.
    pub fn num_domains(&self) -> usize {
        self.num_cores.div_ceil(self.cores_per_domain)
    }

    /// Domain of a given core.
    pub fn domain_of(&self, core: usize) -> usize {
        core / self.cores_per_domain
    }

    /// Sets the L2 sector-1 way count (builder style).
    #[must_use]
    pub fn with_l2_sector(mut self, sector1_ways: usize) -> Self {
        assert!(
            sector1_ways < self.l2.ways,
            "sector 1 cannot take all {} L2 ways",
            self.l2.ways
        );
        self.l2_sector = SectorPolicy::ways(sector1_ways);
        self
    }

    /// Sets the L1 sector-1 way count (builder style).
    #[must_use]
    pub fn with_l1_sector(mut self, sector1_ways: usize) -> Self {
        assert!(
            sector1_ways < self.l1.ways,
            "sector 1 cannot take all {} L1 ways",
            self.l1.ways
        );
        self.l1_sector = SectorPolicy::ways(sector1_ways);
        self
    }

    /// Sets the prefetch configuration (builder style).
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the core count (builder style), e.g. 1 for sequential runs.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    #[must_use]
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        self.num_cores = num_cores;
        self
    }

    /// Capacity (in lines) of the L2 partition holding sector-`s` data.
    pub fn l2_partition_lines(&self, sector: u8) -> usize {
        partition_lines(&self.l2, self.l2_sector, sector)
    }

    /// Capacity (in lines) of the L1 partition holding sector-`s` data.
    pub fn l1_partition_lines(&self, sector: u8) -> usize {
        partition_lines(&self.l1, self.l1_sector, sector)
    }
}

fn partition_lines(geom: &CacheGeometry, policy: SectorPolicy, sector: u8) -> usize {
    if !policy.enabled() {
        return geom.total_lines();
    }
    match sector {
        0 => geom.sector_lines(geom.ways - policy.sector1_ways),
        1 => geom.sector_lines(policy.sector1_ways),
        _ => panic!("only sectors 0 and 1 are modelled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_geometry() {
        let cfg = MachineConfig::a64fx();
        assert_eq!(cfg.l1.num_sets(), 64); // 64 KiB / (4 * 256 B)
        assert_eq!(cfg.l2.num_sets(), 2048); // 8 MiB / (16 * 256 B)
        assert_eq!(cfg.l1.total_lines(), 256);
        assert_eq!(cfg.l2.total_lines(), 32768);
        assert_eq!(cfg.num_domains(), 4);
        assert_eq!(cfg.domain_of(0), 0);
        assert_eq!(cfg.domain_of(11), 0);
        assert_eq!(cfg.domain_of(12), 1);
        assert_eq!(cfg.domain_of(47), 3);
    }

    #[test]
    fn scaled_preserves_ways_and_lines() {
        let cfg = MachineConfig::a64fx_scaled(16);
        assert_eq!(cfg.l1.ways, 4);
        assert_eq!(cfg.l2.ways, 16);
        assert_eq!(cfg.l1.line_bytes, 256);
        assert_eq!(cfg.l2.size_bytes, 512 << 10);
        assert_eq!(cfg.l2.num_sets(), 128);
        assert_eq!(cfg.l1.num_sets(), 4);
    }

    #[test]
    fn sector_partition_capacities() {
        let cfg = MachineConfig::a64fx().with_l2_sector(5);
        // Sector 1: 5 of 16 ways; sector 0: 11 ways.
        assert_eq!(cfg.l2_partition_lines(1), 2048 * 5);
        assert_eq!(cfg.l2_partition_lines(0), 2048 * 11);
        // Disabled partitioning: both sectors see the whole cache.
        let off = MachineConfig::a64fx();
        assert_eq!(off.l2_partition_lines(0), 32768);
        assert_eq!(off.l2_partition_lines(1), 32768);
    }

    #[test]
    fn builders() {
        let cfg = MachineConfig::a64fx()
            .with_l2_sector(4)
            .with_l1_sector(1)
            .with_cores(1)
            .with_prefetch(PrefetchConfig::off());
        assert!(cfg.l2_sector.enabled());
        assert_eq!(cfg.l1_sector.sector1_ways, 1);
        assert_eq!(cfg.num_cores, 1);
        assert!(!cfg.prefetch.enabled);
        assert_eq!(cfg.num_domains(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot take all")]
    fn full_sector_takeover_rejected() {
        let _ = MachineConfig::a64fx().with_l2_sector(16);
    }
}
