//! Machine configuration: the two-level projection the models consume.
//!
//! The geometry/policy vocabulary ([`CacheGeometry`], [`SectorPolicy`],
//! [`Replacement`], [`PrefetchConfig`], [`TimingParams`]) lives in the
//! `machine` crate and is re-exported here, so existing `a64fx::...`
//! paths keep working. The A64FX numbers themselves live in exactly one
//! place — [`machine::HierarchyConfig::a64fx`] — and [`MachineConfig`] is
//! the *projection* of a hierarchy onto the two levels the analytic
//! models reason about: the innermost private cache (`l1`) and the
//! last-level shared cache (`l2`). For the A64FX those are the only two
//! levels, so the projection is lossless; for deeper hierarchies (e.g.
//! the `generic-x86` preset) intermediate levels are simulated by
//! [`crate::hierarchy::Machine`] but invisible to the reuse-distance
//! model, which predicts last-level misses.
//!
//! [`MachineConfig::a64fx_scaled`] shrinks all capacities by a factor while
//! keeping way counts, line size and topology, so the full corpus can be
//! simulated at laptop scale with identical working-set/cache *ratios* —
//! the quantities every effect in the paper depends on (see DESIGN.md).

pub use machine::{CacheGeometry, PrefetchConfig, Replacement, SectorPolicy, TimingParams};

use machine::{CacheHierarchy, HierarchyConfig, LevelConfig, LevelScope};

/// Full machine description: the two-level view of a cache hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Total number of cores (= hardware threads used).
    pub num_cores: usize,
    /// Cores sharing each last-level cache (per NUMA domain / CMG).
    pub cores_per_domain: usize,
    /// Private L1D geometry.
    pub l1: CacheGeometry,
    /// Shared per-domain last-level-cache geometry.
    pub l2: CacheGeometry,
    /// L1 sector policy.
    pub l1_sector: SectorPolicy,
    /// L2 sector policy.
    pub l2_sector: SectorPolicy,
    /// Replacement policy (both levels).
    pub replacement: Replacement,
    /// Prefetcher configuration.
    pub prefetch: PrefetchConfig,
    /// Timing-model parameters.
    pub timing: TimingParams,
}

impl MachineConfig {
    /// The full-size A64FX: 48 cores, 4 domains, 64 KiB 4-way L1D,
    /// 8 MiB 16-way L2 per domain, 256 B lines. Delegates to the
    /// [`HierarchyConfig::a64fx`] preset — the single source of truth for
    /// these numbers.
    pub fn a64fx() -> Self {
        Self::from_hierarchy(&HierarchyConfig::a64fx())
    }

    /// A capacity-scaled A64FX: identical ways, line size and topology,
    /// with L1/L2 capacities divided by `factor`. Working-set/cache ratios
    /// — the quantities the paper's effects depend on — are preserved when
    /// the workload is scaled by the same factor.
    ///
    /// # Panics
    ///
    /// Panics if the scaled caches would not have a whole number of sets.
    pub fn a64fx_scaled(factor: usize) -> Self {
        Self::from_hierarchy(&HierarchyConfig::a64fx().scaled(factor))
    }

    /// Projects a validated hierarchy onto the two-level view: `l1` is
    /// the innermost level, `l2` the last (shared) level.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy has no levels (call
    /// [`HierarchyConfig::validate`] first for a typed error).
    pub fn from_hierarchy(hier: &HierarchyConfig) -> Self {
        let first = hier.level(0);
        let last = hier.last_level();
        MachineConfig {
            num_cores: hier.num_cores,
            cores_per_domain: hier.cores_per_domain,
            l1: first.geometry,
            l2: last.geometry,
            l1_sector: first.sector,
            l2_sector: last.sector,
            replacement: hier.replacement,
            prefetch: hier.prefetch,
            timing: hier.timing,
        }
    }

    /// The inverse of [`MachineConfig::from_hierarchy`] for two-level
    /// machines: rebuilds a hierarchy (named `name`) whose projection is
    /// `self`. Link parameters are taken from the A64FX preset's shape.
    pub fn to_hierarchy(&self, name: &str) -> HierarchyConfig {
        let template = HierarchyConfig::a64fx();
        let mut l1 = LevelConfig {
            geometry: self.l1,
            sector: self.l1_sector,
            ..template.levels[0].clone()
        };
        l1.scope = LevelScope::PerCore;
        let mut l2 = LevelConfig {
            geometry: self.l2,
            sector: self.l2_sector,
            ..template.levels[1].clone()
        };
        l2.scope = LevelScope::PerDomain;
        l2.link_bandwidth_bps = self.timing.domain_bandwidth;
        HierarchyConfig {
            name: name.to_string(),
            num_cores: self.num_cores,
            cores_per_domain: self.cores_per_domain,
            levels: vec![l1, l2],
            replacement: self.replacement,
            prefetch: self.prefetch,
            timing: self.timing,
            overlap: template.overlap,
        }
    }

    /// Number of NUMA domains in use for `num_cores`.
    pub fn num_domains(&self) -> usize {
        self.num_cores.div_ceil(self.cores_per_domain)
    }

    /// Domain of a given core.
    pub fn domain_of(&self, core: usize) -> usize {
        core / self.cores_per_domain
    }

    /// Sets the L2 sector-1 way count (builder style).
    #[must_use]
    pub fn with_l2_sector(mut self, sector1_ways: usize) -> Self {
        assert!(
            sector1_ways < self.l2.ways,
            "sector 1 cannot take all {} L2 ways",
            self.l2.ways
        );
        self.l2_sector = SectorPolicy::ways(sector1_ways);
        self
    }

    /// Sets the L1 sector-1 way count (builder style).
    #[must_use]
    pub fn with_l1_sector(mut self, sector1_ways: usize) -> Self {
        assert!(
            sector1_ways < self.l1.ways,
            "sector 1 cannot take all {} L1 ways",
            self.l1.ways
        );
        self.l1_sector = SectorPolicy::ways(sector1_ways);
        self
    }

    /// Sets the prefetch configuration (builder style).
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the core count (builder style), e.g. 1 for sequential runs.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    #[must_use]
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        self.num_cores = num_cores;
        self
    }

    /// Capacity (in lines) of the L2 partition holding sector-`s` data.
    pub fn l2_partition_lines(&self, sector: u8) -> usize {
        partition_lines(&self.l2, self.l2_sector, sector)
    }

    /// Capacity (in lines) of the L1 partition holding sector-`s` data.
    pub fn l1_partition_lines(&self, sector: u8) -> usize {
        partition_lines(&self.l1, self.l1_sector, sector)
    }
}

fn partition_lines(geom: &CacheGeometry, policy: SectorPolicy, sector: u8) -> usize {
    if !policy.enabled() {
        return geom.total_lines();
    }
    match sector {
        0 => geom.sector_lines(geom.ways - policy.sector1_ways),
        1 => geom.sector_lines(policy.sector1_ways),
        _ => panic!("only sectors 0 and 1 are modelled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_geometry() {
        let cfg = MachineConfig::a64fx();
        assert_eq!(cfg.l1.num_sets(), 64); // 64 KiB / (4 * 256 B)
        assert_eq!(cfg.l2.num_sets(), 2048); // 8 MiB / (16 * 256 B)
        assert_eq!(cfg.l1.total_lines(), 256);
        assert_eq!(cfg.l2.total_lines(), 32768);
        assert_eq!(cfg.num_domains(), 4);
        assert_eq!(cfg.domain_of(0), 0);
        assert_eq!(cfg.domain_of(11), 0);
        assert_eq!(cfg.domain_of(12), 1);
        assert_eq!(cfg.domain_of(47), 3);
    }

    #[test]
    fn scaled_preserves_ways_and_lines() {
        let cfg = MachineConfig::a64fx_scaled(16);
        assert_eq!(cfg.l1.ways, 4);
        assert_eq!(cfg.l2.ways, 16);
        assert_eq!(cfg.l1.line_bytes, machine::A64FX_LINE_BYTES);
        assert_eq!(cfg.l2.size_bytes, 512 << 10);
        assert_eq!(cfg.l2.num_sets(), 128);
        assert_eq!(cfg.l1.num_sets(), 4);
    }

    #[test]
    fn sector_partition_capacities() {
        let cfg = MachineConfig::a64fx().with_l2_sector(5);
        // Sector 1: 5 of 16 ways; sector 0: 11 ways.
        assert_eq!(cfg.l2_partition_lines(1), 2048 * 5);
        assert_eq!(cfg.l2_partition_lines(0), 2048 * 11);
        // Disabled partitioning: both sectors see the whole cache.
        let off = MachineConfig::a64fx();
        assert_eq!(off.l2_partition_lines(0), 32768);
        assert_eq!(off.l2_partition_lines(1), 32768);
    }

    #[test]
    fn builders() {
        let cfg = MachineConfig::a64fx()
            .with_l2_sector(4)
            .with_l1_sector(1)
            .with_cores(1)
            .with_prefetch(PrefetchConfig::off());
        assert!(cfg.l2_sector.enabled());
        assert_eq!(cfg.l1_sector.sector1_ways, 1);
        assert_eq!(cfg.num_cores, 1);
        assert!(!cfg.prefetch.enabled);
        assert_eq!(cfg.num_domains(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot take all")]
    fn full_sector_takeover_rejected() {
        let _ = MachineConfig::a64fx().with_l2_sector(16);
    }

    #[test]
    fn projection_of_generic_x86_takes_inner_and_last_levels() {
        let cfg = MachineConfig::from_hierarchy(&HierarchyConfig::generic_x86());
        assert_eq!(cfg.l1.size_bytes, 32 << 10);
        assert_eq!(cfg.l2.size_bytes, 32 << 20);
        assert_eq!(cfg.l1.line_bytes, 64);
        assert_eq!(cfg.num_cores, 8);
        assert_eq!(cfg.num_domains(), 1);
    }

    #[test]
    fn hierarchy_roundtrip_preserves_projection() {
        let cfg = MachineConfig::a64fx().with_l2_sector(3).with_cores(4);
        let hier = cfg.to_hierarchy("roundtrip");
        hier.validate().unwrap();
        let back = MachineConfig::from_hierarchy(&hier);
        assert_eq!(back, cfg);
    }
}
