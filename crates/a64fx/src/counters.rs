//! PMU-style event counters and the paper's derived formulas.
//!
//! The paper measures cache behaviour with A64FX performance events read
//! through PAPI (§4.3). The simulator exposes the same event names with
//! the same semantics so the evaluation code can use the paper's formulas
//! verbatim:
//!
//! * L2 cache misses = `L2D_CACHE_REFILL − L2D_SWAP_DM − L2D_CACHE_MIBMCH_PRF`
//! * L2 demand misses = `L2D_CACHE_REFILL_DM`
//! * memory bytes = `(L2D_CACHE_REFILL + L2D_CACHE_WB − L2D_SWAP_DM −
//!   L2D_CACHE_MIBMCH_PRF) × 256`
//!
//! `L2D_SWAP_DM` (L1↔L2 swap traffic) and `L2D_CACHE_MIBMCH_PRF` (demand
//! requests merged with in-flight prefetches) are architectural artefacts
//! the simulator does not generate; they are carried as always-zero fields
//! so the formulas remain faithful.

/// A snapshot of the machine's PMU-style counters, aggregated and per
/// core/domain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PmuSnapshot {
    /// L1D fills from L2 (demand misses + L1 prefetch fills), all cores.
    pub l1d_cache_refill: u64,
    /// L1D demand misses only, all cores.
    pub l1d_demand_misses: u64,
    /// L2 fills from memory (demand + prefetch), all domains.
    pub l2d_cache_refill: u64,
    /// L2 fills triggered by demand requests, all domains.
    pub l2d_cache_refill_dm: u64,
    /// L2 fills triggered by hardware prefetch, all domains.
    pub l2d_cache_refill_prf: u64,
    /// Demand requests that merged with an in-flight prefetch (always 0 in
    /// this simulator; kept for formula fidelity).
    pub l2d_cache_mibmch_prf: u64,
    /// L1↔L2 swap move-ins (always 0 in this simulator).
    pub l2d_swap_dm: u64,
    /// L2 writebacks to memory.
    pub l2d_cache_wb: u64,
    /// Evictions of never-used prefetched lines (the §4.3 premature
    /// eviction signature), both levels.
    pub evicted_unused_prefetches: u64,
    /// Per-core L1 demand misses.
    pub per_core_l1_demand_misses: Vec<u64>,
    /// Per-core L2 demand misses (attributed to the requesting core).
    pub per_core_l2_demand_misses: Vec<u64>,
    /// Per-domain L2 fills (demand + prefetch).
    pub per_domain_l2_refill: Vec<u64>,
    /// Per-domain L2 writebacks.
    pub per_domain_l2_wb: Vec<u64>,
    /// Fills of the intermediate cache levels (hierarchies deeper than
    /// two levels only; empty on the A64FX), innermost first, aggregated
    /// over cores/domains.
    pub mid_level_refill: Vec<u64>,
}

impl PmuSnapshot {
    /// The paper's "L2 cache misses": lines transferred from memory into
    /// L2 (`REFILL − SWAP_DM − MIBMCH_PRF`).
    pub fn l2_misses(&self) -> u64 {
        self.l2d_cache_refill - self.l2d_swap_dm - self.l2d_cache_mibmch_prf
    }

    /// The paper's "L2 demand misses" (`L2D_CACHE_REFILL_DM`).
    pub fn l2_demand_misses(&self) -> u64 {
        self.l2d_cache_refill_dm
    }

    /// L1 misses (`L1D_CACHE_REFILL`).
    pub fn l1_misses(&self) -> u64 {
        self.l1d_cache_refill
    }

    /// Bytes moved between memory and L2, per the paper's §4.4 bandwidth
    /// formula (without the division by time).
    pub fn memory_bytes(&self, line_bytes: usize) -> u64 {
        (self.l2d_cache_refill + self.l2d_cache_wb - self.l2d_swap_dm - self.l2d_cache_mibmch_prf)
            * line_bytes as u64
    }

    /// Largest per-core L1 demand-miss count (critical path term).
    pub fn max_core_l1_demand_misses(&self) -> u64 {
        self.per_core_l1_demand_misses
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Largest per-core L2 demand-miss count (critical path term).
    pub fn max_core_l2_demand_misses(&self) -> u64 {
        self.per_core_l2_demand_misses
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Largest per-domain memory traffic in bytes (bandwidth bottleneck).
    pub fn max_domain_memory_bytes(&self, line_bytes: usize) -> u64 {
        self.per_domain_l2_refill
            .iter()
            .zip(&self.per_domain_l2_wb)
            .map(|(&r, &w)| (r + w) * line_bytes as u64)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PmuSnapshot {
        PmuSnapshot {
            l1d_cache_refill: 1000,
            l1d_demand_misses: 900,
            l2d_cache_refill: 500,
            l2d_cache_refill_dm: 300,
            l2d_cache_refill_prf: 200,
            l2d_cache_wb: 100,
            per_core_l1_demand_misses: vec![400, 500],
            per_core_l2_demand_misses: vec![120, 180],
            per_domain_l2_refill: vec![500],
            per_domain_l2_wb: vec![100],
            ..Default::default()
        }
    }

    #[test]
    fn paper_formulas() {
        let p = sample();
        assert_eq!(p.l2_misses(), 500);
        assert_eq!(p.l2_demand_misses(), 300);
        let line = machine::A64FX_LINE_BYTES;
        assert_eq!(p.memory_bytes(line), 600 * line as u64);
        assert_eq!(p.l1_misses(), 1000);
    }

    #[test]
    fn critical_path_terms() {
        let p = sample();
        assert_eq!(p.max_core_l1_demand_misses(), 500);
        assert_eq!(p.max_core_l2_demand_misses(), 180);
        let line = machine::A64FX_LINE_BYTES;
        assert_eq!(p.max_domain_memory_bytes(line), 600 * line as u64);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let p = PmuSnapshot::default();
        assert_eq!(p.l2_misses(), 0);
        assert_eq!(p.max_core_l1_demand_misses(), 0);
        assert_eq!(p.memory_bytes(machine::A64FX_LINE_BYTES), 0);
    }
}
