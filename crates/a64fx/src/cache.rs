//! Set-associative cache with way-based sector partitioning.
//!
//! Models one cache level of the A64FX:
//!
//! * lookups search **all** ways of the set — a line is found regardless of
//!   which sector's ways it resides in (the sector only governs placement);
//! * on a miss, the victim is chosen among the ways belonging to the
//!   incoming line's sector (way-based partitioning, as the A64FX sector
//!   cache does);
//! * within a sector's ways, replacement is true LRU or bit-PLRU
//!   ([`Replacement`]); invalid ways are filled first;
//! * lines carry a `prefetched` flag so the premature-eviction effect of
//!   §4.3 (prefetched lines evicted before first use) can be observed.

use crate::config::{CacheGeometry, Replacement, SectorPolicy};

/// What kind of request is touching the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Demand load from the core.
    Load,
    /// Demand store from the core (write-allocate, marks the line dirty).
    Store,
    /// Hardware-prefetch fill request.
    Prefetch,
    /// Writeback arriving from an upper cache level (updates the line if
    /// present, does **not** allocate on miss).
    Writeback,
}

impl Request {
    /// Is this a demand (core-issued) request?
    pub fn is_demand(self) -> bool {
        matches!(self, Request::Load | Request::Store)
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The line was present.
    Hit {
        /// The hit consumed a line that a prefetch brought in and no demand
        /// access had touched yet (a "useful prefetch" on first touch).
        first_use_of_prefetch: bool,
    },
    /// The line was absent and has been filled (except for writebacks).
    Miss {
        /// A dirty line that had to be evicted to make room, if any.
        writeback: Option<u64>,
        /// The evicted line was prefetched and never demanded — the
        /// premature-eviction signature of §4.3.
        evicted_unused_prefetch: bool,
    },
    /// A writeback to a line not present: forwarded to the next level.
    WritebackMiss,
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Brought in by prefetch and not yet touched by a demand access.
    prefetched_unused: bool,
    /// LRU timestamp (for `Replacement::Lru`).
    stamp: u64,
    /// MRU bit (for `Replacement::BitPlru`).
    mru: bool,
}

/// Per-cache event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads + stores).
    pub demand_accesses: u64,
    /// Demand hits.
    pub demand_hits: u64,
    /// Demand misses (fills triggered by demand requests).
    pub demand_misses: u64,
    /// Fills triggered by prefetch requests.
    pub prefetch_fills: u64,
    /// Prefetch requests that hit (already present — no fill).
    pub prefetch_hits: u64,
    /// Dirty evictions (writebacks issued to the next level).
    pub writebacks: u64,
    /// Evictions of prefetched lines that were never demanded (§4.3).
    pub evicted_unused_prefetches: u64,
    /// Demand hits that were the first touch of a prefetched line.
    pub prefetch_first_uses: u64,
}

impl CacheStats {
    /// Total fills (demand + prefetch) — lines brought in from below.
    pub fn fills(&self) -> u64 {
        self.demand_misses + self.prefetch_fills
    }
}

/// A set-associative, write-back, write-allocate cache with sector
/// partitioning.
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    policy: SectorPolicy,
    replacement: Replacement,
    num_sets: usize,
    ways: usize,
    /// `sets[set * ways + way]`.
    slots: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry, policy: SectorPolicy, replacement: Replacement) -> Self {
        let num_sets = geometry.num_sets();
        assert!(
            policy.sector1_ways < geometry.ways,
            "sector 1 must leave at least one way for sector 0"
        );
        Cache {
            geometry,
            policy,
            replacement,
            num_sets,
            ways: geometry.ways,
            slots: vec![Way::default(); num_sets * geometry.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the event counters, keeping cache contents (for discarding
    /// warm-up iterations).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The way-index range victims for `sector` are chosen from.
    fn sector_way_range(&self, sector: u8) -> std::ops::Range<usize> {
        if !self.policy.enabled() {
            return 0..self.ways;
        }
        match sector {
            // Sector 1 occupies the low way indices, sector 0 the rest.
            1 => 0..self.policy.sector1_ways,
            0 => self.policy.sector1_ways..self.ways,
            _ => panic!("only sectors 0 and 1 are modelled"),
        }
    }

    /// Accesses `line` on behalf of `sector`. See [`Outcome`].
    pub fn access(&mut self, line: u64, sector: u8, request: Request) -> Outcome {
        self.clock += 1;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.ways;
        if request.is_demand() {
            self.stats.demand_accesses += 1;
        }

        // Lookup across ALL ways: sector assignment never hides data.
        let found = (0..self.ways).find(|&w| {
            let slot = &self.slots[base + w];
            slot.valid && slot.tag == line
        });

        if let Some(w) = found {
            let first_use = {
                let slot = &mut self.slots[base + w];
                let first_use = slot.prefetched_unused && request.is_demand();
                if request.is_demand() {
                    slot.prefetched_unused = false;
                }
                if matches!(request, Request::Store | Request::Writeback) {
                    slot.dirty = true;
                }
                first_use
            };
            self.touch(base, w);
            match request {
                Request::Load | Request::Store => {
                    self.stats.demand_hits += 1;
                    if first_use {
                        self.stats.prefetch_first_uses += 1;
                    }
                }
                Request::Prefetch => self.stats.prefetch_hits += 1,
                Request::Writeback => {}
            }
            return Outcome::Hit {
                first_use_of_prefetch: first_use,
            };
        }

        // Miss.
        if request == Request::Writeback {
            return Outcome::WritebackMiss;
        }
        match request {
            Request::Load | Request::Store => self.stats.demand_misses += 1,
            Request::Prefetch => self.stats.prefetch_fills += 1,
            Request::Writeback => unreachable!(),
        }

        let victim = self.choose_victim(base, sector);
        let (writeback, evicted_unused) = {
            let slot = &self.slots[base + victim];
            if slot.valid {
                (slot.dirty.then_some(slot.tag), slot.prefetched_unused)
            } else {
                (None, false)
            }
        };
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        if evicted_unused {
            self.stats.evicted_unused_prefetches += 1;
        }
        {
            let slot = &mut self.slots[base + victim];
            slot.tag = line;
            slot.valid = true;
            slot.dirty = request == Request::Store;
            slot.prefetched_unused = request == Request::Prefetch;
        }
        self.touch(base, victim);
        Outcome::Miss {
            writeback,
            evicted_unused_prefetch: evicted_unused,
        }
    }

    /// Marks way `w` of the set at `base` most-recently used.
    ///
    /// Bit-PLRU state is kept per sector region: each region's MRU bits
    /// reset independently when they saturate, mirroring the independent
    /// replacement the way partitioning creates.
    fn touch(&mut self, base: usize, w: usize) {
        match self.replacement {
            Replacement::Lru => self.slots[base + w].stamp = self.clock,
            Replacement::BitPlru => {
                self.slots[base + w].mru = true;
                let region = self.region_of_way(w);
                let all_set = region
                    .clone()
                    .all(|i| !self.slots[base + i].valid || self.slots[base + i].mru);
                if all_set {
                    for i in region {
                        if i != w {
                            self.slots[base + i].mru = false;
                        }
                    }
                }
            }
        }
    }

    /// The sector way region containing way `w`.
    fn region_of_way(&self, w: usize) -> std::ops::Range<usize> {
        if !self.policy.enabled() {
            0..self.ways
        } else if w < self.policy.sector1_ways {
            0..self.policy.sector1_ways
        } else {
            self.policy.sector1_ways..self.ways
        }
    }

    /// Chooses the victim way within the sector's way range.
    fn choose_victim(&self, base: usize, sector: u8) -> usize {
        let range = self.sector_way_range(sector);
        // Invalid ways first.
        if let Some(w) = range.clone().find(|&w| !self.slots[base + w].valid) {
            return w;
        }
        match self.replacement {
            Replacement::Lru => range
                .min_by_key(|&w| self.slots[base + w].stamp)
                .expect("sector way range is never empty"),
            Replacement::BitPlru => {
                // First way in the region without its MRU bit; if all are
                // set (possible because the reset is set-global while the
                // region is a subset), fall back to the first way.
                range
                    .clone()
                    .find(|&w| !self.slots[base + w].mru)
                    .unwrap_or(range.start)
            }
        }
    }

    /// Returns `true` if `line` is currently resident (test helper).
    pub fn contains(&self, line: u64) -> bool {
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.ways;
        (0..self.ways).any(|w| {
            let s = &self.slots[base + w];
            s.valid && s.tag == line
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize, sets: usize, sector1: usize, repl: Replacement) -> Cache {
        let line = 64;
        let geom = CacheGeometry::new(ways * sets * line, ways, line);
        Cache::new(
            geom,
            SectorPolicy {
                sector1_ways: sector1,
            },
            repl,
        )
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache(4, 2, 0, Replacement::Lru);
        assert!(matches!(
            c.access(10, 0, Request::Load),
            Outcome::Miss { .. }
        ));
        assert!(matches!(
            c.access(10, 0, Request::Load),
            Outcome::Hit { .. }
        ));
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: lines 0, 2, 4 map to set 0 (even lines).
        let mut c = small_cache(2, 2, 0, Replacement::Lru);
        c.access(0, 0, Request::Load);
        c.access(2, 0, Request::Load);
        c.access(0, 0, Request::Load); // 0 is now MRU
        c.access(4, 0, Request::Load); // evicts 2
        assert!(c.contains(0));
        assert!(!c.contains(2));
        assert!(c.contains(4));
    }

    #[test]
    fn store_marks_dirty_and_eviction_writes_back() {
        let mut c = small_cache(1, 1, 0, Replacement::Lru);
        c.access(5, 0, Request::Store);
        let out = c.access(6, 0, Request::Load);
        assert_eq!(
            out,
            Outcome::Miss {
                writeback: Some(5),
                evicted_unused_prefetch: false
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small_cache(1, 1, 0, Replacement::Lru);
        c.access(5, 0, Request::Load);
        let out = c.access(6, 0, Request::Load);
        assert_eq!(
            out,
            Outcome::Miss {
                writeback: None,
                evicted_unused_prefetch: false
            }
        );
    }

    #[test]
    fn sector_partitioning_restricts_victims() {
        // 4 ways, 1 set; sector 1 gets 1 way (way 0), sector 0 gets 3.
        let mut c = small_cache(4, 1, 1, Replacement::Lru);
        // Fill sector 0 with 3 lines.
        for l in [1, 2, 3] {
            c.access(l, 0, Request::Load);
        }
        // Stream 10 lines through sector 1: they may only use way 0,
        // so sector-0 residents survive.
        for l in 10..20 {
            c.access(l, 1, Request::Load);
        }
        assert!(c.contains(1) && c.contains(2) && c.contains(3));
        assert!(c.contains(19)); // last streamed line sits in way 0
        assert!(!c.contains(18));
    }

    #[test]
    fn hit_allowed_across_sectors() {
        let mut c = small_cache(4, 1, 1, Replacement::Lru);
        // Line placed via sector 1's way.
        c.access(7, 1, Request::Load);
        // Demand access tagged sector 0 still hits it.
        assert!(matches!(c.access(7, 0, Request::Load), Outcome::Hit { .. }));
    }

    #[test]
    fn prefetch_flags_and_first_use() {
        let mut c = small_cache(2, 1, 0, Replacement::Lru);
        c.access(4, 0, Request::Prefetch);
        assert_eq!(c.stats().prefetch_fills, 1);
        let out = c.access(4, 0, Request::Load);
        assert_eq!(
            out,
            Outcome::Hit {
                first_use_of_prefetch: true
            }
        );
        assert_eq!(c.stats().prefetch_first_uses, 1);
        // Second demand touch is an ordinary hit.
        assert_eq!(
            c.access(4, 0, Request::Load),
            Outcome::Hit {
                first_use_of_prefetch: false
            }
        );
    }

    #[test]
    fn premature_prefetch_eviction_detected() {
        // 1 way: a prefetch immediately displaced before use.
        let mut c = small_cache(1, 1, 0, Replacement::Lru);
        c.access(4, 0, Request::Prefetch);
        let out = c.access(5, 0, Request::Load);
        assert!(matches!(
            out,
            Outcome::Miss {
                evicted_unused_prefetch: true,
                ..
            }
        ));
        assert_eq!(c.stats().evicted_unused_prefetches, 1);
    }

    #[test]
    fn writeback_request_updates_present_line_only() {
        let mut c = small_cache(2, 1, 0, Replacement::Lru);
        c.access(8, 0, Request::Load);
        assert!(matches!(
            c.access(8, 0, Request::Writeback),
            Outcome::Hit { .. }
        ));
        // Dirty now: evicting it produces a writeback.
        c.access(10, 0, Request::Load);
        let out = c.access(12, 0, Request::Load);
        assert!(matches!(
            out,
            Outcome::Miss {
                writeback: Some(8),
                ..
            }
        ));
        // Writeback to an absent line does not allocate.
        assert_eq!(c.access(100, 0, Request::Writeback), Outcome::WritebackMiss);
        assert!(!c.contains(100));
    }

    #[test]
    fn bit_plru_behaves_as_stack_like_policy() {
        // Sanity: with repeated round-robin over ways+1 lines, bit-PLRU
        // still misses every time (like LRU), and hits on immediate reuse.
        let mut c = small_cache(2, 1, 0, Replacement::BitPlru);
        c.access(0, 0, Request::Load);
        assert!(matches!(c.access(0, 0, Request::Load), Outcome::Hit { .. }));
        c.access(2, 0, Request::Load);
        c.access(4, 0, Request::Load); // evicts one of {0, 2}
        let resident = [0u64, 2, 4].iter().filter(|&&l| c.contains(l)).count();
        assert_eq!(resident, 2);
        assert!(c.contains(4));
    }

    #[test]
    fn prefetch_hit_does_not_refill() {
        let mut c = small_cache(2, 1, 0, Replacement::Lru);
        c.access(6, 0, Request::Load);
        c.access(6, 0, Request::Prefetch);
        assert_eq!(c.stats().prefetch_fills, 0);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn sector_taking_all_ways_rejected() {
        small_cache(4, 1, 4, Replacement::Lru);
    }
}
