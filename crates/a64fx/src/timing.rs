//! Analytic timing model: from simulated miss counts to Gflop/s.
//!
//! The paper measures wall-clock performance on hardware; our substitute
//! is a roofline-flavoured analytic model fed by the simulator's counters.
//! Execution time is the maximum of four overlapping resource times:
//!
//! * **compute** — the critical thread's nonzeros at `cycles_per_nnz`;
//! * **L1 refill** — the critical core's L1 demand misses, each costing an
//!   (overlap-discounted) L2 access;
//! * **demand latency** — the critical core's L2 demand misses, each
//!   costing an (overlap-discounted) memory access. This is the term the
//!   sector cache improves, and the paper's §4.4 argues it (not raw
//!   bandwidth) limits the matrices that speed up most;
//! * **bandwidth** — the busiest domain's memory traffic at the
//!   sustainable per-domain bandwidth.
//!
//! Absolute numbers are calibration-dependent; the experiments compare
//! *ratios* (speedups) and *shapes*, which this structure preserves: a
//! bandwidth-bound matrix gains nothing from fewer demand misses, a
//! latency-bound one gains proportionally.

use crate::config::MachineConfig;
use crate::counters::PmuSnapshot;
use crate::sim_spmv::SimResult;

/// Estimated performance of one SpMV iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Performance {
    /// Estimated execution time in seconds.
    pub seconds: f64,
    /// Achieved Gflop/s (2 flops per nonzero).
    pub gflops: f64,
    /// Memory bandwidth drawn, via the paper's §4.4 formula, in GB/s.
    pub bandwidth_gbs: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
}

/// Which resource term determined the execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// Core compute throughput.
    Compute,
    /// L1 refill (L2 access) latency.
    L1Refill,
    /// Memory demand-miss latency.
    DemandLatency,
    /// Per-domain memory bandwidth.
    Bandwidth,
}

/// Estimates performance from a simulation result.
pub fn estimate(cfg: &MachineConfig, nnz: usize, sim: &SimResult) -> Performance {
    estimate_from_counters(cfg, nnz, sim.max_thread_nnz, &sim.pmu)
}

/// Estimates performance from raw counters.
pub fn estimate_from_counters(
    cfg: &MachineConfig,
    nnz: usize,
    max_thread_nnz: usize,
    pmu: &PmuSnapshot,
) -> Performance {
    let t = &cfg.timing;
    let t_compute = max_thread_nnz as f64 * t.cycles_per_nnz / t.clock_hz;
    let t_l1 = pmu.max_core_l1_demand_misses() as f64 * t.l1_refill_cost;
    let t_latency = pmu.max_core_l2_demand_misses() as f64 * t.demand_miss_cost;
    let t_bw = pmu.max_domain_memory_bytes(cfg.l2.line_bytes) as f64 / t.domain_bandwidth;

    let (seconds, bottleneck) = [
        (t_compute, Bottleneck::Compute),
        (t_l1, Bottleneck::L1Refill),
        (t_latency, Bottleneck::DemandLatency),
        (t_bw, Bottleneck::Bandwidth),
    ]
    .into_iter()
    .max_by(|a, b| a.0.total_cmp(&b.0))
    .expect("four candidates");

    let seconds = seconds.max(1e-12);
    Performance {
        seconds,
        gflops: 2.0 * nnz as f64 / seconds / 1e9,
        bandwidth_gbs: pmu.memory_bytes(cfg.l2.line_bytes) as f64 / seconds / 1e9,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn pmu(l1: u64, l2dm: u64, traffic_lines: u64) -> PmuSnapshot {
        PmuSnapshot {
            l1d_cache_refill: l1,
            l1d_demand_misses: l1,
            l2d_cache_refill: traffic_lines,
            l2d_cache_refill_dm: l2dm,
            per_core_l1_demand_misses: vec![l1],
            per_core_l2_demand_misses: vec![l2dm],
            per_domain_l2_refill: vec![traffic_lines],
            per_domain_l2_wb: vec![0],
            ..Default::default()
        }
    }

    #[test]
    fn cache_resident_workload_is_compute_bound() {
        let cfg = MachineConfig::a64fx();
        let p = estimate_from_counters(&cfg, 1_000_000, 1_000_000, &pmu(0, 0, 0));
        assert_eq!(p.bottleneck, Bottleneck::Compute);
        // 2 flops / 1.9 cycles at 2.2 GHz ~ 2.3 Gflop/s per core.
        assert!(p.gflops > 1.0 && p.gflops < 5.0, "{}", p.gflops);
    }

    #[test]
    fn heavy_demand_misses_dominate() {
        let cfg = MachineConfig::a64fx();
        let p = estimate_from_counters(&cfg, 1_000_000, 20_000, &pmu(10_000, 500_000, 600_000));
        assert_eq!(p.bottleneck, Bottleneck::DemandLatency);
    }

    #[test]
    fn pure_streaming_is_bandwidth_bound() {
        let cfg = MachineConfig::a64fx();
        // Huge traffic, few demand misses (prefetcher hides them).
        let p = estimate_from_counters(&cfg, 10_000_000, 250_000, &pmu(400_000, 1_000, 4_000_000));
        assert_eq!(p.bottleneck, Bottleneck::Bandwidth);
        // Bandwidth estimate equals traffic / time = domain bandwidth here
        // (single domain busy).
        assert!((p.bandwidth_gbs - 200.0).abs() < 1.0, "{}", p.bandwidth_gbs);
    }

    #[test]
    fn fewer_demand_misses_speed_up_latency_bound_runs() {
        let cfg = MachineConfig::a64fx();
        let slow = estimate_from_counters(&cfg, 1_000_000, 20_000, &pmu(0, 400_000, 500_000));
        let fast = estimate_from_counters(&cfg, 1_000_000, 20_000, &pmu(0, 200_000, 500_000));
        assert!(fast.seconds < slow.seconds);
        let speedup = slow.seconds / fast.seconds;
        assert!(speedup > 1.2, "speedup {speedup}");
    }

    #[test]
    fn bandwidth_bound_runs_do_not_speed_up_from_fewer_demand_misses() {
        let cfg = MachineConfig::a64fx();
        let a = estimate_from_counters(&cfg, 10_000_000, 250_000, &pmu(0, 2_000, 4_000_000));
        let b = estimate_from_counters(&cfg, 10_000_000, 250_000, &pmu(0, 1_000, 4_000_000));
        assert_eq!(
            a.seconds, b.seconds,
            "bandwidth-bound time must be unchanged"
        );
    }

    #[test]
    fn gflops_consistent_with_time() {
        let cfg = MachineConfig::a64fx();
        let p = estimate_from_counters(&cfg, 5_000_000, 120_000, &pmu(50_000, 10_000, 100_000));
        assert!((p.gflops - 2.0 * 5e6 / p.seconds / 1e9).abs() < 1e-9);
    }
}
