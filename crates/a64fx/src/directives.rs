//! Parser for FCC-style sector-cache directives (Listing 1 of the paper).
//!
//! The Fujitsu compiler configures the sector cache with pragmas:
//!
//! ```text
//! #pragma procedure scache_isolate_way L2=N2 [L1=N1]
//! #pragma procedure scache_isolate_assign a colidx
//! ```
//!
//! This module parses that surface syntax (with or without the
//! `#pragma procedure` prefix) into a [`MachineConfig`] update and an
//! [`ArraySet`], so experiment configurations can be written exactly as
//! they appear in the paper.

use crate::config::MachineConfig;
use memtrace::{Array, ArraySet};

/// A parsed sector-cache directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Directive {
    /// `scache_isolate_way L2=N [L1=M]`: way counts for sector 1.
    IsolateWay {
        /// L2 ways for sector 1.
        l2: usize,
        /// L1 ways for sector 1 (0 = L1 partitioning off).
        l1: usize,
    },
    /// `scache_isolate_assign <array>...`: arrays assigned to sector 1.
    IsolateAssign(ArraySet),
}

/// Errors from the directive parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "directive parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses one directive line.
///
/// Accepts the bare directive (`scache_isolate_way L2=5`) or the full
/// pragma (`#pragma procedure scache_isolate_way L2=5 L1=1`). Array names
/// for `scache_isolate_assign` are the paper's: `a`, `colidx`, `x`, `y`,
/// `rowptr`.
pub fn parse(line: &str) -> Result<Directive, ParseError> {
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    // Strip an optional `#pragma procedure` / `pragma procedure` prefix.
    if tokens.first().copied() == Some("#pragma") || tokens.first().copied() == Some("pragma") {
        tokens.remove(0);
        if tokens.first().copied() == Some("procedure") {
            tokens.remove(0);
        }
    }
    let Some((&head, rest)) = tokens.split_first() else {
        return Err(ParseError("empty directive".into()));
    };
    match head {
        "scache_isolate_way" => {
            let (mut l2, mut l1) = (None, 0usize);
            for tok in rest {
                let (key, value) = tok
                    .split_once('=')
                    .ok_or_else(|| ParseError(format!("expected KEY=VALUE, got '{tok}'")))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad way count '{value}'")))?;
                match key {
                    "L2" | "l2" => l2 = Some(n),
                    "L1" | "l1" => l1 = n,
                    other => return Err(ParseError(format!("unknown cache level '{other}'"))),
                }
            }
            let l2 = l2.ok_or_else(|| ParseError("scache_isolate_way requires L2=N".into()))?;
            Ok(Directive::IsolateWay { l2, l1 })
        }
        "scache_isolate_assign" => {
            if rest.is_empty() {
                return Err(ParseError(
                    "scache_isolate_assign requires at least one array".into(),
                ));
            }
            let mut set = ArraySet::EMPTY;
            for name in rest {
                let array = match *name {
                    "a" | "values" => Array::A,
                    "colidx" | "col" => Array::ColIdx,
                    "x" => Array::X,
                    "y" => Array::Y,
                    "rowptr" | "row" => Array::RowPtr,
                    other => return Err(ParseError(format!("unknown array '{other}'"))),
                };
                set = set.with(array);
            }
            Ok(Directive::IsolateAssign(set))
        }
        other => Err(ParseError(format!("unknown directive '{other}'"))),
    }
}

/// Applies a sequence of directive lines to a machine configuration,
/// returning the updated configuration and the sector-1 array set
/// (empty if no `scache_isolate_assign` appeared).
///
/// # Errors
///
/// Returns the first parse error; way counts are validated against the
/// configuration's geometry.
pub fn apply(
    mut cfg: MachineConfig,
    lines: &[&str],
) -> Result<(MachineConfig, ArraySet), ParseError> {
    let mut sector1 = ArraySet::EMPTY;
    for line in lines {
        match parse(line)? {
            Directive::IsolateWay { l2, l1 } => {
                if l2 == 0 || l2 >= cfg.l2.ways {
                    return Err(ParseError(format!(
                        "L2={l2} out of range (1..{})",
                        cfg.l2.ways - 1
                    )));
                }
                cfg = cfg.with_l2_sector(l2);
                if l1 > 0 {
                    if l1 >= cfg.l1.ways {
                        return Err(ParseError(format!(
                            "L1={l1} out of range (1..{})",
                            cfg.l1.ways - 1
                        )));
                    }
                    cfg = cfg.with_l1_sector(l1);
                }
            }
            Directive::IsolateAssign(set) => sector1 = set,
        }
    }
    Ok((cfg, sector1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1() {
        // The exact directives from the paper's Listing 1.
        assert_eq!(
            parse("#pragma procedure scache_isolate_way L2=5 L1=1").unwrap(),
            Directive::IsolateWay { l2: 5, l1: 1 }
        );
        assert_eq!(
            parse("#pragma procedure scache_isolate_assign a colidx").unwrap(),
            Directive::IsolateAssign(ArraySet::MATRIX_STREAM)
        );
    }

    #[test]
    fn parses_bare_directives() {
        assert_eq!(
            parse("scache_isolate_way L2=4").unwrap(),
            Directive::IsolateWay { l2: 4, l1: 0 }
        );
        assert_eq!(
            parse("scache_isolate_assign x").unwrap(),
            Directive::IsolateAssign(ArraySet::of(&[Array::X]))
        );
    }

    #[test]
    fn apply_builds_config() {
        let base = MachineConfig::a64fx();
        let (cfg, sector1) = apply(
            base,
            &[
                "#pragma procedure scache_isolate_way L2=5 L1=1",
                "#pragma procedure scache_isolate_assign a colidx",
            ],
        )
        .unwrap();
        assert_eq!(cfg.l2_sector.sector1_ways, 5);
        assert_eq!(cfg.l1_sector.sector1_ways, 1);
        assert_eq!(sector1, ArraySet::MATRIX_STREAM);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("scache_isolate_way").is_err());
        assert!(parse("scache_isolate_way L3=2").is_err());
        assert!(parse("scache_isolate_way L2=x").is_err());
        assert!(parse("scache_isolate_assign").is_err());
        assert!(parse("scache_isolate_assign bogus").is_err());
        assert!(parse("scache_flush").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn apply_validates_way_counts() {
        let base = MachineConfig::a64fx();
        assert!(apply(base.clone(), &["scache_isolate_way L2=16"]).is_err());
        assert!(apply(base.clone(), &["scache_isolate_way L2=0"]).is_err());
        assert!(apply(base, &["scache_isolate_way L2=5 L1=4"]).is_err());
    }

    #[test]
    fn error_display() {
        let e = parse("nonsense directive").unwrap_err();
        assert!(e.to_string().contains("unknown directive"));
    }
}
