//! Driving the machine with SpMV traces: the simulator-side "measurement".
//!
//! Mirrors the paper's experimental procedure: the SpMV trace is replayed
//! once to warm the caches (the paper models behaviour "after a warm-up
//! iteration", i.e. no cold misses), counters are reset, and a second
//! iteration is measured. Threads are mapped one-per-core in order (the
//! paper pins with `OMP_PROC_BIND=close OMP_PLACES=cores`), and per-thread
//! traces are interleaved round-robin one reference at a time — the
//! equal-progress interleaving the model's MCS-ordered collation
//! approximates.

use crate::config::MachineConfig;
use crate::counters::PmuSnapshot;
use crate::hierarchy::Machine;
use memtrace::spmv_trace::trace_spmv_partitioned;
use memtrace::{Access, ArraySet, SpmvWorkload};
use sparsemat::{CsrMatrix, RowPartition};

/// Result of a simulated SpMV measurement.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Counters of the measured (post-warm-up) iteration.
    pub pmu: PmuSnapshot,
    /// Maximum nonzeros assigned to any thread (timing critical path).
    pub max_thread_nnz: usize,
    /// Threads used.
    pub num_threads: usize,
}

/// Simulates iterative SpMV on `cfg` with the arrays in `sector1` assigned
/// to sector 1, using `num_threads` threads (static contiguous row blocks).
///
/// Replays `warmup` iterations, resets counters, then measures one
/// iteration and returns its counters.
///
/// # Panics
///
/// Panics if `num_threads` is zero or exceeds `cfg.num_cores`.
pub fn simulate_spmv(
    matrix: &CsrMatrix,
    cfg: &MachineConfig,
    sector1: ArraySet,
    num_threads: usize,
    warmup: usize,
) -> SimResult {
    let partition = RowPartition::static_rows(matrix.num_rows(), num_threads.max(1));
    simulate_spmv_partitioned(matrix, cfg, sector1, &partition, warmup)
}

/// Like [`simulate_spmv`], but with an explicit row partition (one block
/// per thread) — e.g. the nonzero-balanced partition of the Table 1
/// comparator.
///
/// # Panics
///
/// Panics if the partition has zero blocks or more blocks than cores.
pub fn simulate_spmv_partitioned(
    matrix: &CsrMatrix,
    cfg: &MachineConfig,
    sector1: ArraySet,
    partition: &RowPartition,
    warmup: usize,
) -> SimResult {
    let num_threads = partition.num_parts();
    assert!(num_threads > 0, "need at least one thread");
    assert!(
        num_threads <= cfg.num_cores,
        "more threads ({num_threads}) than cores ({})",
        cfg.num_cores
    );
    let layout = matrix.layout(cfg.l2.line_bytes);
    let traces = trace_spmv_partitioned(matrix, &layout, partition);
    let max_thread_nnz = partition.max_block_nnz(matrix);

    let mut machine = Machine::new(cfg.clone().with_cores(num_threads.max(1)), sector1);
    for _ in 0..warmup {
        replay_round_robin(&mut machine, &traces);
    }
    machine.reset_stats();
    replay_round_robin(&mut machine, &traces);

    SimResult {
        pmu: machine.pmu(),
        max_thread_nnz,
        num_threads,
    }
}

/// Like [`simulate_spmv`], but with the kernel emitting software-prefetch
/// hints for the gathered `x` accesses `distance` nonzeros ahead — the
/// paper's future-work combination of software prefetching with the
/// sector cache.
pub fn simulate_spmv_swpf(
    matrix: &CsrMatrix,
    cfg: &MachineConfig,
    sector1: ArraySet,
    num_threads: usize,
    warmup: usize,
    distance: usize,
) -> SimResult {
    assert!(num_threads > 0, "need at least one thread");
    let layout = matrix.layout(cfg.l2.line_bytes);
    let partition = RowPartition::static_rows(matrix.num_rows(), num_threads);
    let traces =
        memtrace::spmv_trace::trace_spmv_swpf_partitioned(matrix, &layout, &partition, distance);
    let max_thread_nnz = partition.max_block_nnz(matrix);

    let mut machine = Machine::new(cfg.clone().with_cores(num_threads), sector1);
    for _ in 0..warmup {
        replay_round_robin(&mut machine, &traces);
    }
    machine.reset_stats();
    replay_round_robin(&mut machine, &traces);
    SimResult {
        pmu: machine.pmu(),
        max_thread_nnz,
        num_threads,
    }
}

/// Replays per-core traces one reference per core per round, skipping
/// exhausted cores — the equal-progress interleaving.
pub fn replay_round_robin(machine: &mut Machine, traces: &[Vec<Access>]) {
    let mut cursors = vec![0usize; traces.len()];
    let mut remaining: usize = traces.iter().map(|t| t.len()).sum();
    while remaining > 0 {
        for (core, trace) in traces.iter().enumerate() {
            let c = cursors[core];
            if c < trace.len() {
                machine.demand_access(core, trace[c]);
                cursors[core] = c + 1;
                remaining -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchConfig;
    use sparsemat::CooMatrix;

    /// Matrix whose whole working set fits the scaled L2: class (1).
    fn small_matrix() -> CsrMatrix {
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for d in [0i64, -1, 1] {
                let c = r as i64 + d;
                if (0..n as i64).contains(&c) {
                    coo.push(r, c as usize, 1.0);
                }
            }
        }
        coo.to_csr()
    }

    /// Matrix whose CSR arrays far exceed the scaled L2 but whose vectors
    /// fit a partition: class (2).
    fn streaming_matrix(rows: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(rows, rows);
        for r in 0..rows {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                coo.push(r, ((state >> 33) as usize) % rows, 1.0);
            }
        }
        coo.to_csr()
    }

    fn cfg_seq() -> MachineConfig {
        MachineConfig::a64fx_scaled(64)
            .with_cores(1)
            .with_prefetch(PrefetchConfig::off())
    }

    #[test]
    fn class1_matrix_has_no_steady_state_misses() {
        let m = small_matrix();
        let cfg = cfg_seq();
        assert!(m.working_set_bytes() < cfg.l2.size_bytes);
        let r = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 1);
        // Everything fits in L2: the measured iteration has no L2 fills.
        assert_eq!(
            r.pmu.l2_misses(),
            0,
            "class (1) must not miss after warm-up"
        );
    }

    #[test]
    fn streaming_matrix_misses_scale_with_matrix_lines() {
        // CSR arrays are streamed once per iteration; if they exceed the
        // cache they must be refetched every iteration.
        let m = streaming_matrix(8192, 8, 3);
        let cfg = cfg_seq();
        assert!(m.matrix_bytes() > 2 * cfg.l2.size_bytes);
        let r = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 1);
        let layout = m.layout(machine::A64FX_LINE_BYTES);
        let stream_lines =
            layout.array_lines(memtrace::Array::A) + layout.array_lines(memtrace::Array::ColIdx);
        assert!(
            r.pmu.l2_misses() >= stream_lines,
            "streamed arrays must miss at least once per line: {} < {stream_lines}",
            r.pmu.l2_misses()
        );
    }

    #[test]
    fn sector_cache_reduces_misses_for_class2() {
        // Class (2): matrix streams through, vectors fit in a partition.
        let m = streaming_matrix(2048, 16, 11);
        let cfg = cfg_seq();
        let base = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 1);
        let part = simulate_spmv(
            &m,
            &cfg_seq().with_l2_sector(4),
            ArraySet::MATRIX_STREAM,
            1,
            1,
        );
        assert!(
            part.pmu.l2_misses() <= base.pmu.l2_misses(),
            "sector cache should not increase misses for class (2): {} vs {}",
            part.pmu.l2_misses(),
            base.pmu.l2_misses()
        );
    }

    #[test]
    fn parallel_run_uses_all_cores() {
        let m = streaming_matrix(512, 4, 5);
        let mut cfg = MachineConfig::a64fx_scaled(64).with_cores(8);
        cfg.cores_per_domain = 2;
        cfg.prefetch = PrefetchConfig::off();
        // Measure the cold iteration (warmup = 0) so every domain is
        // guaranteed to pull its share of the matrix in.
        let r = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 8, 0);
        assert_eq!(r.num_threads, 8);
        assert_eq!(r.pmu.per_core_l1_demand_misses.len(), 8);
        assert_eq!(r.pmu.per_domain_l2_refill.len(), 4);
        // Every domain saw traffic.
        assert!(r.pmu.per_domain_l2_refill.iter().all(|&f| f > 0));
    }

    #[test]
    fn warmup_eliminates_cold_misses_in_measurement() {
        let m = small_matrix();
        let cfg = cfg_seq();
        // Without warm-up (warmup = 0), the measured iteration includes
        // cold misses; with warm-up it does not.
        let cold = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 0);
        let warm = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 1);
        assert!(cold.pmu.l2_misses() > warm.pmu.l2_misses());
    }

    #[test]
    fn software_prefetch_hides_x_demand_misses() {
        // Irregular x accesses defeat the hardware stream prefetcher; the
        // software gather-prefetch hints convert x demand misses into
        // prefetch fills without changing total traffic much.
        // x (131072 cols = 4096 lines) exceeds the 2048-line scaled L2, so
        // the gathered x accesses demand-miss heavily at baseline.
        let m = streaming_matrix(131_072, 6, 13);
        let cfg = MachineConfig::a64fx_scaled(64).with_cores(1);
        let plain = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 1);
        let swpf = super::simulate_spmv_swpf(&m, &cfg, ArraySet::EMPTY, 1, 1, 16);
        assert!(
            swpf.pmu.l2_demand_misses() < plain.pmu.l2_demand_misses() / 2,
            "software prefetch should hide most x demand misses: {} vs {}",
            swpf.pmu.l2_demand_misses(),
            plain.pmu.l2_demand_misses()
        );
        // Total memory traffic stays within a modest factor (early fetches
        // can be evicted and refetched, but not wholesale).
        assert!(swpf.pmu.l2_misses() < plain.pmu.l2_misses() * 2);
    }

    #[test]
    fn prefetch_converts_demand_misses_to_prefetch_fills() {
        let m = streaming_matrix(2048, 8, 7);
        let base = simulate_spmv(&m, &cfg_seq(), ArraySet::EMPTY, 1, 1);
        let pf_cfg = MachineConfig::a64fx_scaled(64).with_cores(1);
        let pf = simulate_spmv(&m, &pf_cfg, ArraySet::EMPTY, 1, 1);
        assert!(pf.pmu.l2d_cache_refill_prf > 0);
        assert!(
            pf.pmu.l2_demand_misses() < base.pmu.l2_demand_misses(),
            "prefetching must hide some demand misses"
        );
    }
}
