//! The simulated machine: private cache levels per core, shared levels
//! per domain, prefetchers.
//!
//! Request flow for a demand access from core `c`:
//!
//! 1. The access's array determines its **sector ID** (the paper's
//!    Listing 1 tags `a`/`colidx` with sector 1 via compiler directives).
//! 2. The private levels are walked innermost first; a dirty victim of
//!    level *i* is written back into level *i+1* (propagating further
//!    down on writeback misses; a writeback that misses every remaining
//!    level goes straight to memory).
//! 3. On a miss the walk continues with a demand request to the next
//!    level; a miss at the last (shared) level is a memory access. A
//!    dirty victim of the last level counts as a memory writeback inside
//!    that cache's own stats.
//! 4. The core's stream prefetcher trains on the demand line stream.
//!    Prefetched lines are filled into the second level (the A64FX's L2,
//!    an x86's private L2) with the sector of the triggering access, and
//!    — within the shorter L1 distance — into the L1 as well.
//!
//! Caches are non-inclusive write-back/write-allocate; writebacks never
//! allocate. The model is deliberately minimal: everything the paper's
//! evaluation needs (miss counts per level, demand vs. prefetch fills,
//! writeback traffic, premature prefetch eviction) emerges from this flow.
//!
//! [`Machine::new`] builds the classic two-level A64FX view from a
//! [`MachineConfig`]; [`Machine::from_hierarchy`] builds any validated
//! [`machine::HierarchyConfig`] (e.g. the three-level `generic-x86`
//! preset). For two-level hierarchies both constructors produce
//! byte-identical behaviour — the a64fx-preset pin in `crates/valid`
//! holds the refactor to that.

use crate::cache::{Cache, Outcome, Request};
use crate::config::MachineConfig;
use crate::counters::PmuSnapshot;
use crate::prefetch::StreamPrefetcher;
use machine::{CacheHierarchy, HierarchyConfig, LevelScope};
use memtrace::{Access, ArraySet};

struct Core {
    /// Private cache levels, innermost first.
    privates: Vec<Cache>,
    prefetcher: StreamPrefetcher,
    /// Scratch buffer for prefetch emissions.
    pf_buf: Vec<u64>,
    /// Last-level demand misses attributed to this core.
    l2_demand_misses: u64,
}

/// The simulated machine.
pub struct Machine {
    cfg: MachineConfig,
    sector1: ArraySet,
    cores: Vec<Core>,
    /// Shared cache levels per domain, outermost last.
    domains: Vec<Vec<Cache>>,
    /// Number of private levels (the rest are shared).
    num_private: usize,
    /// Total cache levels.
    num_levels: usize,
    /// Per-domain writebacks that missed every cache level and went
    /// straight to memory. Still memory traffic from that domain, so they
    /// count toward both the aggregate `L2D_CACHE_WB` and the domain's
    /// writeback row.
    direct_memory_writebacks: Vec<u64>,
}

impl Machine {
    /// Builds the two-level machine (private L1, shared last-level cache)
    /// with the given configuration; arrays in `sector1` are tagged with
    /// sector ID 1 on every memory request.
    pub fn new(cfg: MachineConfig, sector1: ArraySet) -> Self {
        let cores = (0..cfg.num_cores)
            .map(|_| Core {
                privates: vec![Cache::new(cfg.l1, cfg.l1_sector, cfg.replacement)],
                prefetcher: Self::prefetcher_for(&cfg),
                pf_buf: Vec::new(),
                l2_demand_misses: 0,
            })
            .collect();
        let domains = (0..cfg.num_domains())
            .map(|_| vec![Cache::new(cfg.l2, cfg.l2_sector, cfg.replacement)])
            .collect();
        let num_domains = cfg.num_domains();
        Machine {
            cfg,
            sector1,
            cores,
            domains,
            num_private: 1,
            num_levels: 2,
            direct_memory_writebacks: vec![0; num_domains],
        }
    }

    /// Builds an N-level machine from a validated hierarchy. The stored
    /// [`MachineConfig`] is the hierarchy's two-level projection.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy fails [`HierarchyConfig::validate`].
    pub fn from_hierarchy(hier: &HierarchyConfig, sector1: ArraySet) -> Self {
        if let Err(e) = hier.validate() {
            panic!("invalid hierarchy: {e}");
        }
        let cfg = MachineConfig::from_hierarchy(hier);
        let num_private = hier.first_shared_level();
        let num_levels = hier.num_levels();
        let cores = (0..hier.num_cores)
            .map(|_| Core {
                privates: hier.levels[..num_private]
                    .iter()
                    .map(|l| Cache::new(l.geometry, l.sector, hier.replacement))
                    .collect(),
                prefetcher: Self::prefetcher_for(&cfg),
                pf_buf: Vec::new(),
                l2_demand_misses: 0,
            })
            .collect();
        let domains: Vec<Vec<Cache>> = (0..cfg.num_domains())
            .map(|_| {
                hier.levels[num_private..]
                    .iter()
                    .map(|l| Cache::new(l.geometry, l.sector, hier.replacement))
                    .collect()
            })
            .collect();
        let num_domains = cfg.num_domains();
        Machine {
            cfg,
            sector1,
            cores,
            domains,
            num_private,
            num_levels,
            direct_memory_writebacks: vec![0; num_domains],
        }
    }

    fn prefetcher_for(cfg: &MachineConfig) -> StreamPrefetcher {
        if cfg.prefetch.enabled {
            StreamPrefetcher::new(cfg.prefetch.streams, cfg.prefetch.l2_distance)
        } else {
            StreamPrefetcher::off()
        }
    }

    /// The machine configuration (two-level projection for N-level
    /// machines).
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of cache levels being simulated.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Sector ID for an access, from the machine's array assignment.
    #[inline]
    pub fn sector_of(&self, access: &Access) -> u8 {
        u8::from(self.sector1.contains(access.array))
    }

    fn cache_mut(&mut self, core: usize, domain: usize, level: usize) -> &mut Cache {
        if level < self.num_private {
            &mut self.cores[core].privates[level]
        } else {
            &mut self.domains[domain][level - self.num_private]
        }
    }

    /// Accesses `level`; a dirty victim of a non-last level is written
    /// back into the level below. Returns the outcome.
    fn level_access(
        &mut self,
        core: usize,
        domain: usize,
        level: usize,
        line: u64,
        sector: u8,
        request: Request,
    ) -> Outcome {
        let outcome = self
            .cache_mut(core, domain, level)
            .access(line, sector, request);
        if level + 1 < self.num_levels {
            if let Outcome::Miss {
                writeback: Some(victim),
                ..
            } = outcome
            {
                self.writeback_into(core, domain, level + 1, victim);
            }
        }
        outcome
    }

    /// Writes a dirty victim back into `level`, walking down the
    /// hierarchy until some level holds the line; a victim no level holds
    /// is a direct memory writeback.
    fn writeback_into(&mut self, core: usize, domain: usize, mut level: usize, line: u64) {
        while level < self.num_levels {
            if self
                .cache_mut(core, domain, level)
                .access(line, 0, Request::Writeback)
                != Outcome::WritebackMiss
            {
                return;
            }
            level += 1;
        }
        self.direct_memory_writebacks[domain] += 1;
    }

    /// Performs one demand access on behalf of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn demand_access(&mut self, core: usize, access: Access) {
        let sector = self.sector_of(&access);
        let domain = self.cfg.domain_of(core);
        // Prefetches (software hints and hardware emissions) fill the
        // second level — the A64FX's shared L2, an x86's private L2.
        let pf_level = 1.min(self.num_levels - 1);

        // Software-prefetch hints warm the prefetch level (and L1) without
        // demanding data, stalling, or training the hardware prefetcher.
        if access.sw_prefetch {
            self.prefetch_fill(core, domain, pf_level, access.line, sector);
            if pf_level != 0 {
                self.level_access(core, domain, 0, access.line, sector, Request::Prefetch);
            }
            return;
        }

        let request = if access.write {
            Request::Store
        } else {
            Request::Load
        };

        // Walk the hierarchy innermost first; deeper levels see plain
        // demand loads (write-allocate turns stores into fills).
        for level in 0..self.num_levels {
            let req = if level == 0 { request } else { Request::Load };
            match self.level_access(core, domain, level, access.line, sector, req) {
                Outcome::Hit { .. } => break,
                Outcome::Miss { .. } => {
                    if level + 1 == self.num_levels {
                        self.cores[core].l2_demand_misses += 1;
                    }
                }
                Outcome::WritebackMiss => unreachable!("demand requests allocate"),
            }
        }

        // Train the prefetcher on the demand line stream. Training sees
        // every demand access (not only L1 misses): otherwise the
        // prefetcher's own L1 fills would hide the stream it is following.
        let mut pf_buf = std::mem::take(&mut self.cores[core].pf_buf);
        pf_buf.clear();
        self.cores[core]
            .prefetcher
            .observe(access.line, &mut pf_buf);
        let l1_window = access.line + self.cfg.prefetch.l1_distance as u64;
        for &pf_line in &pf_buf {
            self.prefetch_fill(core, domain, pf_level, pf_line, sector);
            if self.cfg.prefetch.l1_distance > 0 && pf_line <= l1_window {
                self.level_access(core, domain, 0, pf_line, sector, Request::Prefetch);
            }
        }
        self.cores[core].pf_buf = pf_buf;
    }

    /// Fills a prefetched line into `level` and every level below it down
    /// to the last: the fill path is memory → LLC → ... → `level`. On a
    /// two-level machine this is exactly one L2 access; on deeper
    /// hierarchies it keeps LLC fill counters equal to memory traffic.
    fn prefetch_fill(&mut self, core: usize, domain: usize, level: usize, line: u64, sector: u8) {
        for l in (level..self.num_levels).rev() {
            self.level_access(core, domain, l, line, sector, Request::Prefetch);
        }
    }

    /// Zeroes all event counters while keeping cache and prefetcher state
    /// (used to discard the warm-up iteration).
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            for l in &mut core.privates {
                l.reset_stats();
            }
            core.l2_demand_misses = 0;
        }
        for chain in &mut self.domains {
            for l in chain {
                l.reset_stats();
            }
        }
        self.direct_memory_writebacks.fill(0);
    }

    /// Aggregates all counters into a [`PmuSnapshot`]: `l1d_*` from the
    /// innermost level, `l2d_*` from the last level, intermediate levels
    /// in `mid_level_refill`.
    pub fn pmu(&self) -> PmuSnapshot {
        let mut snap = PmuSnapshot {
            mid_level_refill: vec![0; self.num_levels.saturating_sub(2)],
            ..PmuSnapshot::default()
        };
        for core in &self.cores {
            let s = core.privates[0].stats();
            snap.l1d_cache_refill += s.fills();
            snap.l1d_demand_misses += s.demand_misses;
            snap.evicted_unused_prefetches += s.evicted_unused_prefetches;
            snap.per_core_l1_demand_misses.push(s.demand_misses);
            snap.per_core_l2_demand_misses.push(core.l2_demand_misses);
            for (mid, l) in core.privates[1..].iter().enumerate() {
                snap.mid_level_refill[mid] += l.stats().fills();
                snap.evicted_unused_prefetches += l.stats().evicted_unused_prefetches;
            }
        }
        let shared_levels = self.num_levels - self.num_private;
        for (chain, &direct_wb) in self.domains.iter().zip(&self.direct_memory_writebacks) {
            for (pos, l) in chain[..shared_levels - 1].iter().enumerate() {
                let mid = self.num_private - 1 + pos;
                snap.mid_level_refill[mid] += l.stats().fills();
                snap.evicted_unused_prefetches += l.stats().evicted_unused_prefetches;
            }
            let s = chain[shared_levels - 1].stats();
            snap.l2d_cache_refill += s.fills();
            snap.l2d_cache_refill_dm += s.demand_misses;
            snap.l2d_cache_refill_prf += s.prefetch_fills;
            snap.l2d_cache_wb += s.writebacks + direct_wb;
            snap.evicted_unused_prefetches += s.evicted_unused_prefetches;
            snap.per_domain_l2_refill.push(s.fills());
            snap.per_domain_l2_wb.push(s.writebacks + direct_wb);
        }
        snap
    }

    /// Direct read access to a domain's last-level cache (tests,
    /// diagnostics).
    pub fn l2(&self, domain: usize) -> &Cache {
        self.domains[domain].last().expect("shared last level")
    }

    /// Direct read access to a core's innermost cache (tests,
    /// diagnostics).
    pub fn l1(&self, core: usize) -> &Cache {
        &self.cores[core].privates[0]
    }
}

/// Which cores share each instance of simulator level `level` under
/// `hier` — a convenience re-export of the hierarchy's scope used by
/// diagnostics.
pub fn level_scope(hier: &HierarchyConfig, level: usize) -> LevelScope {
    hier.level(level).scope
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, PrefetchConfig};
    use memtrace::Array;

    fn tiny_machine(sector1_ways: usize, prefetch: bool) -> Machine {
        let mut cfg = MachineConfig::a64fx_scaled(64).with_cores(2);
        cfg.cores_per_domain = 2;
        if sector1_ways > 0 {
            cfg = cfg.with_l2_sector(sector1_ways);
        }
        if !prefetch {
            cfg = cfg.with_prefetch(PrefetchConfig::off());
        }
        Machine::new(cfg, ArraySet::MATRIX_STREAM)
    }

    #[test]
    fn sector_assignment_follows_array_set() {
        let m = tiny_machine(2, false);
        assert_eq!(m.sector_of(&Access::load(0, Array::A)), 1);
        assert_eq!(m.sector_of(&Access::load(0, Array::ColIdx)), 1);
        assert_eq!(m.sector_of(&Access::load(0, Array::X)), 0);
        assert_eq!(m.sector_of(&Access::load(0, Array::RowPtr)), 0);
    }

    #[test]
    fn l1_hit_generates_no_l2_traffic() {
        let mut m = tiny_machine(0, false);
        m.demand_access(0, Access::load(7, Array::X));
        let after_first = m.pmu().l2d_cache_refill;
        m.demand_access(0, Access::load(7, Array::X));
        assert_eq!(m.pmu().l2d_cache_refill, after_first);
        assert_eq!(m.pmu().l1d_demand_misses, 1);
    }

    #[test]
    fn l1_miss_l2_hit_refills_l1_only() {
        let mut m = tiny_machine(0, false);
        // Core 0 loads the line into its L1 and the shared L2.
        m.demand_access(0, Access::load(7, Array::X));
        // Core 1 (same domain) misses L1, hits L2.
        m.demand_access(1, Access::load(7, Array::X));
        let p = m.pmu();
        assert_eq!(p.l1d_demand_misses, 2);
        assert_eq!(p.l2d_cache_refill, 1);
        assert_eq!(p.per_core_l2_demand_misses, vec![1, 0]);
    }

    #[test]
    fn dirty_lines_propagate_writebacks() {
        let mut m = tiny_machine(0, false);
        let l1_lines = m.config().l1.total_lines() as u64;
        let sets = m.config().l1.num_sets() as u64;
        // Store to a line, then stream enough conflicting lines through the
        // same L1 set to force the dirty victim out.
        m.demand_access(0, Access::store(0, Array::Y));
        for i in 1..=m.config().l1.ways as u64 {
            m.demand_access(0, Access::load(i * sets, Array::X));
        }
        // The dirty line was written back into the L2 (present there), so
        // no direct memory writeback and no L2 writeback yet.
        let p = m.pmu();
        assert_eq!(p.l2d_cache_wb, 0);
        assert!(p.l1d_demand_misses >= m.config().l1.ways as u64);
        let _ = l1_lines;
    }

    #[test]
    fn prefetcher_fills_l2_ahead_of_stream() {
        let mut m = tiny_machine(0, true);
        // Walk a long ascending line stream.
        for l in 0..32u64 {
            m.demand_access(0, Access::load(l, Array::A));
        }
        let p = m.pmu();
        assert!(p.l2d_cache_refill_prf > 0, "prefetch fills expected");
        // Prefetched lines beyond the demand frontier are resident in L2.
        assert!(m
            .l2(0)
            .contains(32 + m.config().prefetch.l2_distance as u64 - 1));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = tiny_machine(0, false);
        m.demand_access(0, Access::load(5, Array::X));
        m.reset_stats();
        assert_eq!(m.pmu().l2d_cache_refill, 0);
        // Still resident: re-access hits both levels.
        m.demand_access(0, Access::load(5, Array::X));
        let p = m.pmu();
        assert_eq!(p.l1d_demand_misses, 0);
        assert_eq!(p.l2d_cache_refill, 0);
    }

    #[test]
    fn domains_are_independent() {
        let mut cfg = MachineConfig::a64fx_scaled(64).with_cores(4);
        cfg.cores_per_domain = 2;
        let mut m = Machine::new(cfg, ArraySet::EMPTY);
        // Core 0 (domain 0) and core 2 (domain 1) load the same line: each
        // domain fetches its own copy — the paper's §3.1 replication note.
        m.demand_access(0, Access::load(9, Array::X));
        m.demand_access(2, Access::load(9, Array::X));
        let p = m.pmu();
        assert_eq!(p.l2d_cache_refill, 2);
        assert_eq!(p.per_domain_l2_refill, vec![1, 1]);
        assert!(m.l2(0).contains(9) && m.l2(1).contains(9));
    }

    /// For any two-level hierarchy, `from_hierarchy` and `new` must be
    /// the same machine access for access — this equivalence is what lets
    /// the a64fx preset stay byte-identical through the refactor.
    #[test]
    fn two_level_hierarchy_matches_machine_config_path() {
        let mut cfg = MachineConfig::a64fx_scaled(64)
            .with_cores(2)
            .with_l2_sector(3);
        cfg.cores_per_domain = 2;
        let hier = cfg.to_hierarchy("pin");
        let mut a = Machine::new(cfg, ArraySet::MATRIX_STREAM);
        let mut b = Machine::from_hierarchy(&hier, ArraySet::MATRIX_STREAM);
        let mut line = 0u64;
        for step in 0..4000u64 {
            // A mix of streams, stores and set conflicts on both cores.
            let core = (step % 2) as usize;
            let access = match step % 5 {
                0 => Access::load(line, Array::A),
                1 => Access::load(step * 13 % 97, Array::X),
                2 => Access::store(step % 11, Array::Y),
                3 => Access::load(line, Array::ColIdx),
                _ => {
                    line += 1;
                    Access::load(step * 7 % 51, Array::RowPtr)
                }
            };
            a.demand_access(core, access);
            b.demand_access(core, access);
        }
        assert_eq!(a.pmu(), b.pmu());
    }

    /// The three-level generic-x86 preset simulates end to end; the
    /// middle level filters traffic between L1 misses and LLC fills.
    #[test]
    fn three_level_machine_filters_through_mid_level() {
        let hier = HierarchyConfig::generic_x86().scaled(64).with_cores(2);
        let mut m = Machine::from_hierarchy(&hier, ArraySet::EMPTY);
        assert_eq!(m.num_levels(), 3);
        for l in 0..256u64 {
            m.demand_access(0, Access::load(l % 96, Array::X));
        }
        let p = m.pmu();
        assert_eq!(p.mid_level_refill.len(), 1);
        assert!(p.mid_level_refill[0] > 0, "mid level sees fills");
        assert!(p.l1d_cache_refill >= p.mid_level_refill[0]);
        // Working set fits in the scaled L3, so it holds every line.
        assert!(p.l2d_cache_refill <= 96 + hier.prefetch.l2_distance as u64);
    }

    /// Dirty victims of a middle level land in the level below it, not in
    /// memory, as long as the line is still resident there.
    #[test]
    fn mid_level_victims_write_back_into_llc() {
        let hier = HierarchyConfig::generic_x86().scaled(64).with_cores(1);
        let mut m = Machine::from_hierarchy(&hier, ArraySet::EMPTY);
        let l2_lines = hier.level(1).geometry.total_lines() as u64;
        // Dirty many lines, then stream far past the L2 capacity.
        for l in 0..l2_lines * 4 {
            m.demand_access(0, Access::store(l, Array::Y));
        }
        let p = m.pmu();
        // All writeback traffic stayed inside the hierarchy (the scaled
        // L3 is big enough to hold evicted dirty lines).
        assert_eq!(p.l2d_cache_wb, 0);
        assert!(p.mid_level_refill[0] > 0);
    }
}
