//! The simulated machine: private L1Ds, shared per-domain L2s, prefetchers.
//!
//! Request flow for a demand access from core `c`:
//!
//! 1. The access's array determines its **sector ID** (the paper's
//!    Listing 1 tags `a`/`colidx` with sector 1 via compiler directives).
//! 2. L1D lookup. A dirty L1 victim is written back to the domain's L2.
//! 3. On L1 miss, the domain's L2 is accessed as a demand request; a dirty
//!    L2 victim counts as a memory writeback.
//! 4. The core's stream prefetcher trains on the L1 demand-miss line
//!    stream (the sequence of lines the L2 sees). Prefetched lines are
//!    filled into L2 with the sector of the triggering access, and —
//!    within the shorter L1 distance — into the L1 as well.
//!
//! Caches are non-inclusive write-back/write-allocate; writebacks never
//! allocate. The model is deliberately minimal: everything the paper's
//! evaluation needs (miss counts per level, demand vs. prefetch fills,
//! writeback traffic, premature prefetch eviction) emerges from this flow.

use crate::cache::{Cache, Outcome, Request};
use crate::config::MachineConfig;
use crate::counters::PmuSnapshot;
use crate::prefetch::StreamPrefetcher;
use memtrace::{Access, ArraySet};

struct Core {
    l1: Cache,
    prefetcher: StreamPrefetcher,
    /// Scratch buffer for prefetch emissions.
    pf_buf: Vec<u64>,
    /// L2 demand misses attributed to this core.
    l2_demand_misses: u64,
}

/// The simulated A64FX machine.
pub struct Machine {
    cfg: MachineConfig,
    sector1: ArraySet,
    cores: Vec<Core>,
    domains: Vec<Cache>,
    /// Per-domain writebacks that missed L2 and went straight to memory.
    /// Still memory traffic from that domain, so they count toward both
    /// the aggregate `L2D_CACHE_WB` and the domain's writeback row.
    direct_memory_writebacks: Vec<u64>,
}

impl Machine {
    /// Builds a machine with the given configuration; arrays in `sector1`
    /// are tagged with sector ID 1 on every memory request.
    pub fn new(cfg: MachineConfig, sector1: ArraySet) -> Self {
        let cores = (0..cfg.num_cores)
            .map(|_| Core {
                l1: Cache::new(cfg.l1, cfg.l1_sector, cfg.replacement),
                prefetcher: if cfg.prefetch.enabled {
                    StreamPrefetcher::new(cfg.prefetch.streams, cfg.prefetch.l2_distance)
                } else {
                    StreamPrefetcher::off()
                },
                pf_buf: Vec::new(),
                l2_demand_misses: 0,
            })
            .collect();
        let domains = (0..cfg.num_domains())
            .map(|_| Cache::new(cfg.l2, cfg.l2_sector, cfg.replacement))
            .collect();
        let num_domains = cfg.num_domains();
        Machine {
            cfg,
            sector1,
            cores,
            domains,
            direct_memory_writebacks: vec![0; num_domains],
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Sector ID for an access, from the machine's array assignment.
    #[inline]
    pub fn sector_of(&self, access: &Access) -> u8 {
        u8::from(self.sector1.contains(access.array))
    }

    /// Performs one demand access on behalf of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn demand_access(&mut self, core: usize, access: Access) {
        let sector = self.sector_of(&access);
        let domain = self.cfg.domain_of(core);

        // Software-prefetch hints warm the L2 (and L1) without demanding
        // data, stalling, or training the hardware prefetcher.
        if access.sw_prefetch {
            self.domains[domain].access(access.line, sector, Request::Prefetch);
            if let Outcome::Miss {
                writeback: Some(victim),
                ..
            } = self.cores[core]
                .l1
                .access(access.line, sector, Request::Prefetch)
            {
                self.writeback_to_l2(domain, victim);
            }
            return;
        }

        let request = if access.write {
            Request::Store
        } else {
            Request::Load
        };

        let l1_outcome = self.cores[core].l1.access(access.line, sector, request);
        let l1_missed = match l1_outcome {
            Outcome::Hit { .. } => false,
            Outcome::Miss { writeback, .. } => {
                if let Some(victim) = writeback {
                    self.writeback_to_l2(domain, victim);
                }
                true
            }
            Outcome::WritebackMiss => unreachable!("demand requests allocate"),
        };

        if l1_missed {
            // L1 miss -> demand request to the shared L2.
            let l2_outcome = self.domains[domain].access(access.line, sector, Request::Load);
            if matches!(l2_outcome, Outcome::Miss { .. }) {
                self.cores[core].l2_demand_misses += 1;
            }
        }

        // Train the prefetcher on the demand line stream. Training sees
        // every demand access (not only L1 misses): otherwise the
        // prefetcher's own L1 fills would hide the stream it is following.
        let mut pf_buf = std::mem::take(&mut self.cores[core].pf_buf);
        pf_buf.clear();
        self.cores[core]
            .prefetcher
            .observe(access.line, &mut pf_buf);
        let l1_window = access.line + self.cfg.prefetch.l1_distance as u64;
        for &pf_line in &pf_buf {
            self.domains[domain].access(pf_line, sector, Request::Prefetch);
            if self.cfg.prefetch.l1_distance > 0 && pf_line <= l1_window {
                if let Outcome::Miss {
                    writeback: Some(victim),
                    ..
                } = self.cores[core]
                    .l1
                    .access(pf_line, sector, Request::Prefetch)
                {
                    self.writeback_to_l2(domain, victim);
                }
            }
        }
        self.cores[core].pf_buf = pf_buf;
    }

    fn writeback_to_l2(&mut self, domain: usize, line: u64) {
        if self.domains[domain].access(line, 0, Request::Writeback) == Outcome::WritebackMiss {
            self.direct_memory_writebacks[domain] += 1;
        }
    }

    /// Zeroes all event counters while keeping cache and prefetcher state
    /// (used to discard the warm-up iteration).
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.l1.reset_stats();
            core.l2_demand_misses = 0;
        }
        for l2 in &mut self.domains {
            l2.reset_stats();
        }
        self.direct_memory_writebacks.fill(0);
    }

    /// Aggregates all counters into a [`PmuSnapshot`].
    pub fn pmu(&self) -> PmuSnapshot {
        let mut snap = PmuSnapshot::default();
        for core in &self.cores {
            let s = core.l1.stats();
            snap.l1d_cache_refill += s.fills();
            snap.l1d_demand_misses += s.demand_misses;
            snap.evicted_unused_prefetches += s.evicted_unused_prefetches;
            snap.per_core_l1_demand_misses.push(s.demand_misses);
            snap.per_core_l2_demand_misses.push(core.l2_demand_misses);
        }
        for (l2, &direct_wb) in self.domains.iter().zip(&self.direct_memory_writebacks) {
            let s = l2.stats();
            snap.l2d_cache_refill += s.fills();
            snap.l2d_cache_refill_dm += s.demand_misses;
            snap.l2d_cache_refill_prf += s.prefetch_fills;
            snap.l2d_cache_wb += s.writebacks + direct_wb;
            snap.evicted_unused_prefetches += s.evicted_unused_prefetches;
            snap.per_domain_l2_refill.push(s.fills());
            snap.per_domain_l2_wb.push(s.writebacks + direct_wb);
        }
        snap
    }

    /// Direct read access to a domain's L2 (tests, diagnostics).
    pub fn l2(&self, domain: usize) -> &Cache {
        &self.domains[domain]
    }

    /// Direct read access to a core's L1 (tests, diagnostics).
    pub fn l1(&self, core: usize) -> &Cache {
        &self.cores[core].l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, PrefetchConfig};
    use memtrace::Array;

    fn tiny_machine(sector1_ways: usize, prefetch: bool) -> Machine {
        let mut cfg = MachineConfig::a64fx_scaled(64).with_cores(2);
        cfg.cores_per_domain = 2;
        if sector1_ways > 0 {
            cfg = cfg.with_l2_sector(sector1_ways);
        }
        if !prefetch {
            cfg = cfg.with_prefetch(PrefetchConfig::off());
        }
        Machine::new(cfg, ArraySet::MATRIX_STREAM)
    }

    #[test]
    fn sector_assignment_follows_array_set() {
        let m = tiny_machine(2, false);
        assert_eq!(m.sector_of(&Access::load(0, Array::A)), 1);
        assert_eq!(m.sector_of(&Access::load(0, Array::ColIdx)), 1);
        assert_eq!(m.sector_of(&Access::load(0, Array::X)), 0);
        assert_eq!(m.sector_of(&Access::load(0, Array::RowPtr)), 0);
    }

    #[test]
    fn l1_hit_generates_no_l2_traffic() {
        let mut m = tiny_machine(0, false);
        m.demand_access(0, Access::load(7, Array::X));
        let after_first = m.pmu().l2d_cache_refill;
        m.demand_access(0, Access::load(7, Array::X));
        assert_eq!(m.pmu().l2d_cache_refill, after_first);
        assert_eq!(m.pmu().l1d_demand_misses, 1);
    }

    #[test]
    fn l1_miss_l2_hit_refills_l1_only() {
        let mut m = tiny_machine(0, false);
        // Core 0 loads the line into its L1 and the shared L2.
        m.demand_access(0, Access::load(7, Array::X));
        // Core 1 (same domain) misses L1, hits L2.
        m.demand_access(1, Access::load(7, Array::X));
        let p = m.pmu();
        assert_eq!(p.l1d_demand_misses, 2);
        assert_eq!(p.l2d_cache_refill, 1);
        assert_eq!(p.per_core_l2_demand_misses, vec![1, 0]);
    }

    #[test]
    fn dirty_lines_propagate_writebacks() {
        let mut m = tiny_machine(0, false);
        let l1_lines = m.config().l1.total_lines() as u64;
        let sets = m.config().l1.num_sets() as u64;
        // Store to a line, then stream enough conflicting lines through the
        // same L1 set to force the dirty victim out.
        m.demand_access(0, Access::store(0, Array::Y));
        for i in 1..=m.config().l1.ways as u64 {
            m.demand_access(0, Access::load(i * sets, Array::X));
        }
        // The dirty line was written back into the L2 (present there), so
        // no direct memory writeback and no L2 writeback yet.
        let p = m.pmu();
        assert_eq!(p.l2d_cache_wb, 0);
        assert!(p.l1d_demand_misses >= m.config().l1.ways as u64);
        let _ = l1_lines;
    }

    #[test]
    fn prefetcher_fills_l2_ahead_of_stream() {
        let mut m = tiny_machine(0, true);
        // Walk a long ascending line stream.
        for l in 0..32u64 {
            m.demand_access(0, Access::load(l, Array::A));
        }
        let p = m.pmu();
        assert!(p.l2d_cache_refill_prf > 0, "prefetch fills expected");
        // Prefetched lines beyond the demand frontier are resident in L2.
        assert!(m
            .l2(0)
            .contains(32 + m.config().prefetch.l2_distance as u64 - 1));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = tiny_machine(0, false);
        m.demand_access(0, Access::load(5, Array::X));
        m.reset_stats();
        assert_eq!(m.pmu().l2d_cache_refill, 0);
        // Still resident: re-access hits both levels.
        m.demand_access(0, Access::load(5, Array::X));
        let p = m.pmu();
        assert_eq!(p.l1d_demand_misses, 0);
        assert_eq!(p.l2d_cache_refill, 0);
    }

    #[test]
    fn domains_are_independent() {
        let mut cfg = MachineConfig::a64fx_scaled(64).with_cores(4);
        cfg.cores_per_domain = 2;
        let mut m = Machine::new(cfg, ArraySet::EMPTY);
        // Core 0 (domain 0) and core 2 (domain 1) load the same line: each
        // domain fetches its own copy — the paper's §3.1 replication note.
        m.demand_access(0, Access::load(9, Array::X));
        m.demand_access(2, Access::load(9, Array::X));
        let p = m.pmu();
        assert_eq!(p.l2d_cache_refill, 2);
        assert_eq!(p.per_domain_l2_refill, vec![1, 1]);
        assert!(m.l2(0).contains(9) && m.l2(1).contains(9));
    }
}
