//! Trace-driven tests of the `counters` aggregation helpers on
//! multi-domain simulations: the per-core and per-domain vectors a real
//! SpMV replay produces must sum to the aggregate counters, and the
//! `max_*` critical-path helpers must agree with the vectors they reduce.

use a64fx::config::{MachineConfig, PrefetchConfig};
use a64fx::sim_spmv::simulate_spmv;
use memtrace::ArraySet;
use sparsemat::{CooMatrix, CsrMatrix};

/// Random streaming matrix: CSR arrays far exceed the scaled L2.
fn streaming_matrix(rows: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut state = seed | 1;
    let mut coo = CooMatrix::new(rows, rows);
    for r in 0..rows {
        for _ in 0..nnz_per_row {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            coo.push(r, ((state >> 33) as usize) % rows, 1.0);
        }
    }
    coo.to_csr()
}

/// 8 threads on 2-core domains: a 4-domain machine.
fn cfg_multi_domain() -> MachineConfig {
    let mut cfg = MachineConfig::a64fx_scaled(64)
        .with_cores(8)
        .with_prefetch(PrefetchConfig::off());
    cfg.cores_per_domain = 2;
    cfg
}

#[test]
fn per_core_and_per_domain_vectors_sum_to_aggregates() {
    let m = streaming_matrix(8192, 8, 11);
    let cfg = cfg_multi_domain();
    assert_eq!(cfg.num_domains(), 4);
    let r = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 8, 1);
    let pmu = &r.pmu;

    assert_eq!(pmu.per_core_l1_demand_misses.len(), 8);
    assert_eq!(pmu.per_core_l2_demand_misses.len(), 8);
    assert_eq!(pmu.per_domain_l2_refill.len(), 4);
    assert_eq!(pmu.per_domain_l2_wb.len(), 4);

    // Attribution must conserve the aggregate counters exactly.
    assert_eq!(
        pmu.per_core_l1_demand_misses.iter().sum::<u64>(),
        pmu.l1d_demand_misses
    );
    assert_eq!(
        pmu.per_core_l2_demand_misses.iter().sum::<u64>(),
        pmu.l2d_cache_refill_dm
    );
    assert_eq!(
        pmu.per_domain_l2_refill.iter().sum::<u64>(),
        pmu.l2d_cache_refill
    );
    assert_eq!(pmu.per_domain_l2_wb.iter().sum::<u64>(), pmu.l2d_cache_wb);

    // Every domain sees work on this matrix: a zero row would mean the
    // domain mapping dropped cores.
    assert!(pmu.per_domain_l2_refill.iter().all(|&r| r > 0));
}

#[test]
fn max_helpers_agree_with_their_vectors() {
    let m = streaming_matrix(6144, 6, 29);
    let cfg = cfg_multi_domain();
    let r = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 8, 1);
    let pmu = &r.pmu;
    let line = cfg.l2.line_bytes as u64;

    assert_eq!(
        pmu.max_core_l1_demand_misses(),
        *pmu.per_core_l1_demand_misses.iter().max().unwrap()
    );
    assert_eq!(
        pmu.max_core_l2_demand_misses(),
        *pmu.per_core_l2_demand_misses.iter().max().unwrap()
    );
    let expect_max_domain_bytes = pmu
        .per_domain_l2_refill
        .iter()
        .zip(&pmu.per_domain_l2_wb)
        .map(|(&re, &wb)| (re + wb) * line)
        .max()
        .unwrap();
    assert_eq!(
        pmu.max_domain_memory_bytes(cfg.l2.line_bytes),
        expect_max_domain_bytes
    );

    // The critical-path maxima bound the aggregate identities: max over
    // cores is at least the mean, and the domain maximum is at least
    // total traffic divided by the domain count.
    let domains = pmu.per_domain_l2_refill.len() as u64;
    assert!(pmu.max_core_l2_demand_misses() * 8 >= pmu.l2d_cache_refill_dm);
    assert!(
        pmu.max_domain_memory_bytes(cfg.l2.line_bytes) * domains
            >= pmu.memory_bytes(cfg.l2.line_bytes)
    );
}

#[test]
fn refill_splits_into_demand_and_prefetch() {
    // With the prefetcher ON, refills split across demand and prefetch
    // and the PMU identity REFILL == REFILL_DM + REFILL_PRF must hold on
    // a real multi-domain trace.
    let m = streaming_matrix(8192, 8, 5);
    let mut cfg = MachineConfig::a64fx_scaled(64).with_cores(8);
    cfg.cores_per_domain = 2;
    let r = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 8, 1);
    let pmu = &r.pmu;
    assert_eq!(
        pmu.l2d_cache_refill,
        pmu.l2d_cache_refill_dm + pmu.l2d_cache_refill_prf
    );
    assert!(
        pmu.l2d_cache_refill_prf > 0,
        "prefetcher generated no fills"
    );
    // The paper's miss formula reduces to REFILL with the simulator's
    // always-zero swap/merge artefact counters.
    assert_eq!(pmu.l2_misses(), pmu.l2d_cache_refill);
}
