//! Capacity-independent reuse profiles: compute once, evaluate per setting.
//!
//! Both prediction methods factor into an expensive *trace analysis* that
//! depends only on the sparsity pattern, the thread count, and the machine
//! *shape* (line size, cores per domain) — and a cheap *capacity
//! evaluation* that additionally depends on the cache geometry and the
//! [`SectorSetting`]. This module makes the split explicit:
//!
//! * [`LocalityProfile::compute`] runs the trace machinery and distills it
//!   into reuse-distance histograms (method A) or `(RD, gap)` pair counts
//!   (method B) — Eq. (1)'s insight that a reuse histogram determines LRU
//!   misses for *every* capacity at once;
//! * [`LocalityProfile::evaluate`] turns a profile into [`Prediction`]s
//!   for any sector-setting sweep in time independent of the trace length.
//!
//! [`method_a::predict`](crate::method_a::predict) and
//! [`method_b::predict`](crate::method_b::predict) are thin wrappers over
//! this pair, so profiles are guaranteed to reproduce their results. The
//! batch engine (`locality-engine`) memoizes profiles keyed by matrix
//! fingerprint, which is what makes corpus-scale sector sweeps cheap:
//! seven settings share one trace analysis instead of re-deriving it.

use crate::analytic::{scale_part0, scale_unpart, StreamTerms};
use crate::concurrent::{thread_partition, DomainCursors, DomainTraces};
use crate::predict::{Method, Prediction, SectorSetting};
use a64fx::MachineConfig;
use memtrace::sink::{PackedVecSink, TeeSink};
use memtrace::spmv_trace::trace_spmv_partitioned;
use memtrace::xtrace::trace_x_partitioned;
use memtrace::{
    Access, AccessBlock, Array, ArraySet, BlockSink, BlockTee, DataLayout, PackedAccess,
    SpmvWorkload, TraceCursor, TraceSink, BLOCK_REFS,
};
use reuse::{ExactStack, LineTable, MarkerStack, QuantizedCounts, ReuseHistogram};
use sparsemat::{CsrMatrix, RowPartition};
use std::collections::HashMap;

/// One NUMA domain's share of the workload (for the analytic terms and
/// working-set fit checks of method B) — a [`memtrace::WorkShare`] in the
/// model's units (`rows`, `x_refs`, `meta_elems`).
pub use memtrace::WorkShare as DomainShare;

/// Per-array reuse histograms of one routed reference stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArrayHistograms {
    /// One histogram per [`Array`] (indexed by `Array as usize`),
    /// recording the measured (steady-state) iteration only.
    pub by_array: [ReuseHistogram; 5],
}

impl ArrayHistograms {
    /// Misses of a fully associative LRU partition of `capacity` lines,
    /// summed over arrays.
    pub fn misses(&self, capacity: usize) -> u64 {
        self.by_array.iter().map(|h| h.misses(capacity)).sum()
    }

    /// Misses attributed to one array at `capacity` lines.
    pub fn misses_of(&self, array: Array, capacity: usize) -> u64 {
        self.by_array[array as usize].misses(capacity)
    }

    fn merge(&mut self, other: &ArrayHistograms) {
        for (mine, theirs) in self.by_array.iter_mut().zip(&other.by_array) {
            mine.merge(theirs);
        }
    }
}

/// Trace sink recording steady-state reuse distances of a two-partition
/// routed stream into per-array histograms.
struct HistogramSink {
    sector1: ArraySet,
    stack0: ExactStack,
    stack1: ExactStack,
    hist0: ArrayHistograms,
    hist1: ArrayHistograms,
    recording: bool,
}

impl HistogramSink {
    /// Creates a routed sink whose two stacks are sized from the *actual*
    /// access counts each will see (partition 1 receives only `a` and
    /// `colidx` references — `4·nnz` over warm-up plus measured — not the
    /// full trace length the old `expected_len.min(1024)` heuristic
    /// assumed).
    fn new(sector1: ArraySet, expected0: usize, expected1: usize) -> Self {
        HistogramSink {
            sector1,
            stack0: ExactStack::with_capacity(expected0),
            stack1: ExactStack::with_capacity(expected1),
            hist0: ArrayHistograms::default(),
            hist1: ArrayHistograms::default(),
            recording: false,
        }
    }

    /// Like [`new`](Self::new), but additionally pre-sizes both stacks'
    /// line tables for the distinct-line bounds of the stream each will
    /// see, so neither rehashes mid-trace.
    fn with_line_capacity(
        sector1: ArraySet,
        expected0: usize,
        expected1: usize,
        lines0: usize,
        lines1: usize,
    ) -> Self {
        HistogramSink {
            sector1,
            stack0: ExactStack::with_line_capacity(expected0, lines0),
            stack1: ExactStack::with_line_capacity(expected1, lines1),
            hist0: ArrayHistograms::default(),
            hist1: ArrayHistograms::default(),
            recording: false,
        }
    }

    /// Reports both stacks' statistics to the telemetry counters.
    fn flush_obs(&self) {
        self.stack0.flush_obs();
        self.stack1.flush_obs();
    }
}

impl TraceSink for HistogramSink {
    fn access(&mut self, access: Access) {
        let (stack, hist) = if self.sector1.contains(access.array) {
            (&mut self.stack1, &mut self.hist1)
        } else {
            (&mut self.stack0, &mut self.hist0)
        };
        let distance = stack.access(access.line);
        if self.recording {
            hist.by_array[access.array as usize].record(distance);
        }
    }
}

/// Trace sink classifying a two-partition routed stream against fixed
/// capacity grids with [`MarkerStack`]s — O(#capacities) per reference,
/// no Fenwick log factor. A stack is only instantiated for a routing that
/// tracks at least one capacity.
struct MarkerSink {
    sector1: ArraySet,
    stack0: Option<MarkerStack>,
    stack1: Option<MarkerStack>,
    // Per-block routing scratch, reused across consume() calls.
    buf0: Vec<PackedAccess>,
    buf1: Vec<PackedAccess>,
}

impl MarkerSink {
    /// Line-universe bound above which stacks fall back from the
    /// direct-mapped line index (4 bytes per line of the whole layout,
    /// touched or not) to the pre-sized hash table. 4M lines = 16 MiB
    /// per stack; every paper-scale layout is far below this.
    const DENSE_LINE_LIMIT: usize = 1 << 22;

    /// Creates a routed sink for a layout whose line ids all lie below
    /// `universe` ([`DataLayout`] numbers lines densely, so
    /// `layout.total_lines()` is that bound). Small universes get the
    /// direct-mapped line index — one indexed load per probe; huge ones
    /// fall back to hash tables pre-sized for the distinct-line bounds
    /// of the stream each partition will see (`lines0`/`lines1`), so the
    /// hot loop never rehashes either way.
    fn new(
        sector1: ArraySet,
        caps0: &[usize],
        caps1: &[usize],
        lines0: usize,
        lines1: usize,
        universe: usize,
    ) -> Self {
        let mk = |caps: &[usize], lines: usize| {
            (!caps.is_empty()).then(|| {
                if universe <= Self::DENSE_LINE_LIMIT {
                    MarkerStack::with_line_universe(caps, universe)
                } else {
                    MarkerStack::with_line_capacity(caps, lines)
                }
            })
        };
        MarkerSink {
            sector1,
            stack0: mk(caps0, lines0),
            stack1: mk(caps1, lines1),
            buf0: Vec::with_capacity(BLOCK_REFS),
            buf1: Vec::with_capacity(BLOCK_REFS),
        }
    }

    /// Quantized counts of the partition-0 stack (`None` when the grid it
    /// would track is empty).
    fn counts0(&self) -> Option<QuantizedCounts> {
        self.stack0.as_ref().map(|s| s.counts())
    }

    /// Quantized counts of the partition-1 stack.
    fn counts1(&self) -> Option<QuantizedCounts> {
        self.stack1.as_ref().map(|s| s.counts())
    }

    /// Total line-table rehashes across the instantiated stacks — the
    /// pre-sizing regression tests assert this stays zero.
    #[cfg(test)]
    fn index_rehashes(&self) -> u64 {
        self.stack0.as_ref().map_or(0, |s| s.index_rehashes())
            + self.stack1.as_ref().map_or(0, |s| s.index_rehashes())
    }

    /// Seeds both stacks with the warm-up stream's post-replay state from
    /// its last-access order (most recent first), routing each line to the
    /// partition its array belongs to. Counters stay zero — equivalent to
    /// replaying the warm-up and then resetting, per
    /// [`MarkerStack::seed_lru`]'s exactness argument.
    fn seed_lru(&mut self, order: &[(u64, Array)]) {
        let route = |sector1: ArraySet, want1: bool| -> Vec<u64> {
            order
                .iter()
                .filter(|(_, a)| sector1.contains(*a) == want1)
                .map(|&(line, _)| line)
                .collect()
        };
        if let Some(s) = &mut self.stack0 {
            s.seed_lru(&route(self.sector1, false));
        }
        if let Some(s) = &mut self.stack1 {
            s.seed_lru(&route(self.sector1, true));
        }
    }

    fn histograms(stack: &Option<MarkerStack>) -> ArrayHistograms {
        let mut h = ArrayHistograms::default();
        if let Some(s) = stack {
            for a in Array::ALL {
                h.by_array[a as usize] = s.quantized_histogram(a);
            }
        }
        h
    }

    fn histograms0(&self) -> ArrayHistograms {
        Self::histograms(&self.stack0)
    }

    fn histograms1(&self) -> ArrayHistograms {
        Self::histograms(&self.stack1)
    }

    /// Reports the instantiated stacks' statistics to the telemetry
    /// counters.
    fn flush_obs(&self) {
        if let Some(s) = &self.stack0 {
            s.flush_obs();
        }
        if let Some(s) = &self.stack1 {
            s.flush_obs();
        }
    }
}

impl TraceSink for MarkerSink {
    #[inline]
    fn access(&mut self, access: Access) {
        let stack = if self.sector1.contains(access.array) {
            &mut self.stack1
        } else {
            &mut self.stack0
        };
        if let Some(s) = stack {
            s.access(access.line, access.array);
        }
    }
}

impl MarkerSink {
    /// Routes a run of packed references (any length — block-sized on
    /// the streaming path, a whole buffered trace on the replay path)
    /// into the partition stacks.
    fn consume_refs(&mut self, refs: &[PackedAccess]) {
        // Unpartitioned routing: the whole run goes to stack 0 as-is —
        // no per-reference routing work at all.
        if self.sector1.is_empty() {
            if let Some(s) = &mut self.stack0 {
                s.access_block(refs);
            }
            return;
        }
        if self.stack0.is_none() && self.stack1.is_none() {
            return;
        }
        // Split the run by routing. The two stacks are independent, so
        // feeding each its subsequence preserves the per-ref semantics.
        self.buf0.clear();
        self.buf1.clear();
        for &p in refs {
            if self.sector1.contains(p.array()) {
                self.buf1.push(p);
            } else {
                self.buf0.push(p);
            }
        }
        if let Some(s) = &mut self.stack0 {
            s.access_block(&self.buf0);
        }
        if let Some(s) = &mut self.stack1 {
            s.access_block(&self.buf1);
        }
    }
}

impl BlockSink for MarkerSink {
    #[inline]
    fn consume(&mut self, block: &AccessBlock) {
        self.consume_refs(block.refs());
    }
}

/// Block sink recording each line's last access position in one pass —
/// the cheap warm-up replacement of the tracked pipeline. Global line ids
/// are dense (`DataLayout` packs the five arrays back to back), so the
/// scan is a direct store per reference: no hash probe, no stack work.
struct LastPosSink {
    /// `((pos + 1) << 3) | array` per global line id; 0 = untouched.
    last: Vec<u64>,
    pos: u64,
}

impl LastPosSink {
    fn new(total_lines: u64) -> Self {
        LastPosSink {
            last: vec![0; total_lines as usize],
            pos: 0,
        }
    }

    /// The touched lines in most-recently-accessed-first order, each with
    /// its array tag — the seed order for [`MarkerSink::seed_lru`].
    fn lru_order(&self) -> Vec<(u64, Array)> {
        let mut touched: Vec<(u64, u64)> = self
            .last
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(line, &v)| (v, line as u64))
            .collect();
        // Positions are unique, so this orders strictly by recency.
        touched.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        touched
            .into_iter()
            .map(|(v, line)| (line, Array::ALL[(v & 7) as usize]))
            .collect()
    }
}

impl BlockSink for LastPosSink {
    fn consume(&mut self, block: &AccessBlock) {
        for &p in block.refs() {
            self.pos += 1;
            self.last[p.line() as usize] = (self.pos << 3) | p.array() as u64;
        }
    }
}

/// Trace sink distilling the method (B) `x`-stream into `(RD, gap)` pair
/// counts on the fly — the streaming replacement for the materialise-
/// then-replay loop.
struct XPairSink {
    stack: ExactStack,
    last_seen: LineTable,
    pairs: HashMap<(u64, u64), u64>,
    cold: u64,
    now: u32,
    recording: bool,
}

impl XPairSink {
    /// Creates a sink sized for the expected trace length and the bound
    /// on distinct `x` lines the domain can touch, so neither the reuse
    /// stack's nor the gap table's hash table rehashes mid-trace.
    fn new(expected_len: usize, distinct_lines: usize) -> Self {
        XPairSink {
            stack: ExactStack::with_line_capacity(expected_len, distinct_lines),
            last_seen: LineTable::with_capacity(distinct_lines),
            pairs: HashMap::new(),
            cold: 0,
            now: 0,
            recording: false,
        }
    }

    /// Reports the reuse stack's and the gap table's statistics to the
    /// telemetry counters.
    fn flush_obs(&self) {
        self.stack.flush_obs();
        if obs::enabled() {
            let probes = self.last_seen.probe_stats();
            obs::add("reuse.linetable.entries", probes.entries);
            obs::add(
                "reuse.linetable.displacement_total",
                probes.total_displacement,
            );
            obs::gauge_max("reuse.linetable.displacement_max", probes.max_displacement);
            obs::gauge_max("reuse.linetable.slots_max", probes.slots);
            obs::add("reuse.linetable.rehashes", self.last_seen.rehashes());
            obs::observe("core.xpair.distinct_pairs", self.pairs.len() as u64);
        }
    }
}

impl TraceSink for XPairSink {
    fn access(&mut self, access: Access) {
        // The stack asserts the u32 time range before `now` can wrap.
        let rd = self.stack.access(access.line);
        let t = self.now;
        self.now += 1;
        let gap = self
            .last_seen
            .insert(access.line, t)
            .map(|prev| (t - prev) as u64);
        if self.recording {
            match (rd, gap) {
                (Some(rd), Some(g)) => *self.pairs.entry((rd, g)).or_insert(0) += 1,
                _ => self.cold += 1,
            }
        }
    }
}

/// The capacity grids a sweep (marker-quantized) profile is exact at.
///
/// Derived from a machine plus a sector-setting sweep: one grid per
/// routing (shared stream, Listing-1 partition 0, partition 1). A profile
/// carrying tracked capacities answers [`LocalityProfile::evaluate`]
/// *only* at these capacities (asserted); in exchange its trace analysis
/// runs on marker stacks instead of exact stacks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrackedCaps {
    /// Capacities queried against the unpartitioned routing.
    pub shared: Vec<usize>,
    /// Capacities queried against Listing-1 partition 0 (`x`/`y`/`rowptr`).
    pub part0: Vec<usize>,
    /// Capacities queried against Listing-1 partition 1 (`a`/`colidx`).
    pub part1: Vec<usize>,
}

impl TrackedCaps {
    /// The capacity grids `settings` will query under `cfg`.
    pub fn for_sweep(cfg: &MachineConfig, settings: &[SectorSetting]) -> Self {
        let mut t = TrackedCaps::default();
        for &s in settings {
            match s {
                SectorSetting::Off => t.shared.push(s.cap0_lines(cfg)),
                SectorSetting::L2Ways(_) => {
                    t.part0.push(s.cap0_lines(cfg));
                    t.part1.push(s.cap1_lines(cfg));
                }
            }
        }
        for grid in [&mut t.shared, &mut t.part0, &mut t.part1] {
            // Capacity 0 means "everything misses" — exact in any
            // histogram, so it needs no marker.
            grid.retain(|&c| c > 0);
            grid.sort_unstable();
            grid.dedup();
        }
        t
    }

    /// A cache-key discriminator for the grids. Never 0 — that value is
    /// reserved for capacity-independent (exact) profiles.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = reuse::fxhash::FxHasher::default();
        for grid in [&self.shared, &self.part0, &self.part1] {
            h.write_usize(grid.len());
            for &c in grid.iter() {
                h.write_usize(c);
            }
        }
        h.finish().max(1)
    }

    fn covers(grid: &[usize], cap: usize) -> bool {
        cap == 0 || grid.binary_search(&cap).is_ok()
    }
}

/// Method (A) profile: steady-state per-array reuse histograms under both
/// reference routings the paper evaluates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceProfile {
    /// Unpartitioned routing (sector cache off): all arrays in one stream.
    pub shared: ArrayHistograms,
    /// Listing-1 routing, partition 0: `x`, `y`, `rowptr`.
    pub part0: ArrayHistograms,
    /// Listing-1 routing, partition 1: `a`, `colidx`.
    pub part1: ArrayHistograms,
}

/// Method (B) profile: the measured-iteration `x`-trace distilled to
/// `(reuse distance, access gap)` pair counts (plus the cold tail).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XProfile {
    /// `(line reuse distance, access-count gap) -> occurrences`, summed
    /// over domains.
    pub pairs: Vec<((u64, u64), u64)>,
    /// Accesses cold in the measured iteration (counted as misses at
    /// every setting; cannot happen after a full warm-up, kept for
    /// fidelity with the streaming evaluation).
    pub cold: u64,
}

/// The method-specific payload of a [`LocalityProfile`].
//
// The variants differ in stack size, but there is exactly one of these
// per profile (and one partial per domain), never a collection of them —
// boxing the big variant would buy nothing and cost an indirection on
// every evaluation.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileKind {
    /// Method (A): full-trace histograms.
    Trace(TraceProfile),
    /// Method (B): `x`-trace pair counts.
    XTrace(XProfile),
}

/// A capacity-independent distillation of one matrix's trace analysis.
///
/// Valid for any [`SectorSetting`] sweep against a machine with the same
/// line size and cores-per-domain topology ([`Self::evaluate`] asserts
/// this); the cache *size* and way split may vary freely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalityProfile {
    method: Method,
    threads: usize,
    line_bytes: usize,
    cores_per_domain: usize,
    x_array_bytes: usize,
    y_row_bytes: usize,
    x_refs: usize,
    companion0_bytes: usize,
    domains: Vec<DomainShare>,
    tracked: Option<TrackedCaps>,
    kind: ProfileKind,
}

/// One L2 domain's contribution to a profile, produced by
/// [`ProfileBuilder::domain_partial`] and merged by
/// [`ProfileBuilder::finish`]. Domains are independent, so partials may be
/// computed on any thread in any order; merging in domain order keeps the
/// result identical to the sequential pipeline.
//
// Same trade-off as [`ProfileKind`]: a handful of instances per matrix,
// so the variant size gap is not worth a box.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainPartial {
    /// Method (A): one domain's histograms under both routings.
    Trace {
        /// Unpartitioned routing.
        shared: ArrayHistograms,
        /// Listing-1 routing, partition 0.
        part0: ArrayHistograms,
        /// Listing-1 routing, partition 1.
        part1: ArrayHistograms,
    },
    /// Method (A), capacity-sharded: one shard's quantized miss counts
    /// per routing, produced by [`ProfileBuilder::domain_shard_partial`].
    /// A routing is `None` when this shard owns none of its tracked
    /// capacities. Shards of one domain merge into a [`Self::Trace`]
    /// partial via [`Self::merge_shards`].
    TraceShard {
        /// Unpartitioned-routing counts (this shard's capacity slice).
        shared: Option<QuantizedCounts>,
        /// Partition-0 counts (this shard's capacity slice).
        part0: Option<QuantizedCounts>,
        /// Partition-1 counts (this shard's capacity slice).
        part1: Option<QuantizedCounts>,
    },
    /// Method (B): one domain's `(RD, gap)` pair counts (sorted) and cold
    /// tail.
    XTrace {
        /// Sorted pair counts of this domain's measured iteration.
        pairs: Vec<((u64, u64), u64)>,
        /// Cold accesses of this domain's measured iteration.
        cold: u64,
    },
}

impl DomainPartial {
    /// Merges one domain's shard partials (in shard order) into the
    /// [`Self::Trace`] partial the unsharded pipeline would produce.
    ///
    /// A marker stack's miss count at a capacity is independent of the
    /// other capacities the stack tracks, so concatenating each routing's
    /// per-capacity counts across the shards — every shard replayed the
    /// identical stream — reproduces the full-grid counters bit for bit
    /// (asserted: all shards must agree on the cold/access tallies).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, contains a non-[`Self::TraceShard`]
    /// partial, or the shards' streams disagree.
    pub fn merge_shards(shards: Vec<DomainPartial>) -> DomainPartial {
        assert!(!shards.is_empty(), "need at least one shard partial");
        let mut shared_parts = Vec::new();
        let mut part0_parts = Vec::new();
        let mut part1_parts = Vec::new();
        for shard in shards {
            match shard {
                DomainPartial::TraceShard {
                    shared,
                    part0,
                    part1,
                } => {
                    shared_parts.extend(shared);
                    part0_parts.extend(part0);
                    part1_parts.extend(part1);
                }
                _ => panic!("merge_shards expects TraceShard partials"),
            }
        }
        let hist = |parts: Vec<QuantizedCounts>| -> ArrayHistograms {
            let mut h = ArrayHistograms::default();
            if !parts.is_empty() {
                let merged = QuantizedCounts::concat(parts);
                for a in Array::ALL {
                    h.by_array[a as usize] = merged.histogram(a);
                }
            }
            h
        };
        DomainPartial::Trace {
            shared: hist(shared_parts),
            part0: hist(part0_parts),
            part1: hist(part1_parts),
        }
    }
}

/// The streaming trace pipeline behind [`LocalityProfile::compute`],
/// factored so independent L2 domains can run on separate threads.
///
/// Construction does the cheap shared setup (layout, work partition,
/// domain shares); [`domain_partial`](Self::domain_partial) is a pure
/// function of `&self` and the domain index — it streams the domain's
/// interleaved references from cursors (no trace is materialised), feeding
/// both routings of one replay through a single generation pass via a tee
/// sink. [`finish`](Self::finish) merges the partials in domain order, so
/// any parallel schedule produces the byte-identical profile.
///
/// Generic over the storage format via [`SpmvWorkload`] (defaulting to
/// CSR, whose results are byte-identical to the historical CSR-only
/// pipeline).
pub struct ProfileBuilder<'m, W: SpmvWorkload = CsrMatrix> {
    workload: &'m W,
    method: Method,
    threads: usize,
    line_bytes: usize,
    cores_per_domain: usize,
    layout: DataLayout,
    partition: RowPartition,
    domains: Vec<DomainShare>,
    tracked: Option<TrackedCaps>,
}

impl<'m, W: SpmvWorkload> ProfileBuilder<'m, W> {
    /// Sets up the capacity-independent (exact-stack) pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(workload: &'m W, cfg: &MachineConfig, method: Method, threads: usize) -> Self {
        Self::build(workload, cfg, method, threads, None)
    }

    /// Sets up the sweep pipeline: for method (A) the trace analysis runs
    /// on marker stacks over the capacity grids `settings` will query
    /// under `cfg` — O(#capacities) per reference instead of the exact
    /// stack's O(log N) — and the resulting profile answers `evaluate`
    /// exactly at those capacities (and only there, asserted). Method (B)
    /// profiles are capacity-independent by construction, so `settings`
    /// is ignored and the exact pipeline is used.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn for_sweep(
        workload: &'m W,
        cfg: &MachineConfig,
        method: Method,
        threads: usize,
        settings: &[SectorSetting],
    ) -> Self {
        let tracked = (method == Method::A).then(|| TrackedCaps::for_sweep(cfg, settings));
        Self::build(workload, cfg, method, threads, tracked)
    }

    fn build(
        workload: &'m W,
        cfg: &MachineConfig,
        method: Method,
        threads: usize,
        tracked: Option<TrackedCaps>,
    ) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let line_bytes = cfg.l2.line_bytes;
        let cores_per_domain = cfg.cores_per_domain;
        let layout = workload.layout(line_bytes);
        let partition = thread_partition(workload, threads);

        // Method (B) predicts all-zero for an empty workload before
        // tracing; mirror that so evaluation stays exact.
        let trivial = method == Method::B && workload.x_refs() == 0;

        // Domain shares (contiguous work-item spans, as in the per-domain
        // accounting of both methods).
        let mut domains = Vec::new();
        if !trivial {
            let num_parts = partition.num_parts();
            let num_domains = num_parts.div_ceil(cores_per_domain);
            for d in 0..num_domains {
                let t0 = d * cores_per_domain;
                let t1 = ((d + 1) * cores_per_domain).min(num_parts);
                let span = partition.range(t0).start..partition.range(t1 - 1).end;
                domains.push(workload.share(span));
            }
        }

        ProfileBuilder {
            workload,
            method,
            threads,
            line_bytes,
            cores_per_domain,
            layout,
            partition,
            domains,
            tracked,
        }
    }

    /// Number of L2 domains (= number of partials [`finish`](Self::finish)
    /// expects).
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The most capacity shards a domain's trace analysis can usefully be
    /// split into: the total number of tracked capacity slots across the
    /// three routings. 1 for exact (untracked) builders — their pipeline
    /// has no capacity grid to shard.
    pub fn max_shards(&self) -> usize {
        self.tracked.as_ref().map_or(1, |t| {
            (t.shared.len() + t.part0.len() + t.part1.len()).max(1)
        })
    }

    /// Upper bounds on the distinct cache lines domain `d`'s stream can
    /// touch, per routing: `(shared, part0, part1)`. Each sequential
    /// stream of `n` elements spans at most `n/epl + 1` lines; the `x`
    /// gather is bounded by both the whole `x` array and the domain's
    /// reference count. Used to pre-size line tables so the hot loops
    /// never rehash.
    fn domain_line_bounds(&self, d: usize) -> (usize, usize, usize) {
        let share = &self.domains[d];
        let l = &self.layout;
        let seq = |array: Array, n: usize| n.div_ceil(l.elements_per_line(array)) + 1;
        let a = seq(Array::A, share.x_refs);
        let colidx = seq(Array::ColIdx, share.x_refs);
        let rowptr = seq(Array::RowPtr, share.meta_elems);
        let y = seq(Array::Y, share.rows * (self.workload.y_row_bytes() / 8));
        let x = self.domain_x_lines(d);
        (x + y + rowptr + a + colidx, x + y + rowptr, a + colidx)
    }

    /// Upper bound on the distinct `x` lines domain `d` can gather. A
    /// multi-vector view gathers `k` consecutive right-hand-side elements
    /// per stored entry, so the reference-count bound scales by the
    /// gathers-per-entry factor.
    fn domain_x_lines(&self, d: usize) -> usize {
        let gathers_per_entry = self
            .workload
            .x_refs()
            .checked_div(self.workload.stream_entries())
            .unwrap_or(1);
        (self.layout.array_lines(Array::X) as usize).min(self.domains[d].x_refs * gathers_per_entry)
    }

    /// The slice of each routing's capacity grid that shard `shard` of
    /// `shards` owns: the grids are flattened `[shared, part0, part1]`
    /// and split into `shards` contiguous near-equal ranges.
    fn shard_grids(t: &TrackedCaps, shard: usize, shards: usize) -> (&[usize], &[usize], &[usize]) {
        fn slice(grid: &[usize], off: usize, lo: usize, hi: usize) -> &[usize] {
            let g_lo = lo.clamp(off, off + grid.len()) - off;
            let g_hi = hi.clamp(off, off + grid.len()) - off;
            &grid[g_lo..g_hi]
        }
        let total = t.shared.len() + t.part0.len() + t.part1.len();
        let lo = shard * total / shards;
        let hi = (shard + 1) * total / shards;
        (
            slice(&t.shared, 0, lo, hi),
            slice(&t.part0, t.shared.len(), lo, hi),
            slice(&t.part1, t.shared.len() + t.part0.len(), lo, hi),
        )
    }

    /// Runs the tracked (marker-stack) pipeline for domain `d` over the
    /// given capacity grids and returns the warmed, measured sinks. The
    /// block-batched fast path of method (A).
    ///
    /// The warm-up iteration is not replayed through the stacks: a marker
    /// stack's post-warm-up state is a pure function of the warm-up
    /// stream's last-access order (see [`MarkerStack::seed_lru`]), so one
    /// cheap last-position scan of the stream seeds all three stacks
    /// byte-identically at O(1) per reference — roughly halving the
    /// pipeline's stack work.
    fn run_tracked_domain(
        &self,
        d: usize,
        grids: (&[usize], &[usize], &[usize]),
    ) -> (MarkerSink, MarkerSink) {
        let (g_shared, g_part0, g_part1) = grids;
        let cursors = DomainCursors::new(
            self.workload,
            &self.layout,
            &self.partition,
            self.cores_per_domain,
        );
        let (b_shared, b0, b1) = self.domain_line_bounds(d);
        let universe = self.layout.total_lines() as usize;
        let mut shared = MarkerSink::new(ArraySet::EMPTY, g_shared, &[], b_shared, 16, universe);
        let mut routed =
            MarkerSink::new(ArraySet::MATRIX_STREAM, g_part0, g_part1, b0, b1, universe);
        // Warm-up: one last-position scan stands in for the full replay.
        // When the domain's stream fits the replay budget, the same pass
        // also records the packed references, and the measured iteration
        // replays the buffer instead of regenerating the stream — the
        // buffer IS the stream, so the counters are unchanged and one of
        // the two generation passes disappears. Oversized streams fall
        // back to generating twice (the fully streaming shape).
        let mut lastpos = LastPosSink::new(self.layout.total_lines());
        let len = cursors.spmv_len(d);
        if len <= Self::REPLAY_REFS_MAX {
            let mut buf = PackedVecSink {
                trace: Vec::with_capacity(len),
            };
            cursors.feed_spmv_blocks(
                d,
                &mut BlockTee {
                    first: &mut lastpos,
                    second: &mut buf,
                },
            );
            let order = lastpos.lru_order();
            shared.seed_lru(&order);
            routed.seed_lru(&order);
            // Measured iteration: replay. The sinks are independent, so
            // whole-trace runs are equivalent to interleaved blocks.
            shared.consume_refs(&buf.trace);
            routed.consume_refs(&buf.trace);
        } else {
            cursors.feed_spmv_blocks(d, &mut lastpos);
            let order = lastpos.lru_order();
            shared.seed_lru(&order);
            routed.seed_lru(&order);
            // Measured iteration.
            cursors.feed_spmv_blocks(
                d,
                &mut BlockTee {
                    first: &mut shared,
                    second: &mut routed,
                },
            );
        }
        (shared, routed)
    }

    /// Longest per-domain stream the tracked pipeline will buffer for
    /// warm-up/measured single-generation replay: 4M packed references
    /// = 32 MiB. Beyond this the pipeline stays fully streaming and
    /// generates the stream twice instead.
    const REPLAY_REFS_MAX: usize = 1 << 22;

    /// Computes domain `d`'s contribution restricted to capacity shard
    /// `shard` of `shards`: the same stream is replayed against only the
    /// shard's slice of the tracked capacity grids, so the `shards`
    /// partials of one domain can run on separate threads and
    /// [`DomainPartial::merge_shards`] reassembles the exact full-grid
    /// partial. `shards` may exceed [`max_shards`](Self::max_shards);
    /// the surplus shards own empty grids and contribute nothing.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`, `d >= num_domains()`, or the builder
    /// is not a tracked (sweep, method A) builder.
    pub fn domain_shard_partial(&self, d: usize, shard: usize, shards: usize) -> DomainPartial {
        assert!(shard < shards, "shard index {shard} out of range {shards}");
        let t = self
            .tracked
            .as_ref()
            .expect("capacity sharding requires a sweep (tracked) method (A) builder");
        let _span = obs::span("profile.domain");
        let (shared, routed) = self.run_tracked_domain(d, Self::shard_grids(t, shard, shards));
        let _extract = obs::span("reuse_stack.extract");
        shared.flush_obs();
        routed.flush_obs();
        DomainPartial::TraceShard {
            shared: shared.counts0(),
            part0: routed.counts0(),
            part1: routed.counts1(),
        }
    }

    /// Computes domain `d`'s contribution. Pure in `&self`: safe to call
    /// from any thread, in any order.
    ///
    /// # Panics
    ///
    /// Panics if `d >= num_domains()`.
    pub fn domain_partial(&self, d: usize) -> DomainPartial {
        let _span = obs::span("profile.domain");
        let cursors = DomainCursors::new(
            self.workload,
            &self.layout,
            &self.partition,
            self.cores_per_domain,
        );
        match self.method {
            Method::A => {
                if let Some(t) = &self.tracked {
                    let (shared, routed) =
                        self.run_tracked_domain(d, (&t.shared, &t.part0, &t.part1));
                    let _extract = obs::span("reuse_stack.extract");
                    shared.flush_obs();
                    routed.flush_obs();
                    DomainPartial::Trace {
                        shared: shared.histograms0(),
                        part0: routed.histograms0(),
                        part1: routed.histograms1(),
                    }
                } else {
                    let len = cursors.spmv_len(d);
                    let x_refs_d = self.domains[d].x_refs;
                    let (b_shared, b0, b1) = self.domain_line_bounds(d);
                    // Partition 1 sees only `a` + `colidx`: two references
                    // per `x` gather per pass.
                    let mut shared = HistogramSink::with_line_capacity(
                        ArraySet::EMPTY,
                        2 * len,
                        16,
                        b_shared,
                        16,
                    );
                    let mut routed = HistogramSink::with_line_capacity(
                        ArraySet::MATRIX_STREAM,
                        2 * (len - 2 * x_refs_d),
                        4 * x_refs_d,
                        b0,
                        b1,
                    );
                    cursors.feed_spmv(
                        d,
                        &mut TeeSink {
                            first: &mut shared,
                            second: &mut routed,
                        },
                    );
                    shared.recording = true;
                    routed.recording = true;
                    cursors.feed_spmv(
                        d,
                        &mut TeeSink {
                            first: &mut shared,
                            second: &mut routed,
                        },
                    );
                    let _extract = obs::span("reuse_stack.extract");
                    shared.flush_obs();
                    routed.flush_obs();
                    DomainPartial::Trace {
                        shared: shared.hist0,
                        part0: routed.hist0,
                        part1: routed.hist1,
                    }
                }
            }
            Method::B => {
                let mut sink = XPairSink::new(2 * cursors.x_len(d), self.domain_x_lines(d));
                cursors.feed_x(d, &mut sink); // warm-up
                sink.recording = true;
                cursors.feed_x(d, &mut sink); // measured
                let _extract = obs::span("reuse_stack.extract");
                sink.flush_obs();
                let mut pairs: Vec<((u64, u64), u64)> = sink.pairs.into_iter().collect();
                pairs.sort_unstable();
                DomainPartial::XTrace {
                    pairs,
                    cold: sink.cold,
                }
            }
        }
    }

    /// Merges the per-domain partials (in domain order) into the profile.
    ///
    /// # Panics
    ///
    /// Panics if the partial count or kinds don't match the builder.
    pub fn finish(self, partials: Vec<DomainPartial>) -> LocalityProfile {
        assert_eq!(
            partials.len(),
            self.num_domains(),
            "one partial per domain required"
        );
        let kind = match self.method {
            Method::A => {
                let mut shared = ArrayHistograms::default();
                let mut part0 = ArrayHistograms::default();
                let mut part1 = ArrayHistograms::default();
                for partial in &partials {
                    match partial {
                        DomainPartial::Trace {
                            shared: s,
                            part0: p0,
                            part1: p1,
                        } => {
                            shared.merge(s);
                            part0.merge(p0);
                            part1.merge(p1);
                        }
                        DomainPartial::TraceShard { .. } => {
                            panic!("unmerged shard partial; merge with DomainPartial::merge_shards")
                        }
                        DomainPartial::XTrace { .. } => {
                            panic!("method (B) partial in method (A) build")
                        }
                    }
                }
                ProfileKind::Trace(TraceProfile {
                    shared,
                    part0,
                    part1,
                })
            }
            Method::B => {
                let mut merged: HashMap<(u64, u64), u64> = HashMap::new();
                let mut cold = 0u64;
                for partial in &partials {
                    match partial {
                        DomainPartial::XTrace { pairs, cold: c } => {
                            for &(key, count) in pairs {
                                *merged.entry(key).or_insert(0) += count;
                            }
                            cold += c;
                        }
                        DomainPartial::Trace { .. } | DomainPartial::TraceShard { .. } => {
                            panic!("method (A) partial in method (B) build")
                        }
                    }
                }
                let mut pairs: Vec<((u64, u64), u64)> = merged.into_iter().collect();
                pairs.sort_unstable();
                ProfileKind::XTrace(XProfile { pairs, cold })
            }
        };
        LocalityProfile {
            method: self.method,
            threads: self.threads,
            line_bytes: self.line_bytes,
            cores_per_domain: self.cores_per_domain,
            x_array_bytes: self.workload.x_bytes(),
            y_row_bytes: self.workload.y_row_bytes(),
            x_refs: self.workload.x_refs(),
            companion0_bytes: self.workload.companion0_bytes(),
            domains: self.domains,
            tracked: self.tracked,
            kind,
        }
    }
}

impl LocalityProfile {
    /// Runs the trace analysis for `method` on `workload` with `threads`
    /// threads.
    ///
    /// Only the machine *shape* is read from `cfg` (`l2.line_bytes`,
    /// `cores_per_domain`) — capacities and way splits are supplied at
    /// [`evaluate`](Self::evaluate) time.
    ///
    /// The default pipeline is fully streaming: per-thread cursors are
    /// interleaved on demand and both routings of each replay share one
    /// generation pass, so no trace is ever materialised. Any
    /// [`SpmvWorkload`] is accepted; a plain `&CsrMatrix` reproduces the
    /// historical CSR-only results byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn compute<W: SpmvWorkload>(
        workload: &W,
        cfg: &MachineConfig,
        method: Method,
        threads: usize,
    ) -> Self {
        let _span = obs::span("profile.build");
        obs::add("core.profile.builds", 1);
        let builder = ProfileBuilder::new(workload, cfg, method, threads);
        obs::observe("core.profile.domains", builder.num_domains() as u64);
        let partials = (0..builder.num_domains())
            .map(|d| builder.domain_partial(d))
            .collect();
        builder.finish(partials)
    }

    /// Like [`compute`](Self::compute), but specialised to a known sector
    /// sweep: method (A) runs on marker stacks over exactly the capacities
    /// `settings` query under `cfg` (see [`ProfileBuilder::for_sweep`]).
    /// The profile's answers at those capacities are identical to the
    /// exact pipeline's; querying any other capacity panics.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn compute_for_sweep<W: SpmvWorkload>(
        workload: &W,
        cfg: &MachineConfig,
        method: Method,
        threads: usize,
        settings: &[SectorSetting],
    ) -> Self {
        let _span = obs::span("profile.build");
        obs::add("core.profile.builds", 1);
        let builder = ProfileBuilder::for_sweep(workload, cfg, method, threads, settings);
        obs::observe("core.profile.domains", builder.num_domains() as u64);
        let partials = (0..builder.num_domains())
            .map(|d| builder.domain_partial(d))
            .collect();
        builder.finish(partials)
    }

    /// The original materialise-then-replay pipeline, kept verbatim as the
    /// reference oracle for the streaming path (tests compare the two
    /// bit-for-bit; the benchmark suite uses it as the "seed" baseline).
    /// Buffers every per-thread trace and replays each domain four times —
    /// prefer [`compute`](Self::compute).
    pub fn compute_materialized(
        matrix: &CsrMatrix,
        cfg: &MachineConfig,
        method: Method,
        threads: usize,
    ) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let line_bytes = cfg.l2.line_bytes;
        let cores_per_domain = cfg.cores_per_domain;

        let mut profile = LocalityProfile {
            method,
            threads,
            line_bytes,
            cores_per_domain,
            x_array_bytes: matrix.num_cols() * 8,
            y_row_bytes: 8,
            x_refs: matrix.nnz(),
            companion0_bytes: 16 * matrix.num_rows(),
            domains: Vec::new(),
            tracked: None,
            kind: ProfileKind::XTrace(XProfile {
                pairs: Vec::new(),
                cold: 0,
            }),
        };

        // Method (B) predicts all-zero for an empty matrix before tracing;
        // mirror that so evaluation stays exact.
        if method == Method::B && matrix.nnz() == 0 {
            return profile;
        }

        let layout = matrix.layout(line_bytes);
        let partition = thread_partition(matrix, threads);

        // Domain shares (contiguous row spans, as in the per-domain
        // accounting of both methods).
        let num_parts = partition.num_parts();
        let num_domains = num_parts.div_ceil(cores_per_domain);
        for d in 0..num_domains {
            let t0 = d * cores_per_domain;
            let t1 = ((d + 1) * cores_per_domain).min(num_parts);
            let row_start = partition.range(t0).start;
            let row_end = partition.range(t1 - 1).end;
            let nnz_d = (matrix.rowptr()[row_end] - matrix.rowptr()[row_start]) as usize;
            profile.domains.push(DomainShare {
                rows: row_end - row_start,
                x_refs: nnz_d,
                meta_elems: row_end - row_start + 1,
            });
        }

        match method {
            Method::A => {
                let per_thread = trace_spmv_partitioned(matrix, &layout, &partition);
                let domains = DomainTraces::group(per_thread, cores_per_domain);
                let expected = memtrace::spmv_trace::trace_len(matrix.num_rows(), matrix.nnz());

                let mut shared = ArrayHistograms::default();
                let mut part0 = ArrayHistograms::default();
                let mut part1 = ArrayHistograms::default();
                for d in 0..domains.num_domains() {
                    // Unpartitioned routing.
                    let mut sink = HistogramSink::new(ArraySet::EMPTY, expected, 16);
                    domains.feed_domain(d, &mut sink); // warm-up
                    sink.recording = true;
                    domains.feed_domain(d, &mut sink); // measured
                    shared.merge(&sink.hist0);

                    // Listing-1 routing.
                    let mut sink = HistogramSink::new(ArraySet::MATRIX_STREAM, expected, expected);
                    domains.feed_domain(d, &mut sink);
                    sink.recording = true;
                    domains.feed_domain(d, &mut sink);
                    part0.merge(&sink.hist0);
                    part1.merge(&sink.hist1);
                }
                profile.kind = ProfileKind::Trace(TraceProfile {
                    shared,
                    part0,
                    part1,
                });
            }
            Method::B => {
                let per_thread = trace_x_partitioned(matrix, &layout, &partition);
                let domains = DomainTraces::group(per_thread, cores_per_domain);

                let mut pairs: HashMap<(u64, u64), u64> = HashMap::new();
                let mut cold = 0u64;
                for d in 0..domains.num_domains() {
                    let mut interleaved = memtrace::VecSink::new();
                    domains.feed_domain(d, &mut interleaved);
                    let trace = &interleaved.trace;
                    let mut stack = ExactStack::with_capacity(trace.len() * 2);
                    let mut last_seen: HashMap<u64, u64> = HashMap::new();
                    // Warm-up iteration.
                    for (t, a) in trace.iter().enumerate() {
                        stack.access(a.line);
                        last_seen.insert(a.line, t as u64);
                    }
                    // Measured iteration.
                    let offset = trace.len() as u64;
                    for (t, a) in trace.iter().enumerate() {
                        let now = offset + t as u64;
                        let rd = stack.access(a.line);
                        let g = last_seen.insert(a.line, now).map(|prev| now - prev);
                        match (rd, g) {
                            (Some(rd), Some(g)) => *pairs.entry((rd, g)).or_insert(0) += 1,
                            _ => cold += 1,
                        }
                    }
                }
                let mut pairs: Vec<((u64, u64), u64)> = pairs.into_iter().collect();
                pairs.sort_unstable();
                profile.kind = ProfileKind::XTrace(XProfile { pairs, cold });
            }
        }
        profile
    }

    /// Format-generic materialise-then-replay oracle: buffers every
    /// per-thread trace from the workload's cursors, then replays each
    /// domain through the buffered [`DomainTraces`] pipeline — an
    /// independent cross-check of the streaming [`DomainCursors`]
    /// interleaving for any [`SpmvWorkload`]. For CSR it reproduces
    /// [`compute_materialized`](Self::compute_materialized) exactly;
    /// prefer [`compute`](Self::compute) outside validation.
    pub fn compute_materialized_workload<W: SpmvWorkload>(
        workload: &W,
        cfg: &MachineConfig,
        method: Method,
        threads: usize,
    ) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let line_bytes = cfg.l2.line_bytes;
        let cores_per_domain = cfg.cores_per_domain;

        let mut profile = LocalityProfile {
            method,
            threads,
            line_bytes,
            cores_per_domain,
            x_array_bytes: workload.x_bytes(),
            y_row_bytes: workload.y_row_bytes(),
            x_refs: workload.x_refs(),
            companion0_bytes: workload.companion0_bytes(),
            domains: Vec::new(),
            tracked: None,
            kind: ProfileKind::XTrace(XProfile {
                pairs: Vec::new(),
                cold: 0,
            }),
        };

        if method == Method::B && workload.x_refs() == 0 {
            return profile;
        }

        let layout = workload.layout(line_bytes);
        let partition = thread_partition(workload, threads);
        let num_parts = partition.num_parts();
        let num_domains = num_parts.div_ceil(cores_per_domain);
        for d in 0..num_domains {
            let t0 = d * cores_per_domain;
            let t1 = ((d + 1) * cores_per_domain).min(num_parts);
            let span = partition.range(t0).start..partition.range(t1 - 1).end;
            profile.domains.push(workload.share(span));
        }

        let materialize = |x_only: bool| -> Vec<Vec<Access>> {
            (0..num_parts)
                .map(|t| {
                    let mut sink = memtrace::VecSink::new();
                    if x_only {
                        workload
                            .x_trace_cursor(&layout, partition.range(t))
                            .drain_into(&mut sink);
                    } else {
                        workload
                            .trace_cursor(&layout, partition.range(t))
                            .drain_into(&mut sink);
                    }
                    sink.trace
                })
                .collect()
        };

        match method {
            Method::A => {
                let per_thread = materialize(false);
                let expected: usize = per_thread.iter().map(|t| t.len()).sum();
                let domains = DomainTraces::group(per_thread, cores_per_domain);

                let mut shared = ArrayHistograms::default();
                let mut part0 = ArrayHistograms::default();
                let mut part1 = ArrayHistograms::default();
                for d in 0..domains.num_domains() {
                    // Unpartitioned routing.
                    let mut sink = HistogramSink::new(ArraySet::EMPTY, expected, 16);
                    domains.feed_domain(d, &mut sink); // warm-up
                    sink.recording = true;
                    domains.feed_domain(d, &mut sink); // measured
                    shared.merge(&sink.hist0);

                    // Listing-1 routing.
                    let mut sink = HistogramSink::new(ArraySet::MATRIX_STREAM, expected, expected);
                    domains.feed_domain(d, &mut sink);
                    sink.recording = true;
                    domains.feed_domain(d, &mut sink);
                    part0.merge(&sink.hist0);
                    part1.merge(&sink.hist1);
                }
                profile.kind = ProfileKind::Trace(TraceProfile {
                    shared,
                    part0,
                    part1,
                });
            }
            Method::B => {
                let domains = DomainTraces::group(materialize(true), cores_per_domain);

                let mut pairs: HashMap<(u64, u64), u64> = HashMap::new();
                let mut cold = 0u64;
                for d in 0..domains.num_domains() {
                    let mut interleaved = memtrace::VecSink::new();
                    domains.feed_domain(d, &mut interleaved);
                    let trace = &interleaved.trace;
                    let mut stack = ExactStack::with_capacity(trace.len() * 2);
                    let mut last_seen: HashMap<u64, u64> = HashMap::new();
                    // Warm-up iteration.
                    for (t, a) in trace.iter().enumerate() {
                        stack.access(a.line);
                        last_seen.insert(a.line, t as u64);
                    }
                    // Measured iteration.
                    let offset = trace.len() as u64;
                    for (t, a) in trace.iter().enumerate() {
                        let now = offset + t as u64;
                        let rd = stack.access(a.line);
                        let g = last_seen.insert(a.line, now).map(|prev| now - prev);
                        match (rd, g) {
                            (Some(rd), Some(g)) => *pairs.entry((rd, g)).or_insert(0) += 1,
                            _ => cold += 1,
                        }
                    }
                }
                let mut pairs: Vec<((u64, u64), u64)> = pairs.into_iter().collect();
                pairs.sort_unstable();
                profile.kind = ProfileKind::XTrace(XProfile { pairs, cold });
            }
        }
        profile
    }

    /// The method this profile was computed for.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The thread count this profile was computed for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cache-line size the trace was laid out with.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// The cores-per-domain topology the trace was grouped with.
    pub fn cores_per_domain(&self) -> usize {
        self.cores_per_domain
    }

    /// The per-domain workload shares (rows, `x` references, metadata
    /// elements).
    pub fn domains(&self) -> &[DomainShare] {
        &self.domains
    }

    /// The method-specific payload (histograms or pair counts).
    pub fn kind(&self) -> &ProfileKind {
        &self.kind
    }

    /// The capacity grids this profile is restricted to, if it was built
    /// by the sweep (marker-quantized) pipeline. `None` means the profile
    /// is exact at every capacity.
    pub fn tracked_caps(&self) -> Option<&TrackedCaps> {
        self.tracked.as_ref()
    }

    /// Evaluates the profile for every setting of a sweep.
    ///
    /// Reproduces [`predict`](crate::predict::predict) for the matrix the
    /// profile was computed from, in time independent of the trace length.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` disagrees with the profile's machine shape
    /// (line size or cores per domain).
    pub fn evaluate(&self, cfg: &MachineConfig, settings: &[SectorSetting]) -> Vec<Prediction> {
        assert_eq!(
            cfg.l2.line_bytes, self.line_bytes,
            "profile computed for a different line size"
        );
        assert_eq!(
            cfg.cores_per_domain, self.cores_per_domain,
            "profile computed for a different domain topology"
        );
        match &self.kind {
            ProfileKind::Trace(t) => self.evaluate_trace(t, cfg, settings),
            ProfileKind::XTrace(x) => self.evaluate_xtrace(x, cfg, settings),
        }
    }

    fn evaluate_trace(
        &self,
        t: &TraceProfile,
        cfg: &MachineConfig,
        settings: &[SectorSetting],
    ) -> Vec<Prediction> {
        let sets = cfg.l2.num_sets();
        settings
            .iter()
            .map(|&setting| {
                let mut by_array = [0u64; 5];
                match setting {
                    SectorSetting::Off => {
                        let cap = cfg.l2.total_lines();
                        if let Some(tracked) = &self.tracked {
                            assert!(
                                TrackedCaps::covers(&tracked.shared, cap),
                                "sweep profile does not track shared capacity {cap}"
                            );
                        }
                        for a in Array::ALL {
                            by_array[a as usize] = t.shared.misses_of(a, cap);
                        }
                    }
                    SectorSetting::L2Ways(w) => {
                        let cap0 = sets * (cfg.l2.ways - w);
                        let cap1 = sets * w;
                        if let Some(tracked) = &self.tracked {
                            assert!(
                                TrackedCaps::covers(&tracked.part0, cap0)
                                    && TrackedCaps::covers(&tracked.part1, cap1),
                                "sweep profile does not track partition capacities \
                                 ({cap0}, {cap1})"
                            );
                        }
                        for a in [Array::X, Array::Y, Array::RowPtr] {
                            by_array[a as usize] = t.part0.misses_of(a, cap0);
                        }
                        for a in [Array::A, Array::ColIdx] {
                            by_array[a as usize] = t.part1.misses_of(a, cap1);
                        }
                    }
                }
                Prediction {
                    setting,
                    l2_misses: by_array.iter().sum(),
                    by_array,
                }
            })
            .collect()
    }

    fn evaluate_xtrace(
        &self,
        x: &XProfile,
        cfg: &MachineConfig,
        settings: &[SectorSetting],
    ) -> Vec<Prediction> {
        if self.x_refs == 0 {
            return settings
                .iter()
                .map(|&setting| Prediction {
                    setting,
                    l2_misses: 0,
                    by_array: [0; 5],
                })
                .collect();
        }
        let line = cfg.l2.line_bytes;
        let s1 = scale_part0(self.companion0_bytes, self.x_refs);
        let s2 = scale_unpart(self.companion0_bytes, self.x_refs);

        // Per setting: companion lines per intervening x access, and
        // partition-0 capacity (see method_b's derivation).
        let params: Vec<(f64, f64)> = settings
            .iter()
            .map(|s| {
                let scale = match s {
                    SectorSetting::Off => s2,
                    SectorSetting::L2Ways(_) => s1,
                };
                ((scale - 1.0) * 8.0 / line as f64, s.cap0_lines(cfg) as f64)
            })
            .collect();

        let mut x_misses = vec![x.cold; settings.len()];
        for &((rd, g), count) in &x.pairs {
            for (i, &(companion, cap0)) in params.iter().enumerate() {
                if rd as f64 + g as f64 * companion >= cap0 {
                    x_misses[i] += count;
                }
            }
        }

        let mut preds: Vec<Prediction> = settings
            .iter()
            .zip(&x_misses)
            .map(|(&setting, &xm)| {
                let mut by_array = [0u64; 5];
                by_array[Array::X as usize] = xm;
                Prediction {
                    setting,
                    l2_misses: xm,
                    by_array,
                }
            })
            .collect();

        // Analytic streaming terms per domain.
        for share in &self.domains {
            let (rows_d, x_refs_d, meta_d) = (share.rows, share.x_refs, share.meta_elems);
            if x_refs_d == 0 && rows_d == 0 {
                continue;
            }
            let terms = StreamTerms {
                a: crate::analytic::stream_misses_a(x_refs_d, line),
                colidx: crate::analytic::stream_misses_colidx(x_refs_d, line),
                rowptr: crate::analytic::stream_misses_meta(meta_d, line),
                y: crate::analytic::stream_misses_y(rows_d * (self.y_row_bytes / 8), line),
            };
            let matrix_bytes_d = x_refs_d * 12 + meta_d * 8;
            let reusable_bytes_d = self.x_array_bytes + rows_d * self.y_row_bytes + meta_d * 8;
            let working_set_d = matrix_bytes_d + self.x_array_bytes + rows_d * self.y_row_bytes;

            for (i, &setting) in settings.iter().enumerate() {
                let p = &mut preds[i];
                match setting {
                    SectorSetting::Off => {
                        if working_set_d <= cfg.l2.size_bytes {
                            continue;
                        }
                        p.by_array[Array::A as usize] += terms.a;
                        p.by_array[Array::ColIdx as usize] += terms.colidx;
                        p.by_array[Array::RowPtr as usize] += terms.rowptr;
                        p.by_array[Array::Y as usize] += terms.y;
                    }
                    SectorSetting::L2Ways(_) => {
                        let cap1_bytes = setting.cap1_lines(cfg) * line;
                        let cap0_bytes = setting.cap0_lines(cfg) * line;
                        if matrix_bytes_d > cap1_bytes {
                            p.by_array[Array::A as usize] += terms.a;
                            p.by_array[Array::ColIdx as usize] += terms.colidx;
                        }
                        if reusable_bytes_d > cap0_bytes {
                            p.by_array[Array::RowPtr as usize] += terms.rowptr;
                            p.by_array[Array::Y as usize] += terms.y;
                        }
                    }
                }
            }
        }

        // Class-(1) override for the unpartitioned case: when every
        // domain's working set fits, steady state has no misses at all.
        let all_fit = self.domains.iter().all(|share| {
            let ws = share.x_refs * 12
                + share.meta_elems * 8
                + self.x_array_bytes
                + share.rows * self.y_row_bytes;
            ws <= cfg.l2.size_bytes
        });
        if all_fit {
            for (i, &setting) in settings.iter().enumerate() {
                if setting == SectorSetting::Off {
                    preds[i].by_array = [0; 5];
                }
            }
        }

        for p in &mut preds {
            p.l2_misses = p.by_array.iter().sum();
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn one_profile_serves_every_setting() {
        let m = random_matrix(2048, 12, 3);
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings = SectorSetting::paper_sweep();
        for method in [Method::A, Method::B] {
            let profile = LocalityProfile::compute(&m, &cfg, method, 1);
            let batch = profile.evaluate(&cfg, &settings);
            // Per-setting evaluation of the same profile agrees with the
            // batch evaluation and with the one-shot API.
            for (i, &s) in settings.iter().enumerate() {
                assert_eq!(
                    profile.evaluate(&cfg, &[s])[0],
                    batch[i],
                    "{method:?} {s:?}"
                );
            }
            assert_eq!(batch, predict(&m, &cfg, method, &settings, 1), "{method:?}");
        }
    }

    #[test]
    fn profile_is_reusable_across_capacity_scales() {
        // The same profile answers for machines differing only in cache
        // size (same line size and topology).
        let m = random_matrix(1024, 8, 11);
        let small = MachineConfig::a64fx_scaled(64);
        let large = MachineConfig::a64fx_scaled(16);
        assert_eq!(small.l2.line_bytes, large.l2.line_bytes);
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(4)];
        for method in [Method::A, Method::B] {
            let profile = LocalityProfile::compute(&m, &small, method, 1);
            assert_eq!(
                profile.evaluate(&large, &settings),
                predict(&m, &large, method, &settings, 1),
                "{method:?}"
            );
        }
    }

    #[test]
    fn parallel_profiles_match_predict() {
        let m = random_matrix(2048, 12, 31);
        let mut cfg = MachineConfig::a64fx_scaled(64);
        cfg.cores_per_domain = 2;
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(4)];
        for method in [Method::A, Method::B] {
            let profile = LocalityProfile::compute(&m, &cfg, method, 8);
            assert_eq!(
                profile.evaluate(&cfg, &settings),
                predict(&m, &cfg, method, &settings, 8),
                "{method:?}"
            );
        }
    }

    #[test]
    fn empty_matrix_profiles() {
        let m = CooMatrix::new(8, 8).to_csr();
        let cfg = MachineConfig::a64fx_scaled(64);
        for method in [Method::A, Method::B] {
            let profile = LocalityProfile::compute(&m, &cfg, method, 1);
            let preds = profile.evaluate(&cfg, &[SectorSetting::Off, SectorSetting::L2Ways(3)]);
            assert_eq!(
                preds,
                predict(
                    &m,
                    &cfg,
                    method,
                    &[SectorSetting::Off, SectorSetting::L2Ways(3)],
                    1
                )
            );
        }
    }

    #[test]
    fn streaming_matches_materialized_oracle() {
        // The zero-materialization pipeline must reproduce the buffered
        // reference pipeline bit-for-bit, for both methods, across thread
        // counts and domain widths.
        let m = random_matrix(1024, 10, 77);
        for (threads, cores_per_domain) in [(1, 12), (5, 2), (8, 3)] {
            let mut cfg = MachineConfig::a64fx_scaled(64);
            cfg.cores_per_domain = cores_per_domain;
            for method in [Method::A, Method::B] {
                let streaming = LocalityProfile::compute(&m, &cfg, method, threads);
                let oracle = LocalityProfile::compute_materialized(&m, &cfg, method, threads);
                let settings = SectorSetting::paper_sweep();
                assert_eq!(
                    streaming.evaluate(&cfg, &settings),
                    oracle.evaluate(&cfg, &settings),
                    "{method:?} threads={threads} cpd={cores_per_domain}"
                );
                assert_eq!(streaming.domains(), oracle.domains());
            }
        }
    }

    #[test]
    fn sweep_profile_matches_exact_at_tracked_capacities() {
        let m = random_matrix(2048, 12, 19);
        let mut cfg = MachineConfig::a64fx_scaled(64);
        cfg.cores_per_domain = 4;
        let settings = SectorSetting::paper_sweep();
        for method in [Method::A, Method::B] {
            for threads in [1, 8] {
                let sweep =
                    LocalityProfile::compute_for_sweep(&m, &cfg, method, threads, &settings);
                let exact = LocalityProfile::compute(&m, &cfg, method, threads);
                assert_eq!(
                    sweep.evaluate(&cfg, &settings),
                    exact.evaluate(&cfg, &settings),
                    "{method:?} threads={threads}"
                );
                assert_eq!(sweep.tracked_caps().is_some(), method == Method::A);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not track")]
    fn sweep_profile_rejects_untracked_capacity() {
        let m = random_matrix(256, 6, 23);
        let cfg = MachineConfig::a64fx_scaled(64);
        let profile =
            LocalityProfile::compute_for_sweep(&m, &cfg, Method::A, 1, &[SectorSetting::L2Ways(4)]);
        profile.evaluate(&cfg, &[SectorSetting::L2Ways(5)]);
    }

    #[test]
    fn domain_partials_merge_identically_in_any_computation_order() {
        let m = random_matrix(900, 9, 41);
        let mut cfg = MachineConfig::a64fx_scaled(64);
        cfg.cores_per_domain = 2;
        for method in [Method::A, Method::B] {
            let builder = ProfileBuilder::new(&m, &cfg, method, 8);
            assert!(builder.num_domains() > 1, "test needs several domains");
            // Compute partials back-to-front, hand them over in order.
            let mut partials: Vec<DomainPartial> = (0..builder.num_domains())
                .rev()
                .map(|d| builder.domain_partial(d))
                .collect();
            partials.reverse();
            let profile = builder.finish(partials);
            let reference = LocalityProfile::compute(&m, &cfg, method, 8);
            let settings = SectorSetting::paper_sweep();
            assert_eq!(
                profile.evaluate(&cfg, &settings),
                reference.evaluate(&cfg, &settings),
                "{method:?}"
            );
        }
    }

    /// Sharded partials, merged per domain, must reproduce the unsharded
    /// tracked pipeline bit for bit — for any shard count, including
    /// counts exceeding the capacity-slot total (surplus shards are
    /// empty).
    fn assert_sharding_is_exact<W: SpmvWorkload>(workload: &W, threads: usize, cpd: usize) {
        let mut cfg = MachineConfig::a64fx_scaled(64);
        cfg.cores_per_domain = cpd;
        let settings = SectorSetting::paper_sweep();
        let builder = ProfileBuilder::for_sweep(workload, &cfg, Method::A, threads, &settings);
        let reference: Vec<DomainPartial> = (0..builder.num_domains())
            .map(|d| builder.domain_partial(d))
            .collect();
        assert!(builder.max_shards() > 1, "paper sweep tracks many slots");
        for shards in [1, 2, 3, 7, 16] {
            let merged: Vec<DomainPartial> = (0..builder.num_domains())
                .map(|d| {
                    DomainPartial::merge_shards(
                        (0..shards)
                            .map(|s| builder.domain_shard_partial(d, s, shards))
                            .collect(),
                    )
                })
                .collect();
            assert_eq!(merged, reference, "shards={shards}");
        }
        // And through finish(): a profile assembled from 7-way sharded,
        // per-domain-merged partials equals the direct computation.
        let merged: Vec<DomainPartial> = (0..builder.num_domains())
            .map(|d| {
                DomainPartial::merge_shards(
                    (0..7)
                        .map(|s| builder.domain_shard_partial(d, s, 7))
                        .collect(),
                )
            })
            .collect();
        let sharded = builder.finish(merged);
        let direct =
            LocalityProfile::compute_for_sweep(workload, &cfg, Method::A, threads, &settings);
        assert_eq!(sharded, direct);
    }

    #[test]
    fn sharded_csr_partials_merge_to_unsharded() {
        let m = random_matrix(1200, 9, 63);
        assert_sharding_is_exact(&m, 8, 3);
        assert_sharding_is_exact(&m, 1, 12);
    }

    #[test]
    fn sharded_sell_partials_merge_to_unsharded() {
        let m = random_matrix(1024, 8, 29);
        let sell = sparsemat::SellMatrix::from_csr(&m, 8, 32);
        assert_sharding_is_exact(&sell, 5, 2);
    }

    #[test]
    #[should_panic(expected = "merge_shards expects TraceShard partials")]
    fn merge_shards_rejects_plain_partials() {
        DomainPartial::merge_shards(vec![DomainPartial::Trace {
            shared: ArrayHistograms::default(),
            part0: ArrayHistograms::default(),
            part1: ArrayHistograms::default(),
        }]);
    }

    /// Satellite regression: on the PR-2 benchmark spec (corpus count 4,
    /// scale 64, seed 2023, 8 threads, paper sweep) the pre-sized marker
    /// pipeline must never rehash a line table mid-trace.
    #[test]
    fn pr2_spec_tracked_pipeline_triggers_zero_rehashes() {
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings = SectorSetting::paper_sweep();
        for named in corpus::corpus(4, 64, 2023) {
            let builder = ProfileBuilder::for_sweep(&named.matrix, &cfg, Method::A, 8, &settings);
            let t = builder.tracked.as_ref().unwrap();
            for d in 0..builder.num_domains() {
                let (shared, routed) =
                    builder.run_tracked_domain(d, (&t.shared, &t.part0, &t.part1));
                assert_eq!(
                    shared.index_rehashes() + routed.index_rehashes(),
                    0,
                    "{} domain {d} rehashed",
                    named.name
                );
            }
        }
    }

    #[test]
    fn tracked_caps_fingerprints_discriminate() {
        let cfg = MachineConfig::a64fx_scaled(64);
        let sweep = TrackedCaps::for_sweep(&cfg, &SectorSetting::paper_sweep());
        let off_only = TrackedCaps::for_sweep(&cfg, &[SectorSetting::Off]);
        assert_ne!(sweep.fingerprint(), off_only.fingerprint());
        assert_ne!(sweep.fingerprint(), 0, "0 is reserved for exact profiles");
        assert_eq!(
            sweep.fingerprint(),
            TrackedCaps::for_sweep(&cfg, &SectorSetting::paper_sweep()).fingerprint(),
            "fingerprint must be deterministic"
        );
        assert!(off_only.part0.is_empty() && off_only.part1.is_empty());
    }

    #[test]
    fn generic_materialized_oracle_matches_csr_oracle() {
        // The format-generic oracle must agree with the verbatim CSR
        // oracle (and hence with the streaming pipeline) bit for bit.
        let m = random_matrix(700, 7, 57);
        let mut cfg = MachineConfig::a64fx_scaled(64);
        cfg.cores_per_domain = 3;
        let settings = SectorSetting::paper_sweep();
        for method in [Method::A, Method::B] {
            for threads in [1, 8] {
                let csr_oracle = LocalityProfile::compute_materialized(&m, &cfg, method, threads);
                let generic =
                    LocalityProfile::compute_materialized_workload(&m, &cfg, method, threads);
                assert_eq!(
                    generic.evaluate(&cfg, &settings),
                    csr_oracle.evaluate(&cfg, &settings),
                    "{method:?} threads={threads}"
                );
                assert_eq!(generic.domains(), csr_oracle.domains());
            }
        }
    }

    #[test]
    fn sell_streaming_matches_sell_materialized_oracle() {
        // The streaming pipeline and the materialise-then-replay oracle
        // must agree for SELL-C-σ workloads too, across thread counts and
        // domain widths.
        let m = random_matrix(2048, 12, 91);
        let sell = sparsemat::SellMatrix::from_csr(&m, 8, 32);
        let settings = SectorSetting::paper_sweep();
        for (threads, cores_per_domain) in [(1, 12), (5, 2)] {
            let mut cfg = MachineConfig::a64fx_scaled(64);
            cfg.cores_per_domain = cores_per_domain;
            for method in [Method::A, Method::B] {
                let streaming = LocalityProfile::compute(&sell, &cfg, method, threads);
                let oracle =
                    LocalityProfile::compute_materialized_workload(&sell, &cfg, method, threads);
                assert_eq!(
                    streaming.evaluate(&cfg, &settings),
                    oracle.evaluate(&cfg, &settings),
                    "{method:?} threads={threads} cpd={cores_per_domain}"
                );
                assert_eq!(streaming.domains(), oracle.domains());
                assert!(streaming.evaluate(&cfg, &settings)[0].l2_misses > 0);
            }
        }
    }

    #[test]
    fn sell_c1_sigma1_tracks_csr_profile() {
        // SELL with C=1, σ=1 keeps rows in order with no padding; its
        // method (A) shared-routing misses match CSR's exactly (the trace
        // differs only in the metadata stream: one chunk descriptor per
        // row instead of rows+1 row pointers).
        let m = random_matrix(1024, 9, 17);
        let sell = sparsemat::SellMatrix::from_csr(&m, 1, 1);
        assert_eq!(sell.stored_entries(), m.nnz());
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(4)];
        for method in [Method::A, Method::B] {
            let pc = LocalityProfile::compute(&m, &cfg, method, 1).evaluate(&cfg, &settings);
            let ps = LocalityProfile::compute(&sell, &cfg, method, 1).evaluate(&cfg, &settings);
            for (c, s) in pc.iter().zip(&ps) {
                // x-gather misses see the same reference stream modulo the
                // interleaved metadata loads; allow a small relative gap.
                let (c, s) = (c.l2_misses as f64, s.l2_misses as f64);
                let rel = (c - s).abs() / c.max(1.0);
                assert!(rel < 0.05, "{method:?}: csr={c} sell={s} rel={rel}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "different line size")]
    fn mismatched_line_size_rejected() {
        let m = random_matrix(64, 3, 1);
        let cfg = MachineConfig::a64fx_scaled(64);
        let profile = LocalityProfile::compute(&m, &cfg, Method::A, 1);
        let mut other = cfg.clone();
        other.l2.line_bytes /= 2;
        profile.evaluate(&other, &[SectorSetting::Off]);
    }
}
