//! Method (B): `x`-trace approximation with analytic scaling (§3.2.2).
//!
//! Only the `x`-vector references (one per nonzero, from `colidx`) are
//! stack-processed. The other arrays' influence is reintroduced
//! analytically:
//!
//! * `x`-reuse distances are inflated to account for the other arrays'
//!   references sharing `x`'s partition. The paper expresses the average
//!   inflation through the byte ratios `s1 = (16·M/K + 8)/8` (Listing 1
//!   partitioning: `x` shares with `rowptr`, `y`) and
//!   `s2 = (16·M/K + 20)/8` (no partitioning: plus 12 bytes of
//!   `a`+`colidx` per nonzero) — "the ratio of the average number of
//!   bytes accessed per element of x and the data type size of x". We
//!   apply the same per-access companion volume at line granularity:
//!   between a reuse pair with `g` intervening `x` accesses, the companion
//!   arrays contribute `g·(s−1)·8 / L` distinct lines (they are pure
//!   streams, so every companion byte in the gap is distinct), giving the
//!   effective distance `RD_x + g·(s−1)·8/L`. One exact-stack pass yields
//!   `RD_x` and `g` together, so all sweep settings are still covered in
//!   a single pass over the (much shorter) `x` trace — the advantage the
//!   paper claims for method (B);
//! * the streaming arrays contribute their closed-form per-line miss
//!   terms whenever the §3.1 classification says they do not fit their
//!   partition.
//!
//! The approximation degrades for matrices with few nonzeros per row and
//! high row-length variation (low `μ_K`, high `CV_K`), as §4.5 discusses —
//! the average-based scaling factor is then a poor stand-in for the true
//! interleaving of references.

use crate::analytic::{scale_s1, scale_s2, StreamTerms};
use crate::concurrent::{thread_partition, DomainTraces};
use crate::predict::{Prediction, SectorSetting};
use a64fx::MachineConfig;
use memtrace::xtrace::trace_x_partitioned;
use memtrace::{Array, DataLayout};
use reuse::ExactStack;
use sparsemat::CsrMatrix;
use std::collections::HashMap;

/// Predicts steady-state L2 misses for the given settings using method (B).
pub fn predict(
    matrix: &CsrMatrix,
    cfg: &MachineConfig,
    settings: &[SectorSetting],
    threads: usize,
) -> Vec<Prediction> {
    assert!(threads >= 1, "need at least one thread");
    if matrix.nnz() == 0 {
        return settings
            .iter()
            .map(|&setting| Prediction { setting, l2_misses: 0, by_array: [0; 5] })
            .collect();
    }
    let layout = DataLayout::new(matrix, cfg.l2.line_bytes);
    let partition = thread_partition(matrix, threads);
    let per_thread = trace_x_partitioned(matrix, &layout, &partition);
    let domains = DomainTraces::group(per_thread, cfg.cores_per_domain);

    let m = matrix.num_rows();
    let k = matrix.nnz();
    let s1 = scale_s1(m, k);
    let s2 = scale_s2(m, k);
    let line = cfg.l2.line_bytes;

    // Per setting: (companion lines per intervening x access, partition-0
    // capacity in lines). (s - 1) * 8 bytes of companion data accompany
    // every x access; companions are streams, so all of it is distinct.
    let params: Vec<(f64, f64)> = settings
        .iter()
        .map(|s| {
            let scale = match s {
                SectorSetting::Off => s2,
                SectorSetting::L2Ways(_) => s1,
            };
            ((scale - 1.0) * 8.0 / line as f64, s.cap0_lines(cfg) as f64)
        })
        .collect();

    // One exact-stack pass per domain: a warm-up iteration, then a
    // measured one in which each x access yields its line reuse distance
    // `rd` and access-count gap `g`; it misses setting i iff
    // `rd + g * companion_i >= cap0_i`.
    let mut x_misses = vec![0u64; settings.len()];
    for d in 0..domains.num_domains() {
        let mut interleaved = memtrace::VecSink::new();
        domains.feed_domain(d, &mut interleaved);
        let trace = &interleaved.trace;
        let mut stack = ExactStack::with_capacity(trace.len() * 2);
        let mut last_seen: HashMap<u64, u64> = HashMap::new();
        // Warm-up iteration.
        for (t, a) in trace.iter().enumerate() {
            stack.access(a.line);
            last_seen.insert(a.line, t as u64);
        }
        // Measured iteration.
        let offset = trace.len() as u64;
        for (t, a) in trace.iter().enumerate() {
            let now = offset + t as u64;
            let rd = stack.access(a.line);
            let g = last_seen.insert(a.line, now).map(|prev| now - prev);
            match (rd, g) {
                (Some(rd), Some(g)) => {
                    for (i, &(companion, cap0)) in params.iter().enumerate() {
                        if rd as f64 + g as f64 * companion >= cap0 {
                            x_misses[i] += 1;
                        }
                    }
                }
                // Cold in the measured iteration cannot happen (the warm-up
                // touched every line), but count it as a miss if it does.
                _ => {
                    for misses in x_misses.iter_mut() {
                        *misses += 1;
                    }
                }
            }
        }
    }

    // Analytic streaming terms, accounted per domain so the fit checks use
    // each domain's share of the matrix.
    let line = cfg.l2.line_bytes;
    let num_domains = domains.num_domains();
    let mut preds: Vec<Prediction> = settings
        .iter()
        .zip(&x_misses)
        .map(|(&setting, &xm)| {
            let mut by_array = [0u64; 5];
            by_array[Array::X as usize] = xm;
            Prediction { setting, l2_misses: xm, by_array }
        })
        .collect();

    for d in 0..num_domains {
        // Rows and nonzeros handled by this domain's threads.
        let t0 = d * cfg.cores_per_domain;
        let t1 = ((d + 1) * cfg.cores_per_domain).min(partition.num_parts());
        let rows_d = partition.range(t1 - 1).end - partition.range(t0).start;
        let row_start = partition.range(t0).start;
        let row_end = partition.range(t1 - 1).end;
        let nnz_d =
            (matrix.rowptr()[row_end] - matrix.rowptr()[row_start]) as usize;
        if nnz_d == 0 && rows_d == 0 {
            continue;
        }
        let terms = StreamTerms {
            a: crate::analytic::stream_misses_a(nnz_d, line),
            colidx: crate::analytic::stream_misses_colidx(nnz_d, line),
            rowptr: crate::analytic::stream_misses_rowptr(rows_d, line),
            y: crate::analytic::stream_misses_y(rows_d, line),
        };
        // Bytes of this domain's share of each region.
        let matrix_bytes_d = nnz_d * 12 + (rows_d + 1) * 8;
        let reusable_bytes_d = matrix.num_cols() * 8 + rows_d * 8 + (rows_d + 1) * 8;
        let working_set_d = matrix_bytes_d + matrix.num_cols() * 8 + rows_d * 8;

        for (i, &setting) in settings.iter().enumerate() {
            let p = &mut preds[i];
            match setting {
                SectorSetting::Off => {
                    // Class (1): everything fits, no steady-state misses at
                    // all — including the x misses the stack predicted from
                    // the scaled distances, which the classification
                    // overrides per the paper's §3.1.
                    if working_set_d <= cfg.l2.size_bytes {
                        continue;
                    }
                    p.by_array[Array::A as usize] += terms.a;
                    p.by_array[Array::ColIdx as usize] += terms.colidx;
                    p.by_array[Array::RowPtr as usize] += terms.rowptr;
                    p.by_array[Array::Y as usize] += terms.y;
                }
                SectorSetting::L2Ways(_) => {
                    let cap1_bytes = setting.cap1_lines(cfg) * line;
                    let cap0_bytes = setting.cap0_lines(cfg) * line;
                    if matrix_bytes_d > cap1_bytes {
                        p.by_array[Array::A as usize] += terms.a;
                        p.by_array[Array::ColIdx as usize] += terms.colidx;
                    }
                    if reusable_bytes_d > cap0_bytes {
                        p.by_array[Array::RowPtr as usize] += terms.rowptr;
                        p.by_array[Array::Y as usize] += terms.y;
                    }
                }
            }
        }
    }

    // Class-(1) override for the unpartitioned case: when every domain's
    // working set fits, zero the x term too.
    for (i, &setting) in settings.iter().enumerate() {
        if setting == SectorSetting::Off {
            let all_fit = (0..num_domains).all(|d| {
                let t0 = d * cfg.cores_per_domain;
                let t1 = ((d + 1) * cfg.cores_per_domain).min(partition.num_parts());
                let row_start = partition.range(t0).start;
                let row_end = partition.range(t1 - 1).end;
                let rows_d = row_end - row_start;
                let nnz_d =
                    (matrix.rowptr()[row_end] - matrix.rowptr()[row_start]) as usize;
                let ws = nnz_d * 12 + (rows_d + 1) * 8 + matrix.num_cols() * 8 + rows_d * 8;
                ws <= cfg.l2.size_bytes
            });
            if all_fit {
                preds[i].by_array = [0; 5];
            }
        }
    }

    for p in &mut preds {
        p.l2_misses = p.by_array.iter().sum();
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method_a;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    fn cfg() -> MachineConfig {
        MachineConfig::a64fx_scaled(64)
    }

    #[test]
    fn class1_predicts_zero() {
        let m = random_matrix(64, 3, 5);
        for p in predict(&m, &cfg(), &SectorSetting::paper_sweep(), 1) {
            assert_eq!(p.l2_misses, 0, "{:?}", p.setting);
        }
    }

    #[test]
    fn empty_matrix_predicts_zero() {
        let m = CooMatrix::new(8, 8).to_csr();
        for p in predict(&m, &cfg(), &[SectorSetting::Off], 1) {
            assert_eq!(p.l2_misses, 0);
        }
    }

    #[test]
    fn streaming_terms_appear_when_matrix_oversized() {
        let m = random_matrix(4096, 16, 7);
        let p = predict(&m, &cfg(), &[SectorSetting::L2Ways(3)], 1);
        let terms = StreamTerms::of(&m, 256);
        assert_eq!(p[0].misses_of(Array::A), terms.a);
        assert_eq!(p[0].misses_of(Array::ColIdx), terms.colidx);
        // Reusable data fits partition 0 -> no y/rowptr misses.
        assert_eq!(p[0].misses_of(Array::Y), 0);
        assert_eq!(p[0].misses_of(Array::RowPtr), 0);
    }

    #[test]
    fn approximates_method_a_for_well_behaved_matrices() {
        // Dense-ish uniform rows: method (B)'s happy case (mu_K >= 8,
        // CV_K small). Its partitioned predictions should track method (A)
        // within a few percent.
        let m = random_matrix(4096, 16, 23);
        let settings = [SectorSetting::L2Ways(4), SectorSetting::L2Ways(6)];
        let a = method_a::predict(&m, &cfg(), &settings, 1);
        let b = predict(&m, &cfg(), &settings, 1);
        for (pa, pb) in a.iter().zip(&b) {
            let err = (pa.l2_misses as f64 - pb.l2_misses as f64).abs()
                / pa.l2_misses.max(1) as f64;
            assert!(
                err < 0.10,
                "method B off by {:.1}% at {:?}: A={} B={}",
                err * 100.0,
                pa.setting,
                pa.l2_misses,
                pb.l2_misses
            );
        }
    }

    #[test]
    fn parallel_prediction_runs_per_domain() {
        let m = random_matrix(2048, 12, 31);
        let mut c = cfg();
        c.cores_per_domain = 2;
        let p = predict(&m, &c, &[SectorSetting::L2Ways(4)], 8);
        assert!(p[0].l2_misses > 0);
        // The matrix stream terms are accounted once per line in total
        // (split across domains).
        let terms = StreamTerms::of(&m, 256);
        let stream_pred = p[0].misses_of(Array::A) + p[0].misses_of(Array::ColIdx);
        let total_terms = terms.a + terms.colidx;
        // Domain splitting adds at most one extra line per domain boundary
        // and array.
        assert!(stream_pred >= total_terms);
        assert!(stream_pred <= total_terms + 8);
    }

    #[test]
    fn unpartitioned_includes_all_streams() {
        let m = random_matrix(4096, 16, 41);
        let p = predict(&m, &cfg(), &[SectorSetting::Off], 1);
        let terms = StreamTerms::of(&m, 256);
        assert!(p[0].l2_misses >= terms.total());
    }
}
