//! Method (B): `x`-trace approximation with analytic scaling (§3.2.2).
//!
//! Only the `x`-vector references (one per nonzero, from `colidx`) are
//! stack-processed. The other arrays' influence is reintroduced
//! analytically:
//!
//! * `x`-reuse distances are inflated to account for the other arrays'
//!   references sharing `x`'s partition. The paper expresses the average
//!   inflation through the byte ratios `s1 = (16·M/K + 8)/8` (Listing 1
//!   partitioning: `x` shares with `rowptr`, `y`) and
//!   `s2 = (16·M/K + 20)/8` (no partitioning: plus 12 bytes of
//!   `a`+`colidx` per nonzero) — "the ratio of the average number of
//!   bytes accessed per element of x and the data type size of x". We
//!   apply the same per-access companion volume at line granularity:
//!   between a reuse pair with `g` intervening `x` accesses, the companion
//!   arrays contribute `g·(s−1)·8 / L` distinct lines (they are pure
//!   streams, so every companion byte in the gap is distinct), giving the
//!   effective distance `RD_x + g·(s−1)·8/L`. One exact-stack pass yields
//!   `RD_x` and `g` together, so all sweep settings are still covered in
//!   a single pass over the (much shorter) `x` trace — the advantage the
//!   paper claims for method (B);
//! * the streaming arrays contribute their closed-form per-line miss
//!   terms whenever the §3.1 classification says they do not fit their
//!   partition.
//!
//! The approximation degrades for matrices with few nonzeros per row and
//! high row-length variation (low `μ_K`, high `CV_K`), as §4.5 discusses —
//! the average-based scaling factor is then a poor stand-in for the true
//! interleaving of references.

use crate::predict::{Method, Prediction, SectorSetting};
use crate::profile::LocalityProfile;
use a64fx::MachineConfig;
use memtrace::SpmvWorkload;

/// Predicts steady-state L2 misses for the given settings using method (B).
///
/// The `x`-trace pass is capacity-independent: one [`LocalityProfile`]
/// records the `(RD_x, g)` pair distribution plus per-domain shares, and
/// every sweep setting is evaluated from it analytically. The scaling
/// factors come from the workload's partition-0 companion volume
/// ([`SpmvWorkload::companion0_bytes`]), which reduces to the paper's
/// `s1`/`s2` for CSR.
pub fn predict<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    settings: &[SectorSetting],
    threads: usize,
) -> Vec<Prediction> {
    LocalityProfile::compute(workload, cfg, Method::B, threads).evaluate(cfg, settings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::StreamTerms;
    use crate::method_a;
    use memtrace::Array;
    use sparsemat::{CooMatrix, CsrMatrix};

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    fn cfg() -> MachineConfig {
        MachineConfig::a64fx_scaled(64)
    }

    #[test]
    fn class1_predicts_zero() {
        let m = random_matrix(64, 3, 5);
        for p in predict(&m, &cfg(), &SectorSetting::paper_sweep(), 1) {
            assert_eq!(p.l2_misses, 0, "{:?}", p.setting);
        }
    }

    #[test]
    fn empty_matrix_predicts_zero() {
        let m = CooMatrix::new(8, 8).to_csr();
        for p in predict(&m, &cfg(), &[SectorSetting::Off], 1) {
            assert_eq!(p.l2_misses, 0);
        }
    }

    #[test]
    fn streaming_terms_appear_when_matrix_oversized() {
        let m = random_matrix(4096, 16, 7);
        let p = predict(&m, &cfg(), &[SectorSetting::L2Ways(3)], 1);
        let terms = StreamTerms::of(&m, memtrace::A64FX_LINE_BYTES);
        assert_eq!(p[0].misses_of(Array::A), terms.a);
        assert_eq!(p[0].misses_of(Array::ColIdx), terms.colidx);
        // Reusable data fits partition 0 -> no y/rowptr misses.
        assert_eq!(p[0].misses_of(Array::Y), 0);
        assert_eq!(p[0].misses_of(Array::RowPtr), 0);
    }

    #[test]
    fn approximates_method_a_for_well_behaved_matrices() {
        // Dense-ish uniform rows: method (B)'s happy case (mu_K >= 8,
        // CV_K small). Its partitioned predictions should track method (A)
        // within a few percent.
        let m = random_matrix(4096, 16, 23);
        let settings = [SectorSetting::L2Ways(4), SectorSetting::L2Ways(6)];
        let a = method_a::predict(&m, &cfg(), &settings, 1);
        let b = predict(&m, &cfg(), &settings, 1);
        for (pa, pb) in a.iter().zip(&b) {
            let err =
                (pa.l2_misses as f64 - pb.l2_misses as f64).abs() / pa.l2_misses.max(1) as f64;
            assert!(
                err < 0.10,
                "method B off by {:.1}% at {:?}: A={} B={}",
                err * 100.0,
                pa.setting,
                pa.l2_misses,
                pb.l2_misses
            );
        }
    }

    #[test]
    fn parallel_prediction_runs_per_domain() {
        let m = random_matrix(2048, 12, 31);
        let mut c = cfg();
        c.cores_per_domain = 2;
        let p = predict(&m, &c, &[SectorSetting::L2Ways(4)], 8);
        assert!(p[0].l2_misses > 0);
        // The matrix stream terms are accounted once per line in total
        // (split across domains).
        let terms = StreamTerms::of(&m, memtrace::A64FX_LINE_BYTES);
        let stream_pred = p[0].misses_of(Array::A) + p[0].misses_of(Array::ColIdx);
        let total_terms = terms.a + terms.colidx;
        // Domain splitting adds at most one extra line per domain boundary
        // and array.
        assert!(stream_pred >= total_terms);
        assert!(stream_pred <= total_terms + 8);
    }

    #[test]
    fn unpartitioned_includes_all_streams() {
        let m = random_matrix(4096, 16, 41);
        let p = predict(&m, &cfg(), &[SectorSetting::Off], 1);
        let terms = StreamTerms::of(&m, memtrace::A64FX_LINE_BYTES);
        assert!(p[0].l2_misses >= terms.total());
    }
}
