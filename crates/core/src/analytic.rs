//! Closed-form streaming-traffic terms of the model (§3.1).
//!
//! The matrix data (`a`, `colidx`) is touched exactly once per SpMV
//! iteration in ascending order, and `rowptr`/`y` likewise; when such an
//! array does not stay resident, it incurs exactly one capacity miss per
//! cache line per iteration:
//!
//! * `a`:      `⌈8K/L⌉` misses,
//! * `colidx`: `⌈4K/L⌉`,
//! * `rowptr`: `⌈8(M+1)/L⌉`,
//! * `y`:      `⌈8M/L⌉`,
//!
//! for an `M`-by-`N` matrix with `K` nonzeros and line size `L`.
//!
//! The method (B) scaling factors translate `x`-only reuse distances into
//! full-trace reuse distances: each distinct `x` element access is
//! accompanied on average by `16·M/K + 8` bytes of other partition-0 data
//! when `a`/`colidx` are isolated (`s1`) and by 12 more bytes of `a` +
//! `colidx` when they are not (`s2`), relative to the 8-byte `x` element:
//!
//! * `s1 = (16·M/K + 8) / 8`
//! * `s2 = (16·M/K + 20) / 8`

use sparsemat::CsrMatrix;

/// Streaming-miss term for the `a` array: `⌈8K/L⌉`.
pub fn stream_misses_a(nnz: usize, line_bytes: usize) -> u64 {
    (8 * nnz).div_ceil(line_bytes) as u64
}

/// Streaming-miss term for `colidx`: `⌈4K/L⌉`.
pub fn stream_misses_colidx(nnz: usize, line_bytes: usize) -> u64 {
    (4 * nnz).div_ceil(line_bytes) as u64
}

/// Streaming-miss term for the metadata stream (the `rowptr` role):
/// `⌈8·meta/L⌉` for `meta` 8-byte elements streamed per iteration —
/// `M + 1` row pointers for CSR, one descriptor per chunk for SELL-C-σ.
pub fn stream_misses_meta(meta_elems: usize, line_bytes: usize) -> u64 {
    (8 * meta_elems).div_ceil(line_bytes) as u64
}

/// Streaming-miss term for `rowptr`: `⌈8(M+1)/L⌉`.
pub fn stream_misses_rowptr(num_rows: usize, line_bytes: usize) -> u64 {
    stream_misses_meta(num_rows + 1, line_bytes)
}

/// Streaming-miss term for `y`: `⌈8M/L⌉`.
pub fn stream_misses_y(num_rows: usize, line_bytes: usize) -> u64 {
    (8 * num_rows).div_ceil(line_bytes) as u64
}

/// Total matrix-stream misses (`a` + `colidx`), the partition-1 capacity
/// misses of a class-(2) matrix.
pub fn stream_misses_matrix(nnz: usize, line_bytes: usize) -> u64 {
    stream_misses_a(nnz, line_bytes) + stream_misses_colidx(nnz, line_bytes)
}

/// Method (B) scaling factor with partitioning (`x` shares partition 0
/// with `rowptr` and `y`): `s1 = (16·M/K + 8)/8`.
///
/// # Panics
///
/// Panics if the matrix has no nonzeros.
pub fn scale_s1(num_rows: usize, nnz: usize) -> f64 {
    assert!(nnz > 0, "scaling factor undefined for an empty matrix");
    (16.0 * num_rows as f64 / nnz as f64 + 8.0) / 8.0
}

/// Method (B) scaling factor without partitioning (`x` additionally shares
/// the cache with `a` and `colidx`): `s2 = (16·M/K + 20)/8`.
///
/// # Panics
///
/// Panics if the matrix has no nonzeros.
pub fn scale_s2(num_rows: usize, nnz: usize) -> f64 {
    assert!(nnz > 0, "scaling factor undefined for an empty matrix");
    (16.0 * num_rows as f64 / nnz as f64 + 20.0) / 8.0
}

/// Format-generic `s1`: partition-0 companion bytes per `x` reference
/// relative to the 8-byte `x` element, `(c/K + 8)/8` for `c` companion
/// bytes over `K` `x` references. With CSR's `c = 16·M` this is
/// bit-identical to [`scale_s1`] (the integer `16·M` converts to the same
/// `f64` as `16.0 · M` for any matrix that fits in memory).
///
/// # Panics
///
/// Panics if the workload issues no `x` references.
pub fn scale_part0(companion0_bytes: usize, x_refs: usize) -> f64 {
    assert!(x_refs > 0, "scaling factor undefined for an empty workload");
    (companion0_bytes as f64 / x_refs as f64 + 8.0) / 8.0
}

/// Format-generic `s2`: like [`scale_part0`] plus the 12 bytes of matrix
/// stream (`a` + index) per `x` reference, `(c/K + 20)/8`.
///
/// # Panics
///
/// Panics if the workload issues no `x` references.
pub fn scale_unpart(companion0_bytes: usize, x_refs: usize) -> f64 {
    assert!(x_refs > 0, "scaling factor undefined for an empty workload");
    (companion0_bytes as f64 / x_refs as f64 + 20.0) / 8.0
}

/// Convenience: all four streaming terms for a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamTerms {
    /// `⌈8K/L⌉`.
    pub a: u64,
    /// `⌈4K/L⌉`.
    pub colidx: u64,
    /// `⌈8(M+1)/L⌉`.
    pub rowptr: u64,
    /// `⌈8M/L⌉`.
    pub y: u64,
}

impl StreamTerms {
    /// Computes the terms for `matrix` with line size `line_bytes`.
    pub fn of(matrix: &CsrMatrix, line_bytes: usize) -> Self {
        StreamTerms {
            a: stream_misses_a(matrix.nnz(), line_bytes),
            colidx: stream_misses_colidx(matrix.nnz(), line_bytes),
            rowptr: stream_misses_rowptr(matrix.num_rows(), line_bytes),
            y: stream_misses_y(matrix.num_rows(), line_bytes),
        }
    }

    /// Sum of all four terms.
    pub fn total(&self) -> u64 {
        self.a + self.colidx + self.rowptr + self.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{Array, DataLayout};

    #[test]
    fn terms_match_paper_formulas() {
        // M = 1000 rows, K = 5000 nonzeros, L = 256 (the A64FX line).
        let l = memtrace::A64FX_LINE_BYTES;
        assert_eq!(stream_misses_a(5000, l), 157); // ceil(40000/256)
        assert_eq!(stream_misses_colidx(5000, l), 79); // ceil(20000/256)
        assert_eq!(stream_misses_rowptr(1000, l), 32); // ceil(8008/256)
        assert_eq!(stream_misses_y(1000, l), 32); // ceil(8000/256)
    }

    #[test]
    fn terms_equal_layout_line_counts() {
        // The closed forms are exactly the number of cache lines each array
        // occupies in the layout.
        let m = sparsemat::CsrMatrix::identity(321);
        let layout = DataLayout::new(&m, memtrace::A64FX_LINE_BYTES);
        let t = StreamTerms::of(&m, memtrace::A64FX_LINE_BYTES);
        assert_eq!(t.a, layout.array_lines(Array::A));
        assert_eq!(t.colidx, layout.array_lines(Array::ColIdx));
        assert_eq!(t.rowptr, layout.array_lines(Array::RowPtr));
        assert_eq!(t.y, layout.array_lines(Array::Y));
    }

    #[test]
    fn scaling_factors() {
        // M/K = 1: s1 = 24/8 = 3, s2 = 36/8 = 4.5.
        assert_eq!(scale_s1(100, 100), 3.0);
        assert_eq!(scale_s2(100, 100), 4.5);
        // Dense-ish rows (K >> M): s1 -> 1, s2 -> 2.5.
        assert!((scale_s1(10, 100_000) - 1.0).abs() < 0.01);
        assert!((scale_s2(10, 100_000) - 2.5).abs() < 0.01);
        // s2 > s1 always.
        assert!(scale_s2(7, 13) > scale_s1(7, 13));
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn empty_matrix_scaling_rejected() {
        scale_s1(10, 0);
    }
}
