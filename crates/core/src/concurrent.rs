//! Concurrent reuse-distance plumbing shared by methods (A) and (B).
//!
//! For parallel SpMV the paper records per-thread traces (each thread's
//! assigned row block) and interleaves the traces of the threads sharing
//! each L2 (§3.2.1). This module builds the per-domain thread groups and
//! feeds their interleaved references into arbitrary sinks.
//!
//! The interleaving used for *prediction* is the deterministic round-robin
//! order (equal thread progress) — the order the FIFO-fair MCS collation
//! approximates; `memtrace::interleave::mcs_interleave` provides the real
//! concurrent variant for validation.

use a64fx::MachineConfig;
use memtrace::cursor::TraceCursor;
use memtrace::interleave::{
    domain_groups, round_robin_cursors, round_robin_cursors_blocks, round_robin_into,
};
use memtrace::{Access, BlockSink, DataLayout, SpmvWorkload, TraceSink};
use sparsemat::RowPartition;
use std::ops::Range;

/// Per-thread traces grouped by L2 domain.
pub struct DomainTraces {
    /// `groups[d]` holds the traces of the threads sharing domain `d`.
    pub groups: Vec<Vec<Vec<Access>>>,
}

impl DomainTraces {
    /// Groups per-thread traces into domains of `cores_per_domain`.
    pub fn group(per_thread: Vec<Vec<Access>>, cores_per_domain: usize) -> Self {
        let ranges = domain_groups(per_thread.len(), cores_per_domain);
        let mut iter = per_thread.into_iter();
        let groups = ranges
            .iter()
            .map(|r| (&mut iter).take(r.len()).collect())
            .collect();
        DomainTraces { groups }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.groups.len()
    }

    /// Feeds domain `d`'s round-robin interleaved reference stream into a
    /// sink (one reference per thread per turn, as equal-rate threads
    /// would submit them).
    pub fn feed_domain<S: TraceSink>(&self, d: usize, sink: &mut S) {
        round_robin_into(&self.groups[d], 1, sink);
    }
}

/// Streaming per-domain trace access — the zero-materialization
/// counterpart of [`DomainTraces`].
///
/// Instead of grouping buffered per-thread traces, this factory hands out
/// fresh per-thread *cursors* for any domain on demand and merges them in
/// the same round-robin order [`DomainTraces::feed_domain`] uses. A replay
/// (e.g. the warm-up and measured iterations of the locality model) is
/// just another `feed_*` call: total state is O(threads in the domain) and
/// no reference is ever buffered.
///
/// Generic over the storage format: the cursors come from the
/// [`SpmvWorkload`] trait, so the same plumbing serves CSR row blocks and
/// SELL-C-σ chunk blocks.
pub struct DomainCursors<'a, W: SpmvWorkload> {
    workload: &'a W,
    layout: &'a DataLayout,
    partition: &'a RowPartition,
    spans: Vec<Range<usize>>,
}

impl<'a, W: SpmvWorkload> DomainCursors<'a, W> {
    /// Groups the partition's threads into domains of `cores_per_domain`.
    pub fn new(
        workload: &'a W,
        layout: &'a DataLayout,
        partition: &'a RowPartition,
        cores_per_domain: usize,
    ) -> Self {
        let spans = domain_groups(partition.num_parts(), cores_per_domain);
        DomainCursors {
            workload,
            layout,
            partition,
            spans,
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.spans.len()
    }

    /// Fresh method (A) cursors for domain `d`'s threads.
    pub fn spmv_cursors(&self, d: usize) -> Vec<W::Cursor<'a>> {
        self.spans[d]
            .clone()
            .map(|t| {
                self.workload
                    .trace_cursor(self.layout, self.partition.range(t))
            })
            .collect()
    }

    /// Fresh method (B) cursors for domain `d`'s threads.
    pub fn x_cursors(&self, d: usize) -> Vec<W::XCursor<'a>> {
        self.spans[d]
            .clone()
            .map(|t| {
                self.workload
                    .x_trace_cursor(self.layout, self.partition.range(t))
            })
            .collect()
    }

    /// Length of domain `d`'s interleaved method (A) stream.
    pub fn spmv_len(&self, d: usize) -> usize {
        self.spmv_cursors(d).iter().map(|c| c.remaining()).sum()
    }

    /// Length of domain `d`'s interleaved method (B) stream.
    pub fn x_len(&self, d: usize) -> usize {
        self.x_cursors(d).iter().map(|c| c.remaining()).sum()
    }

    /// Streams domain `d`'s round-robin interleaved method (A) references
    /// into a sink — same order as [`DomainTraces::feed_domain`] over the
    /// materialised traces.
    pub fn feed_spmv<S: TraceSink>(&self, d: usize, sink: &mut S) {
        let mut cursors = self.spmv_cursors(d);
        round_robin_cursors(&mut cursors, 1, sink);
    }

    /// Streams domain `d`'s method (A) references into a block sink —
    /// the same reference order as [`Self::feed_spmv`], delivered in
    /// [`memtrace::AccessBlock`]s instead of one virtual call per
    /// reference. This is the fast path of the marker-stack pipeline.
    pub fn feed_spmv_blocks<S: BlockSink>(&self, d: usize, sink: &mut S) {
        let mut cursors = self.spmv_cursors(d);
        round_robin_cursors_blocks(&mut cursors, sink);
    }

    /// Streams domain `d`'s round-robin interleaved method (B) references
    /// into a sink.
    pub fn feed_x<S: TraceSink>(&self, d: usize, sink: &mut S) {
        let mut cursors = self.x_cursors(d);
        round_robin_cursors(&mut cursors, 1, sink);
    }
}

/// The static work partition used for `threads`-way SpMV (contiguous
/// blocks of the workload's work items — rows for CSR, chunks for
/// SELL-C-σ — as the paper's OpenMP static schedule).
pub fn thread_partition<W: SpmvWorkload>(workload: &W, threads: usize) -> RowPartition {
    RowPartition::static_rows(workload.num_work_items(), threads)
}

/// Convenience: domain count for a thread count under `cfg`.
pub fn num_domains(cfg: &MachineConfig, threads: usize) -> usize {
    threads.div_ceil(cfg.cores_per_domain).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{Array, VecSink};

    fn acc(line: u64) -> Access {
        Access::load(line, Array::X)
    }

    #[test]
    fn grouping_by_domain() {
        let traces: Vec<Vec<Access>> = (0..5).map(|t| vec![acc(t)]).collect();
        let dt = DomainTraces::group(traces, 2);
        assert_eq!(dt.num_domains(), 3);
        assert_eq!(dt.groups[0].len(), 2);
        assert_eq!(dt.groups[2].len(), 1);
        assert_eq!(dt.groups[2][0][0].line, 4);
    }

    #[test]
    fn feeding_interleaves_within_domain_only() {
        let traces = vec![
            vec![acc(0), acc(1)],
            vec![acc(10), acc(11)],
            vec![acc(20), acc(21)],
        ];
        let dt = DomainTraces::group(traces, 2);
        let mut sink = VecSink::new();
        dt.feed_domain(0, &mut sink);
        let lines: Vec<u64> = sink.trace.iter().map(|a| a.line).collect();
        assert_eq!(lines, vec![0, 10, 1, 11]);
        let mut sink1 = VecSink::new();
        dt.feed_domain(1, &mut sink1);
        assert_eq!(sink1.trace.len(), 2);
    }

    #[test]
    fn domain_cursors_match_materialized_feed() {
        use sparsemat::CooMatrix;
        let mut state = 5u64;
        let mut coo = CooMatrix::new(60, 60);
        for r in 0..60 {
            for _ in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % 60, 1.0);
            }
        }
        let m = coo.to_csr();
        let layout = DataLayout::new(&m, 64);
        let partition = thread_partition(&m, 7);
        let cursors = DomainCursors::new(&m, &layout, &partition, 3);

        let spmv = memtrace::spmv_trace::trace_spmv_partitioned(&m, &layout, &partition);
        let materialized = DomainTraces::group(spmv, 3);
        assert_eq!(cursors.num_domains(), materialized.num_domains());
        for d in 0..cursors.num_domains() {
            let mut want = VecSink::new();
            materialized.feed_domain(d, &mut want);
            let mut got = VecSink::new();
            cursors.feed_spmv(d, &mut got);
            assert_eq!(got.trace, want.trace, "spmv domain {d}");
            assert_eq!(cursors.spmv_len(d), want.trace.len(), "spmv len {d}");
        }

        let x = memtrace::xtrace::trace_x_partitioned(&m, &layout, &partition);
        let materialized = DomainTraces::group(x, 3);
        for d in 0..cursors.num_domains() {
            let mut want = VecSink::new();
            materialized.feed_domain(d, &mut want);
            let mut got = VecSink::new();
            cursors.feed_x(d, &mut got);
            assert_eq!(got.trace, want.trace, "x domain {d}");
            assert_eq!(cursors.x_len(d), want.trace.len(), "x len {d}");
        }
    }

    #[test]
    fn feed_spmv_blocks_matches_per_ref_feed() {
        use sparsemat::CooMatrix;
        let mut state = 77u64;
        let mut coo = CooMatrix::new(80, 80);
        for r in 0..80 {
            for _ in 0..5 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % 80, 1.0);
            }
        }
        let m = coo.to_csr();
        let layout = DataLayout::new(&m, 64);
        let partition = thread_partition(&m, 5);
        let cursors = DomainCursors::new(&m, &layout, &partition, 2);
        for d in 0..cursors.num_domains() {
            let mut want = VecSink::new();
            cursors.feed_spmv(d, &mut want);
            let mut got = memtrace::PackedVecSink::new();
            cursors.feed_spmv_blocks(d, &mut got);
            let unpacked: Vec<Access> = got.trace.iter().map(|p| p.unpack()).collect();
            assert_eq!(unpacked, want.trace, "domain {d}");
        }
    }

    #[test]
    fn domain_count_helper() {
        let cfg = a64fx::MachineConfig::a64fx();
        assert_eq!(num_domains(&cfg, 1), 1);
        assert_eq!(num_domains(&cfg, 12), 1);
        assert_eq!(num_domains(&cfg, 13), 2);
        assert_eq!(num_domains(&cfg, 48), 4);
    }
}
