//! Concurrent reuse-distance plumbing shared by methods (A) and (B).
//!
//! For parallel SpMV the paper records per-thread traces (each thread's
//! assigned row block) and interleaves the traces of the threads sharing
//! each L2 (§3.2.1). This module builds the per-domain thread groups and
//! feeds their interleaved references into arbitrary sinks.
//!
//! The interleaving used for *prediction* is the deterministic round-robin
//! order (equal thread progress) — the order the FIFO-fair MCS collation
//! approximates; `memtrace::interleave::mcs_interleave` provides the real
//! concurrent variant for validation.

use a64fx::MachineConfig;
use memtrace::interleave::{domain_groups, round_robin_into};
use memtrace::{Access, TraceSink};
use sparsemat::{CsrMatrix, RowPartition};

/// Per-thread traces grouped by L2 domain.
pub struct DomainTraces {
    /// `groups[d]` holds the traces of the threads sharing domain `d`.
    pub groups: Vec<Vec<Vec<Access>>>,
}

impl DomainTraces {
    /// Groups per-thread traces into domains of `cores_per_domain`.
    pub fn group(per_thread: Vec<Vec<Access>>, cores_per_domain: usize) -> Self {
        let ranges = domain_groups(per_thread.len(), cores_per_domain);
        let mut iter = per_thread.into_iter();
        let groups = ranges
            .iter()
            .map(|r| (&mut iter).take(r.len()).collect())
            .collect();
        DomainTraces { groups }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.groups.len()
    }

    /// Feeds domain `d`'s round-robin interleaved reference stream into a
    /// sink (one reference per thread per turn, as equal-rate threads
    /// would submit them).
    pub fn feed_domain<S: TraceSink>(&self, d: usize, sink: &mut S) {
        round_robin_into(&self.groups[d], 1, sink);
    }
}

/// The static row partition used for `threads`-way SpMV (contiguous row
/// blocks, as the paper's OpenMP static schedule).
pub fn thread_partition(matrix: &CsrMatrix, threads: usize) -> RowPartition {
    RowPartition::static_rows(matrix.num_rows(), threads)
}

/// Convenience: domain count for a thread count under `cfg`.
pub fn num_domains(cfg: &MachineConfig, threads: usize) -> usize {
    threads.div_ceil(cfg.cores_per_domain).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{Array, VecSink};

    fn acc(line: u64) -> Access {
        Access::load(line, Array::X)
    }

    #[test]
    fn grouping_by_domain() {
        let traces: Vec<Vec<Access>> = (0..5).map(|t| vec![acc(t)]).collect();
        let dt = DomainTraces::group(traces, 2);
        assert_eq!(dt.num_domains(), 3);
        assert_eq!(dt.groups[0].len(), 2);
        assert_eq!(dt.groups[2].len(), 1);
        assert_eq!(dt.groups[2][0][0].line, 4);
    }

    #[test]
    fn feeding_interleaves_within_domain_only() {
        let traces = vec![
            vec![acc(0), acc(1)],
            vec![acc(10), acc(11)],
            vec![acc(20), acc(21)],
        ];
        let dt = DomainTraces::group(traces, 2);
        let mut sink = VecSink::new();
        dt.feed_domain(0, &mut sink);
        let lines: Vec<u64> = sink.trace.iter().map(|a| a.line).collect();
        assert_eq!(lines, vec![0, 10, 1, 11]);
        let mut sink1 = VecSink::new();
        dt.feed_domain(1, &mut sink1);
        assert_eq!(sink1.trace.len(), 2);
    }

    #[test]
    fn domain_count_helper() {
        let cfg = a64fx::MachineConfig::a64fx();
        assert_eq!(num_domains(&cfg, 1), 1);
        assert_eq!(num_domains(&cfg, 12), 1);
        assert_eq!(num_domains(&cfg, 13), 2);
        assert_eq!(num_domains(&cfg, 48), 4);
    }
}
