//! Unified prediction API over methods (A) and (B).
//!
//! A [`SectorSetting`] names one point of the paper's sweep — sector cache
//! off, or `w` L2 ways carved out for the non-temporal data. The model
//! treats the L2 (one segment, i.e. one NUMA domain's cache) as a fully
//! associative LRU cache of its line capacity; a partitioned cache is two
//! such caches (Eq. 2). Capacities are derived from the machine geometry:
//! `w` ways of an `S`-set cache hold `S·w` lines.

use a64fx::MachineConfig;
use memtrace::{Array, SpmvWorkload};

/// One sector-cache configuration of the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SectorSetting {
    /// Sector cache disabled: all data shares the whole cache.
    Off,
    /// `a` and `colidx` isolated in a sector of this many L2 ways.
    L2Ways(usize),
}

impl SectorSetting {
    /// The paper's Table 2/3 sweep: off, then 2..=7 ways.
    pub fn paper_sweep() -> Vec<SectorSetting> {
        let mut v = vec![SectorSetting::Off];
        v.extend((2..=7).map(SectorSetting::L2Ways));
        v
    }

    /// Partition-0 (reusable data) capacity in lines under this setting.
    pub fn cap0_lines(self, cfg: &MachineConfig) -> usize {
        match self {
            SectorSetting::Off => cfg.l2.total_lines(),
            SectorSetting::L2Ways(w) => cfg.l2.num_sets() * (cfg.l2.ways - w),
        }
    }

    /// Partition-1 (matrix stream) capacity in lines under this setting.
    pub fn cap1_lines(self, cfg: &MachineConfig) -> usize {
        match self {
            SectorSetting::Off => cfg.l2.total_lines(),
            SectorSetting::L2Ways(w) => cfg.l2.num_sets() * w,
        }
    }

    /// Short display label (`off`, `2 ways`, ...).
    pub fn label(self) -> String {
        match self {
            SectorSetting::Off => "off".to_string(),
            SectorSetting::L2Ways(w) => format!("{w} ways"),
        }
    }
}

/// A model prediction of steady-state (post-warm-up) L2 misses for one
/// SpMV iteration under one sector setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The configuration predicted.
    pub setting: SectorSetting,
    /// Predicted total L2 misses (Eq. 2).
    pub l2_misses: u64,
    /// Misses attributed per array (indexed by `Array as usize`).
    pub by_array: [u64; 5],
}

impl Prediction {
    /// Misses attributed to one array.
    pub fn misses_of(&self, array: Array) -> u64 {
        self.by_array[array as usize]
    }

    /// Fraction of predicted misses caused by `x`-vector accesses — the
    /// §4.5.5 "hard matrix" criterion uses ≥ 50 %.
    pub fn x_traffic_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.misses_of(Array::X) as f64 / self.l2_misses as f64
        }
    }
}

/// Which model variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Full-trace stack processing (§3.2.1).
    A,
    /// `x`-trace with analytic scaling (§3.2.2).
    B,
}

/// Predicts steady-state L2 misses for every setting, sequential or
/// parallel.
///
/// * `threads == 1`: sequential SpMV against one L2 segment.
/// * `threads > 1`: per-domain concurrent analysis; threads are grouped
///   `cfg.cores_per_domain` per shared L2 and per-domain predictions are
///   summed (every domain replicates shared data, as on the A64FX).
///
/// Accepts any [`SpmvWorkload`] (a `&CsrMatrix`, a `&SellMatrix`, or the
/// runtime-dispatched `memtrace::Workload`).
pub fn predict<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    settings: &[SectorSetting],
    threads: usize,
) -> Vec<Prediction> {
    match method {
        Method::A => crate::method_a::predict(workload, cfg, settings, threads),
        Method::B => crate::method_b::predict(workload, cfg, settings, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_contents() {
        let s = SectorSetting::paper_sweep();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], SectorSetting::Off);
        assert_eq!(s[1], SectorSetting::L2Ways(2));
        assert_eq!(s[6], SectorSetting::L2Ways(7));
    }

    #[test]
    fn capacities_from_geometry() {
        let cfg = MachineConfig::a64fx();
        // 2048 sets, 16 ways.
        assert_eq!(SectorSetting::Off.cap0_lines(&cfg), 32768);
        assert_eq!(SectorSetting::L2Ways(5).cap1_lines(&cfg), 2048 * 5);
        assert_eq!(SectorSetting::L2Ways(5).cap0_lines(&cfg), 2048 * 11);
    }

    #[test]
    fn x_fraction() {
        let p = Prediction {
            setting: SectorSetting::Off,
            l2_misses: 100,
            by_array: [60, 10, 20, 10, 0],
        };
        assert!((p.x_traffic_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(p.misses_of(Array::A), 20);
    }

    #[test]
    fn labels() {
        assert_eq!(SectorSetting::Off.label(), "off");
        assert_eq!(SectorSetting::L2Ways(4).label(), "4 ways");
    }
}
