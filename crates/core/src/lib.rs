//! The paper's primary contribution: a reuse-distance cache-miss model for
//! CSR SpMV with cache partitioning.
//!
//! Given nothing but a sparse matrix's dimensions and sparsity pattern,
//! the model predicts the number of last-level cache misses of iterative
//! SpMV — sequentially or with many threads sharing segmented L2 caches —
//! both without and with the A64FX-style sector cache isolating the
//! non-temporal matrix data.
//!
//! * [`mod@classify`] — the §3.1 working-set classification (classes 1, 2,
//!   3a, 3b) that predicts when partitioning helps.
//! * [`analytic`] — closed-form streaming-miss terms and the method (B)
//!   scaling factors `s1`, `s2`.
//! * [`method_a`] — full-trace stack processing (§3.2.1).
//! * [`method_b`] — the single-pass `x`-trace approximation (§3.2.2).
//! * [`concurrent`] — per-domain trace grouping and interleaving for the
//!   multi-threaded shared-cache analysis.
//! * [`predict`] — the unified API ([`predict::predict`]) and the
//!   [`predict::SectorSetting`] sweep type.
//! * [`profile`] — capacity-independent [`LocalityProfile`]s: the
//!   expensive trace analysis distilled into reuse histograms that any
//!   number of sector settings (and capacity scales) evaluate cheaply —
//!   the memoization unit of the batch engine.
//! * [`error`] — MAPE and APE-std metrics (Eq. 3) used by the evaluation.
//!
//! # Example
//!
//! ```
//! use a64fx::MachineConfig;
//! use locality_core::predict::{predict, Method, SectorSetting};
//! use sparsemat::CsrMatrix;
//!
//! let matrix = CsrMatrix::identity(100_000);
//! let cfg = MachineConfig::a64fx();
//! let preds = predict(
//!     &matrix,
//!     &cfg,
//!     Method::B,
//!     &[SectorSetting::Off, SectorSetting::L2Ways(5)],
//!     1,
//! );
//! // Isolating the streamed matrix data never increases predicted misses.
//! assert!(preds[1].l2_misses <= preds[0].l2_misses);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod classify;
pub mod concurrent;
pub mod error;
pub mod l1;
pub mod method_a;
pub mod method_b;
pub mod optimize;
pub mod predict;
pub mod profile;
pub mod two_level;

pub use classify::{classify, classify_for, MatrixClass};
pub use error::ErrorSummary;
pub use memtrace::{
    CgWorkload, FormatSpec, ReorderSpec, RhsLayout, ScenarioSpec, SpmmWorkload, SpmvWorkload,
    WorkShare, Workload,
};
pub use predict::{Method, Prediction, SectorSetting};
pub use profile::{DomainPartial, LocalityProfile, ProfileBuilder, TrackedCaps};
