//! Matrix classification by working-set size (§3.1).
//!
//! The paper classifies matrices against the cache (and cache-partition)
//! capacities to predict when the sector cache helps:
//!
//! 1. **Class (1)** — matrix and vectors together fit into cache: no
//!    capacity misses, partitioning cannot help.
//! 2. **Class (2)** — the working set exceeds the cache, but `x`, `y` and
//!    `rowptr` together fit into the sector-0 partition: partitioning
//!    shields all reusable data, the best case.
//! 3. **Class (3a)** — `x`, `y`, `rowptr` together exceed the partition
//!    but `x` alone fits.
//! 4. **Class (3b)** — even `x` alone exceeds the partition.

use a64fx::MachineConfig;
use memtrace::SpmvWorkload;

/// The paper's §3.1 matrix classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatrixClass {
    /// Matrix and vectors fit into cache.
    Class1,
    /// Matrix streams; `x`, `y` and `rowptr` fit into the partition.
    Class2,
    /// `x`, `y`, `rowptr` exceed the partition; `x` alone fits.
    Class3a,
    /// `x` alone exceeds the partition.
    Class3b,
}

impl MatrixClass {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MatrixClass::Class1 => "class (1)",
            MatrixClass::Class2 => "class (2)",
            MatrixClass::Class3a => "class (3a)",
            MatrixClass::Class3b => "class (3b)",
        }
    }
}

/// Bytes of the reusable data: `x` + `y` + the metadata stream (`rowptr`
/// for CSR, chunk descriptors for SELL-C-σ).
pub fn reusable_bytes<W: SpmvWorkload>(workload: &W) -> usize {
    workload.reusable_bytes()
}

/// Bytes of the `x` vector alone.
pub fn x_bytes<W: SpmvWorkload>(workload: &W) -> usize {
    workload.x_bytes()
}

/// Classifies a workload against explicit capacities: `cache_bytes` is the
/// capacity available without partitioning, `partition0_bytes` the capacity
/// of the sector-0 partition holding the reusable data.
pub fn classify<W: SpmvWorkload>(
    workload: &W,
    cache_bytes: usize,
    partition0_bytes: usize,
) -> MatrixClass {
    if workload.working_set_bytes() <= cache_bytes {
        MatrixClass::Class1
    } else if workload.reusable_bytes() <= partition0_bytes {
        MatrixClass::Class2
    } else if workload.x_bytes() <= partition0_bytes {
        MatrixClass::Class3a
    } else {
        MatrixClass::Class3b
    }
}

/// Classifies a workload for a machine configuration's L2, with the given
/// number of threads.
///
/// For parallel runs the effective capacity is one L2 segment per domain
/// (shared data such as `x` is replicated across segments — the paper's
/// §3.1 note — so the per-domain view is what governs reuse), while the
/// *matrix* data is split across domains; we follow the paper's Fig. 4 in
/// comparing the total working set against the aggregate cache and the
/// reusable data against one partition.
pub fn classify_for<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    num_threads: usize,
) -> MatrixClass {
    let domains = num_threads.div_ceil(cfg.cores_per_domain).max(1);
    let cache_bytes = cfg.l2.size_bytes * domains;
    let partition0_bytes = cfg.l2_partition_lines(0) * cfg.l2.line_bytes;
    classify(workload, cache_bytes, partition0_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, CsrMatrix};

    /// Square matrix with `n` rows and ~`nnz_per_row` random nonzeros.
    fn matrix(n: usize, nnz_per_row: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        let mut state = 99u64;
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn tiny_matrix_is_class1() {
        let m = matrix(100, 4);
        assert_eq!(classify(&m, 1 << 20, 1 << 18), MatrixClass::Class1);
    }

    #[test]
    fn streaming_matrix_with_small_vectors_is_class2() {
        let m = matrix(1000, 50);
        // Working set ~ 650 KB > 64 KB cache; reusable ~ 24 KB <= 32 KB.
        assert!(m.working_set_bytes() > 64 << 10);
        assert!(reusable_bytes(&m) <= 32 << 10);
        assert_eq!(classify(&m, 64 << 10, 32 << 10), MatrixClass::Class2);
    }

    #[test]
    fn large_vectors_fit_only_x_is_class3a() {
        let m = matrix(3000, 8);
        // reusable = 3000*8*2 + 3001*8 ~ 72 KB; x = 24 KB.
        let r = reusable_bytes(&m);
        let x = x_bytes(&m);
        assert!(r > 32 << 10 && x <= 32 << 10);
        assert_eq!(classify(&m, 64 << 10, 32 << 10), MatrixClass::Class3a);
    }

    #[test]
    fn huge_x_is_class3b() {
        let m = matrix(10_000, 2);
        assert!(x_bytes(&m) > 32 << 10);
        assert_eq!(classify(&m, 64 << 10, 32 << 10), MatrixClass::Class3b);
    }

    #[test]
    fn class_boundaries_are_inclusive() {
        // Working set exactly equals the cache: class (1).
        let m = matrix(64, 4);
        let ws = m.working_set_bytes();
        assert_eq!(classify(&m, ws, ws), MatrixClass::Class1);
        assert_eq!(
            classify(&m, ws - 1, reusable_bytes(&m)),
            MatrixClass::Class2
        );
    }

    #[test]
    fn classify_for_machine_uses_partition_capacity() {
        use a64fx::MachineConfig;
        let m = matrix(4000, 64); // matrix ~3 MB, reusable ~96 KB
        let cfg = MachineConfig::a64fx_scaled(16).with_l2_sector(5);
        // Scaled L2: 512 KiB; partition 0 = 11/16 of it = 352 KiB.
        assert_eq!(classify_for(&m, &cfg, 1), MatrixClass::Class2);
        // A matrix whose reusable data exceeds the partition degrades:
        // 40k rows -> x+y+rowptr ~ 940 KiB > 352 KiB, x ~ 312 KiB fits.
        let big = matrix(40_000, 8);
        assert_eq!(classify_for(&big, &cfg, 1), MatrixClass::Class3a);
    }

    #[test]
    fn labels() {
        assert_eq!(MatrixClass::Class1.label(), "class (1)");
        assert_eq!(MatrixClass::Class3b.label(), "class (3b)");
    }

    #[test]
    fn sell_workloads_classify_with_padded_working_set() {
        let m = matrix(1000, 50);
        let sell = sparsemat::SellMatrix::from_csr(&m, 8, 1000);
        // Padding enlarges the value/index stream, never shrinks it, while
        // the metadata shrinks to one descriptor per chunk.
        assert!(sell.stored_entries() >= m.nnz());
        assert!(reusable_bytes(&sell) <= reusable_bytes(&m));
        // Same capacities, same class boundaries, any workload view.
        assert_eq!(classify(&m, 64 << 10, 32 << 10), MatrixClass::Class2);
        assert_eq!(classify(&sell, 64 << 10, 32 << 10), MatrixClass::Class2);
    }
}
