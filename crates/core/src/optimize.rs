//! Way-partition optimisation and co-design miss curves.
//!
//! The paper's conclusion proposes the model "for example in a co-design
//! process to determine optimized cache sizes, or to decide whether to
//! integrate a cache partitioning mechanism". This module provides that
//! machinery: per-group reuse-distance histograms computed once yield the
//! full miss-vs-capacity curve of every routing group, from which
//!
//! * [`PartitionOptimizer::best_allocation`] finds the way split
//!   minimising total misses (exhaustive over the small allocation space,
//!   exact under the fully associative LRU model);
//! * [`PartitionOptimizer::miss_curve`] exposes the raw curves for cache
//!   sizing studies (see the `exp_codesign` binary).
//!
//! Because LRU stack contents are capacity-independent, one pass per
//! routing group covers *every* candidate allocation — the same property
//! Eq. (2) exploits.

use crate::concurrent::{thread_partition, DomainTraces};
use a64fx::MachineConfig;
use memtrace::spmv_trace::trace_spmv_partitioned;
use memtrace::{Array, ArraySet, SpmvWorkload};
use reuse::{ExactStack, ReuseHistogram};
use sparsemat::CsrMatrix;

/// Per-routing-group miss curves for one steady-state SpMV iteration on
/// one shared cache, and the machinery to optimise way allocations.
#[derive(Clone, Debug)]
pub struct PartitionOptimizer {
    groups: Vec<ArraySet>,
    /// One steady-state histogram per group per domain.
    histograms: Vec<Vec<ReuseHistogram>>,
    sets: usize,
    ways: usize,
}

impl PartitionOptimizer {
    /// Builds the optimizer for `matrix` on `cfg`'s L2 geometry, routing
    /// arrays into the given groups (each array must appear in exactly one
    /// group).
    ///
    /// `threads` follows the usual static row partition; per-domain
    /// interleaved traces feed per-domain stacks whose histograms are
    /// summed at query time.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not partition the five SpMV arrays, or if
    /// `threads` is zero.
    pub fn from_spmv(
        matrix: &CsrMatrix,
        cfg: &MachineConfig,
        groups: &[ArraySet],
        threads: usize,
    ) -> Self {
        assert!(threads >= 1, "need at least one thread");
        assert!(!groups.is_empty(), "need at least one group");
        for array in Array::ALL {
            let owners = groups.iter().filter(|g| g.contains(array)).count();
            assert_eq!(
                owners,
                1,
                "array {} must belong to exactly one group (found {owners})",
                array.name()
            );
        }

        let layout = matrix.layout(cfg.l2.line_bytes);
        let partition = thread_partition(matrix, threads);
        let per_thread = trace_spmv_partitioned(matrix, &layout, &partition);
        let domains = DomainTraces::group(per_thread, cfg.cores_per_domain);

        let mut histograms = vec![Vec::new(); groups.len()];
        for d in 0..domains.num_domains() {
            let mut interleaved = memtrace::VecSink::new();
            domains.feed_domain(d, &mut interleaved);
            for (gi, group) in groups.iter().enumerate() {
                let mut stack = ExactStack::new();
                // Warm-up iteration.
                for a in interleaved.trace.iter().filter(|a| group.contains(a.array)) {
                    stack.access(a.line);
                }
                // Measured iteration.
                let mut hist = ReuseHistogram::new();
                for a in interleaved.trace.iter().filter(|a| group.contains(a.array)) {
                    hist.record(stack.access(a.line));
                }
                histograms[gi].push(hist);
            }
        }

        PartitionOptimizer {
            groups: groups.to_vec(),
            histograms,
            sets: cfg.l2.num_sets(),
            ways: cfg.l2.ways,
        }
    }

    /// The routing groups.
    pub fn groups(&self) -> &[ArraySet] {
        &self.groups
    }

    /// Total misses of group `g` at a capacity of `lines`, summed over
    /// domains.
    pub fn group_misses(&self, g: usize, lines: usize) -> u64 {
        self.histograms[g].iter().map(|h| h.misses(lines)).sum()
    }

    /// The steady-state miss curve of group `g` sampled at each way count
    /// `1..=ways` (capacity `sets * w` lines).
    pub fn miss_curve(&self, g: usize) -> Vec<(usize, u64)> {
        (1..=self.ways)
            .map(|w| (w, self.group_misses(g, self.sets * w)))
            .collect()
    }

    /// Total predicted misses for an explicit way allocation (one entry
    /// per group; entries must be ≥ 1 and sum to the total way count).
    ///
    /// # Panics
    ///
    /// Panics on a malformed allocation.
    pub fn misses_for(&self, allocation: &[usize]) -> u64 {
        assert_eq!(
            allocation.len(),
            self.groups.len(),
            "one way count per group"
        );
        assert!(
            allocation.iter().all(|&w| w >= 1),
            "every group needs a way"
        );
        assert_eq!(
            allocation.iter().sum::<usize>(),
            self.ways,
            "allocation must use exactly {} ways",
            self.ways
        );
        allocation
            .iter()
            .enumerate()
            .map(|(g, &w)| self.group_misses(g, self.sets * w))
            .sum()
    }

    /// Misses with partitioning disabled (all groups share all ways).
    ///
    /// Note this is an approximation when groups interleave: it sums each
    /// group's solo curve at full capacity, which ignores cross-group
    /// pollution — the exact unpartitioned number comes from a single
    /// combined stack (method A's first pass).
    pub fn unpartitioned_upper_bound(&self) -> u64 {
        (0..self.groups.len())
            .map(|g| self.group_misses(g, self.sets * self.ways))
            .sum()
    }

    /// Exhaustively finds the allocation minimising total misses.
    /// Returns `(ways per group, predicted misses)`.
    pub fn best_allocation(&self) -> (Vec<usize>, u64) {
        let k = self.groups.len();
        let mut best: Option<(Vec<usize>, u64)> = None;
        let mut alloc = vec![1usize; k];
        // Enumerate compositions of `ways` into k parts >= 1.
        fn recurse(
            opt: &PartitionOptimizer,
            alloc: &mut Vec<usize>,
            g: usize,
            remaining: usize,
            best: &mut Option<(Vec<usize>, u64)>,
        ) {
            let k = alloc.len();
            if g == k - 1 {
                alloc[g] = remaining;
                let misses = opt.misses_for(alloc);
                if best.as_ref().is_none_or(|(_, b)| misses < *b) {
                    *best = Some((alloc.clone(), misses));
                }
                return;
            }
            let groups_left = k - g - 1;
            for w in 1..=(remaining - groups_left) {
                alloc[g] = w;
                recurse(opt, alloc, g + 1, remaining - w, best);
            }
        }
        recurse(self, &mut alloc, 0, self.ways, &mut best);
        best.expect("at least one allocation exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    fn listing1_groups() -> Vec<ArraySet> {
        vec![
            // Group 0: the reusable data.
            ArraySet::of(&[Array::X, Array::Y, Array::RowPtr]),
            // Group 1: the matrix stream.
            ArraySet::MATRIX_STREAM,
        ]
    }

    #[test]
    fn curves_are_monotone() {
        let m = random_matrix(2048, 12, 5);
        let cfg = MachineConfig::a64fx_scaled(64);
        let opt = PartitionOptimizer::from_spmv(&m, &cfg, &listing1_groups(), 1);
        for g in 0..2 {
            let curve = opt.miss_curve(g);
            assert_eq!(curve.len(), 16);
            for w in curve.windows(2) {
                assert!(w[1].1 <= w[0].1, "group {g}: curve not monotone");
            }
        }
    }

    #[test]
    fn stream_group_curve_is_flat_when_oversized() {
        // The matrix stream never fits: its misses are capacity-independent
        // (one per line).
        let m = random_matrix(4096, 16, 7);
        let cfg = MachineConfig::a64fx_scaled(64);
        let opt = PartitionOptimizer::from_spmv(&m, &cfg, &listing1_groups(), 1);
        let curve = opt.miss_curve(1);
        assert!(m.matrix_bytes() > cfg.l2.size_bytes);
        assert_eq!(curve.first().unwrap().1, curve.last().unwrap().1);
        assert!(curve[0].1 > 0);
    }

    #[test]
    fn best_allocation_is_optimal_and_valid() {
        let m = random_matrix(3000, 10, 9);
        let cfg = MachineConfig::a64fx_scaled(64);
        let opt = PartitionOptimizer::from_spmv(&m, &cfg, &listing1_groups(), 1);
        let (alloc, best) = opt.best_allocation();
        assert_eq!(alloc.len(), 2);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        // Exhaustive check that nothing beats it.
        for w0 in 1..16 {
            assert!(opt.misses_for(&[w0, 16 - w0]) >= best);
        }
        // With an oversized stream, the optimum gives the stream group the
        // minimum and the reusable group the rest.
        if m.matrix_bytes() > cfg.l2.size_bytes {
            assert!(
                alloc[0] >= alloc[1],
                "reusable data should get more ways: {alloc:?}"
            );
        }
    }

    #[test]
    fn three_group_allocation() {
        let m = random_matrix(2048, 8, 21);
        let cfg = MachineConfig::a64fx_scaled(64);
        let groups = vec![
            ArraySet::of(&[Array::X]),
            ArraySet::of(&[Array::Y, Array::RowPtr]),
            ArraySet::MATRIX_STREAM,
        ];
        let opt = PartitionOptimizer::from_spmv(&m, &cfg, &groups, 1);
        let (alloc, best) = opt.best_allocation();
        assert_eq!(alloc.len(), 3);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert!(best <= opt.misses_for(&[14, 1, 1]));
    }

    #[test]
    fn parallel_optimizer_sums_domains() {
        let m = random_matrix(4096, 8, 31);
        let mut cfg = MachineConfig::a64fx_scaled(64);
        cfg.cores_per_domain = 2;
        let opt = PartitionOptimizer::from_spmv(&m, &cfg, &listing1_groups(), 4);
        // 4 threads over 2 domains: histograms per group per domain.
        assert_eq!(opt.histograms[0].len(), 2);
        let (_, best) = opt.best_allocation();
        assert!(best > 0);
    }

    #[test]
    #[should_panic(expected = "exactly one group")]
    fn overlapping_groups_rejected() {
        let m = random_matrix(64, 2, 3);
        let cfg = MachineConfig::a64fx_scaled(64);
        let groups = vec![
            ArraySet::of(&[Array::X]),
            ArraySet::of(&[Array::X, Array::Y]),
        ];
        PartitionOptimizer::from_spmv(&m, &cfg, &groups, 1);
    }

    #[test]
    #[should_panic(expected = "exactly 16 ways")]
    fn malformed_allocation_rejected() {
        let m = random_matrix(64, 2, 3);
        let cfg = MachineConfig::a64fx_scaled(64);
        let opt = PartitionOptimizer::from_spmv(&m, &cfg, &listing1_groups(), 1);
        opt.misses_for(&[3, 4]);
    }
}
