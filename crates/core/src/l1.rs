//! L1 cache-miss prediction (§4.5.4).
//!
//! The same reuse-distance machinery applied to the private L1D caches:
//! each thread's trace is processed against its own core's L1 capacity —
//! no interleaving, since L1s are private. The paper reports markedly
//! higher error here (≈ 8–15 %) than for the L2 because the A64FX L1 is
//! only 4-way associative, far from the fully associative LRU the model
//! assumes; the same gap appears against this repository's simulator.

use crate::analytic::{scale_s2, StreamTerms};
use crate::concurrent::thread_partition;
use crate::predict::Method;
use a64fx::MachineConfig;
use memtrace::spmv_trace::trace_spmv_partitioned;
use memtrace::xtrace::trace_x_partitioned;
use memtrace::SpmvWorkload;
use reuse::MarkerStack;
use sparsemat::CsrMatrix;

/// Predicts steady-state L1 misses (summed over all threads) for SpMV
/// without cache partitioning.
pub fn predict_l1_misses(
    matrix: &CsrMatrix,
    cfg: &MachineConfig,
    method: Method,
    threads: usize,
) -> u64 {
    assert!(threads >= 1, "need at least one thread");
    if matrix.nnz() == 0 {
        return 0;
    }
    let layout = matrix.layout(cfg.l1.line_bytes);
    let partition = thread_partition(matrix, threads);
    let l1_lines = cfg.l1.total_lines();

    match method {
        Method::A => {
            let traces = trace_spmv_partitioned(matrix, &layout, &partition);
            let mut total = 0u64;
            for trace in &traces {
                let mut stack = MarkerStack::new(&[l1_lines]);
                for &a in trace {
                    stack.access(a.line, a.array);
                }
                stack.reset_counters();
                for &a in trace {
                    stack.access(a.line, a.array);
                }
                total += stack.misses(0);
            }
            total
        }
        Method::B => {
            // x misses from the scaled x-trace distances; streamed arrays
            // never stay in a (tiny) L1 across their reuse, so they
            // contribute their full per-line terms.
            let s2 = scale_s2(matrix.num_rows(), matrix.nnz());
            let threshold = ((l1_lines as f64 / s2).floor() as usize).max(1);
            let traces = trace_x_partitioned(matrix, &layout, &partition);
            let mut x_misses = 0u64;
            for trace in &traces {
                if trace.is_empty() {
                    continue;
                }
                let mut stack = MarkerStack::new(&[threshold]);
                for &a in trace {
                    stack.access(a.line, a.array);
                }
                stack.reset_counters();
                for &a in trace {
                    stack.access(a.line, a.array);
                }
                x_misses += stack.misses(0);
            }
            let terms = StreamTerms::of(matrix, cfg.l1.line_bytes);
            x_misses + terms.total()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn predictions_are_positive_for_oversized_matrices() {
        let cfg = MachineConfig::a64fx_scaled(16);
        let m = random_matrix(20_000, 8, 3);
        let a = predict_l1_misses(&m, &cfg, Method::A, 1);
        let b = predict_l1_misses(&m, &cfg, Method::B, 1);
        assert!(a > 0);
        assert!(b > 0);
        // Both predictions at least cover the streamed matrix lines.
        let terms = StreamTerms::of(&m, cfg.l1.line_bytes);
        assert!(a >= terms.a + terms.colidx);
        assert!(b >= terms.a + terms.colidx);
    }

    #[test]
    fn methods_agree_within_a_factor() {
        let cfg = MachineConfig::a64fx_scaled(16);
        let m = random_matrix(20_000, 16, 7);
        let a = predict_l1_misses(&m, &cfg, Method::A, 1) as f64;
        let b = predict_l1_misses(&m, &cfg, Method::B, 1) as f64;
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.5, "A = {a}, B = {b}");
    }

    #[test]
    fn parallel_prediction_close_to_sequential_total() {
        // Private L1s: splitting rows across threads barely changes the sum
        // (only per-thread boundary lines differ).
        let cfg = MachineConfig::a64fx_scaled(16);
        let m = random_matrix(10_000, 8, 9);
        let seq = predict_l1_misses(&m, &cfg, Method::A, 1) as f64;
        let par = predict_l1_misses(&m, &cfg, Method::A, 8) as f64;
        assert!((par - seq).abs() / seq < 0.05, "seq {seq} par {par}");
    }

    #[test]
    fn empty_matrix_predicts_zero() {
        let cfg = MachineConfig::a64fx_scaled(16);
        let m = CooMatrix::new(4, 4).to_csr();
        assert_eq!(predict_l1_misses(&m, &cfg, Method::A, 1), 0);
        assert_eq!(predict_l1_misses(&m, &cfg, Method::B, 1), 0);
    }
}
