//! Two-level model extension: L1-filtered L2 reuse-distance analysis.
//!
//! The paper's model feeds the *full* reference stream to the L2 stack,
//! implicitly treating the hierarchy as inclusive and L1-transparent. The
//! real L2 only sees L1 *misses*. For SpMV the two usually coincide —
//! repeated touches within one cache line are absorbed by the L1 in both
//! views — but matrices with short-range `x` reuse straddling the L1
//! capacity can differ. This module implements the filtered variant as an
//! ablation: each thread's references first pass through a private
//! fully associative LRU of the L1's line capacity, and only the misses
//! reach the shared-L2 analysis.

use crate::concurrent::{thread_partition, DomainTraces};
use crate::predict::{Prediction, SectorSetting};
use a64fx::MachineConfig;
use memtrace::spmv_trace::trace_spmv_partitioned;
use memtrace::{Access, Array, ArraySet, SpmvWorkload};
use reuse::{ExactStack, PartitionedStack};
use sparsemat::CsrMatrix;

/// Filters a per-thread trace through a private fully associative LRU of
/// `l1_lines` lines, keeping only the L1 misses.
///
/// The filter state persists across the returned trace's reuse (warm-up
/// then measurement replays both see a warm L1), matching steady-state
/// iterative SpMV: the filter is warmed with one full pass first.
pub fn l1_filter(trace: &[Access], l1_lines: usize) -> Vec<Access> {
    let mut stack = ExactStack::with_capacity(trace.len());
    // Warm-up pass: establish steady-state L1 contents.
    for a in trace {
        stack.access(a.line);
    }
    let mut out = Vec::new();
    for a in trace {
        let miss = match stack.access(a.line) {
            Some(d) => d >= l1_lines as u64,
            None => true,
        };
        if miss {
            out.push(*a);
        }
    }
    out
}

/// Method (A) with per-thread L1 filtering before the shared-L2 analysis.
pub fn predict_filtered(
    matrix: &CsrMatrix,
    cfg: &MachineConfig,
    settings: &[SectorSetting],
    threads: usize,
) -> Vec<Prediction> {
    assert!(threads >= 1, "need at least one thread");
    let layout = matrix.layout(cfg.l2.line_bytes);
    let partition = thread_partition(matrix, threads);
    let per_thread: Vec<Vec<Access>> = trace_spmv_partitioned(matrix, &layout, &partition)
        .iter()
        .map(|t| l1_filter(t, cfg.l1.total_lines()))
        .collect();
    let domains = DomainTraces::group(per_thread, cfg.cores_per_domain);

    let sets = cfg.l2.num_sets();
    settings
        .iter()
        .map(|&setting| {
            let (sector1, cap0, cap1) = match setting {
                SectorSetting::Off => (ArraySet::EMPTY, cfg.l2.total_lines(), 1),
                SectorSetting::L2Ways(w) => {
                    (ArraySet::MATRIX_STREAM, sets * (cfg.l2.ways - w), sets * w)
                }
            };
            let mut total = 0u64;
            let mut by_array = [0u64; 5];
            for d in 0..domains.num_domains() {
                let mut stack = PartitionedStack::new(sector1, &[cap0], &[cap1]);
                domains.feed_domain(d, &mut stack);
                stack.reset_counters();
                domains.feed_domain(d, &mut stack);
                total += stack.total_misses(0, 0);
                for a in Array::ALL {
                    by_array[a as usize] += stack.partition0().misses_by_array(0, a)
                        + stack.partition1().misses_by_array(0, a);
                }
            }
            Prediction {
                setting,
                l2_misses: total,
                by_array,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method_a;
    use crate::predict::Method;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn filter_removes_short_distance_reuse() {
        let trace: Vec<Access> = [1u64, 2, 1, 2, 50, 1]
            .iter()
            .map(|&l| Access::load(l, Array::X))
            .collect();
        // L1 of 2 lines. After the warm-up pass the LRU stack is [1,50,2].
        // Measured pass: 1 (d=0, hit), 2 (d=2, miss), 1 (d=1, hit),
        // 2 (d=1, hit), 50 (d=2, miss), 1 (d=2, miss).
        let filtered = l1_filter(&trace, 2);
        let lines: Vec<u64> = filtered.iter().map(|a| a.line).collect();
        assert_eq!(lines, vec![2, 50, 1]);
    }

    #[test]
    fn filter_with_huge_l1_removes_everything() {
        let m = random_matrix(128, 4, 3);
        let layout = m.layout(memtrace::A64FX_LINE_BYTES);
        let mut sink = memtrace::VecSink::new();
        memtrace::spmv_trace::trace_spmv(&m, &layout, &mut sink);
        let filtered = l1_filter(&sink.trace, 1 << 20);
        assert!(
            filtered.is_empty(),
            "warm, giant L1 absorbs all steady-state reuse"
        );
    }

    #[test]
    fn filter_with_one_line_keeps_nearly_everything() {
        let m = random_matrix(128, 4, 3);
        let layout = m.layout(memtrace::A64FX_LINE_BYTES);
        let mut sink = memtrace::VecSink::new();
        memtrace::spmv_trace::trace_spmv(&m, &layout, &mut sink);
        let filtered = l1_filter(&sink.trace, 1);
        // Only immediate same-line repeats are absorbed.
        assert!(filtered.len() > sink.trace.len() / 3);
    }

    #[test]
    fn filtered_prediction_close_to_unfiltered_for_spmv() {
        // For SpMV's access structure the L1 absorbs intra-line reuse that
        // the L2 stack would also classify as hits, so the two variants
        // agree closely (this is why the paper's single-level model works).
        let m = random_matrix(4096, 12, 9);
        let cfg = MachineConfig::a64fx_scaled(64);
        let settings = [SectorSetting::Off, SectorSetting::L2Ways(5)];
        let plain = method_a::predict(&m, &cfg, &settings, 1);
        let filtered = predict_filtered(&m, &cfg, &settings, 1);
        for (p, f) in plain.iter().zip(&filtered) {
            let rel = (p.l2_misses as f64 - f.l2_misses as f64).abs() / p.l2_misses.max(1) as f64;
            assert!(
                rel < 0.05,
                "{:?}: plain {} vs filtered {}",
                p.setting,
                p.l2_misses,
                f.l2_misses
            );
        }
        let _ = Method::A;
    }

    #[test]
    fn filtered_matches_lru_simulator() {
        // The filtered model mirrors the simulator's actual request flow
        // (L2 sees only L1 misses); under LRU + no prefetch they agree.
        use a64fx::{simulate_spmv, PrefetchConfig, Replacement};
        let m = random_matrix(4096, 8, 21);
        let mut cfg = MachineConfig::a64fx_scaled(64).with_prefetch(PrefetchConfig::off());
        cfg.replacement = Replacement::Lru;
        let pred = predict_filtered(&m, &cfg, &[SectorSetting::Off], 1);
        let sim = simulate_spmv(&m, &cfg, ArraySet::EMPTY, 1, 1);
        let rel = (pred[0].l2_misses as f64 - sim.pmu.l2_misses() as f64).abs()
            / sim.pmu.l2_misses().max(1) as f64;
        assert!(
            rel < 0.08,
            "filtered model {} vs simulator {}",
            pred[0].l2_misses,
            sim.pmu.l2_misses()
        );
    }
}
