//! Method (A): full-trace stack processing (§3.2.1).
//!
//! The complete SpMV memory trace (Fig. 1 b) is generated from the
//! sparsity pattern and processed with the marker stack. Two passes are
//! needed, exactly as the paper describes: one with all references in a
//! single partition (sector cache off) and one with references divided
//! between the partitions (Eq. 2). Each pass replays the trace twice —
//! a warm-up iteration (whose counters are discarded) and a measured one —
//! so the prediction covers steady-state iterative SpMV with no cold
//! misses.
//!
//! All way splits of a sweep share one pass: partition contents under LRU
//! depend only on the reference routing, not on the capacities, so the
//! trace analysis is distilled into capacity-independent reuse histograms
//! ([`LocalityProfile`]) evaluated per split — one histogram serves every
//! [`SectorSetting`] capacity, and batch drivers can memoize the profile.

use crate::predict::{Method, Prediction, SectorSetting};
use crate::profile::LocalityProfile;
use a64fx::MachineConfig;
use memtrace::SpmvWorkload;

/// Predicts steady-state L2 misses for the given settings using method (A).
pub fn predict<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    settings: &[SectorSetting],
    threads: usize,
) -> Vec<Prediction> {
    LocalityProfile::compute(workload, cfg, Method::A, threads).evaluate(cfg, settings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Array;
    use sparsemat::{CooMatrix, CsrMatrix};

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..nnz_per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    fn cfg() -> MachineConfig {
        MachineConfig::a64fx_scaled(64)
    }

    #[test]
    fn class1_predicts_zero_misses() {
        // Everything fits in the scaled L2 (128 KiB): steady state has no
        // capacity misses in any configuration.
        let m = random_matrix(64, 3, 5);
        assert!(m.working_set_bytes() < cfg().l2.size_bytes);
        for p in predict(&m, &cfg(), &SectorSetting::paper_sweep(), 1) {
            assert_eq!(p.l2_misses, 0, "{:?}", p.setting);
        }
    }

    #[test]
    fn streaming_arrays_always_miss_when_oversized() {
        let m = random_matrix(4096, 16, 7);
        assert!(m.matrix_bytes() > cfg().l2.size_bytes);
        let preds = predict(&m, &cfg(), &[SectorSetting::L2Ways(4)], 1);
        let terms = crate::analytic::StreamTerms::of(&m, memtrace::A64FX_LINE_BYTES);
        // In the partitioned prediction the matrix stream misses once per
        // line (it cannot fit 4 ways), exactly the closed-form terms.
        assert_eq!(preds[0].misses_of(Array::A), terms.a);
        assert_eq!(preds[0].misses_of(Array::ColIdx), terms.colidx);
    }

    #[test]
    fn partitioning_protects_reusable_data_for_class2() {
        // A 32 KiB L2 (128 lines): the reusable data (x + y + rowptr of a
        // 1024-row matrix = 97 lines) fits 13 of 16 ways (104 lines), but
        // the whole working set (matrix streams included) does not fit the
        // cache — the paper's class (2).
        let mut c = cfg();
        c.l2.size_bytes = 32 << 10;
        let m = random_matrix(1024, 32, 9);
        assert_eq!(
            crate::classify::classify(&m, c.l2.size_bytes, 104 * memtrace::A64FX_LINE_BYTES),
            crate::classify::MatrixClass::Class2
        );
        let preds = predict(&m, &c, &[SectorSetting::Off, SectorSetting::L2Ways(3)], 1);
        let off = &preds[0];
        let part = &preds[1];
        // With partitioning, x/y/rowptr fit partition 0: no misses there —
        // "misses caused by accesses to x, rowptr, and y are avoided" (§3.1).
        assert_eq!(part.misses_of(Array::X), 0);
        assert_eq!(part.misses_of(Array::Y), 0);
        assert_eq!(part.misses_of(Array::RowPtr), 0);
        // Without partitioning, y and rowptr are evicted between their
        // per-iteration reuses, costing their full streaming terms extra.
        let terms = crate::analytic::StreamTerms::of(&m, memtrace::A64FX_LINE_BYTES);
        assert!(off.misses_of(Array::Y) + off.misses_of(Array::RowPtr) >= terms.y + terms.rowptr);
        assert!(off.l2_misses >= part.l2_misses + terms.y + terms.rowptr);
    }

    #[test]
    fn parallel_prediction_sums_domains() {
        let m = random_matrix(8192, 16, 3);
        let mut c = cfg();
        c.cores_per_domain = 2;
        let seq = predict(&m, &c, &[SectorSetting::Off], 1);
        let par = predict(&m, &c, &[SectorSetting::Off], 8);
        // 8 threads over 4 domains: each domain streams ~1/4 of the matrix
        // but replicates x; total misses differ from sequential, and the
        // prediction machinery must produce a nonzero per-domain sum.
        assert!(par[0].l2_misses > 0);
        assert_ne!(par[0].l2_misses, seq[0].l2_misses);
    }

    #[test]
    fn settings_order_is_preserved() {
        let m = random_matrix(256, 4, 1);
        let settings = [
            SectorSetting::L2Ways(5),
            SectorSetting::Off,
            SectorSetting::L2Ways(2),
        ];
        let preds = predict(&m, &cfg(), &settings, 1);
        assert_eq!(preds[0].setting, SectorSetting::L2Ways(5));
        assert_eq!(preds[1].setting, SectorSetting::Off);
        assert_eq!(preds[2].setting, SectorSetting::L2Ways(2));
    }

    #[test]
    fn by_array_sums_to_total() {
        let m = random_matrix(4096, 8, 21);
        for p in predict(&m, &cfg(), &SectorSetting::paper_sweep(), 1) {
            let sum: u64 = p.by_array.iter().sum();
            assert_eq!(sum, p.l2_misses, "{:?}", p.setting);
        }
    }
}
