//! Prediction-error metrics (§4.5, Eq. 3).
//!
//! The paper reports the Mean Absolute Percentage Error and the standard
//! deviation of the absolute percentage error between measured (`x`) and
//! predicted (`x̂`) L2 cache-miss counts.

/// Absolute percentage error `|x - x̂| / x × 100`, or `None` when the
/// measured value is zero (the paper excludes such cases: "the MAPE is
/// distorted by cases with few or no cache misses").
pub fn ape(measured: f64, predicted: f64) -> Option<f64> {
    if measured == 0.0 {
        None
    } else {
        Some(100.0 * ((measured - predicted) / measured).abs())
    }
}

/// Summary of absolute percentage errors over a set of matrices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorSummary {
    /// Mean absolute percentage error (Eq. 3).
    pub mape: f64,
    /// Population standard deviation of the absolute percentage errors.
    pub std: f64,
    /// Number of (measured, predicted) pairs included.
    pub count: usize,
}

impl ErrorSummary {
    /// Computes MAPE and its standard deviation from paired samples,
    /// skipping pairs with a zero measured value.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let apes: Vec<f64> = pairs.into_iter().filter_map(|(m, p)| ape(m, p)).collect();
        Self::from_apes(&apes)
    }

    /// Computes the summary from precomputed absolute percentage errors.
    pub fn from_apes(apes: &[f64]) -> Self {
        let n = apes.len();
        if n == 0 {
            return ErrorSummary {
                mape: 0.0,
                std: 0.0,
                count: 0,
            };
        }
        let mean = apes.iter().sum::<f64>() / n as f64;
        let var = apes.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / n as f64;
        ErrorSummary {
            mape: mean,
            std: var.sqrt(),
            count: n,
        }
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} % ± {:.2} % (n = {})",
            self.mape, self.std, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ape_basic() {
        assert_eq!(ape(100.0, 90.0), Some(10.0));
        assert_eq!(ape(100.0, 110.0), Some(10.0));
        assert_eq!(ape(50.0, 50.0), Some(0.0));
        assert_eq!(ape(0.0, 5.0), None);
    }

    #[test]
    fn summary_over_pairs() {
        let s = ErrorSummary::from_pairs(vec![(100.0, 90.0), (100.0, 130.0), (0.0, 7.0)]);
        assert_eq!(s.count, 2);
        assert!((s.mape - 20.0).abs() < 1e-12); // (10 + 30) / 2
        assert!((s.std - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let s = ErrorSummary::from_pairs(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mape, 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let s = ErrorSummary::from_pairs((1..10).map(|i| (i as f64, i as f64)));
        assert_eq!(s.mape, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.count, 9);
    }

    #[test]
    fn display_format() {
        let s = ErrorSummary {
            mape: 2.487,
            std: 4.0,
            count: 3,
        };
        assert_eq!(s.to_string(), "2.49 % ± 4.00 % (n = 3)");
    }
}
