//! A64FX simulator throughput: accesses per second through the full
//! L1 → L2 → memory hierarchy under different sector and prefetch
//! configurations.

use a64fx::{simulate_spmv, PrefetchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memtrace::ArraySet;
use spmv_bench::runner::{machine_for, SweepPoint};

fn bench_simulator(c: &mut Criterion) {
    let suite = corpus::corpus(1, 64, 3);
    let m = &suite[0].matrix;
    // One measured iteration touches ~3.2 references per nonzero.
    let refs = (m.nnz() as u64) * 3 + 2 * m.num_rows() as u64;

    let mut group = c.benchmark_group("cachesim");
    group.throughput(Throughput::Elements(refs));

    let configs = [
        ("baseline", SweepPoint::BASELINE, true),
        (
            "sector-5w",
            SweepPoint {
                l2_ways: 5,
                l1_ways: 0,
            },
            true,
        ),
        (
            "sector-5w-nopf",
            SweepPoint {
                l2_ways: 5,
                l1_ways: 0,
            },
            false,
        ),
    ];
    for (name, point, prefetch) in configs {
        for threads in [1usize, 8] {
            let mut cfg = machine_for(64, threads, point);
            if !prefetch {
                cfg = cfg.with_prefetch(PrefetchConfig::off());
            }
            let sector = if point.l2_ways > 0 {
                ArraySet::MATRIX_STREAM
            } else {
                ArraySet::EMPTY
            };
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &t| {
                b.iter(|| simulate_spmv(m, &cfg, sector, t, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
