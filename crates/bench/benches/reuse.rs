//! Reuse-distance algorithm benchmarks: the O(N·n) naive oracle, the
//! O(log N) exact Fenwick processor, and the O(#capacities) marker stack
//! (Kim et al.) the paper selects for its locality-independent cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memtrace::Array;
use reuse::{naive::NaiveStack, sampled::SampledStack, ExactStack, MarkerStack};

fn trace(len: usize, universe: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            (state >> 33) % universe
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let t = trace(200_000, 8192, 5);
    let caps = [512usize, 2048, 8192, 16384];

    let mut group = c.benchmark_group("reuse-distance");
    group.throughput(Throughput::Elements(t.len() as u64));

    group.bench_function("marker-stack-4caps", |b| {
        b.iter(|| {
            let mut s = MarkerStack::new(&caps);
            for &l in &t {
                s.access(l, Array::X);
            }
            s.misses(0)
        })
    });
    group.bench_function("sampled-1/16", |b| {
        b.iter(|| {
            let mut s = SampledStack::new(4).expect("shift 4 is in range");
            for &l in &t {
                s.access(l);
            }
            s.estimated_misses(2048)
        })
    });
    group.bench_function("exact-fenwick", |b| {
        b.iter(|| {
            let mut s = ExactStack::with_capacity(t.len());
            let mut acc = 0u64;
            for &l in &t {
                if let Some(d) = s.access(l) {
                    acc = acc.wrapping_add(d);
                }
            }
            acc
        })
    });
    group.finish();

    // The naive oracle is orders of magnitude slower: bench a short prefix
    // so the run terminates.
    let short = &t[..5_000];
    let mut group = c.benchmark_group("reuse-distance-naive");
    group.throughput(Throughput::Elements(short.len() as u64));
    group.bench_function("naive-5k", |b| {
        b.iter(|| {
            let mut s = NaiveStack::new();
            let mut acc = 0u64;
            for &l in short {
                if let Some(d) = s.access(l) {
                    acc = acc.wrapping_add(d);
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms
}
criterion_main!(benches);
