//! SpMV kernel micro-benchmarks: sequential vs. row-parallel vs.
//! merge-based CSR SpMV (the §2.1 kernel and the [18] baseline), on a
//! regular and a row-skewed matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparsemat::{spmv, CooMatrix, CsrMatrix, RowPartition};

fn regular_matrix(n: usize, per_row: usize) -> CsrMatrix {
    let mut state = 42u64;
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        for _ in 0..per_row {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            coo.push(r, (state >> 33) as usize % n, 1.0);
        }
    }
    coo.to_csr()
}

fn skewed_matrix(n: usize) -> CsrMatrix {
    // 1% of rows carry 100x the nonzeros.
    let mut state = 7u64;
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let per_row = if r % 100 == 0 { 400 } else { 4 };
        for _ in 0..per_row {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            coo.push(r, (state >> 33) as usize % n, 1.0);
        }
    }
    coo.to_csr()
}

fn bench_kernels(c: &mut Criterion) {
    for (name, a) in [
        ("regular-64k", regular_matrix(65_536, 16)),
        ("skewed-64k", skewed_matrix(65_536)),
    ] {
        let x = vec![1.0; a.num_cols()];
        let mut y = vec![0.0; a.num_rows()];
        let mut group = c.benchmark_group(format!("spmv/{name}"));
        group.throughput(Throughput::Elements(a.nnz() as u64));

        group.bench_function("sequential", |b| b.iter(|| spmv::spmv_seq(&a, &x, &mut y)));
        for threads in [2usize, 4, 8] {
            let p = RowPartition::static_rows(a.num_rows(), threads);
            group.bench_with_input(
                BenchmarkId::new("parallel-static", threads),
                &threads,
                |b, _| b.iter(|| spmv::spmv_parallel(&a, &x, &mut y, &p)),
            );
            let bp = RowPartition::balanced_nnz(&a, threads);
            group.bench_with_input(
                BenchmarkId::new("parallel-balanced", threads),
                &threads,
                |b, _| b.iter(|| spmv::spmv_parallel(&a, &x, &mut y, &bp)),
            );
            group.bench_with_input(BenchmarkId::new("merge", threads), &threads, |b, _| {
                b.iter(|| spmv::spmv_merge(&a, &x, &mut y, threads))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);
