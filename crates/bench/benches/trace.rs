//! Method (A) vs. method (B) analysis cost — the §4.5.1 `t_A/t_B`
//! overhead measured as a Criterion benchmark: full prediction sweeps per
//! method, sequential and 8-thread.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use locality_core::predict::{predict, Method, SectorSetting};
use spmv_bench::runner::{machine_for, SweepPoint};

fn bench_methods(c: &mut Criterion) {
    let suite = corpus::corpus(3, 64, 11);
    let settings = SectorSetting::paper_sweep();

    for threads in [1usize, 8] {
        let cfg = machine_for(64, threads, SweepPoint::BASELINE);
        let mut group = c.benchmark_group(format!("model-sweep/{threads}-threads"));
        for nm in &suite {
            group.throughput(Throughput::Elements(nm.matrix.nnz() as u64));
            group.bench_with_input(
                BenchmarkId::new("method-A", &nm.name),
                &nm.matrix,
                |b, m| b.iter(|| predict(m, &cfg, Method::A, &settings, threads)),
            );
            group.bench_with_input(
                BenchmarkId::new("method-B", &nm.name),
                &nm.matrix,
                |b, m| b.iter(|| predict(m, &cfg, Method::B, &settings, threads)),
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_methods
}
criterion_main!(benches);
