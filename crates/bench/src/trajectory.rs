//! Cross-PR benchmark trajectory: parse the checked-in `BENCH_*.json`
//! acceptance results and gate on marker-throughput regressions.
//!
//! Each speed-push PR leaves a `BENCH_pr<N>.json` at the repo root with
//! a `modes` array; the `streaming_marker` mode's `refs_per_sec` is the
//! canonical single-thread marker throughput on the shared spec. This
//! module reads every such file, orders them by PR number (numeric, so
//! `pr10` sorts after `pr9`), and checks the newest rate against the
//! best earlier one: a drop of more than the tolerance (default 10%)
//! fails the gate. The files are machine-written on different hosts, so
//! the comparison is same-file-lineage only — the gate catches "this PR
//! made the pipeline slower on the bench host", not cross-host noise.
//!
//! No serde in the workspace: the extractor is a purpose-built scanner
//! over the known schema (`"name": "streaming_marker"` followed by its
//! mode object's `"refs_per_sec"`), not a general JSON parser.

use std::path::{Path, PathBuf};

/// One PR's benchmark point on the trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    /// PR number parsed from the `BENCH_pr<N>.json` file name.
    pub pr: u64,
    /// File the point came from.
    pub path: PathBuf,
    /// The `bench` label inside the file (e.g. `pr7_block_batched_pipeline`).
    pub bench: String,
    /// `streaming_marker` throughput in references per second.
    pub marker_refs_per_sec: f64,
}

/// The gate's verdict over a trajectory.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Fewer than two points: nothing to compare, trivially passing.
    TooFewPoints,
    /// Newest point holds (or improves on) the best earlier rate within
    /// tolerance. Carries `(best_prior, newest, change_pct)`.
    Ok(f64, f64, f64),
    /// Newest point regressed beyond tolerance; same payload.
    Regressed(f64, f64, f64),
}

/// Extracts the PR number from a `BENCH_pr<N>.json` file name.
pub fn pr_number(file_name: &str) -> Option<u64> {
    let rest = file_name.strip_prefix("BENCH_pr")?;
    let digits = rest.strip_suffix(".json")?;
    digits.parse().ok()
}

/// Pulls the `streaming_marker` mode's `refs_per_sec` out of a
/// `BENCH_*.json` document, plus the top-level `bench` label.
///
/// Returns `None` when the document does not carry the expected shape
/// (so a future bench file without a marker mode is skipped loudly by
/// the caller rather than misread).
pub fn parse_bench(text: &str) -> Option<(String, f64)> {
    let bench = string_field(text, "bench")?;
    // Locate the marker mode's object, then its rate. The mode name is
    // matched exactly — `streaming_marker_parallel` must not shadow it.
    let mut search_from = 0usize;
    loop {
        let name_at = find_from(text, "\"name\"", search_from)?;
        let after = colon_value(text, name_at)?;
        if after.starts_with("\"streaming_marker\"") {
            let rate_at = find_from(text, "\"refs_per_sec\"", name_at)?;
            let value = colon_value(text, rate_at)?;
            let number: String = value
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            return Some((bench, number.parse().ok()?));
        }
        search_from = name_at + 1;
    }
}

fn find_from(text: &str, needle: &str, from: usize) -> Option<usize> {
    text.get(from..)?.find(needle).map(|i| from + i)
}

/// The text immediately after the `:` following the key at `key_at`,
/// with whitespace skipped.
fn colon_value(text: &str, key_at: usize) -> Option<&str> {
    let after_key = &text[key_at..];
    let colon = after_key.find(':')?;
    Some(after_key[colon + 1..].trim_start())
}

fn string_field(text: &str, key: &str) -> Option<String> {
    let key_at = text.find(&format!("\"{key}\""))?;
    let value = colon_value(text, key_at)?;
    let inner = value.strip_prefix('"')?;
    Some(inner[..inner.find('"')?].to_string())
}

/// Loads every `BENCH_pr<N>.json` under `dir`, sorted by PR number.
/// Files that fail to parse are returned in the error list instead of
/// being silently skipped.
pub fn load_trajectory(dir: &Path) -> std::io::Result<(Vec<BenchPoint>, Vec<String>)> {
    let mut points = Vec::new();
    let mut problems = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pr) = pr_number(name) else { continue };
        let path = entry.path();
        let text = std::fs::read_to_string(&path)?;
        match parse_bench(&text) {
            Some((bench, marker_refs_per_sec)) => points.push(BenchPoint {
                pr,
                path,
                bench,
                marker_refs_per_sec,
            }),
            None => problems.push(format!(
                "{}: no streaming_marker refs_per_sec found",
                path.display()
            )),
        }
    }
    points.sort_by_key(|p| p.pr);
    Ok((points, problems))
}

/// Applies the regression gate: the newest point's marker rate must be
/// at least `(1 - tolerance_pct/100)` of the best earlier rate.
pub fn gate(points: &[BenchPoint], tolerance_pct: f64) -> Verdict {
    let Some((newest, prior)) = points.split_last() else {
        return Verdict::TooFewPoints;
    };
    let best_prior = prior
        .iter()
        .map(|p| p.marker_refs_per_sec)
        .fold(f64::NAN, f64::max);
    if !best_prior.is_finite() || best_prior <= 0.0 {
        return Verdict::TooFewPoints;
    }
    let newest = newest.marker_refs_per_sec;
    let change_pct = 100.0 * (newest - best_prior) / best_prior;
    if change_pct < -tolerance_pct {
        Verdict::Regressed(best_prior, newest, change_pct)
    } else {
        Verdict::Ok(best_prior, newest, change_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "pr7_block_batched_pipeline",
  "modes": [
    {"name": "streaming_marker", "secs": 0.03, "refs_per_sec": 35678405, "vm_hwm_kb_after": 23340},
    {"name": "streaming_marker_parallel", "secs": 0.03, "refs_per_sec": 36290294, "vm_hwm_kb_after": 23340}
  ]
}"#;

    fn point(pr: u64, rate: f64) -> BenchPoint {
        BenchPoint {
            pr,
            path: PathBuf::from(format!("BENCH_pr{pr}.json")),
            bench: format!("pr{pr}"),
            marker_refs_per_sec: rate,
        }
    }

    #[test]
    fn pr_numbers_parse_numerically() {
        assert_eq!(pr_number("BENCH_pr2.json"), Some(2));
        assert_eq!(pr_number("BENCH_pr10.json"), Some(10));
        assert_eq!(pr_number("BENCH_prx.json"), None);
        assert_eq!(pr_number("bench_pr2.json"), None);
        // Numeric, not lexicographic: pr10 sorts after pr9.
        let mut points = [point(10, 1.0), point(9, 1.0), point(2, 1.0)];
        points.sort_by_key(|p| p.pr);
        let order: Vec<u64> = points.iter().map(|p| p.pr).collect();
        assert_eq!(order, [2, 9, 10]);
    }

    #[test]
    fn parses_the_marker_mode_not_its_parallel_sibling() {
        let (bench, rate) = parse_bench(DOC).expect("parses");
        assert_eq!(bench, "pr7_block_batched_pipeline");
        assert_eq!(rate, 35678405.0);
        // A document whose only mode is the parallel one yields None.
        let only_parallel = DOC.replacen("\"streaming_marker\"", "\"other_mode\"", 1);
        assert_eq!(parse_bench(&only_parallel), None);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let ok = [point(2, 100.0), point(7, 95.0)];
        assert!(matches!(gate(&ok, 10.0), Verdict::Ok(_, _, _)));
        let bad = [point(2, 100.0), point(7, 110.0), point(10, 95.0)];
        // Best prior is 110 (pr7); 95 is a -13.6% change.
        match gate(&bad, 10.0) {
            Verdict::Regressed(best, newest, change) => {
                assert_eq!(best, 110.0);
                assert_eq!(newest, 95.0);
                assert!(change < -13.0 && change > -14.0, "{change}");
            }
            v => panic!("expected regression, got {v:?}"),
        }
        // Same drop with a looser gate passes.
        assert!(matches!(gate(&bad, 15.0), Verdict::Ok(_, _, _)));
    }

    #[test]
    fn degenerate_trajectories_are_trivially_ok() {
        assert_eq!(gate(&[], 10.0), Verdict::TooFewPoints);
        assert_eq!(gate(&[point(2, 100.0)], 10.0), Verdict::TooFewPoints);
    }
}
