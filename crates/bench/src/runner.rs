//! Shared experiment plumbing: machine setup, measurement, host-side
//! parallelism and argument parsing for the `exp_*` binaries.

use a64fx::{estimate, simulate_spmv, MachineConfig, Performance, PrefetchConfig, SimResult};
use locality_core::SectorSetting;
use memtrace::ArraySet;
use sparsemat::CsrMatrix;

/// One point of the sector-cache sweep: `l2_ways == 0` means the sector
/// cache is disabled entirely (the baseline), otherwise `l2_ways` L2 ways
/// (and optionally `l1_ways` L1 ways) are reserved for the non-temporal
/// matrix data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// L2 ways for sector 1 (0 = sector cache off).
    pub l2_ways: usize,
    /// L1 ways for sector 1 (0 = L1 sector cache off).
    pub l1_ways: usize,
}

impl SweepPoint {
    /// The disabled-sector-cache baseline.
    pub const BASELINE: SweepPoint = SweepPoint {
        l2_ways: 0,
        l1_ways: 0,
    };

    /// Label like `base`, `L2=5`, `L2=4+L1=2`.
    pub fn label(&self) -> String {
        match (self.l2_ways, self.l1_ways) {
            (0, _) => "base".to_string(),
            (w, 0) => format!("L2={w}"),
            (w, l) => format!("L2={w}+L1={l}"),
        }
    }
}

/// The model's sweep type maps losslessly onto the simulator's: the model
/// has no L1-sector dimension, so `l1_ways` is always 0.
impl From<SectorSetting> for SweepPoint {
    fn from(setting: SectorSetting) -> SweepPoint {
        match setting {
            SectorSetting::Off => SweepPoint::BASELINE,
            SectorSetting::L2Ways(w) => SweepPoint {
                l2_ways: w,
                l1_ways: 0,
            },
        }
    }
}

/// The reverse direction is partial: a sweep point that reserves L1 ways
/// has no [`SectorSetting`] equivalent (the model only partitions L2) and
/// is rejected rather than silently truncated.
impl TryFrom<SweepPoint> for SectorSetting {
    type Error = String;

    fn try_from(point: SweepPoint) -> Result<SectorSetting, String> {
        if point.l1_ways != 0 && point.l2_ways != 0 {
            return Err(format!(
                "sweep point {} reserves L1 ways, which the locality model cannot express",
                point.label()
            ));
        }
        Ok(match point.l2_ways {
            0 => SectorSetting::Off,
            w => SectorSetting::L2Ways(w),
        })
    }
}

/// Builds the machine configuration for a sweep point.
pub fn machine_for(scale: usize, threads: usize, point: SweepPoint) -> MachineConfig {
    let mut cfg = if scale <= 1 {
        MachineConfig::a64fx()
    } else {
        MachineConfig::a64fx_scaled(scale)
    };
    cfg = cfg.with_cores(threads.max(1));
    if point.l2_ways > 0 {
        cfg = cfg.with_l2_sector(point.l2_ways);
    }
    if point.l1_ways > 0 {
        cfg = cfg.with_l1_sector(point.l1_ways);
    }
    cfg
}

/// Simulates one measured SpMV iteration (after one warm-up) at a sweep
/// point and estimates its performance.
pub fn measure(
    matrix: &CsrMatrix,
    scale: usize,
    threads: usize,
    point: SweepPoint,
) -> (SimResult, Performance) {
    let cfg = machine_for(scale, threads, point);
    let sector1 = if point.l2_ways > 0 || point.l1_ways > 0 {
        ArraySet::MATRIX_STREAM
    } else {
        ArraySet::EMPTY
    };
    let sim = simulate_spmv(matrix, &cfg, sector1, threads, 1);
    let perf = estimate(&cfg, matrix.nnz(), &sim);
    (sim, perf)
}

/// Like [`measure`], but with the prefetcher configured explicitly (for
/// the §4.3 prefetch-distance ablation).
pub fn measure_with_prefetch(
    matrix: &CsrMatrix,
    scale: usize,
    threads: usize,
    point: SweepPoint,
    prefetch: PrefetchConfig,
) -> (SimResult, Performance) {
    let cfg = machine_for(scale, threads, point).with_prefetch(prefetch);
    let sector1 = if point.l2_ways > 0 || point.l1_ways > 0 {
        ArraySet::MATRIX_STREAM
    } else {
        ArraySet::EMPTY
    };
    let sim = simulate_spmv(matrix, &cfg, sector1, threads, 1);
    let perf = estimate(&cfg, matrix.nnz(), &sim);
    (sim, perf)
}

/// Maps `f` over `items` using all host cores (order-preserving).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("results lock").push((i, r));
            });
        }
    });
    let mut collected = results.into_inner().expect("results lock");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Common command-line arguments of the experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Number of corpus matrices (`--count`, default per experiment).
    pub count: usize,
    /// Machine scale divisor (`--scale`, default 16; `--full` sets 1).
    pub scale: usize,
    /// SpMV threads (`--threads`, default 48).
    pub threads: usize,
    /// Corpus seed (`--seed`, default 2023).
    pub seed: u64,
}

impl ExpArgs {
    /// Parses `std::env::args` with the given default corpus count.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_count: usize) -> ExpArgs {
        Self::parse_from(std::env::args().skip(1), default_count)
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>, default_count: usize) -> ExpArgs {
        let mut out = ExpArgs {
            count: default_count,
            scale: 16,
            threads: 48,
            seed: 2023,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |what: &str| -> u64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("expected a number after {what}"))
            };
            match arg.as_str() {
                "--count" => out.count = take("--count") as usize,
                "--scale" => out.scale = take("--scale") as usize,
                "--threads" => out.threads = take("--threads") as usize,
                "--seed" => out.seed = take("--seed"),
                "--full" => out.scale = 1,
                other => panic!(
                    "unknown argument '{other}' (expected --count/--scale/--threads/--seed/--full)"
                ),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_labels() {
        assert_eq!(SweepPoint::BASELINE.label(), "base");
        assert_eq!(
            SweepPoint {
                l2_ways: 5,
                l1_ways: 0
            }
            .label(),
            "L2=5"
        );
        assert_eq!(
            SweepPoint {
                l2_ways: 4,
                l1_ways: 2
            }
            .label(),
            "L2=4+L1=2"
        );
    }

    #[test]
    fn setting_conversions_round_trip() {
        for s in SectorSetting::paper_sweep() {
            let p = SweepPoint::from(s);
            assert_eq!(p.l1_ways, 0);
            assert_eq!(SectorSetting::try_from(p), Ok(s), "{s:?}");
        }
        assert_eq!(SweepPoint::from(SectorSetting::Off), SweepPoint::BASELINE);
        assert!(SectorSetting::try_from(SweepPoint {
            l2_ways: 4,
            l1_ways: 2
        })
        .is_err());
    }

    #[test]
    fn machine_for_applies_sectors() {
        let cfg = machine_for(
            16,
            48,
            SweepPoint {
                l2_ways: 5,
                l1_ways: 1,
            },
        );
        assert_eq!(cfg.l2_sector.sector1_ways, 5);
        assert_eq!(cfg.l1_sector.sector1_ways, 1);
        assert_eq!(cfg.num_cores, 48);
        let base = machine_for(16, 1, SweepPoint::BASELINE);
        assert!(!base.l2_sector.enabled());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let items: Vec<u64> = vec![];
        assert!(parallel_map(&items, |&x| x).is_empty());
    }

    #[test]
    fn args_defaults_and_flags() {
        let a = ExpArgs::parse_from(Vec::<String>::new(), 490);
        assert_eq!(a.count, 490);
        assert_eq!(a.scale, 16);
        assert_eq!(a.threads, 48);
        let b = ExpArgs::parse_from(
            ["--count", "10", "--threads", "4", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
            490,
        );
        assert_eq!(b.count, 10);
        assert_eq!(b.threads, 4);
        assert_eq!(b.seed, 7);
        let c = ExpArgs::parse_from(["--full".to_string()], 1);
        assert_eq!(c.scale, 1);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn bad_args_rejected() {
        ExpArgs::parse_from(["--bogus".to_string()], 1);
    }
}
