//! Streaming-core speed-push acceptance benchmark: throughput of the
//! block-batched marker pipeline (PR 7) against the per-reference
//! pipeline PR 2 shipped, written as `BENCH_pr7.json`.
//!
//! Four method (A) pipelines run over the same synthetic corpus:
//!
//! * `streaming_marker` — block-batched cursors + bulk-probed marker
//!   stacks restricted to the paper sweep's capacities (the batch
//!   engine's default path), best of three runs,
//! * `streaming_marker_parallel` — the same with L2 domains *and*
//!   capacity shards fanned out over the work-stealing pool (the
//!   intra-matrix parallelism the sharded x-trace adds), best of three,
//! * `streaming_exact` — per-thread cursors + exact (Fenwick) stacks,
//! * `seed_materialized_exact` — the original pipeline: buffer every
//!   per-thread trace, then replay each domain through exact stacks.
//!
//! Throughput is SpMV references analysed per second (one modeled
//! iteration per matrix; every pipeline analyses the same reference
//! stream). The JSON carries the PR-2 marker-mode rate measured on the
//! canonical spec (`--count 4 --scale 64 --threads 8 --seed 2023`) as
//! the fixed baseline for the speedup figure.
//!
//! Acceptance checks built into the binary:
//!
//! * at `--scale >= 64`, `streaming_marker_parallel` must not be slower
//!   than `streaming_marker` (the PR-2 regression this PR fixes);
//! * with `--floor R`, the run fails if the marker rate drops more than
//!   20% below `R` refs/sec (the CI smoke guard).
//!
//! Run: `cargo run --release -p spmv-bench --bin bench_pr7
//! [--count N --scale N --threads N --seed N --shards N --floor R]`

use locality_core::{LocalityProfile, Method, SectorSetting};
use locality_engine::compute_profile_sharded;
use memtrace::spmv_trace::trace_len;
use sparsemat::CsrMatrix;
use spmv_bench::runner::{machine_for, ExpArgs, SweepPoint};
use std::fmt::Write as _;
use std::time::Instant;

/// `streaming_marker` refs/sec of the checked-in `BENCH_pr2.json`
/// (canonical spec): the fixed baseline the speedup figure is against.
const PR2_MARKER_REFS_PER_SEC: f64 = 21_208_281.0;

struct Mode {
    name: &'static str,
    secs: f64,
    refs_per_sec: f64,
    /// Peak resident set (`VmHWM`, kB) after the mode ran; `None` where
    /// `/proc/self/status` is unavailable (reported as JSON `null`).
    vm_hwm_kb_after: Option<u64>,
}

fn main() {
    // Split off this binary's extra flags before the shared parser (it
    // rejects unknown arguments).
    let mut shards: Option<usize> = None;
    let mut floor: Option<f64> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |what: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("expected a number after {what}"))
        };
        match arg.as_str() {
            "--shards" => shards = Some(take("--shards") as usize),
            "--floor" => floor = Some(take("--floor")),
            _ => rest.push(arg),
        }
    }
    let args = ExpArgs::parse_from(rest, 4);

    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let cfg = machine_for(args.scale, args.threads, SweepPoint::BASELINE);
    let settings = SectorSetting::paper_sweep();
    let total_refs: u64 = suite
        .iter()
        .map(|nm| trace_len(nm.matrix.num_rows(), nm.matrix.nnz()) as u64)
        .sum();
    println!(
        "# block-batched pipeline benchmark: {} matrices, scale 1/{}, {} threads, {} refs/iteration, shards {}",
        suite.len(),
        args.scale,
        args.threads,
        total_refs,
        shards.map_or_else(|| "auto".to_string(), |s| s.to_string()),
    );

    let mut modes: Vec<Mode> = Vec::new();

    // Streaming modes first, the trace-buffering seed pipeline last: the
    // VmHWM high-water mark only grows, so a jump at the final mode is
    // attributable to its trace buffers.
    //
    // The serial and parallel marker modes are measured in *interleaved*
    // rounds (marker, parallel, marker, parallel, ...): they are compared
    // against each other by an acceptance assert below, and measuring one
    // entirely before the other would fold any slow drift of the host
    // (thermal, cgroup contention) into the comparison.
    {
        let marker_pass = |m: &CsrMatrix| {
            std::hint::black_box(LocalityProfile::compute_for_sweep(
                m,
                &cfg,
                Method::A,
                args.threads,
                &settings,
            ));
        };
        let parallel_pass = |m: &CsrMatrix| {
            std::hint::black_box(compute_profile_sharded(
                m,
                &cfg,
                Method::A,
                args.threads,
                Some(&settings),
                0,
                shards,
            ));
        };
        let mut best_marker = f64::INFINITY;
        let mut best_parallel = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for nm in &suite {
                marker_pass(&nm.matrix);
            }
            best_marker = best_marker.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for nm in &suite {
                parallel_pass(&nm.matrix);
            }
            best_parallel = best_parallel.min(t0.elapsed().as_secs_f64());
        }
        let vm = obs::memstats::vm_hwm_kb();
        for (name, best) in [
            ("streaming_marker", best_marker),
            ("streaming_marker_parallel", best_parallel),
        ] {
            let refs_per_sec = total_refs as f64 / best.max(1e-9);
            let vm_label = vm.map_or_else(|| "n/a".to_string(), |kb| format!("{kb} kB"));
            println!("{name:<26} {best:8.3}s   {refs_per_sec:12.0} refs/s   VmHWM {vm_label}");
            modes.push(Mode {
                name,
                secs: best,
                refs_per_sec,
                vm_hwm_kb_after: vm,
            });
        }
    }

    let mut run = |name: &'static str, repeats: usize, analyse: &dyn Fn(&CsrMatrix)| {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            for nm in &suite {
                analyse(&nm.matrix);
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let refs_per_sec = total_refs as f64 / best.max(1e-9);
        let vm = obs::memstats::vm_hwm_kb();
        let vm_label = vm.map_or_else(|| "n/a".to_string(), |kb| format!("{kb} kB"));
        println!("{name:<26} {best:8.3}s   {refs_per_sec:12.0} refs/s   VmHWM {vm_label}");
        modes.push(Mode {
            name,
            secs: best,
            refs_per_sec,
            vm_hwm_kb_after: vm,
        });
    };
    run("streaming_exact", 1, &|m| {
        std::hint::black_box(LocalityProfile::compute(m, &cfg, Method::A, args.threads));
    });
    run("seed_materialized_exact", 1, &|m| {
        std::hint::black_box(LocalityProfile::compute_materialized(
            m,
            &cfg,
            Method::A,
            args.threads,
        ));
    });

    let rate = |name: &str| {
        modes
            .iter()
            .find(|m| m.name == name)
            .expect("mode ran")
            .refs_per_sec
    };
    let marker = rate("streaming_marker");
    let parallel = rate("streaming_marker_parallel");
    let seed_rate = rate("seed_materialized_exact");
    let marker_speedup = marker / seed_rate;
    let exact_speedup = rate("streaming_exact") / seed_rate;
    let pr2_speedup = marker / PR2_MARKER_REFS_PER_SEC;
    println!(
        "speedup vs seed: marker {marker_speedup:.2}x, exact {exact_speedup:.2}x; \
         marker vs PR2 baseline: {pr2_speedup:.2}x; parallel/serial {:.2}x",
        parallel / marker
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr7_block_batched_pipeline\",");
    let _ = writeln!(
        json,
        "  \"count\": {}, \"scale\": {}, \"seed\": {}, \"threads\": {}, \"shards\": {},",
        suite.len(),
        args.scale,
        args.seed,
        args.threads,
        shards.map_or_else(|| "\"auto\"".to_string(), |s| s.to_string()),
    );
    let _ = writeln!(json, "  \"total_refs\": {total_refs},");
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"secs\": {:.6}, \"refs_per_sec\": {:.0}, \"vm_hwm_kb_after\": {}}}{}",
            m.name,
            m.secs,
            m.refs_per_sec,
            m.vm_hwm_kb_after
                .map_or_else(|| "null".to_string(), |kb| kb.to_string()),
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_streaming_marker_vs_seed\": {marker_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_streaming_exact_vs_seed\": {exact_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"baseline_pr2_marker_refs_per_sec\": {PR2_MARKER_REFS_PER_SEC:.0},"
    );
    let _ = writeln!(json, "  \"speedup_marker_vs_pr2\": {pr2_speedup:.2}");
    json.push_str("}\n");
    std::fs::write("BENCH_pr7.json", &json).expect("write BENCH_pr7.json");
    println!("wrote BENCH_pr7.json");

    // Acceptance checks (after the JSON lands, so a failure still leaves
    // the measurements on disk for diagnosis).
    // On a single-core host the sharding heuristic resolves to one shard
    // and the parallel mode runs the serial code on the calling thread,
    // so the two rates are equal up to measurement noise; the 3%
    // tolerance absorbs that noise while still catching any structural
    // parallel-path regression (the PR-2 one cost >20%).
    if args.scale >= 64 {
        assert!(
            parallel >= 0.97 * marker,
            "intra-matrix sharding regressed: parallel {parallel:.0} refs/s \
             < serial {marker:.0} refs/s at scale {}",
            args.scale
        );
    }
    if let Some(floor) = floor {
        assert!(
            marker >= 0.8 * floor,
            "marker throughput {marker:.0} refs/s is more than 20% below \
             the floor of {floor:.0} refs/s"
        );
    }
}
