//! Co-design study (the paper's conclusion use case): miss curves and
//! optimal way allocations.
//!
//! For a corpus subset this prints (a) each matrix's optimal sector split
//! under the Listing-1 routing, compared with the paper's fixed 5-way
//! recommendation and with partitioning disabled, and (b) an aggregate
//! miss-vs-capacity curve of the reusable data — the "what cache size
//! would this workload need" question the paper suggests the model can
//! answer for future systems.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_codesign [--count N --scale N --threads N]`

use locality_core::optimize::PartitionOptimizer;
use memtrace::{Array, ArraySet};
use spmv_bench::runner::{machine_for, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(40);
    let cfg = machine_for(args.scale, args.threads, SweepPoint::BASELINE);
    println!(
        "# Co-design: optimal Listing-1 way splits ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let groups = [
        ArraySet::of(&[Array::X, Array::Y, Array::RowPtr]),
        ArraySet::MATRIX_STREAM,
    ];
    let suite = corpus::corpus(args.count, args.scale, args.seed);

    struct Row {
        name: String,
        best_stream_ways: usize,
        best: u64,
        at_5_ways: u64,
        curve_reusable: Vec<(usize, u64)>,
    }

    let rows = parallel_map(&suite, |nm| {
        let opt = PartitionOptimizer::from_spmv(&nm.matrix, &cfg, &groups, args.threads);
        let (alloc, best) = opt.best_allocation();
        Row {
            name: nm.name.clone(),
            best_stream_ways: alloc[1],
            best,
            at_5_ways: opt.misses_for(&[cfg.l2.ways - 5, 5]),
            curve_reusable: opt.miss_curve(0),
        }
    });

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "matrix", "best-split", "best-misses", "5w-misses", "gain-vs-5w"
    );
    let mut histogram_of_best = vec![0usize; cfg.l2.ways + 1];
    for r in &rows {
        histogram_of_best[r.best_stream_ways] += 1;
        println!(
            "{:<16} {:>9}+{:<2} {:>12} {:>12} {:>9.1}%",
            r.name,
            cfg.l2.ways - r.best_stream_ways,
            r.best_stream_ways,
            r.best,
            r.at_5_ways,
            100.0 * (r.at_5_ways as f64 - r.best as f64) / r.at_5_ways.max(1) as f64
        );
    }

    println!("\n# distribution of optimal stream-sector ways over the corpus");
    for (w, &count) in histogram_of_best.iter().enumerate() {
        if count > 0 {
            println!("{w:>3} ways: {count}");
        }
    }

    println!("\n# aggregate reusable-data miss curve (co-design: misses vs capacity)");
    println!(
        "{:>5} {:>12} {:>14}",
        "ways", "capacity KiB", "total misses"
    );
    for w in 1..=cfg.l2.ways {
        let total: u64 = rows.iter().map(|r| r.curve_reusable[w - 1].1).sum();
        let kib = cfg.l2.num_sets() * w * cfg.l2.line_bytes / 1024;
        println!("{w:>5} {kib:>12} {total:>14}");
    }
}
