//! Future-work experiment: software prefetching of the gathered `x`
//! accesses in conjunction with the sector cache.
//!
//! The paper's conclusion proposes exactly this combination. For each
//! corpus matrix the harness compares four kernels at 48 threads:
//! baseline, sector cache (5 L2 ways), software x-prefetch alone, and
//! both. Reported per variant: L2 demand misses (the latency the §4.4
//! analysis blames) and estimated speedup over baseline.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_swpf [--count N --scale N --threads N]`

use a64fx::{estimate, simulate_spmv_swpf};
use memtrace::ArraySet;
use spmv_bench::boxplot::BoxStats;
use spmv_bench::runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(60);
    let distance = 16;
    println!(
        "# Future work: software x-prefetch (distance {distance} nnz) x sector cache ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);

    struct Row {
        speedup_sector: f64,
        speedup_swpf: f64,
        speedup_both: f64,
        dm_reduction_swpf: f64,
    }

    let rows: Vec<Row> = parallel_map(&suite, |nm| {
        let (bsim, bperf) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let (_, sperf) = measure(
            &nm.matrix,
            args.scale,
            args.threads,
            SweepPoint {
                l2_ways: 5,
                l1_ways: 0,
            },
        );

        let base_cfg = machine_for(args.scale, args.threads, SweepPoint::BASELINE);
        let psim = simulate_spmv_swpf(
            &nm.matrix,
            &base_cfg,
            ArraySet::EMPTY,
            args.threads,
            1,
            distance,
        );
        let pperf = estimate(&base_cfg, nm.matrix.nnz(), &psim);

        let both_cfg = machine_for(
            args.scale,
            args.threads,
            SweepPoint {
                l2_ways: 5,
                l1_ways: 0,
            },
        );
        let bothsim = simulate_spmv_swpf(
            &nm.matrix,
            &both_cfg,
            ArraySet::MATRIX_STREAM,
            args.threads,
            1,
            distance,
        );
        let bothperf = estimate(&both_cfg, nm.matrix.nnz(), &bothsim);

        let base_dm = bsim.pmu.l2_demand_misses().max(1) as f64;
        Row {
            speedup_sector: bperf.seconds / sperf.seconds,
            speedup_swpf: bperf.seconds / pperf.seconds,
            speedup_both: bperf.seconds / bothperf.seconds,
            dm_reduction_swpf: 100.0 * (base_dm - psim.pmu.l2_demand_misses() as f64) / base_dm,
        }
    });

    let col = |f: fn(&Row) -> f64| -> Vec<f64> { rows.iter().map(f).collect() };
    for (label, samples) in [
        ("sector only", col(|r| r.speedup_sector)),
        ("swpf only", col(|r| r.speedup_swpf)),
        ("sector+swpf", col(|r| r.speedup_both)),
    ] {
        println!("{label:<12} {}", BoxStats::compute(&samples).unwrap().row());
    }
    let dm = col(|r| r.dm_reduction_swpf);
    println!("\n# demand-miss reduction from software prefetch alone");
    println!("{}", BoxStats::compute(&dm).unwrap().row());
}
