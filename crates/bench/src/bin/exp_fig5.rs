//! Fig. 5: speedup versus the change in L2 *demand* misses for the sector
//! cache with 5 L2 ways, restricted to working sets exceeding the L2.
//!
//! Emits the scatter series (per matrix: % difference in demand misses,
//! speedup, class) and the correlation between demand-miss reduction and
//! speedup, reproducing the figure's reading: speedups are accompanied by
//! demand-miss reductions, and the top speedups show 30–80 % reductions.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_fig5 [--count N --scale N --threads N]`

use locality_core::{classify_for, MatrixClass};
use spmv_bench::runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    let point = SweepPoint {
        l2_ways: 5,
        l1_ways: 0,
    };
    println!(
        "# Fig. 5: speedup vs %change in L2 demand misses, 5 L2 ways ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let class_cfg = machine_for(args.scale, args.threads, point);
    let l2_bytes = class_cfg.l2.size_bytes;

    let rows: Vec<Option<(String, MatrixClass, f64, f64)>> = parallel_map(&suite, |nm| {
        // Fig. 5 uses only working sets exceeding the L2 cache.
        if nm.matrix.working_set_bytes() <= l2_bytes {
            return None;
        }
        let (bsim, bperf) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let (psim, pperf) = measure(&nm.matrix, args.scale, args.threads, point);
        let base_dm = bsim.pmu.l2_demand_misses();
        if base_dm == 0 {
            return None;
        }
        let diff_pct =
            100.0 * (psim.pmu.l2_demand_misses() as f64 - base_dm as f64) / base_dm as f64;
        let class = classify_for(&nm.matrix, &class_cfg, args.threads);
        Some((
            nm.name.clone(),
            class,
            diff_pct,
            bperf.seconds / pperf.seconds,
        ))
    });
    let rows: Vec<_> = rows.into_iter().flatten().collect();

    println!(
        "{:<18} {:<11} {:>16} {:>8}",
        "matrix", "class", "ddemand-miss[%]", "speedup"
    );
    for (name, class, diff, speedup) in &rows {
        println!(
            "{name:<18} {:<11} {diff:>16.1} {speedup:>8.3}",
            class.label()
        );
    }

    // Correlation between demand-miss reduction and speedup.
    let n = rows.len() as f64;
    if n > 1.0 {
        let mean_x = rows.iter().map(|r| -r.2).sum::<f64>() / n;
        let mean_y = rows.iter().map(|r| r.3).sum::<f64>() / n;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for (_, _, diff, speedup) in &rows {
            let dx = -diff - mean_x;
            let dy = speedup - mean_y;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        let r = sxy / (sxx.sqrt() * syy.sqrt()).max(1e-12);
        println!(
            "\n# correlation(demand-miss reduction, speedup) = {r:.3} over {} matrices",
            rows.len()
        );
    }

    // The figure's headline: top speedups come with 30-80% reductions.
    let mut by_speedup = rows.clone();
    by_speedup.sort_by(|a, b| b.3.total_cmp(&a.3));
    println!("\n# top 10 speedups and their demand-miss change");
    for (name, class, diff, speedup) in by_speedup.iter().take(10) {
        println!(
            "{name:<18} {:<11} {diff:>16.1} {speedup:>8.3}",
            class.label()
        );
    }
}
