//! Table 1: performance (Gflop/s) of CSR SpMV using 48 threads, sector
//! cache disabled, on the 18 named matrices.
//!
//! "Ours" is the plain kernel with the OpenMP-style static row partition;
//! the "\[1\]-style" column reproduces the two optimisations §4.2 attributes
//! to Alappat et al. — RCM reordering and nonzero-balanced thread
//! partitioning — which explain why that work is faster on irregular
//! matrices (`kkt_power`, `delaunay_n24`, `bundle_adj`, `audikw_1`).
//! The paper's measured values are printed alongside for shape comparison.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_table1 [--scale N --threads N]`

use a64fx::{estimate, simulate_spmv_partitioned};
use memtrace::ArraySet;
use sparsemat::{reorder::rcm_reorder, RowPartition};
use spmv_bench::runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};

/// Paper Table 1 reference values: (name, Gflop/s ours, Gflop/s \[1\]).
const PAPER: [(&str, f64, f64); 18] = [
    ("pdb1HYS", 82.9, 40.2),
    ("Hamrle3", 15.9, 9.4),
    ("G3_circuit", 10.8, 11.2),
    ("shipsec1", 94.0, 16.7),
    ("pwtk", 87.3, 94.5),
    ("kkt_power", 8.6, 14.3),
    ("Si41Ge41H72", 71.6, 70.3),
    ("bundle_adj", 7.6, 66.6),
    ("msdoor", 50.6, 53.3),
    ("Fault_639", 75.7, 77.5),
    ("af_shell10", 94.0, 92.3),
    ("Serena", 65.6, 70.5),
    ("bone010", 110.8, 118.9),
    ("audikw_1", 45.1, 102.8),
    ("channel-500x100x100-b050", 42.1, 47.0),
    ("nlpkkt120", 75.7, 77.2),
    ("delaunay_n24", 5.8, 22.7),
    ("ML_Geer", 117.8, 120.5),
];

fn main() {
    let args = ExpArgs::parse(18);
    println!(
        "# Table 1: CSR SpMV performance, {} threads, sector cache off",
        args.threads
    );
    println!(
        "# machine scale 1/{}, simulated Gflop/s (shape comparison, not absolute)",
        args.scale
    );
    println!(
        "{:<26} {:>9} {:>9} {:>10} {:>12} {:>11} {:>11}",
        "matrix", "rows", "nnz(M)", "ours", "RCM+balance", "paper-ours", "paper-[1]"
    );

    let suite = corpus::table1_suite(args.scale);
    let rows = parallel_map(&suite, |nm| {
        let (_, perf) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);

        // The [1]-style comparator: RCM reordering + nonzero-balanced rows.
        let reordered = rcm_reorder(&nm.matrix);
        let partition = RowPartition::balanced_nnz(&reordered, args.threads);
        let cfg = machine_for(args.scale, args.threads, SweepPoint::BASELINE);
        let sim = simulate_spmv_partitioned(&reordered, &cfg, ArraySet::EMPTY, &partition, 1);
        let perf_opt = estimate(&cfg, reordered.nnz(), &sim);

        (
            nm.name.clone(),
            nm.matrix.num_rows(),
            nm.matrix.nnz(),
            perf.gflops,
            perf_opt.gflops,
        )
    });

    for (name, nrows, nnz, ours, opt) in rows {
        let (paper_ours, paper_alappat) = PAPER
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, a, b)| (a, b))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:<26} {:>9} {:>9.2} {:>10.1} {:>12.1} {:>11.1} {:>11.1}",
            name,
            nrows,
            nnz as f64 / 1e6,
            ours,
            opt,
            paper_ours,
            paper_alappat
        );
    }
}
