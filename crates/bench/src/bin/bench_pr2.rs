//! Streaming-pipeline acceptance benchmark: analysis throughput of the
//! streaming trace pipeline against the seed materialise-then-replay
//! pipeline, written as `BENCH_pr2.json`.
//!
//! Four method (A) pipelines run over the same synthetic corpus:
//!
//! * `streaming_marker` — per-thread cursors + marker stacks restricted
//!   to the paper sweep's capacities (the batch engine's default path),
//! * `streaming_marker_parallel` — the same with L2 domains fanned out
//!   over the work-stealing pool,
//! * `streaming_exact` — per-thread cursors + exact (Fenwick) stacks,
//! * `seed_materialized_exact` — the original pipeline: buffer every
//!   per-thread trace, then replay each domain through exact stacks.
//!
//! Throughput is SpMV references analysed per second (one modeled
//! iteration per matrix; every pipeline analyses the same reference
//! stream). Peak memory is proxied by Linux `VmHWM` checkpoints: the
//! high-water mark only ever grows, so the streaming modes run first and
//! a jump at the final (materialised) mode is attributable to its trace
//! buffers.
//!
//! Run: `cargo run --release -p spmv-bench --bin bench_pr2
//! [--count N --scale N --threads N --seed N]`

use locality_core::{LocalityProfile, Method, SectorSetting};
use locality_engine::compute_profile_parallel;
use memtrace::spmv_trace::trace_len;
use sparsemat::CsrMatrix;
use spmv_bench::runner::{machine_for, ExpArgs, SweepPoint};
use std::fmt::Write as _;
use std::time::Instant;

struct Mode {
    name: &'static str,
    secs: f64,
    refs_per_sec: f64,
    /// Peak resident set (`VmHWM`, kB) after the mode ran; `None` where
    /// `/proc/self/status` is unavailable (reported as JSON `null`).
    vm_hwm_kb_after: Option<u64>,
}

fn main() {
    let args = ExpArgs::parse(6);
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let cfg = machine_for(args.scale, args.threads, SweepPoint::BASELINE);
    let settings = SectorSetting::paper_sweep();
    let total_refs: u64 = suite
        .iter()
        .map(|nm| trace_len(nm.matrix.num_rows(), nm.matrix.nnz()) as u64)
        .sum();
    println!(
        "# streaming pipeline benchmark: {} matrices, scale 1/{}, {} threads, {} refs/iteration",
        suite.len(),
        args.scale,
        args.threads,
        total_refs
    );

    let mut modes: Vec<Mode> = Vec::new();
    let mut run = |name: &'static str, analyse: &dyn Fn(&CsrMatrix)| {
        let t0 = Instant::now();
        for nm in &suite {
            analyse(&nm.matrix);
        }
        let secs = t0.elapsed().as_secs_f64();
        let refs_per_sec = total_refs as f64 / secs.max(1e-9);
        let vm = obs::memstats::vm_hwm_kb();
        let vm_label = vm.map_or_else(|| "n/a".to_string(), |kb| format!("{kb} kB"));
        println!("{name:<26} {secs:8.3}s   {refs_per_sec:12.0} refs/s   VmHWM {vm_label}");
        modes.push(Mode {
            name,
            secs,
            refs_per_sec,
            vm_hwm_kb_after: vm,
        });
    };

    // Streaming modes first, the trace-buffering seed pipeline last (see
    // module docs for why the checkpoint order matters).
    run("streaming_marker", &|m| {
        std::hint::black_box(LocalityProfile::compute_for_sweep(
            m,
            &cfg,
            Method::A,
            args.threads,
            &settings,
        ));
    });
    run("streaming_marker_parallel", &|m| {
        std::hint::black_box(compute_profile_parallel(
            m,
            &cfg,
            Method::A,
            args.threads,
            Some(&settings),
            0,
        ));
    });
    run("streaming_exact", &|m| {
        std::hint::black_box(LocalityProfile::compute(m, &cfg, Method::A, args.threads));
    });
    run("seed_materialized_exact", &|m| {
        std::hint::black_box(LocalityProfile::compute_materialized(
            m,
            &cfg,
            Method::A,
            args.threads,
        ));
    });

    let seed_rate = modes
        .iter()
        .find(|m| m.name == "seed_materialized_exact")
        .expect("seed mode ran")
        .refs_per_sec;
    let speedup = |name: &str| {
        modes
            .iter()
            .find(|m| m.name == name)
            .expect("mode ran")
            .refs_per_sec
            / seed_rate
    };
    let marker_speedup = speedup("streaming_marker");
    let exact_speedup = speedup("streaming_exact");
    println!("speedup vs seed: marker {marker_speedup:.2}x, exact {exact_speedup:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr2_streaming_pipeline\",");
    let _ = writeln!(
        json,
        "  \"count\": {}, \"scale\": {}, \"seed\": {}, \"threads\": {},",
        suite.len(),
        args.scale,
        args.seed,
        args.threads
    );
    let _ = writeln!(json, "  \"total_refs\": {total_refs},");
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"secs\": {:.6}, \"refs_per_sec\": {:.0}, \"vm_hwm_kb_after\": {}}}{}",
            m.name,
            m.secs,
            m.refs_per_sec,
            m.vm_hwm_kb_after
                .map_or_else(|| "null".to_string(), |kb| kb.to_string()),
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_streaming_marker_vs_seed\": {marker_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_streaming_exact_vs_seed\": {exact_speedup:.2}"
    );
    json.push_str("}\n");
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    println!("wrote BENCH_pr2.json");
}
