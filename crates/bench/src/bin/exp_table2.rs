//! Table 2: mean and standard deviation of the absolute percentage error
//! of the model's L2 cache-miss prediction for **sequential** SpMV, for
//! methods (A) and (B), without the sector cache and with 2-7 L2 ways.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_table2 [--count N --scale N]`

use spmv_bench::runner::ExpArgs;

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# Table 2: L2 miss prediction error, sequential SpMV (scale 1/{})",
        args.scale
    );
    spmv_bench::accuracy::run(&args, 1);
}
