//! Fig. 3: distribution over the corpus of the SpMV speedup (or slowdown)
//! under different sector-cache configurations.
//!
//! Sweeps 2–6 L2 ways × L1 sector {off, 1, 2 ways}; prints one box-plot
//! row of speedups versus the sector-cache-off baseline per configuration.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_fig3 [--count N --scale N --threads N]`

use spmv_bench::boxplot::BoxStats;
use spmv_bench::runner::{measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# Fig. 3: SpMV speedup vs baseline ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);

    let l1_settings = [0usize, 1, 2];
    let l2_settings = [2usize, 3, 4, 5, 6];

    let per_matrix: Vec<(f64, Vec<f64>)> = parallel_map(&suite, |nm| {
        let (_, base) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let mut cfgs = Vec::with_capacity(l1_settings.len() * l2_settings.len());
        for &l1 in &l1_settings {
            for &l2 in &l2_settings {
                let (_, perf) = measure(
                    &nm.matrix,
                    args.scale,
                    args.threads,
                    SweepPoint {
                        l2_ways: l2,
                        l1_ways: l1,
                    },
                );
                cfgs.push(perf.seconds);
            }
        }
        (base.seconds, cfgs)
    });

    println!("{:<14} speedup over baseline", "config");
    let mut idx = 0;
    for &l1 in &l1_settings {
        for &l2 in &l2_settings {
            let samples: Vec<f64> = per_matrix
                .iter()
                .map(|(base, cfgs)| base / cfgs[idx])
                .collect();
            let label = SweepPoint {
                l2_ways: l2,
                l1_ways: l1,
            }
            .label();
            match BoxStats::compute(&samples) {
                Some(s) => println!("{label:<14} {}", s.row()),
                None => println!("{label:<14} (no samples)"),
            }
            idx += 1;
        }
        println!();
    }
}
