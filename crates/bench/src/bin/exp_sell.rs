//! Extension experiment (the paper's future work): sector-cache behaviour
//! of **SELL-C-σ** SpMV, side by side with CSR.
//!
//! The reuse-distance machinery is format-agnostic: the SELL trace reuses
//! the five array roles, so Eq. (2) applies unchanged. For each corpus
//! matrix this prints the predicted steady-state L2 misses of CSR and
//! SELL-8-σ (σ = 8·C) without and with the Listing-1 partitioning, plus
//! the SELL padding overhead.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_sell [--count N --scale N]`

use memtrace::sell_trace::{sell_layout, trace_sell_spmv};
use memtrace::spmv_trace::trace_spmv;
use memtrace::{ArraySet, DataLayout};
use reuse::PartitionedStack;
use sparsemat::SellMatrix;
use spmv_bench::runner::{machine_for, parallel_map, ExpArgs, SweepPoint};

/// Predicted steady-state misses (off, 5 ways) for an arbitrary trace
/// generator, via two warm-up + measure passes over a partitioned stack.
fn predict_from_trace(
    feed: impl Fn(&mut PartitionedStack),
    cap_total: usize,
    cap0: usize,
    cap1: usize,
) -> (u64, u64) {
    let mut off = PartitionedStack::new(ArraySet::EMPTY, &[cap_total], &[1]);
    feed(&mut off);
    off.reset_counters();
    feed(&mut off);
    let mut part = PartitionedStack::new(ArraySet::MATRIX_STREAM, &[cap0], &[cap1]);
    feed(&mut part);
    part.reset_counters();
    feed(&mut part);
    (off.partition0().misses(0), part.total_misses(0, 0))
}

fn main() {
    let args = ExpArgs::parse(40);
    let cfg = machine_for(args.scale, 1, SweepPoint::BASELINE);
    let sets = cfg.l2.num_sets();
    let (cap_total, cap0, cap1) = (cfg.l2.total_lines(), sets * 11, sets * 5);
    println!(
        "# SELL-C-sigma extension: predicted L2 misses, sequential, 5 L2 ways (scale 1/{})",
        args.scale
    );
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "matrix", "pad", "csr-off", "csr-5w", "sell-off", "sell-5w", "winner"
    );

    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let rows = parallel_map(&suite, |nm| {
        let line = cfg.l2.line_bytes;
        let csr_layout = DataLayout::new(&nm.matrix, line);
        let (csr_off, csr_5w) = predict_from_trace(
            |s| trace_spmv(&nm.matrix, &csr_layout, s),
            cap_total,
            cap0,
            cap1,
        );
        let sell = SellMatrix::from_csr(&nm.matrix, 8, 64);
        let layout = sell_layout(&sell, line);
        let (sell_off, sell_5w) = predict_from_trace(
            |s| trace_sell_spmv(&sell, &layout, s),
            cap_total,
            cap0,
            cap1,
        );
        (
            nm.name.clone(),
            sell.padding_ratio(),
            csr_off,
            csr_5w,
            sell_off,
            sell_5w,
        )
    });

    let mut sell_wins = 0usize;
    for (name, pad, csr_off, csr_5w, sell_off, sell_5w) in &rows {
        let winner = if sell_5w < csr_5w { "sell" } else { "csr" };
        if *sell_5w < *csr_5w {
            sell_wins += 1;
        }
        println!(
            "{name:<16} {pad:>8.3} {csr_off:>12} {csr_5w:>12} {sell_off:>12} {sell_5w:>12} {winner:>8}"
        );
    }
    println!(
        "\n# SELL-8-64 has fewer partitioned misses than CSR on {sell_wins}/{} matrices",
        rows.len()
    );
    println!("# (padding inflates the stream traffic; x locality is unchanged by chunking)");
}
