//! Ablation: single-level model (the paper's) vs. the two-level
//! L1-filtered variant.
//!
//! The paper feeds the full reference stream to the L2 analysis; the real
//! L2 only sees L1 misses. This experiment quantifies how much that
//! simplification costs against the simulator, with the machine reduced
//! to the model's assumptions (true LRU, no prefetch) so the filtering
//! effect is isolated.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_filter [--count N --scale N]`

use a64fx::{simulate_spmv, PrefetchConfig, Replacement};
use locality_core::predict::{predict, Method, SectorSetting};
use locality_core::two_level::predict_filtered;
use locality_core::ErrorSummary;
use memtrace::ArraySet;
use spmv_bench::runner::{machine_for, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(60);
    println!(
        "# Ablation: single-level vs L1-filtered model, sequential, LRU, no prefetch ({} matrices, scale 1/{})",
        args.count, args.scale
    );
    let mut cfg =
        machine_for(args.scale, 1, SweepPoint::BASELINE).with_prefetch(PrefetchConfig::off());
    cfg.replacement = Replacement::Lru;
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let settings = [SectorSetting::Off, SectorSetting::L2Ways(5)];

    let rows: Vec<(Vec<u64>, Vec<u64>, Vec<u64>)> = parallel_map(&suite, |nm| {
        let plain: Vec<u64> = predict(&nm.matrix, &cfg, Method::A, &settings, 1)
            .iter()
            .map(|p| p.l2_misses)
            .collect();
        let filtered: Vec<u64> = predict_filtered(&nm.matrix, &cfg, &settings, 1)
            .iter()
            .map(|p| p.l2_misses)
            .collect();
        let measured: Vec<u64> = settings
            .iter()
            .map(|&s| {
                let (c, sector) = match s {
                    SectorSetting::Off => (cfg.clone(), ArraySet::EMPTY),
                    SectorSetting::L2Ways(w) => {
                        (cfg.clone().with_l2_sector(w), ArraySet::MATRIX_STREAM)
                    }
                };
                simulate_spmv(&nm.matrix, &c, sector, 1, 1).pmu.l2_misses()
            })
            .collect();
        (measured, plain, filtered)
    });

    for (i, setting) in settings.iter().enumerate() {
        let e_plain =
            ErrorSummary::from_pairs(rows.iter().map(|(m, p, _)| (m[i] as f64, p[i] as f64)));
        let e_filt =
            ErrorSummary::from_pairs(rows.iter().map(|(m, _, f)| (m[i] as f64, f[i] as f64)));
        println!(
            "{:<10} single-level: {e_plain}   L1-filtered: {e_filt}",
            match setting {
                SectorSetting::Off => "off".to_string(),
                SectorSetting::L2Ways(w) => format!("{w} ways"),
            }
        );
    }
    println!("# (close agreement = the paper's single-level simplification is justified for SpMV)");
}
