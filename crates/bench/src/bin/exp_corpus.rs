//! Corpus census: the §4.1-style description of the evaluation population.
//!
//! Prints the size range, the family mix, the nonzeros-per-row moments
//! (the paper filters method (B)'s evaluation by `μ_K ≥ 8`, `CV_K ≤ 1`)
//! and the §3.1 class populations under the 5-way policy — the context
//! every other experiment is read against.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_corpus [--count N --scale N --threads N]`

use locality_core::{classify_for, MatrixClass};
use sparsemat::MatrixStats;
use spmv_bench::runner::{machine_for, ExpArgs, SweepPoint};
use std::collections::BTreeMap;

fn main() {
    let args = ExpArgs::parse(490);
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let cfg = machine_for(
        args.scale,
        args.threads,
        SweepPoint {
            l2_ways: 5,
            l1_ways: 0,
        },
    );

    println!(
        "# corpus census: {} matrices, scale 1/{}",
        suite.len(),
        args.scale
    );

    let mut families: BTreeMap<&str, usize> = BTreeMap::new();
    let mut classes: BTreeMap<&str, usize> = BTreeMap::new();
    let mut friendly = 0usize;
    let (mut min_bytes, mut max_bytes) = (usize::MAX, 0usize);
    let mut total_nnz = 0usize;
    for nm in &suite {
        *families.entry(nm.family).or_insert(0) += 1;
        let class = classify_for(&nm.matrix, &cfg, args.threads);
        *classes.entry(class.label()).or_insert(0) += 1;
        let stats = MatrixStats::compute(&nm.matrix);
        if stats.is_method_b_friendly() {
            friendly += 1;
        }
        min_bytes = min_bytes.min(nm.matrix.matrix_bytes());
        max_bytes = max_bytes.max(nm.matrix.matrix_bytes());
        total_nnz += nm.matrix.nnz();
    }

    println!(
        "matrix data: {:.2}..{:.2} MiB (one scaled L2 segment = {:.2} MiB), {:.2} M nnz total",
        min_bytes as f64 / (1 << 20) as f64,
        max_bytes as f64 / (1 << 20) as f64,
        cfg.l2.size_bytes as f64 / (1 << 20) as f64,
        total_nnz as f64 / 1e6
    );
    println!(
        "method-(B)-friendly (mu_K >= 8, CV_K <= 1): {friendly}/{}",
        suite.len()
    );

    println!("\n# families");
    for (f, n) in &families {
        println!("{f:<14} {n}");
    }
    println!(
        "\n# classes under 5 sector-1 ways, {} threads",
        args.threads
    );
    for class in [
        MatrixClass::Class1,
        MatrixClass::Class2,
        MatrixClass::Class3a,
        MatrixClass::Class3b,
    ] {
        println!(
            "{:<11} {}",
            class.label(),
            classes.get(class.label()).copied().unwrap_or(0)
        );
    }
}
