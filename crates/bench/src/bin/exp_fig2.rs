//! Fig. 2: distribution over the corpus of the L2 cache-miss reduction (or
//! increase) of SpMV under different sector-cache configurations.
//!
//! Sweeps 2–6 L2 ways for sector 1 combined with L1 sector settings
//! {off, 1, 2, 3 ways}, and prints one box-plot row per configuration of
//! the relative difference in measured L2 misses. The difference is
//! reported as `(baseline − config) / config × 100` — positive when the
//! sector cache removes misses — which is the reading consistent with the
//! figure's −40…+120 % axis (a pure reduction can exceed +100 %, an
//! increase is bounded at −100 %).
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_fig2 [--count N --scale N --threads N]`

use spmv_bench::boxplot::BoxStats;
use spmv_bench::runner::{measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# Fig. 2: % difference in L2 cache misses vs baseline ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);

    let l1_settings = [0usize, 1, 2, 3];
    let l2_settings = [2usize, 3, 4, 5, 6];

    // Per matrix: baseline misses + misses per config.
    let per_matrix: Vec<(u64, Vec<u64>)> = parallel_map(&suite, |nm| {
        let (base, _) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let mut cfgs = Vec::with_capacity(l1_settings.len() * l2_settings.len());
        for &l1 in &l1_settings {
            for &l2 in &l2_settings {
                let (sim, _) = measure(
                    &nm.matrix,
                    args.scale,
                    args.threads,
                    SweepPoint {
                        l2_ways: l2,
                        l1_ways: l1,
                    },
                );
                cfgs.push(sim.pmu.l2_misses());
            }
        }
        (base.pmu.l2_misses(), cfgs)
    });

    println!(
        "{:<14} difference in L2 misses [%] = (base - cfg)/cfg (positive = fewer misses)",
        "config"
    );
    let mut idx = 0;
    for &l1 in &l1_settings {
        for &l2 in &l2_settings {
            let samples: Vec<f64> = per_matrix
                .iter()
                .filter(|(base, cfgs)| *base > 0 && cfgs[idx] > 0)
                .map(|(base, cfgs)| 100.0 * (*base as f64 - cfgs[idx] as f64) / cfgs[idx] as f64)
                .collect();
            let label = SweepPoint {
                l2_ways: l2,
                l1_ways: l1,
            }
            .label();
            match BoxStats::compute(&samples) {
                Some(s) => println!("{label:<14} {}", s.row()),
                None => println!("{label:<14} (no samples)"),
            }
            idx += 1;
        }
        println!();
    }
}
