//! Table 3: mean and standard deviation of the absolute percentage error
//! of the model's L2 cache-miss prediction for **parallel** SpMV with 48
//! threads (matrices above the aggregate L2 size), methods (A) and (B).
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_table3 [--count N --scale N --threads N]`

use spmv_bench::runner::ExpArgs;

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# Table 3: L2 miss prediction error, parallel SpMV with {} threads (scale 1/{})",
        args.threads, args.scale
    );
    spmv_bench::accuracy::run(&args, args.threads);
}
