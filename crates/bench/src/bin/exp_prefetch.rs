//! §4.3 ablation: prefetch distance versus small sectors.
//!
//! The paper's surprise: 2 L2 ways for the streamed data is *worse* than
//! 4–5, because aggressive hardware prefetching into a tiny sector evicts
//! prefetched lines before their first use. After reducing the prefetch
//! distance, 2 ways performs like 4. This binary reproduces that
//! three-way comparison — the "default" distance is the machine's own
//! (scaled) prefetch distance, "short" is the minimum — and reports the
//! premature-eviction counter. Differences are reported as
//! `(base − cfg)/cfg` (bounded at −100 %), as in Fig. 2.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_prefetch [--count N --scale N --threads N]`

use a64fx::PrefetchConfig;
use spmv_bench::boxplot::BoxStats;
use spmv_bench::runner::{
    machine_for, measure, measure_with_prefetch, parallel_map, ExpArgs, SweepPoint,
};

fn main() {
    let args = ExpArgs::parse(120);
    println!(
        "# §4.3 ablation: prefetch distance vs sector size ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);

    let default_pf = machine_for(args.scale, args.threads, SweepPoint::BASELINE).prefetch;
    let short_pf = PrefetchConfig {
        l2_distance: 1,
        ..default_pf
    };
    println!(
        "# default distance = {} lines (scaled), short = {} line",
        default_pf.l2_distance, short_pf.l2_distance
    );

    struct Cfg {
        label: &'static str,
        point: SweepPoint,
        prefetch: PrefetchConfig,
    }
    let cfgs = [
        Cfg {
            label: "2 ways, default distance",
            point: SweepPoint {
                l2_ways: 2,
                l1_ways: 0,
            },
            prefetch: default_pf,
        },
        Cfg {
            label: "2 ways, short distance",
            point: SweepPoint {
                l2_ways: 2,
                l1_ways: 0,
            },
            prefetch: short_pf,
        },
        Cfg {
            label: "4 ways, default distance",
            point: SweepPoint {
                l2_ways: 4,
                l1_ways: 0,
            },
            prefetch: default_pf,
        },
        Cfg {
            label: "5 ways, default distance",
            point: SweepPoint {
                l2_ways: 5,
                l1_ways: 0,
            },
            prefetch: default_pf,
        },
    ];

    // (miss difference %, premature evictions) per matrix per config.
    let per_matrix: Vec<Vec<(f64, u64)>> = parallel_map(&suite, |nm| {
        let (base, _) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let base_misses = base.pmu.l2_misses() as f64;
        cfgs.iter()
            .map(|c| {
                let (sim, _) = measure_with_prefetch(
                    &nm.matrix,
                    args.scale,
                    args.threads,
                    c.point,
                    c.prefetch,
                );
                let cfg_misses = sim.pmu.l2_misses().max(1) as f64;
                (
                    100.0 * (base_misses - cfg_misses) / cfg_misses,
                    sim.pmu.evicted_unused_prefetches,
                )
            })
            .collect()
    });

    println!(
        "{:<28} difference in L2 misses [%] = (base - cfg)/cfg",
        "config"
    );
    for (i, c) in cfgs.iter().enumerate() {
        let diffs: Vec<f64> = per_matrix.iter().map(|r| r[i].0).collect();
        let evictions: u64 = per_matrix.iter().map(|r| r[i].1).sum();
        match BoxStats::compute(&diffs) {
            Some(s) => println!(
                "{:<28} {}  (premature prefetch evictions: {})",
                c.label,
                s.row(),
                evictions
            ),
            None => println!("{:<28} (no samples)", c.label),
        }
    }
}
