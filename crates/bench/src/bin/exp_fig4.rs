//! Fig. 4: speedup versus vector size (matrix columns) for the sector
//! cache with 5 L2 ways, coloured by the §3.1 matrix classes.
//!
//! Emits the scatter series (one row per matrix: columns, class, speedup)
//! followed by per-class box summaries, reproducing the figure's reading:
//! class (1) stays near 1×, class (2) benefits most, class (3) benefit
//! decays with size.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_fig4 [--count N --scale N --threads N]`

use locality_core::classify_for;
use spmv_bench::boxplot::BoxStats;
use spmv_bench::runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    let point = SweepPoint {
        l2_ways: 5,
        l1_ways: 0,
    };
    println!(
        "# Fig. 4: speedup vs matrix columns, sector cache 5 L2 ways ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let class_cfg = machine_for(args.scale, args.threads, point);

    let rows = parallel_map(&suite, |nm| {
        let (_, base) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let (_, part) = measure(&nm.matrix, args.scale, args.threads, point);
        let class = classify_for(&nm.matrix, &class_cfg, args.threads);
        (
            nm.name.clone(),
            nm.matrix.num_cols(),
            class,
            base.seconds / part.seconds,
        )
    });

    println!(
        "{:<18} {:>12} {:<11} {:>8}",
        "matrix", "columns", "class", "speedup"
    );
    for (name, cols, class, speedup) in &rows {
        println!("{name:<18} {cols:>12} {:<11} {speedup:>8.3}", class.label());
    }

    println!("\n# per-class summary");
    for class in [
        locality_core::MatrixClass::Class1,
        locality_core::MatrixClass::Class2,
        locality_core::MatrixClass::Class3a,
        locality_core::MatrixClass::Class3b,
    ] {
        let samples: Vec<f64> = rows
            .iter()
            .filter(|(_, _, c, _)| *c == class)
            .map(|(_, _, _, s)| *s)
            .collect();
        match BoxStats::compute(&samples) {
            Some(s) => println!("{:<11} {}", class.label(), s.row()),
            None => println!("{:<11} (no matrices)", class.label()),
        }
    }
}
