//! §4.4 bandwidth observations: the matrices that speed up most are *not*
//! the bandwidth-bound ones.
//!
//! Reproduces the paper's two top-20 lists: by memory-bandwidth
//! utilisation (baseline) and by sector-cache speedup (5 L2 ways). The
//! paper finds the top-20 bandwidth range at 513–783 GB/s while none of
//! the top-20 speedup matrices exceed 400 GB/s.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_bandwidth [--count N --scale N --threads N]`

use spmv_bench::runner::{measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# §4.4: bandwidth vs speedup ({} matrices, {} threads, scale 1/{})",
        args.count, args.threads, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let point = SweepPoint {
        l2_ways: 5,
        l1_ways: 0,
    };

    struct Row {
        name: String,
        bandwidth_base: f64,
        bandwidth_sector: f64,
        speedup: f64,
        demand_reduction_pct: f64,
    }

    let rows: Vec<Row> = parallel_map(&suite, |nm| {
        let (bsim, bperf) = measure(&nm.matrix, args.scale, args.threads, SweepPoint::BASELINE);
        let (psim, pperf) = measure(&nm.matrix, args.scale, args.threads, point);
        let base_dm = bsim.pmu.l2_demand_misses().max(1) as f64;
        Row {
            name: nm.name.clone(),
            bandwidth_base: bperf.bandwidth_gbs,
            bandwidth_sector: pperf.bandwidth_gbs,
            speedup: bperf.seconds / pperf.seconds,
            demand_reduction_pct: 100.0 * (base_dm - psim.pmu.l2_demand_misses() as f64) / base_dm,
        }
    });

    let mut by_bw: Vec<&Row> = rows.iter().collect();
    by_bw.sort_by(|a, b| b.bandwidth_base.total_cmp(&a.bandwidth_base));
    println!("\n# top 20 by baseline bandwidth utilisation [GB/s]");
    println!("{:<18} {:>10} {:>9}", "matrix", "BW base", "speedup");
    for r in by_bw.iter().take(20) {
        println!(
            "{:<18} {:>10.1} {:>9.3}",
            r.name, r.bandwidth_base, r.speedup
        );
    }
    if by_bw.len() >= 20 {
        println!(
            "# top-20 bandwidth range: {:.0}..{:.0} GB/s",
            by_bw[19].bandwidth_base, by_bw[0].bandwidth_base
        );
    }

    let mut by_speedup: Vec<&Row> = rows.iter().collect();
    by_speedup.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    println!("\n# top 20 by sector-cache speedup (5 L2 ways)");
    println!(
        "{:<18} {:>9} {:>10} {:>11} {:>13}",
        "matrix", "speedup", "BW base", "BW sector", "d-miss red %"
    );
    for r in by_speedup.iter().take(20) {
        println!(
            "{:<18} {:>9.3} {:>10.1} {:>11.1} {:>13.1}",
            r.name, r.speedup, r.bandwidth_base, r.bandwidth_sector, r.demand_reduction_pct
        );
    }
    if by_speedup.len() >= 20 {
        let max_bw_of_top_speedup = by_speedup
            .iter()
            .take(20)
            .map(|r| r.bandwidth_base)
            .fold(0.0f64, f64::max);
        println!("# max baseline bandwidth among top-20 speedups: {max_bw_of_top_speedup:.0} GB/s");
        let increased = by_speedup
            .iter()
            .take(20)
            .filter(|r| r.bandwidth_sector > r.bandwidth_base)
            .count();
        println!("# {increased}/20 top-speedup matrices draw MORE bandwidth with the sector cache");
    }
}
