//! Benchmark trajectory gate: read every checked-in `BENCH_pr<N>.json`,
//! print the marker-throughput trajectory across PRs, and fail when the
//! newest point regressed more than the tolerance below the best prior
//! rate.
//!
//! Run: `cargo run --release -p spmv-bench --bin bench_trajectory
//! [--dir PATH] [--tolerance PCT]`
//!
//! * `--dir` — where the `BENCH_*.json` files live (default `.`);
//! * `--tolerance` — allowed drop in percent (default `10`).
//!
//! Exit status: 0 when the gate passes (or there is nothing to
//! compare), 1 on a regression, 2 on usage/parse problems.

use spmv_bench::trajectory::{gate, load_trajectory, Verdict};
use std::path::PathBuf;

fn main() {
    let mut dir = PathBuf::from(".");
    let mut tolerance_pct = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("expected a path after --dir"));
            }
            "--tolerance" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("expected a number after --tolerance"));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    let (points, problems) = load_trajectory(&dir).unwrap_or_else(|e| {
        eprintln!("bench_trajectory: cannot read {}: {e}", dir.display());
        std::process::exit(2);
    });
    for problem in &problems {
        eprintln!("bench_trajectory: {problem}");
    }
    if !problems.is_empty() {
        std::process::exit(2);
    }

    let mut prev: Option<f64> = None;
    for p in &points {
        let delta = match prev {
            Some(prev) if prev > 0.0 => {
                format!(
                    "{:+.1}% vs prev",
                    100.0 * (p.marker_refs_per_sec - prev) / prev
                )
            }
            _ => "baseline".to_string(),
        };
        println!(
            "pr{:<4} {:<28} streaming_marker {:>12.0} refs/sec  ({delta})",
            p.pr, p.bench, p.marker_refs_per_sec
        );
        prev = Some(p.marker_refs_per_sec);
    }

    match gate(&points, tolerance_pct) {
        Verdict::TooFewPoints => {
            println!("trajectory gate: fewer than two points, nothing to compare");
        }
        Verdict::Ok(best, newest, change) => {
            println!(
                "trajectory gate: OK — newest {newest:.0} vs best prior {best:.0} \
                 ({change:+.1}%, tolerance -{tolerance_pct:.0}%)"
            );
        }
        Verdict::Regressed(best, newest, change) => {
            eprintln!(
                "trajectory gate: FAIL — newest {newest:.0} vs best prior {best:.0} \
                 ({change:+.1}% exceeds -{tolerance_pct:.0}%)"
            );
            std::process::exit(1);
        }
    }
}

fn usage(message: &str) -> ! {
    eprintln!("bench_trajectory: {message}");
    eprintln!("usage: bench_trajectory [--dir PATH] [--tolerance PCT]");
    std::process::exit(2);
}
