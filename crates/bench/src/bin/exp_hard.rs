//! §4.5.5: model accuracy on the "hard" matrices — those whose `x`-vector
//! accesses cause 50 % or more of the overall predicted traffic.
//!
//! The paper finds 42 of 490 such matrices and reports a method (A) MAPE
//! of 10.14 % without and 8.14 % with the sector cache for them (sequential
//! SpMV) — higher than the corpus-wide average, since these are exactly the
//! matrices whose misses are *not* dominated by the easy-to-predict
//! streaming traffic.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_hard [--count N --scale N]`

use locality_core::predict::{Method, SectorSetting};
use locality_core::ErrorSummary;
use locality_engine::BatchSpec;
use spmv_bench::runner::{measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# §4.5.5: accuracy on matrices with >= 50% x-vector traffic ({} matrices, scale 1/{})",
        args.count, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let settings = [SectorSetting::Off, SectorSetting::L2Ways(5)];

    struct Row {
        x_fraction: f64,
        measured_off: u64,
        measured_5w: u64,
        pred_off: u64,
        pred_5w: u64,
    }

    // Predictions through the batch engine (method A only, both settings
    // from one memoized profile per matrix); measurements via the
    // simulator as before.
    let spec = BatchSpec {
        sources: Vec::new(),
        methods: vec![Method::A],
        settings: settings.to_vec(),
        threads: 1,
        scale: args.scale,
        workers: 0,
        ..BatchSpec::default()
    };
    let refs: Vec<(&str, &sparsemat::CsrMatrix)> = suite
        .iter()
        .map(|nm| (nm.name.as_str(), &nm.matrix))
        .collect();
    let batch = locality_engine::run_on(&spec, &refs);

    let measured: Vec<(u64, u64)> = parallel_map(&suite, |nm| {
        let (m_off, _) = measure(&nm.matrix, args.scale, 1, SweepPoint::BASELINE);
        let (m_5w, _) = measure(
            &nm.matrix,
            args.scale,
            1,
            SweepPoint {
                l2_ways: 5,
                l1_ways: 0,
            },
        );
        (m_off.pmu.l2_misses(), m_5w.pmu.l2_misses())
    });

    let rows: Vec<Row> = measured
        .iter()
        .enumerate()
        .map(|(i, &(measured_off, measured_5w))| {
            let off = &batch.reports[2 * i].prediction;
            let with = &batch.reports[2 * i + 1].prediction;
            Row {
                x_fraction: off.x_traffic_fraction(),
                measured_off,
                measured_5w,
                pred_off: off.l2_misses,
                pred_5w: with.l2_misses,
            }
        })
        .collect();

    let hard: Vec<&Row> = rows.iter().filter(|r| r.x_fraction >= 0.5).collect();
    println!(
        "# {} of {} matrices have >= 50% predicted x-traffic",
        hard.len(),
        rows.len()
    );
    let e_off = ErrorSummary::from_pairs(
        hard.iter()
            .map(|r| (r.measured_off as f64, r.pred_off as f64)),
    );
    let e_5w = ErrorSummary::from_pairs(
        hard.iter()
            .map(|r| (r.measured_5w as f64, r.pred_5w as f64)),
    );
    println!("hard subset, method (A), no sector cache : {e_off}");
    println!("hard subset, method (A), 5 L2 ways       : {e_5w}");

    let a_off = ErrorSummary::from_pairs(
        rows.iter()
            .map(|r| (r.measured_off as f64, r.pred_off as f64)),
    );
    println!("all matrices, method (A), no sector cache: {a_off}");
}
