//! §4.5.4: accuracy of the L1 cache-miss prediction (no partitioning),
//! sequential and parallel, methods (A) and (B).
//!
//! The paper reports MAPEs of 8.40 %/15.27 % (A/B, sequential) and
//! 8.91 %/13.66 % (parallel) — clearly worse than the L2 predictions,
//! because the 4-way L1 is far from the fully associative LRU assumption.
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_l1 [--count N --scale N --threads N]`

use locality_core::l1::predict_l1_misses;
use locality_core::predict::Method;
use locality_core::ErrorSummary;
use spmv_bench::runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};

fn main() {
    let args = ExpArgs::parse(490);
    println!(
        "# §4.5.4: L1 miss prediction error, no partitioning (scale 1/{})",
        args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);

    for threads in [1usize, args.threads] {
        let cfg = machine_for(args.scale, threads, SweepPoint::BASELINE);
        let pairs: Vec<(f64, f64, f64)> = parallel_map(&suite, |nm| {
            let (sim, _) = measure(&nm.matrix, args.scale, threads, SweepPoint::BASELINE);
            let measured = sim.pmu.l1_misses() as f64;
            let a = predict_l1_misses(&nm.matrix, &cfg, Method::A, threads) as f64;
            let b = predict_l1_misses(&nm.matrix, &cfg, Method::B, threads) as f64;
            (measured, a, b)
        });
        let ea = ErrorSummary::from_pairs(pairs.iter().map(|&(m, a, _)| (m, a)));
        let eb = ErrorSummary::from_pairs(pairs.iter().map(|&(m, _, b)| (m, b)));
        let label = if threads == 1 {
            "sequential".to_string()
        } else {
            format!("{threads} threads")
        };
        println!("{label:<12} method (A): {ea}   method (B): {eb}");
    }
}
