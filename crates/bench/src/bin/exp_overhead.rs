//! §4.5.1: computational overhead of method (A) relative to method (B).
//!
//! The paper reports average `t_A / t_B` of 4.21× (sequential analysis)
//! and 3.02× (48-thread analysis), with method (B) average runtimes of
//! 6.54 s and 9.22 s on the full-size corpus. We report the same ratios on
//! the scaled corpus (absolute runtimes scale with matrix size).
//!
//! Run: `cargo run --release -p spmv-bench --bin exp_overhead [--count N --scale N --threads N]`

use locality_core::predict::{predict, Method, SectorSetting};
use spmv_bench::runner::{machine_for, parallel_map, ExpArgs, SweepPoint};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse(100);
    println!(
        "# §4.5.1: model runtime, method (A) vs method (B) ({} matrices, scale 1/{})",
        args.count, args.scale
    );
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let settings = SectorSetting::paper_sweep();

    for threads in [1usize, args.threads] {
        let cfg = machine_for(args.scale, threads, SweepPoint::BASELINE);
        let times: Vec<(f64, f64)> = parallel_map(&suite, |nm| {
            let t0 = Instant::now();
            let pa = predict(&nm.matrix, &cfg, Method::A, &settings, threads);
            let ta = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let pb = predict(&nm.matrix, &cfg, Method::B, &settings, threads);
            let tb = t1.elapsed().as_secs_f64();
            // Keep the predictions alive so the work cannot be elided.
            std::hint::black_box((pa, pb));
            (ta, tb)
        });
        let sum_a: f64 = times.iter().map(|t| t.0).sum();
        let sum_b: f64 = times.iter().map(|t| t.1).sum();
        let mean_ratio: f64 =
            times.iter().map(|t| t.0 / t.1.max(1e-9)).sum::<f64>() / times.len() as f64;
        let label = if threads == 1 {
            "sequential".to_string()
        } else {
            format!("{threads} threads")
        };
        println!(
            "{label:<12} mean t_A/t_B = {mean_ratio:.2}x   total t_A = {sum_a:.2}s   total t_B = {sum_b:.2}s   mean t_B = {:.4}s",
            sum_b / times.len() as f64
        );
    }
}
