//! Experiment harness for the paper reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/exp_*.rs`), plus
//! Criterion micro-benchmarks under `benches/`. The binaries share:
//!
//! * [`runner`] — machine setup per sweep point, the simulate-and-estimate
//!   measurement, host-parallel corpus mapping, and CLI argument parsing;
//! * [`boxplot`] — the five-number summaries Figs. 2 and 3 are plotted
//!   from.
//!
//! Every binary accepts `--count N` (corpus size, default 490),
//! `--scale N` (machine capacity divisor, default 16), `--threads N`
//! (default 48), `--seed N`, and `--full` (full-size A64FX).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod boxplot;
pub mod runner;
pub mod trajectory;

pub use boxplot::BoxStats;
pub use runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};
