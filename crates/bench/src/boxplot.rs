//! Box-plot summary statistics for the figure reproductions.
//!
//! Figs. 2 and 3 of the paper present distributions over the 490 matrices
//! as box plots (lower/upper quartile box, median line, interquartile
//! whiskers, outliers as points). [`BoxStats`] computes those five numbers
//! plus outlier counts, and renders one text row per configuration so the
//! harness output carries the same information as the figures.

/// Five-number summary with whiskers and outlier counts (Tukey style).
#[derive(Clone, Debug, PartialEq)]
pub struct BoxStats {
    /// Sample count.
    pub count: usize,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Lowest sample within `q1 - 1.5·IQR` (lower whisker end).
    pub whisker_lo: f64,
    /// Highest sample within `q3 + 1.5·IQR` (upper whisker end).
    pub whisker_hi: f64,
    /// Minimum sample (most extreme low outlier, or `whisker_lo`).
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Samples below the lower whisker.
    pub outliers_lo: usize,
    /// Samples above the upper whisker.
    pub outliers_hi: usize,
}

impl BoxStats {
    /// Computes the summary. Returns `None` for an empty sample.
    pub fn compute(samples: &[f64]) -> Option<BoxStats> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        let q1 = percentile(&v, 25.0);
        let median = percentile(&v, 50.0);
        let q3 = percentile(&v, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*v.last().unwrap());
        Some(BoxStats {
            count: v.len(),
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            min: v[0],
            max: *v.last().unwrap(),
            outliers_lo: v.iter().filter(|&&x| x < lo_fence).count(),
            outliers_hi: v.iter().filter(|&&x| x > hi_fence).count(),
        })
    }

    /// Renders a compact single-line summary.
    pub fn row(&self) -> String {
        format!(
            "min {:8.3}  whisk [{:8.3}, {:8.3}]  box [{:8.3}, {:8.3}]  median {:8.3}  max {:8.3}  outliers {}/{}",
            self.min,
            self.whisker_lo,
            self.whisker_hi,
            self.q1,
            self.q3,
            self.median,
            self.max,
            self.outliers_lo,
            self.outliers_hi
        )
    }
}

/// Linear-interpolated percentile of a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_quartiles() {
        let s = BoxStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.outliers_lo + s.outliers_hi, 0);
    }

    #[test]
    fn outliers_detected() {
        let mut v = vec![10.0; 20];
        v.push(100.0);
        v.push(-50.0);
        let s = BoxStats::compute(&v).unwrap();
        assert_eq!(s.outliers_hi, 1);
        assert_eq!(s.outliers_lo, 1);
        assert_eq!(s.whisker_lo, 10.0);
        assert_eq!(s.whisker_hi, 10.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(BoxStats::compute(&[]).is_none());
        let s = BoxStats::compute(&[7.5]).unwrap();
        assert_eq!(s.median, 7.5);
        assert_eq!(s.q1, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = BoxStats::compute(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }
}
