//! Shared driver for the Table 2 / Table 3 accuracy experiments.
//!
//! For every corpus matrix whose working set exceeds the (aggregate) L2
//! capacity, the simulator measures L2 misses per sector setting, methods
//! (A) and (B) predict them, and the absolute percentage errors are
//! aggregated per setting — exactly the paper's Eq. 3 tables, including
//! the §4.5.2/§4.5.3 restricted subset (`μ_K ≥ 8`, `CV_K ≤ 1`) for method
//! (B) without partitioning.

use crate::runner::{machine_for, measure, parallel_map, ExpArgs, SweepPoint};
use locality_core::predict::{Method, SectorSetting};
use locality_core::ErrorSummary;
use locality_engine::BatchSpec;
use sparsemat::MatrixStats;

/// Per-matrix accuracy record.
pub struct MatrixAccuracy {
    /// Matrix name.
    pub name: String,
    /// Measured misses per setting.
    pub measured: Vec<u64>,
    /// Method (A) predictions per setting.
    pub pred_a: Vec<u64>,
    /// Method (B) predictions per setting.
    pub pred_b: Vec<u64>,
    /// Row-length statistics (for the restricted subset).
    pub stats: MatrixStats,
}

/// Runs the accuracy experiment and prints the table.
pub fn run(args: &ExpArgs, threads: usize) {
    let settings = SectorSetting::paper_sweep();
    let suite = corpus::corpus(args.count, args.scale, args.seed);
    let cfg = machine_for(args.scale, threads, SweepPoint::BASELINE);
    // The paper includes only matrices above the L2 cache size
    // (8 MiB sequential, 32 MiB parallel).
    let domains = threads.div_ceil(cfg.cores_per_domain).max(1);
    let threshold = cfg.l2.size_bytes * domains;
    let included: Vec<_> = suite
        .into_iter()
        .filter(|nm| nm.matrix.working_set_bytes() > threshold)
        .collect();
    println!(
        "# {} of {} matrices above the {}x L2 threshold ({} KiB)",
        included.len(),
        args.count,
        domains,
        threshold >> 10
    );

    // Predictions go through the batch engine: one memoized profile per
    // (matrix, method) serves the whole 7-setting sweep, and the jobs are
    // spread over the work-stealing pool.
    let spec = BatchSpec {
        sources: Vec::new(),
        methods: vec![Method::A, Method::B],
        settings: settings.clone(),
        threads,
        scale: args.scale,
        workers: 0,
        ..BatchSpec::default()
    };
    let refs: Vec<(&str, &sparsemat::CsrMatrix)> = included
        .iter()
        .map(|nm| (nm.name.as_str(), &nm.matrix))
        .collect();
    let batch = locality_engine::run_on(&spec, &refs);
    println!(
        "# engine: {} jobs, {} profiles computed, {} cache hits",
        batch.stats.jobs, batch.stats.profile_computations, batch.stats.profile_hits
    );

    // The simulator side of the table (the "measurement") stays outside
    // the engine: it is per-setting by nature, nothing to memoize.
    let measured_all: Vec<Vec<u64>> = parallel_map(&included, |nm| {
        settings
            .iter()
            .map(|&s| {
                measure(&nm.matrix, args.scale, threads, s.into())
                    .0
                    .pmu
                    .l2_misses()
            })
            .collect()
    });

    let per_matrix = spec.jobs_per_matrix();
    let records: Vec<MatrixAccuracy> = included
        .iter()
        .zip(measured_all)
        .enumerate()
        .map(|(i, (nm, measured))| {
            // Matrix i's reports: method A's sweep, then method B's.
            let reports = &batch.reports[i * per_matrix..(i + 1) * per_matrix];
            let (a, b) = reports.split_at(settings.len());
            debug_assert!(a
                .iter()
                .all(|r| r.method == Method::A && r.matrix == nm.name));
            MatrixAccuracy {
                name: nm.name.clone(),
                measured,
                pred_a: a.iter().map(|r| r.prediction.l2_misses).collect(),
                pred_b: b.iter().map(|r| r.prediction.l2_misses).collect(),
                stats: MatrixStats::compute(&nm.matrix),
            }
        })
        .collect();

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "L2 sector", "A mean", "A std", "B mean", "B std"
    );
    for (i, setting) in settings.iter().enumerate() {
        let ea = ErrorSummary::from_pairs(
            records
                .iter()
                .map(|r| (r.measured[i] as f64, r.pred_a[i] as f64)),
        );
        let eb = ErrorSummary::from_pairs(
            records
                .iter()
                .map(|r| (r.measured[i] as f64, r.pred_b[i] as f64)),
        );
        let label = match setting {
            SectorSetting::Off => "No Sector Cache".to_string(),
            SectorSetting::L2Ways(w) => format!("{w} L2 ways"),
        };
        println!(
            "{label:<16} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            ea.mape, ea.std, eb.mape, eb.std
        );
    }

    // Restricted subset for method (B) without partitioning (§4.5.2/3).
    let friendly: Vec<&MatrixAccuracy> = records
        .iter()
        .filter(|r| r.stats.is_method_b_friendly())
        .collect();
    let eb = ErrorSummary::from_pairs(
        friendly
            .iter()
            .map(|r| (r.measured[0] as f64, r.pred_b[0] as f64)),
    );
    println!(
        "\n# method (B), no partitioning, restricted to mu_K >= 8 and CV_K <= 1 ({} matrices): {}",
        friendly.len(),
        eb
    );
}
