//! Trace sinks: consumers of [`Access`] streams.
//!
//! Trace generators are generic over a [`TraceSink`] so that consumers —
//! reuse-distance stack processors, the cache simulator, or plain vectors —
//! can process references on the fly. A full method-(A) trace has
//! `M + 1 + 3K + M` references; for the larger corpus matrices that is far
//! too many to want to materialise per configuration.

use crate::{Access, PackedAccess};

/// Number of references a full [`AccessBlock`] holds.
///
/// 256 packed references are 2 KiB — four A64FX cache lines — small
/// enough to stay resident in L1 between the producing cursor and the
/// consuming stack, large enough to amortise one virtual dispatch over
/// hundreds of references.
pub const BLOCK_REFS: usize = 256;

/// A fixed-capacity batch of [`PackedAccess`]es: the unit of transfer of
/// the block-batched streaming pipeline.
///
/// Cursors fill blocks via [`crate::TraceCursor::next_block`] and hand
/// them to a [`BlockSink`]; the per-reference [`TraceSink`] path remains
/// for the exact/materialised oracles. A block's references are in
/// exactly the order the per-reference path would have emitted them.
#[derive(Clone, Debug)]
pub struct AccessBlock {
    refs: [PackedAccess; BLOCK_REFS],
    len: usize,
}

impl Default for AccessBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessBlock {
    /// An empty block.
    pub fn new() -> Self {
        AccessBlock {
            refs: [PackedAccess(0); BLOCK_REFS],
            len: 0,
        }
    }

    /// Number of references currently staged.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no references are staged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when the block is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == BLOCK_REFS
    }

    /// Remaining capacity in references.
    pub fn space(&self) -> usize {
        BLOCK_REFS - self.len
    }

    /// Drops all staged references.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Removes the first `n` references, shifting any remainder to the
    /// front (used by the round-robin merge to retire the cycles it has
    /// emitted from each staging block).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current length.
    pub fn discard_front(&mut self, n: usize) {
        assert!(n <= self.len, "discarding more references than staged");
        self.refs.copy_within(n..self.len, 0);
        self.len -= n;
    }

    /// Appends one reference.
    ///
    /// # Panics
    ///
    /// Panics if the block is full.
    #[inline]
    pub fn push(&mut self, p: PackedAccess) {
        self.refs[self.len] = p;
        self.len += 1;
    }

    /// The staged references, in emission order.
    #[inline]
    pub fn refs(&self) -> &[PackedAccess] {
        &self.refs[..self.len]
    }
}

/// A consumer of block-batched reference streams.
///
/// The block counterpart of [`TraceSink`]: one virtual call per
/// [`AccessBlock`] instead of one per reference. Implementations must
/// treat a block's references as an ordered subsequence of the stream;
/// partial (non-full) blocks are legal anywhere, not just at the end.
pub trait BlockSink {
    /// Consumes one block of references.
    fn consume(&mut self, block: &AccessBlock);
}

/// Drives a per-reference [`TraceSink`] from block input — the shim that
/// lets the exact/materialised oracles participate in block pipelines
/// without a bulk path of their own.
pub struct RefSink<'a, S: TraceSink>(
    /// The wrapped per-reference sink.
    pub &'a mut S,
);

impl<S: TraceSink> BlockSink for RefSink<'_, S> {
    fn consume(&mut self, block: &AccessBlock) {
        for &p in block.refs() {
            self.0.access(p.unpack());
        }
    }
}

/// Adapts two block sinks to receive the same stream.
pub struct BlockTee<'a, A: BlockSink, B: BlockSink> {
    /// First sink.
    pub first: &'a mut A,
    /// Second sink.
    pub second: &'a mut B,
}

impl<A: BlockSink, B: BlockSink> BlockSink for BlockTee<'_, A, B> {
    #[inline]
    fn consume(&mut self, block: &AccessBlock) {
        self.first.consume(block);
        self.second.consume(block);
    }
}

impl BlockSink for PackedVecSink {
    #[inline]
    fn consume(&mut self, block: &AccessBlock) {
        self.trace.extend_from_slice(block.refs());
    }
}

impl BlockSink for VecSink {
    fn consume(&mut self, block: &AccessBlock) {
        self.trace.extend(block.refs().iter().map(|p| p.unpack()));
    }
}

/// A consumer of a stream of memory references.
pub trait TraceSink {
    /// Consumes one reference.
    fn access(&mut self, access: Access);

    /// Consumes a batch of references (default: one at a time).
    fn access_all(&mut self, accesses: &[Access]) {
        for &a in accesses {
            self.access(a);
        }
    }
}

/// Collects the trace into a vector.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The recorded references, in order.
    pub trace: Vec<Access>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        VecSink {
            trace: Vec::with_capacity(n),
        }
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.trace.push(access);
    }
}

impl TraceSink for Vec<Access> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.push(access);
    }
}

/// Collects the trace as 8-byte [`PackedAccess`]es — half the memory of
/// [`VecSink`] for the paths that must buffer (e.g. a materialised
/// interleaving replayed against several stack configurations).
#[derive(Clone, Debug, Default)]
pub struct PackedVecSink {
    /// The recorded references, packed, in order.
    pub trace: Vec<PackedAccess>,
}

impl PackedVecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        PackedVecSink {
            trace: Vec::with_capacity(n),
        }
    }

    /// Replays the buffered trace into another sink.
    pub fn replay<S: TraceSink>(&self, sink: &mut S) {
        for &p in &self.trace {
            sink.access(p.unpack());
        }
    }
}

impl TraceSink for PackedVecSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.trace.push(PackedAccess::pack(access));
    }
}

/// Counts references per array without storing them.
#[derive(Clone, Debug, Default)]
pub struct CountSink {
    /// Reference counts indexed by `Array as usize`.
    pub counts: [u64; 5],
    /// Number of store references.
    pub writes: u64,
}

impl CountSink {
    /// Creates a zeroed counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of references seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for CountSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.counts[access.array as usize] += 1;
        if access.write {
            self.writes += 1;
        }
    }
}

/// Adapts two sinks to receive the same stream.
pub struct TeeSink<'a, A: TraceSink, B: TraceSink> {
    /// First sink.
    pub first: &'a mut A,
    /// Second sink.
    pub second: &'a mut B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.first.access(access);
        self.second.access(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Array;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.access(Access::load(3, Array::X));
        s.access(Access::store(1, Array::Y));
        assert_eq!(s.trace.len(), 2);
        assert_eq!(s.trace[0].line, 3);
        assert!(s.trace[1].write);
    }

    #[test]
    fn count_sink_counts_by_array() {
        let mut s = CountSink::new();
        s.access(Access::load(0, Array::X));
        s.access(Access::load(1, Array::X));
        s.access(Access::store(2, Array::Y));
        assert_eq!(s.counts[Array::X as usize], 2);
        assert_eq!(s.counts[Array::Y as usize], 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn access_block_stages_in_order() {
        let mut b = AccessBlock::new();
        assert!(b.is_empty());
        assert_eq!(b.space(), BLOCK_REFS);
        b.push(PackedAccess::pack(Access::load(3, Array::X)));
        b.push(PackedAccess::pack(Access::store(1, Array::Y)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.refs()[0].unpack(), Access::load(3, Array::X));
        assert_eq!(b.refs()[1].unpack(), Access::store(1, Array::Y));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn ref_sink_shim_and_block_tee_match_per_ref_path() {
        let trace: Vec<Access> = (0..600).map(|i| Access::load(i as u64, Array::A)).collect();
        let mut blocks: Vec<AccessBlock> = Vec::new();
        let mut cur = AccessBlock::new();
        for &a in &trace {
            if cur.is_full() {
                blocks.push(cur.clone());
                cur.clear();
            }
            cur.push(PackedAccess::pack(a));
        }
        blocks.push(cur);

        let mut v = VecSink::new();
        let mut c = CountSink::new();
        {
            let mut counted = RefSink(&mut c);
            let mut tee = BlockTee {
                first: &mut v,
                second: &mut counted,
            };
            for b in &blocks {
                tee.consume(b);
            }
        }
        assert_eq!(v.trace, trace);
        assert_eq!(c.total(), trace.len() as u64);
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut a = VecSink::new();
        let mut b = CountSink::new();
        {
            let mut tee = TeeSink {
                first: &mut a,
                second: &mut b,
            };
            tee.access(Access::load(9, Array::A));
            tee.access_all(&[Access::load(10, Array::A), Access::load(11, Array::ColIdx)]);
        }
        assert_eq!(a.trace.len(), 3);
        assert_eq!(b.total(), 3);
        assert_eq!(b.counts[Array::A as usize], 2);
    }
}
