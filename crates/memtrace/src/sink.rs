//! Trace sinks: consumers of [`Access`] streams.
//!
//! Trace generators are generic over a [`TraceSink`] so that consumers —
//! reuse-distance stack processors, the cache simulator, or plain vectors —
//! can process references on the fly. A full method-(A) trace has
//! `M + 1 + 3K + M` references; for the larger corpus matrices that is far
//! too many to want to materialise per configuration.

use crate::{Access, PackedAccess};

/// A consumer of a stream of memory references.
pub trait TraceSink {
    /// Consumes one reference.
    fn access(&mut self, access: Access);

    /// Consumes a batch of references (default: one at a time).
    fn access_all(&mut self, accesses: &[Access]) {
        for &a in accesses {
            self.access(a);
        }
    }
}

/// Collects the trace into a vector.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The recorded references, in order.
    pub trace: Vec<Access>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        VecSink {
            trace: Vec::with_capacity(n),
        }
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.trace.push(access);
    }
}

impl TraceSink for Vec<Access> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.push(access);
    }
}

/// Collects the trace as 8-byte [`PackedAccess`]es — half the memory of
/// [`VecSink`] for the paths that must buffer (e.g. a materialised
/// interleaving replayed against several stack configurations).
#[derive(Clone, Debug, Default)]
pub struct PackedVecSink {
    /// The recorded references, packed, in order.
    pub trace: Vec<PackedAccess>,
}

impl PackedVecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        PackedVecSink {
            trace: Vec::with_capacity(n),
        }
    }

    /// Replays the buffered trace into another sink.
    pub fn replay<S: TraceSink>(&self, sink: &mut S) {
        for &p in &self.trace {
            sink.access(p.unpack());
        }
    }
}

impl TraceSink for PackedVecSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.trace.push(PackedAccess::pack(access));
    }
}

/// Counts references per array without storing them.
#[derive(Clone, Debug, Default)]
pub struct CountSink {
    /// Reference counts indexed by `Array as usize`.
    pub counts: [u64; 5],
    /// Number of store references.
    pub writes: u64,
}

impl CountSink {
    /// Creates a zeroed counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of references seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for CountSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.counts[access.array as usize] += 1;
        if access.write {
            self.writes += 1;
        }
    }
}

/// Adapts two sinks to receive the same stream.
pub struct TeeSink<'a, A: TraceSink, B: TraceSink> {
    /// First sink.
    pub first: &'a mut A,
    /// Second sink.
    pub second: &'a mut B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.first.access(access);
        self.second.access(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Array;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.access(Access::load(3, Array::X));
        s.access(Access::store(1, Array::Y));
        assert_eq!(s.trace.len(), 2);
        assert_eq!(s.trace[0].line, 3);
        assert!(s.trace[1].write);
    }

    #[test]
    fn count_sink_counts_by_array() {
        let mut s = CountSink::new();
        s.access(Access::load(0, Array::X));
        s.access(Access::load(1, Array::X));
        s.access(Access::store(2, Array::Y));
        assert_eq!(s.counts[Array::X as usize], 2);
        assert_eq!(s.counts[Array::Y as usize], 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut a = VecSink::new();
        let mut b = CountSink::new();
        {
            let mut tee = TeeSink {
                first: &mut a,
                second: &mut b,
            };
            tee.access(Access::load(9, Array::A));
            tee.access_all(&[Access::load(10, Array::A), Access::load(11, Array::ColIdx)]);
        }
        assert_eq!(a.trace.len(), 3);
        assert_eq!(b.total(), 3);
        assert_eq!(b.counts[Array::A as usize], 2);
    }
}
