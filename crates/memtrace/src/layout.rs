//! Memory layout of the SpMV data structures at cache-line granularity.
//!
//! Mirrors the paper's Fig. 1 (c): each of the five arrays is assumed to be
//! aligned to a cache-line boundary (the A64FX line is 256 bytes) and laid
//! out contiguously in the order `x`, `y`, `a`, `colidx`, `rowptr`. Every
//! element of every array therefore maps to a unique global cache-line
//! number, which is the alphabet the reuse-distance analysis and the cache
//! simulator operate on.

use sparsemat::CsrMatrix;

/// Cache-line size of the A64FX in bytes (unusually large; the paper notes
/// this makes `x`-vector traffic up to 95 % of the data volume in the worst
/// case). Re-exported from the `machine` crate — the single source of
/// truth for hardware geometry.
pub use machine::A64FX_LINE_BYTES;

/// The five data structures of CSR SpMV (Listing 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Array {
    /// The input vector `x` (`num_cols` × 8 bytes).
    X = 0,
    /// The output vector `y` (`num_rows` × 8 bytes).
    Y = 1,
    /// The nonzero values `a` (`nnz` × 8 bytes).
    A = 2,
    /// The column indices `colidx` (`nnz` × 4 bytes).
    ColIdx = 3,
    /// The row pointers `rowptr` (`(num_rows + 1)` × 8 bytes).
    RowPtr = 4,
}

impl Array {
    /// All arrays in layout order.
    pub const ALL: [Array; 5] = [Array::X, Array::Y, Array::A, Array::ColIdx, Array::RowPtr];

    /// Bytes per element of this array (8 except for the 4-byte `colidx`).
    #[inline]
    pub const fn element_bytes(self) -> usize {
        match self {
            Array::ColIdx => 4,
            _ => 8,
        }
    }

    /// Short lower-case name (`x`, `y`, `a`, `colidx`, `rowptr`).
    pub const fn name(self) -> &'static str {
        match self {
            Array::X => "x",
            Array::Y => "y",
            Array::A => "a",
            Array::ColIdx => "colidx",
            Array::RowPtr => "rowptr",
        }
    }
}

/// Assignment of cache-line numbers to the SpMV data structures for one
/// matrix, at a given cache-line size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataLayout {
    line_bytes: usize,
    /// First global line number of each array, in `Array::ALL` order.
    base: [u64; 5],
    /// Number of lines occupied by each array.
    lines: [u64; 5],
    /// Number of elements of each array (for bounds checking).
    elements: [usize; 5],
}

impl DataLayout {
    /// Builds the layout for a matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or not a multiple of 8 (so that 8-byte
    /// elements never straddle a line boundary).
    pub fn from_dims(num_rows: usize, num_cols: usize, nnz: usize, line_bytes: usize) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        assert_eq!(line_bytes % 8, 0, "line size must be a multiple of 8 bytes");
        let counts = [num_cols, num_rows, nnz, nnz, num_rows + 1];
        let mut base = [0u64; 5];
        let mut lines = [0u64; 5];
        let mut next = 0u64;
        for (i, &array) in Array::ALL.iter().enumerate() {
            let bytes = counts[i] * array.element_bytes();
            let n_lines = (bytes.div_ceil(line_bytes)) as u64;
            base[i] = next;
            lines[i] = n_lines;
            next += n_lines;
        }
        DataLayout {
            line_bytes,
            base,
            lines,
            elements: counts,
        }
    }

    /// Builds the layout for `matrix` (A64FX default when `line_bytes` is
    /// [`A64FX_LINE_BYTES`]).
    pub fn new(matrix: &CsrMatrix, line_bytes: usize) -> Self {
        Self::from_dims(
            matrix.num_rows(),
            matrix.num_cols(),
            matrix.nnz(),
            line_bytes,
        )
    }

    /// Builds a layout with explicit per-array element counts, in
    /// [`Array::ALL`] order (`x`, `y`, `a`, `colidx`, `rowptr`).
    ///
    /// Used by non-CSR formats that reuse the five array *roles* with
    /// different sizes — e.g. SELL-C-σ, where `a`/`colidx` are padded and
    /// the `rowptr` role is played by the per-chunk metadata.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or not a multiple of 8.
    pub fn from_counts(counts: [usize; 5], line_bytes: usize) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        assert_eq!(line_bytes % 8, 0, "line size must be a multiple of 8 bytes");
        let mut base = [0u64; 5];
        let mut lines = [0u64; 5];
        let mut next = 0u64;
        for (i, &array) in Array::ALL.iter().enumerate() {
            let bytes = counts[i] * array.element_bytes();
            let n_lines = (bytes.div_ceil(line_bytes)) as u64;
            base[i] = next;
            lines[i] = n_lines;
            next += n_lines;
        }
        DataLayout {
            line_bytes,
            base,
            lines,
            elements: counts,
        }
    }

    /// The cache-line size this layout was built for.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Global line number of element `index` of `array`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `index` is out of bounds for the array.
    #[inline]
    pub fn line_of(&self, array: Array, index: usize) -> u64 {
        debug_assert!(
            index < self.elements[array as usize],
            "{}[{index}] out of bounds ({})",
            array.name(),
            self.elements[array as usize]
        );
        self.base[array as usize] + (index * array.element_bytes() / self.line_bytes) as u64
    }

    /// First global line number of `array` — `line_of(array, 0)` without
    /// requiring the array to be non-empty. Block-batched cursor fills
    /// hoist this once per block and advance line numbers incrementally.
    #[inline]
    pub fn array_base(&self, array: Array) -> u64 {
        self.base[array as usize]
    }

    /// Number of cache lines occupied by `array`.
    #[inline]
    pub fn array_lines(&self, array: Array) -> u64 {
        self.lines[array as usize]
    }

    /// Total number of cache lines occupied by all five arrays.
    pub fn total_lines(&self) -> u64 {
        self.base[4] + self.lines[4]
    }

    /// Number of elements of `array`.
    #[inline]
    pub fn array_elements(&self, array: Array) -> usize {
        self.elements[array as usize]
    }

    /// Which array a global line number belongs to, or `None` if the line is
    /// beyond the layout.
    pub fn array_of_line(&self, line: u64) -> Option<Array> {
        for (i, &array) in Array::ALL.iter().enumerate() {
            if line >= self.base[i] && line < self.base[i] + self.lines[i] {
                return Some(array);
            }
        }
        None
    }

    /// Elements of `array` per cache line.
    #[inline]
    pub fn elements_per_line(&self, array: Array) -> usize {
        self.line_bytes / array.element_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 example: 4x4 matrix with 7 nonzeros, 16-byte
    /// lines. Expected layout (from the figure):
    /// lines 0-1 x, 2-3 y, 4-7 a, 8-9 colidx, 10-12 rowptr.
    fn fig1_layout() -> DataLayout {
        DataLayout::from_dims(4, 4, 7, 16)
    }

    #[test]
    fn fig1_line_counts() {
        let l = fig1_layout();
        assert_eq!(l.array_lines(Array::X), 2); // 4*8/16
        assert_eq!(l.array_lines(Array::Y), 2);
        assert_eq!(l.array_lines(Array::A), 4); // ceil(56/16)
        assert_eq!(l.array_lines(Array::ColIdx), 2); // ceil(28/16)
        assert_eq!(l.array_lines(Array::RowPtr), 3); // ceil(40/16)
        assert_eq!(l.total_lines(), 13);
    }

    #[test]
    fn fig1_line_numbers_match_figure() {
        let l = fig1_layout();
        // x[0-1] -> line 0, x[2-3] -> line 1
        assert_eq!(l.line_of(Array::X, 0), 0);
        assert_eq!(l.line_of(Array::X, 1), 0);
        assert_eq!(l.line_of(Array::X, 2), 1);
        assert_eq!(l.line_of(Array::X, 3), 1);
        // y[0-1] -> line 2, y[2-3] -> line 3
        assert_eq!(l.line_of(Array::Y, 0), 2);
        assert_eq!(l.line_of(Array::Y, 3), 3);
        // a[0-1] -> 4, a[2-3] -> 5, a[4-5] -> 6, a[6] -> 7
        assert_eq!(l.line_of(Array::A, 0), 4);
        assert_eq!(l.line_of(Array::A, 3), 5);
        assert_eq!(l.line_of(Array::A, 6), 7);
        // col[0-3] -> 8, col[4-6] -> 9
        assert_eq!(l.line_of(Array::ColIdx, 0), 8);
        assert_eq!(l.line_of(Array::ColIdx, 3), 8);
        assert_eq!(l.line_of(Array::ColIdx, 4), 9);
        // row[0-1] -> 10, row[2-3] -> 11, row[4] -> 12
        assert_eq!(l.line_of(Array::RowPtr, 0), 10);
        assert_eq!(l.line_of(Array::RowPtr, 2), 11);
        assert_eq!(l.line_of(Array::RowPtr, 4), 12);
    }

    #[test]
    fn array_of_line_inverts_line_of() {
        let l = fig1_layout();
        assert_eq!(l.array_of_line(0), Some(Array::X));
        assert_eq!(l.array_of_line(3), Some(Array::Y));
        assert_eq!(l.array_of_line(7), Some(Array::A));
        assert_eq!(l.array_of_line(9), Some(Array::ColIdx));
        assert_eq!(l.array_of_line(12), Some(Array::RowPtr));
        assert_eq!(l.array_of_line(13), None);
    }

    #[test]
    fn a64fx_line_geometry() {
        // 256-byte lines hold 32 f64s or 64 u32s.
        let l = DataLayout::from_dims(1000, 1000, 5000, A64FX_LINE_BYTES);
        assert_eq!(l.elements_per_line(Array::X), 32);
        assert_eq!(l.elements_per_line(Array::ColIdx), 64);
        assert_eq!(l.array_lines(Array::X), 32); // ceil(8000/256) = 32 (exact: 31.25 -> 32)
        assert_eq!(
            l.array_lines(Array::ColIdx),
            (5000 * 4usize).div_ceil(A64FX_LINE_BYTES) as u64
        );
    }

    #[test]
    fn empty_matrix_layout() {
        let l = DataLayout::from_dims(0, 0, 0, 64);
        assert_eq!(l.array_lines(Array::X), 0);
        assert_eq!(l.array_lines(Array::RowPtr), 1); // rowptr always has 1 entry
        assert_eq!(l.total_lines(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_line_size_rejected() {
        DataLayout::from_dims(1, 1, 1, 12);
    }
}
