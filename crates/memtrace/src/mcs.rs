//! MCS queue lock (Mellor-Crummey & Scott, 1991).
//!
//! The paper collates memory accesses submitted by different threads with
//! an MCS lock "because it provides starvation freedom and fairness (FIFO
//! ordering)" (§3.2.1). This implementation uses per-thread queue nodes in
//! a fixed slot array addressed by small integers instead of raw pointers,
//! which keeps the crate free of `unsafe` while preserving the algorithm:
//! a single atomic tail swap enqueues a waiter behind its predecessor, each
//! waiter spins on its *own* node's flag (local spinning), and unlock hands
//! the lock to the queue successor — FIFO order by construction.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Sentinel meaning "no node" in `tail`/`next` (slots are stored +1).
const NIL: usize = 0;

struct Node {
    /// Slot + 1 of the queue successor, or [`NIL`].
    next: AtomicUsize,
    /// `true` while this waiter must keep spinning.
    locked: AtomicBool,
    /// Guards against a slot being used for two overlapping acquisitions.
    in_use: AtomicBool,
}

/// A fair, FIFO-ordered MCS queue lock with a fixed number of slots.
///
/// Each participating thread must use its own dedicated slot index (e.g.
/// its thread id); a slot can be part of at most one acquisition at a time,
/// which is checked at runtime.
pub struct McsLock {
    tail: AtomicUsize,
    nodes: Box<[Node]>,
}

impl McsLock {
    /// Creates a lock usable by `num_slots` threads (slots `0..num_slots`).
    ///
    /// # Panics
    ///
    /// Panics if `num_slots` is zero.
    pub fn new(num_slots: usize) -> Self {
        assert!(num_slots > 0, "MCS lock needs at least one slot");
        let nodes = (0..num_slots)
            .map(|_| Node {
                next: AtomicUsize::new(NIL),
                locked: AtomicBool::new(false),
                in_use: AtomicBool::new(false),
            })
            .collect();
        McsLock {
            tail: AtomicUsize::new(NIL),
            nodes,
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Acquires the lock using `slot`, spinning until it is granted.
    ///
    /// Returns a guard that releases the lock when dropped.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or already part of an acquisition.
    pub fn lock(&self, slot: usize) -> McsGuard<'_> {
        let node = &self.nodes[slot];
        assert!(
            !node.in_use.swap(true, Ordering::Acquire),
            "MCS slot {slot} used for two overlapping acquisitions"
        );
        node.next.store(NIL, Ordering::Relaxed);
        node.locked.store(true, Ordering::Relaxed);
        let pred = self.tail.swap(slot + 1, Ordering::AcqRel);
        if pred != NIL {
            // Link behind the predecessor, then spin locally.
            self.nodes[pred - 1].next.store(slot + 1, Ordering::Release);
            let mut spins = 0u32;
            while node.locked.load(Ordering::Acquire) {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        McsGuard { lock: self, slot }
    }

    fn unlock(&self, slot: usize) {
        let node = &self.nodes[slot];
        if node.next.load(Ordering::Acquire) == NIL {
            // No known successor: try to close the queue.
            if self
                .tail
                .compare_exchange(slot + 1, NIL, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                node.in_use.store(false, Ordering::Release);
                return;
            }
            // A successor is enqueuing; wait for the link.
            while node.next.load(Ordering::Acquire) == NIL {
                std::hint::spin_loop();
            }
        }
        let succ = node.next.load(Ordering::Acquire);
        node.in_use.store(false, Ordering::Release);
        self.nodes[succ - 1].locked.store(false, Ordering::Release);
    }
}

/// RAII guard for an acquired [`McsLock`]; releases on drop.
pub struct McsGuard<'a> {
    lock: &'a McsLock,
    slot: usize,
}

impl McsGuard<'_> {
    /// The slot this acquisition used.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for McsGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_thread_lock_unlock() {
        let lock = McsLock::new(1);
        for _ in 0..100 {
            let g = lock.lock(0);
            assert_eq!(g.slot(), 0);
        }
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = McsLock::new(8);
        let counter = AtomicU64::new(0);
        let shared = std::cell::Cell::new(0u64);
        // Use a plain non-atomic-ish cell via counter verification instead:
        // increment a shared atomic non-atomically (read, yield, write)
        // under the lock; races would lose updates.
        let _ = shared;
        std::thread::scope(|s| {
            for slot in 0..8 {
                let lock = &lock;
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..200 {
                        let _g = lock.lock(slot);
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 200);
    }

    #[test]
    fn fifo_handoff_two_threads() {
        // Thread B enqueues while A holds the lock; when A releases, B must
        // acquire before A can re-acquire (FIFO). We verify the sequence of
        // acquisitions recorded under the lock alternates as forced by the
        // barrier-free handoff pattern.
        let lock = McsLock::new(2);
        let order = parking_lot_free_log();
        std::thread::scope(|s| {
            let g = lock.lock(0);
            let lockref = &lock;
            let orderref = &order;
            let h = s.spawn(move || {
                let _g = lockref.lock(1);
                orderref.fetch_add(1, Ordering::SeqCst);
            });
            // Give B time to enqueue behind us.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(
                order.load(Ordering::SeqCst),
                0,
                "B acquired while A held the lock"
            );
            drop(g);
            // Propagate the worker's own message (an assert inside the
            // spawned closure would otherwise surface as an opaque
            // `Any { .. }` unwrap).
            sparsemat::join_propagating(h.join(), "handoff worker");
            assert_eq!(order.load(Ordering::SeqCst), 1);
        });
    }

    fn parking_lot_free_log() -> AtomicU64 {
        AtomicU64::new(0)
    }

    #[test]
    #[should_panic(expected = "overlapping acquisitions")]
    fn overlapping_slot_use_detected() {
        let lock = McsLock::new(2);
        let _g1 = lock.lock(0);
        let _g2 = lock.lock(0); // same slot while held
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        McsLock::new(0);
    }
}
