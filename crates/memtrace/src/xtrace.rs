//! Method (B) trace generation: `x`-vector accesses only.
//!
//! The paper's §3.2.2 approximates SpMV reuse distances from a single pass
//! over a much smaller trace containing only the `x`-vector references
//! implied by `colidx` (one per nonzero, in row-major order). The influence
//! of the other four arrays is reintroduced analytically by the model via
//! the scaling factors `s1`/`s2` and closed-form streaming-miss terms
//! (see `locality_core::method_b`).

use crate::layout::{Array, DataLayout};
use crate::sink::TraceSink;
use crate::Access;
use sparsemat::CsrMatrix;

/// Generates the method (B) trace (one `x` reference per nonzero) for rows
/// `rows` of `matrix` into `sink`.
///
/// # Panics
///
/// Panics if the row range is out of bounds.
pub fn trace_x_rows<S: TraceSink>(
    matrix: &CsrMatrix,
    layout: &DataLayout,
    rows: std::ops::Range<usize>,
    sink: &mut S,
) {
    assert!(rows.end <= matrix.num_rows(), "row range out of bounds");
    if rows.is_empty() {
        return;
    }
    let colidx = matrix.colidx();
    let start = matrix.rowptr()[rows.start] as usize;
    let end = matrix.rowptr()[rows.end] as usize;
    for &c in &colidx[start..end] {
        sink.access(Access::load(layout.line_of(Array::X, c as usize), Array::X));
    }
}

/// Generates the full sequential method (B) trace of one SpMV iteration.
pub fn trace_x<S: TraceSink>(matrix: &CsrMatrix, layout: &DataLayout, sink: &mut S) {
    trace_x_rows(matrix, layout, 0..matrix.num_rows(), sink);
}

/// Generates the method (B) trace at *element* granularity for rows
/// `rows`: the raw `colidx` values, one per nonzero.
///
/// This is the trace the paper's §3.2.2 actually processes — "the x-vector
/// access pattern given by `colidx`". Element-granular reuse distances
/// combine with the byte-ratio scaling factors `s1`/`s2` (which normalise
/// by the 8-byte x element size) to approximate full-trace distances; see
/// `locality_core::method_b`. The `Access::line` field carries the element
/// index in this trace.
pub fn trace_x_elements_rows<S: TraceSink>(
    matrix: &CsrMatrix,
    rows: std::ops::Range<usize>,
    sink: &mut S,
) {
    assert!(rows.end <= matrix.num_rows(), "row range out of bounds");
    if rows.is_empty() {
        return;
    }
    let colidx = matrix.colidx();
    let start = matrix.rowptr()[rows.start] as usize;
    let end = matrix.rowptr()[rows.end] as usize;
    for &c in &colidx[start..end] {
        sink.access(Access::load(c as u64, Array::X));
    }
}

/// Generates per-thread element-granular method (B) traces for the given
/// row partition (see [`trace_x_elements_rows`]).
pub fn trace_x_elements_partitioned(
    matrix: &CsrMatrix,
    partition: &sparsemat::RowPartition,
) -> Vec<Vec<Access>> {
    partition
        .iter()
        .map(|rows| {
            let nnz = (matrix.rowptr()[rows.end] - matrix.rowptr()[rows.start]) as usize;
            let mut sink = Vec::with_capacity(nnz);
            trace_x_elements_rows(matrix, rows, &mut sink);
            sink
        })
        .collect()
}

/// Generates per-thread method (B) traces for the given row partition.
pub fn trace_x_partitioned(
    matrix: &CsrMatrix,
    layout: &DataLayout,
    partition: &sparsemat::RowPartition,
) -> Vec<Vec<Access>> {
    partition
        .iter()
        .map(|rows| {
            let nnz = (matrix.rowptr()[rows.end] - matrix.rowptr()[rows.start]) as usize;
            let mut sink = Vec::with_capacity(nnz);
            trace_x_rows(matrix, layout, rows, &mut sink);
            sink
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::spmv_trace;
    use sparsemat::{CsrMatrix, RowPartition};

    fn fig1() -> (CsrMatrix, DataLayout) {
        let m = CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 7],
            vec![1, 2, 0, 2, 3, 1, 3],
            vec![1.0; 7],
        );
        let l = DataLayout::new(&m, 16);
        (m, l)
    }

    #[test]
    fn xtrace_has_one_access_per_nonzero() {
        let (m, l) = fig1();
        let mut sink = VecSink::new();
        trace_x(&m, &l, &mut sink);
        assert_eq!(sink.trace.len(), m.nnz());
        assert!(sink.trace.iter().all(|a| a.array == Array::X && !a.write));
    }

    #[test]
    fn xtrace_matches_x_subsequence_of_full_trace() {
        let (m, l) = fig1();
        let mut full = VecSink::new();
        spmv_trace::trace_spmv(&m, &l, &mut full);
        let x_only: Vec<u64> = full
            .trace
            .iter()
            .filter(|a| a.array == Array::X)
            .map(|a| a.line)
            .collect();
        let mut xs = VecSink::new();
        trace_x(&m, &l, &mut xs);
        let got: Vec<u64> = xs.trace.iter().map(|a| a.line).collect();
        assert_eq!(got, x_only);
    }

    #[test]
    fn partitioned_xtrace_covers_all_nonzeros() {
        let (m, l) = fig1();
        let p = RowPartition::static_rows(4, 3);
        let blocks = trace_x_partitioned(&m, &l, &p);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn element_trace_is_raw_colidx() {
        let (m, _) = fig1();
        let mut sink = VecSink::new();
        trace_x_elements_rows(&m, 0..4, &mut sink);
        let got: Vec<u64> = sink.trace.iter().map(|a| a.line).collect();
        let want: Vec<u64> = m.colidx().iter().map(|&c| c as u64).collect();
        assert_eq!(got, want);
        assert!(sink.trace.iter().all(|a| a.array == Array::X));
    }

    #[test]
    fn element_trace_partitioned_covers_all_nonzeros() {
        let (m, _) = fig1();
        let p = RowPartition::static_rows(4, 2);
        let blocks = trace_x_elements_partitioned(&m, &p);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, m.nnz());
        // Block 0 covers rows 0..2 -> colidx[0..3].
        assert_eq!(blocks[0].len(), 3);
        assert_eq!(blocks[0][0].line, 1);
    }
}
