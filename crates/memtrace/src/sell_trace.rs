//! Trace derivation for SELL-C-σ SpMV — the paper's future-work extension
//! ("it is worth investigating how the sector cache can be applied in the
//! case of other sparse matrix storage formats").
//!
//! The five array *roles* of the CSR analysis map directly: the padded
//! `values`/`colidx` arrays are the non-temporal stream (sector 1 under
//! the Listing 1 policy), the per-chunk metadata plays the `rowptr` role,
//! and `x`/`y` are unchanged — so the same partitioned reuse-distance
//! machinery predicts SELL-C-σ cache behaviour without modification.
//!
//! Access pattern per chunk (matching the kernel in
//! `sparsemat::sell::SellMatrix::spmv`): the chunk metadata, then for each
//! padded column `j` and lane the `values`, `colidx` and gathered `x`
//! elements, then one `y` update per row of the chunk.

use crate::layout::{Array, DataLayout};
use crate::sink::TraceSink;
use crate::Access;
use sparsemat::SellMatrix;

/// Builds the [`DataLayout`] for a SELL-C-σ matrix: padded entry counts
/// for `a`/`colidx`, chunk metadata in the `rowptr` role.
pub fn sell_layout(matrix: &SellMatrix, line_bytes: usize) -> DataLayout {
    crate::workload::SpmvWorkload::layout(matrix, line_bytes)
}

/// Generates the memory trace of one SELL-C-σ SpMV iteration.
pub fn trace_sell_spmv<S: TraceSink>(matrix: &SellMatrix, layout: &DataLayout, sink: &mut S) {
    trace_sell_chunks(matrix, layout, 0..matrix.num_chunks(), sink);
}

/// Generates the trace for a contiguous range of chunks (one thread's
/// share under a static chunk partition).
///
/// # Panics
///
/// Panics if the chunk range is out of bounds.
pub fn trace_sell_chunks<S: TraceSink>(
    matrix: &SellMatrix,
    layout: &DataLayout,
    chunks: std::ops::Range<usize>,
    sink: &mut S,
) {
    assert!(
        chunks.end <= matrix.num_chunks(),
        "chunk range out of bounds"
    );
    let c = matrix.chunk_size();
    let colidx = matrix.colidx();
    for k in chunks {
        // Chunk metadata (width + offset) plays the rowptr role.
        sink.access(Access::load(
            layout.line_of(Array::RowPtr, k),
            Array::RowPtr,
        ));
        let base = matrix.chunk_ptr()[k];
        let width = matrix.chunk_width()[k] as usize;
        let row_base = k * c;
        let rows_in_chunk = c.min(matrix.num_rows() - row_base.min(matrix.num_rows()));
        for j in 0..width {
            for lane in 0..c {
                let idx = base + j * c + lane;
                sink.access(Access::load(layout.line_of(Array::A, idx), Array::A));
                sink.access(Access::load(
                    layout.line_of(Array::ColIdx, idx),
                    Array::ColIdx,
                ));
                sink.access(Access::load(
                    layout.line_of(Array::X, colidx[idx] as usize),
                    Array::X,
                ));
            }
        }
        for lane in 0..rows_in_chunk {
            let original_row = matrix.row_perm()[row_base + lane];
            sink.access(Access::store(
                layout.line_of(Array::Y, original_row),
                Array::Y,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountSink, VecSink};
    use sparsemat::{CooMatrix, CsrMatrix};

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(10, 10);
        let mut state = 3u64;
        for r in 0..10usize {
            for _ in 0..(r % 4) + 1 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                coo.push(r, (state >> 33) as usize % 10, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn reference_counts_match_padded_sizes() {
        let a = sample_csr();
        let sell = SellMatrix::from_csr(&a, 4, 8);
        let layout = sell_layout(&sell, 64);
        let mut sink = CountSink::new();
        trace_sell_spmv(&sell, &layout, &mut sink);
        let padded = sell.stored_entries() as u64;
        assert_eq!(sink.counts[Array::A as usize], padded);
        assert_eq!(sink.counts[Array::ColIdx as usize], padded);
        assert_eq!(sink.counts[Array::X as usize], padded);
        assert_eq!(sink.counts[Array::Y as usize], 10);
        assert_eq!(
            sink.counts[Array::RowPtr as usize],
            sell.num_chunks() as u64
        );
        assert_eq!(sink.writes, 10);
    }

    #[test]
    fn all_lines_stay_in_their_arrays() {
        let a = sample_csr();
        let sell = SellMatrix::from_csr(&a, 4, 8);
        let layout = sell_layout(&sell, 64);
        let mut sink = VecSink::new();
        trace_sell_spmv(&sell, &layout, &mut sink);
        for acc in &sink.trace {
            assert_eq!(layout.array_of_line(acc.line), Some(acc.array));
        }
    }

    #[test]
    fn y_stores_cover_every_row_once() {
        let a = sample_csr();
        let sell = SellMatrix::from_csr(&a, 4, 8);
        let layout = sell_layout(&sell, 64);
        let mut sink = VecSink::new();
        trace_sell_spmv(&sell, &layout, &mut sink);
        let mut seen = vec![0u32; layout.array_lines(Array::Y) as usize];
        let y_base = layout.line_of(Array::Y, 0);
        for acc in sink.trace.iter().filter(|a| a.array == Array::Y) {
            seen[(acc.line - y_base) as usize] += 1;
        }
        // 10 rows at 8 per line: line 0 holds rows 0..7, line 1 rows 8..9.
        assert_eq!(seen, vec![8, 2]);
    }

    #[test]
    fn chunk_subrange_traces_less() {
        let a = sample_csr();
        let sell = SellMatrix::from_csr(&a, 4, 8);
        let layout = sell_layout(&sell, 64);
        let mut all = CountSink::new();
        trace_sell_spmv(&sell, &layout, &mut all);
        let mut first = CountSink::new();
        trace_sell_chunks(&sell, &layout, 0..1, &mut first);
        assert!(first.total() < all.total());
        assert_eq!(first.counts[Array::RowPtr as usize], 1);
    }
}
