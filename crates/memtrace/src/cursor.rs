//! Resumable trace *cursors*: row-block generators that yield [`Access`]es
//! on demand.
//!
//! The sink-based generators ([`spmv_trace`](crate::spmv_trace),
//! [`xtrace`](crate::xtrace)) push a whole row block's references in one
//! call, which forces callers that need to *interleave* several threads'
//! references (the shared-L2 collation of §3.2.1) to materialise every
//! per-thread trace first — `~3·nnz` 16-byte events per routing replay.
//! A cursor inverts the control flow: it carries the generator's loop
//! state (row, nonzero, emission stage) in O(1) space and produces the
//! next reference each time it is asked, so
//! [`round_robin_cursors`](crate::interleave::round_robin_cursors) can
//! merge an arbitrary number of threads with O(threads) total state and
//! zero trace allocation.
//!
//! Cursors are cheap to construct (they borrow the matrix and layout), so
//! replaying a stream — e.g. the warm-up and measured iterations of the
//! locality model — is done by building fresh cursors rather than storing
//! the trace.

use crate::layout::{Array, DataLayout};
use crate::sink::{AccessBlock, TraceSink};
use crate::{Access, PackedAccess};
use sparsemat::{CsrMatrix, SellMatrix};
use std::ops::Range;

/// A resumable generator of [`Access`] events.
pub trait TraceCursor {
    /// Produces the next reference, or `None` when the trace is exhausted.
    fn next_access(&mut self) -> Option<Access>;

    /// Exact number of references this cursor will still produce.
    fn remaining(&self) -> usize;

    /// Appends upcoming references to `block` — in exactly the order
    /// [`next_access`](Self::next_access) would produce them — until the
    /// block is full or the cursor is exhausted. Returns the number
    /// appended; 0 means exhausted (given a non-full block).
    ///
    /// The default forwards to `next_access`; the SpMV cursors override
    /// it with batched fills that hoist the layout's line arithmetic out
    /// of the per-reference path.
    fn next_block(&mut self, block: &mut AccessBlock) -> usize {
        let mut n = 0;
        while !block.is_full() {
            match self.next_access() {
                Some(a) => {
                    block.push(PackedAccess::pack(a));
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Drains the cursor into a sink (convenience; equivalent to calling
    /// [`next_access`](Self::next_access) until exhaustion).
    fn drain_into<S: TraceSink>(&mut self, sink: &mut S)
    where
        Self: Sized,
    {
        while let Some(a) = self.next_access() {
            sink.access(a);
        }
    }
}

/// Per-array line arithmetic hoisted out of a block fill: `line_of` is a
/// base plus an integer division by the elements-per-line, which is exact
/// because a line holds a whole number of elements (`line_bytes` is a
/// multiple of every element size). Division by a power of two becomes a
/// shift.
#[derive(Clone, Copy, Debug)]
struct LaneGeom {
    base: u64,
    epl: usize,
    /// `Some(log2(epl))` when the division reduces to a shift — always
    /// the case for power-of-two line sizes such as the A64FX's 256 B.
    shift: Option<u32>,
}

impl LaneGeom {
    fn new(layout: &DataLayout, array: Array) -> Self {
        let epl = layout.elements_per_line(array);
        LaneGeom {
            base: layout.array_base(array),
            epl,
            shift: epl.is_power_of_two().then(|| epl.trailing_zeros()),
        }
    }

    /// Line number of element `index`; equals `layout.line_of(array, index)`.
    #[inline]
    fn line(self, index: usize) -> u64 {
        match self.shift {
            Some(s) => self.base + ((index as u64) >> s),
            None => self.base + (index / self.epl) as u64,
        }
    }
}

/// Incremental line counter over a sequentially-scanned array: one
/// decrement per element instead of one division.
#[derive(Clone, Copy, Debug)]
struct SeqLine {
    line: u64,
    /// Elements left on the current line.
    left: usize,
    epl: usize,
}

impl SeqLine {
    fn at(geom: LaneGeom, index: usize) -> Self {
        SeqLine {
            line: geom.line(index),
            left: geom.epl - index % geom.epl,
            epl: geom.epl,
        }
    }

    /// Line of the current element, then advances by one element.
    #[inline]
    fn next(&mut self) -> u64 {
        let line = self.line;
        self.left -= 1;
        if self.left == 0 {
            self.line += 1;
            self.left = self.epl;
        }
        line
    }
}

/// Multi-RHS geometry: `k` right-hand sides and how their elements are
/// laid out in the `x`/`y` array roles.
///
/// With `k = 1` every element index degenerates to the single-vector
/// index, so cursors constructed through [`RhsGeom::single`] emit traces
/// byte-identical to the historical single-RHS cursors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RhsGeom {
    /// Number of right-hand sides.
    pub k: usize,
    /// Row-major interleaved (`x[c*k + j]`) when `true`; column-major
    /// separate vectors (`x[j*x_stride + c]`) when `false`.
    pub interleaved: bool,
    /// Column-major stride of the `x` role (matrix columns).
    pub x_stride: usize,
    /// Column-major stride of the `y` role (matrix rows).
    pub y_stride: usize,
}

impl RhsGeom {
    /// The single-RHS geometry (`k = 1`; layout is irrelevant).
    pub fn single() -> Self {
        RhsGeom {
            k: 1,
            interleaved: true,
            x_stride: 0,
            y_stride: 0,
        }
    }

    /// Geometry for `k` right-hand sides over an `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize, interleaved: bool, cols: usize, rows: usize) -> Self {
        assert!(k > 0, "need at least one right-hand side");
        RhsGeom {
            k,
            interleaved,
            x_stride: cols,
            y_stride: rows,
        }
    }

    /// Element index of RHS `j` of logical `x` element `c`.
    #[inline]
    fn x_elem(self, c: usize, j: usize) -> usize {
        if self.interleaved {
            c * self.k + j
        } else {
            j * self.x_stride + c
        }
    }

    /// Element index of RHS `j` of logical `y` element `r`.
    #[inline]
    fn y_elem(self, r: usize, j: usize) -> usize {
        if self.interleaved {
            r * self.k + j
        } else {
            j * self.y_stride + r
        }
    }
}

/// Emission stage of the method (A) generator's inner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Loop entry: `rowptr[r0]`.
    Entry,
    /// Loop bound of the current row: `rowptr[r + 1]`.
    Bound,
    /// `a[i]` of the current nonzero.
    A,
    /// `colidx[i]` of the current nonzero.
    Col,
    /// `x[colidx[i]]` of the current nonzero.
    X,
    /// `y[r]` store closing the current row.
    Y,
    /// Exhausted.
    Done,
}

/// Streaming equivalent of
/// [`trace_spmv_rows`](crate::spmv_trace::trace_spmv_rows): yields the
/// method (A) trace of one row block reference-by-reference.
///
/// The emission order is identical to the sink generator's (verified by
/// tests): `rowptr[r0]`, then per row the bound load, the per-nonzero
/// `a`/`colidx`/`x` triple, and the `y` store.
#[derive(Clone, Debug)]
pub struct SpmvCursor<'a> {
    matrix: &'a CsrMatrix,
    layout: &'a DataLayout,
    rows: Range<usize>,
    row: usize,
    nz: usize,
    nz_end: usize,
    rhs: RhsGeom,
    /// Next RHS of the current `x` gather (`< rhs.k`).
    xj: usize,
    /// Next RHS of the current `y` store (`< rhs.k`).
    yj: usize,
    stage: Stage,
    remaining: usize,
}

impl<'a> SpmvCursor<'a> {
    /// Creates a cursor over rows `rows` of `matrix`.
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds.
    pub fn new(matrix: &'a CsrMatrix, layout: &'a DataLayout, rows: Range<usize>) -> Self {
        Self::with_rhs(matrix, layout, rows, RhsGeom::single())
    }

    /// Creates a multi-RHS (SpMM) cursor over rows `rows`: every `x`
    /// gather widens to `rhs.k` loads and every `y` store to `rhs.k`
    /// stores. With [`RhsGeom::single`] the trace is byte-identical to
    /// [`new`](Self::new)'s.
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds.
    pub fn with_rhs(
        matrix: &'a CsrMatrix,
        layout: &'a DataLayout,
        rows: Range<usize>,
        rhs: RhsGeom,
    ) -> Self {
        assert!(rows.end <= matrix.num_rows(), "row range out of bounds");
        let nnz = if rows.is_empty() {
            0
        } else {
            (matrix.rowptr()[rows.end] - matrix.rowptr()[rows.start]) as usize
        };
        let remaining = if rows.is_empty() {
            0
        } else {
            // trace_len generalised to k: the entry load, per row the
            // bound load plus k `y` stores, per nonzero a/colidx plus k
            // `x` loads. k = 1 reduces to spmv_trace::trace_len.
            1 + rows.len() * (1 + rhs.k) + nnz * (2 + rhs.k)
        };
        SpmvCursor {
            matrix,
            layout,
            row: rows.start,
            rows,
            nz: 0,
            nz_end: 0,
            rhs,
            xj: 0,
            yj: 0,
            stage: Stage::Entry,
            remaining,
        }
    }
}

impl TraceCursor for SpmvCursor<'_> {
    fn next_access(&mut self) -> Option<Access> {
        let access = match self.stage {
            Stage::Done => return None,
            Stage::Entry => {
                if self.rows.is_empty() {
                    self.stage = Stage::Done;
                    return None;
                }
                self.stage = Stage::Bound;
                Access::load(
                    self.layout.line_of(Array::RowPtr, self.rows.start),
                    Array::RowPtr,
                )
            }
            Stage::Bound => {
                let r = self.row;
                let range = self.matrix.row_range(r);
                self.nz = range.start;
                self.nz_end = range.end;
                self.stage = if self.nz < self.nz_end {
                    Stage::A
                } else {
                    Stage::Y
                };
                Access::load(self.layout.line_of(Array::RowPtr, r + 1), Array::RowPtr)
            }
            Stage::A => {
                self.stage = Stage::Col;
                Access::load(self.layout.line_of(Array::A, self.nz), Array::A)
            }
            Stage::Col => {
                self.stage = Stage::X;
                Access::load(self.layout.line_of(Array::ColIdx, self.nz), Array::ColIdx)
            }
            Stage::X => {
                let c = self.matrix.colidx()[self.nz] as usize;
                let elem = self.rhs.x_elem(c, self.xj);
                self.xj += 1;
                if self.xj == self.rhs.k {
                    self.xj = 0;
                    self.nz += 1;
                    self.stage = if self.nz < self.nz_end {
                        Stage::A
                    } else {
                        Stage::Y
                    };
                }
                Access::load(self.layout.line_of(Array::X, elem), Array::X)
            }
            Stage::Y => {
                let elem = self.rhs.y_elem(self.row, self.yj);
                self.yj += 1;
                if self.yj == self.rhs.k {
                    self.yj = 0;
                    self.row += 1;
                    self.stage = if self.row < self.rows.end {
                        Stage::Bound
                    } else {
                        Stage::Done
                    };
                }
                Access::store(self.layout.line_of(Array::Y, elem), Array::Y)
            }
        };
        self.remaining -= 1;
        Some(access)
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn next_block(&mut self, block: &mut AccessBlock) -> usize {
        let mut n = 0;
        let geom_a = LaneGeom::new(self.layout, Array::A);
        let geom_c = LaneGeom::new(self.layout, Array::ColIdx);
        let geom_x = LaneGeom::new(self.layout, Array::X);
        loop {
            // Whole-row fast path (single-RHS only): at a row boundary
            // with space for the bound load, every a/colidx/x triple and
            // the y store, emit the row in one scan of its colidx slice.
            while self.stage == Stage::Bound && self.rhs.k == 1 {
                let r = self.row;
                let range = self.matrix.row_range(r);
                let need = 2 + 3 * range.len();
                if need > block.space() {
                    break;
                }
                block.push(PackedAccess::pack(Access::load(
                    self.layout.line_of(Array::RowPtr, r + 1),
                    Array::RowPtr,
                )));
                let mut a_line = SeqLine::at(geom_a, range.start);
                let mut c_line = SeqLine::at(geom_c, range.start);
                for &col in &self.matrix.colidx()[range] {
                    block.push(PackedAccess::pack(Access::load(a_line.next(), Array::A)));
                    block.push(PackedAccess::pack(Access::load(
                        c_line.next(),
                        Array::ColIdx,
                    )));
                    block.push(PackedAccess::pack(Access::load(
                        geom_x.line(col as usize),
                        Array::X,
                    )));
                }
                block.push(PackedAccess::pack(Access::store(
                    self.layout.line_of(Array::Y, r),
                    Array::Y,
                )));
                self.row += 1;
                self.stage = if self.row < self.rows.end {
                    Stage::Bound
                } else {
                    Stage::Done
                };
                self.remaining -= need;
                n += need;
            }
            // Per-reference fallback: the loop entry, a mid-row resume,
            // or a row that does not fit in the block's tail.
            if block.is_full() {
                return n;
            }
            match self.next_access() {
                Some(a) => {
                    block.push(PackedAccess::pack(a));
                    n += 1;
                }
                None => return n,
            }
        }
    }
}

/// Streaming equivalent of
/// [`trace_x_rows`](crate::xtrace::trace_x_rows): yields the method (B)
/// trace (one `x` load per nonzero) of one row block.
#[derive(Clone, Debug)]
pub struct XCursor<'a> {
    colidx: &'a [u32],
    layout: &'a DataLayout,
    nz: usize,
    nz_end: usize,
    rhs: RhsGeom,
    /// Next RHS of the current gather (`< rhs.k`).
    j: usize,
}

impl<'a> XCursor<'a> {
    /// Creates a cursor over rows `rows` of `matrix`.
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds.
    pub fn new(matrix: &'a CsrMatrix, layout: &'a DataLayout, rows: Range<usize>) -> Self {
        assert!(rows.end <= matrix.num_rows(), "row range out of bounds");
        let (nz, nz_end) = if rows.is_empty() {
            (0, 0)
        } else {
            (
                matrix.rowptr()[rows.start] as usize,
                matrix.rowptr()[rows.end] as usize,
            )
        };
        XCursor {
            colidx: matrix.colidx(),
            layout,
            nz,
            nz_end,
            rhs: RhsGeom::single(),
            j: 0,
        }
    }

    /// Creates a cursor over an explicit range of gather indices in a raw
    /// `colidx` array — the format-agnostic entry point. Any format whose
    /// per-thread share of `x` gather targets is a contiguous `colidx`
    /// slice (CSR row blocks, SELL-C-σ chunk blocks) reduces to this.
    ///
    /// # Panics
    ///
    /// Panics if the entry range is out of bounds.
    pub fn over(colidx: &'a [u32], layout: &'a DataLayout, entries: Range<usize>) -> Self {
        Self::over_rhs(colidx, layout, entries, RhsGeom::single())
    }

    /// Like [`over`](Self::over), but widening every gather to `rhs.k`
    /// loads (the SpMM x-trace). With [`RhsGeom::single`] the trace is
    /// byte-identical to [`over`](Self::over)'s.
    ///
    /// # Panics
    ///
    /// Panics if the entry range is out of bounds.
    pub fn over_rhs(
        colidx: &'a [u32],
        layout: &'a DataLayout,
        entries: Range<usize>,
        rhs: RhsGeom,
    ) -> Self {
        assert!(entries.end <= colidx.len(), "entry range out of bounds");
        XCursor {
            colidx,
            layout,
            nz: entries.start.min(entries.end),
            nz_end: entries.end,
            rhs,
            j: 0,
        }
    }
}

impl TraceCursor for XCursor<'_> {
    fn next_access(&mut self) -> Option<Access> {
        if self.nz >= self.nz_end {
            return None;
        }
        let c = self.colidx[self.nz] as usize;
        let elem = self.rhs.x_elem(c, self.j);
        self.j += 1;
        if self.j == self.rhs.k {
            self.j = 0;
            self.nz += 1;
        }
        Some(Access::load(self.layout.line_of(Array::X, elem), Array::X))
    }

    fn remaining(&self) -> usize {
        (self.nz_end - self.nz) * self.rhs.k - self.j
    }

    fn next_block(&mut self, block: &mut AccessBlock) -> usize {
        if self.rhs.k != 1 {
            // Multi-RHS gathers go through the per-reference path; the
            // hoisted line arithmetic below assumes one load per entry.
            let mut n = 0;
            while !block.is_full() {
                match self.next_access() {
                    Some(a) => {
                        block.push(PackedAccess::pack(a));
                        n += 1;
                    }
                    None => break,
                }
            }
            return n;
        }
        let take = block.space().min(self.nz_end - self.nz);
        if take == 0 {
            return 0;
        }
        let geom = LaneGeom::new(self.layout, Array::X);
        for &c in &self.colidx[self.nz..self.nz + take] {
            block.push(PackedAccess::pack(Access::load(
                geom.line(c as usize),
                Array::X,
            )));
        }
        self.nz += take;
        take
    }
}

/// A cursor over an already-materialised trace slice (tests and adapters).
#[derive(Clone, Debug)]
pub struct SliceCursor<'a> {
    trace: &'a [Access],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    /// Creates a cursor yielding `trace` in order.
    pub fn new(trace: &'a [Access]) -> Self {
        SliceCursor { trace, pos: 0 }
    }
}

impl TraceCursor for SliceCursor<'_> {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.trace.get(self.pos).copied();
        self.pos += a.is_some() as usize;
        a
    }

    fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }

    fn next_block(&mut self, block: &mut AccessBlock) -> usize {
        let take = block.space().min(self.trace.len() - self.pos);
        for &a in &self.trace[self.pos..self.pos + take] {
            block.push(PackedAccess::pack(a));
        }
        self.pos += take;
        take
    }
}

/// Emission stage of the SELL-C-σ generator's inner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SellStage {
    /// Chunk metadata load (`rowptr` role) opening chunk `k`.
    Meta,
    /// `values[idx]` of the current padded entry.
    A,
    /// `colidx[idx]` of the current padded entry.
    Col,
    /// `x[colidx[idx]]` of the current padded entry.
    X,
    /// `y[row_perm[row]]` store closing the chunk.
    Y,
    /// Exhausted.
    Done,
}

/// Streaming equivalent of
/// [`trace_sell_chunks`](crate::sell_trace::trace_sell_chunks): yields the
/// method (A) trace of one chunk block of a SELL-C-σ matrix
/// reference-by-reference.
///
/// The emission order is identical to the sink generator's (verified by
/// tests): per chunk the metadata load, then the `a`/`colidx`/`x` triple
/// of every padded entry in storage (column-major) order, then one `y`
/// store per row of the chunk in packed order.
#[derive(Clone, Debug)]
pub struct SellCursor<'a> {
    matrix: &'a SellMatrix,
    layout: &'a DataLayout,
    chunks: Range<usize>,
    /// Current chunk.
    k: usize,
    /// Current padded entry (global index into `values`/`colidx`).
    idx: usize,
    /// One past the last padded entry of the current chunk.
    idx_end: usize,
    /// Next `y` lane of the current chunk.
    lane: usize,
    /// Rows actually present in the current chunk (≤ `C` on a ragged tail).
    rows_in_chunk: usize,
    rhs: RhsGeom,
    /// Next RHS of the current `x` gather (`< rhs.k`).
    xj: usize,
    /// Next RHS of the current `y` store (`< rhs.k`).
    yj: usize,
    stage: SellStage,
    remaining: usize,
}

impl<'a> SellCursor<'a> {
    /// Creates a cursor over chunks `chunks` of `matrix`.
    ///
    /// # Panics
    ///
    /// Panics if the chunk range is out of bounds.
    pub fn new(matrix: &'a SellMatrix, layout: &'a DataLayout, chunks: Range<usize>) -> Self {
        Self::with_rhs(matrix, layout, chunks, RhsGeom::single())
    }

    /// Creates a multi-RHS (SpMM) cursor over chunks `chunks`: every `x`
    /// gather widens to `rhs.k` loads and every `y` store to `rhs.k`
    /// stores. With [`RhsGeom::single`] the trace is byte-identical to
    /// [`new`](Self::new)'s.
    ///
    /// # Panics
    ///
    /// Panics if the chunk range is out of bounds.
    pub fn with_rhs(
        matrix: &'a SellMatrix,
        layout: &'a DataLayout,
        chunks: Range<usize>,
        rhs: RhsGeom,
    ) -> Self {
        assert!(
            chunks.end <= matrix.num_chunks(),
            "chunk range out of bounds"
        );
        let remaining = if chunks.is_empty() {
            0
        } else {
            let entries = matrix.chunk_ptr()[chunks.end] - matrix.chunk_ptr()[chunks.start];
            let c = matrix.chunk_size();
            let rows = (chunks.end * c).min(matrix.num_rows()) - chunks.start * c;
            (2 + rhs.k) * entries + chunks.len() + rhs.k * rows
        };
        SellCursor {
            matrix,
            layout,
            k: chunks.start,
            chunks,
            idx: 0,
            idx_end: 0,
            lane: 0,
            rows_in_chunk: 0,
            rhs,
            xj: 0,
            yj: 0,
            stage: SellStage::Meta,
            remaining,
        }
    }

    /// Advances to the next chunk (or `Done` past the last).
    fn advance_chunk(&mut self) {
        self.k += 1;
        self.stage = if self.k < self.chunks.end {
            SellStage::Meta
        } else {
            SellStage::Done
        };
    }
}

impl TraceCursor for SellCursor<'_> {
    fn next_access(&mut self) -> Option<Access> {
        let access = match self.stage {
            SellStage::Done => return None,
            SellStage::Meta => {
                if self.chunks.is_empty() {
                    self.stage = SellStage::Done;
                    return None;
                }
                let k = self.k;
                let c = self.matrix.chunk_size();
                let width = self.matrix.chunk_width()[k] as usize;
                self.idx = self.matrix.chunk_ptr()[k];
                self.idx_end = self.idx + width * c;
                self.lane = 0;
                let row_base = k * c;
                self.rows_in_chunk =
                    c.min(self.matrix.num_rows() - row_base.min(self.matrix.num_rows()));
                self.stage = if self.idx < self.idx_end {
                    SellStage::A
                } else if self.rows_in_chunk > 0 {
                    SellStage::Y
                } else {
                    // Width-0 chunk past the last row cannot occur, but a
                    // zero-row matrix has no chunks at all; be defensive.
                    self.advance_chunk();
                    self.remaining -= 1;
                    return Some(Access::load(
                        self.layout.line_of(Array::RowPtr, k),
                        Array::RowPtr,
                    ));
                };
                Access::load(self.layout.line_of(Array::RowPtr, k), Array::RowPtr)
            }
            SellStage::A => {
                self.stage = SellStage::Col;
                Access::load(self.layout.line_of(Array::A, self.idx), Array::A)
            }
            SellStage::Col => {
                self.stage = SellStage::X;
                Access::load(self.layout.line_of(Array::ColIdx, self.idx), Array::ColIdx)
            }
            SellStage::X => {
                let c = self.matrix.colidx()[self.idx] as usize;
                let elem = self.rhs.x_elem(c, self.xj);
                self.xj += 1;
                if self.xj == self.rhs.k {
                    self.xj = 0;
                    self.idx += 1;
                    self.stage = if self.idx < self.idx_end {
                        SellStage::A
                    } else {
                        SellStage::Y
                    };
                }
                Access::load(self.layout.line_of(Array::X, elem), Array::X)
            }
            SellStage::Y => {
                let row_base = self.k * self.matrix.chunk_size();
                let original = self.matrix.row_perm()[row_base + self.lane];
                let elem = self.rhs.y_elem(original, self.yj);
                self.yj += 1;
                if self.yj == self.rhs.k {
                    self.yj = 0;
                    self.lane += 1;
                    if self.lane >= self.rows_in_chunk {
                        self.advance_chunk();
                    }
                }
                Access::store(self.layout.line_of(Array::Y, elem), Array::Y)
            }
        };
        self.remaining -= 1;
        Some(access)
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn next_block(&mut self, block: &mut AccessBlock) -> usize {
        let mut n = 0;
        let geom_a = LaneGeom::new(self.layout, Array::A);
        let geom_c = LaneGeom::new(self.layout, Array::ColIdx);
        let geom_x = LaneGeom::new(self.layout, Array::X);
        loop {
            // Padded-entry fast path (single-RHS only): emit whole
            // a/colidx/x triples while they fit; chunk metadata and y
            // stores go through the per-reference step below.
            if self.stage == SellStage::A && self.rhs.k == 1 {
                let triples = (block.space() / 3).min(self.idx_end - self.idx);
                if triples > 0 {
                    let mut a_line = SeqLine::at(geom_a, self.idx);
                    let mut c_line = SeqLine::at(geom_c, self.idx);
                    for &col in &self.matrix.colidx()[self.idx..self.idx + triples] {
                        block.push(PackedAccess::pack(Access::load(a_line.next(), Array::A)));
                        block.push(PackedAccess::pack(Access::load(
                            c_line.next(),
                            Array::ColIdx,
                        )));
                        block.push(PackedAccess::pack(Access::load(
                            geom_x.line(col as usize),
                            Array::X,
                        )));
                    }
                    self.idx += triples;
                    if self.idx >= self.idx_end {
                        self.stage = SellStage::Y;
                    }
                    self.remaining -= 3 * triples;
                    n += 3 * triples;
                }
            }
            if block.is_full() {
                return n;
            }
            match self.next_access() {
                Some(a) => {
                    block.push(PackedAccess::pack(a));
                    n += 1;
                }
                None => return n,
            }
        }
    }
}

/// References issued per vector index by each CG sweep pass (see
/// [`CgCursor`]).
pub const CG_PASS_REFS: [usize; 4] = [2, 4, 1, 3];

/// Total vector-sweep references per vector index of a CG iteration: the
/// sum of [`CG_PASS_REFS`].
pub const CG_SWEEP_REFS_PER_ROW: usize = 10;

/// One conjugate-gradient iteration as a trace: the inner SpMV cursor's
/// references followed by the solver's four vector sweeps in pass-major
/// order, mirroring `examples/cg_solver.rs` loop for loop.
///
/// The `x` array role holds the three reused solver vectors as
/// consecutive `n`-element segments — `p` at offset `0` (so the SpMV
/// gathers hit it unchanged), `r` at `n`, the solution `x` at `2n` — and
/// the `y` role holds `ap`. Per vector index `i` the sweeps issue, in the
/// solver's loop order:
///
/// 1. `pap = Σ p·ap`: load `p[i]`, load `ap[i]` (2 refs);
/// 2. `x[i] += α·p[i]; r[i] -= α·ap[i]`: load `p[i]`, store `x[i]`,
///    load `ap[i]`, store `r[i]` (4 refs);
/// 3. `rs = Σ r²`: load `r[i]` (1 ref);
/// 4. `p[i] = r[i] + β·p[i]`: load `r[i]`, load `p[i]`, store `p[i]`
///    (3 refs).
///
/// Updates count one store per element written, matching the SpMV `y`
/// convention. The trace length is exactly the inner cursor's plus
/// [`CG_SWEEP_REFS_PER_ROW`]`·rows` — the traffic-conservation invariant
/// the validation harness pins.
#[derive(Clone, Debug)]
pub struct CgCursor<'a, C: TraceCursor> {
    inner: C,
    layout: &'a DataLayout,
    /// Vector-index span this thread sweeps (its share of `0..n`).
    rows: Range<usize>,
    /// Vector length `n` — the segment stride of the `x` role.
    n: usize,
    /// Vector index offset within `rows` of the current sweep pass.
    i: usize,
    /// Current sweep pass (`0..4`; `4` = exhausted).
    pass: u8,
    /// Reference index within the current pass at the current `i`.
    step: u8,
    /// Sweep references not yet produced.
    sweep_left: usize,
}

impl<'a, C: TraceCursor> CgCursor<'a, C> {
    /// Wraps `inner` (the SpMV share of the iteration) with the vector
    /// sweeps over indices `rows` of `n`-element vectors.
    ///
    /// # Panics
    ///
    /// Panics if the index range exceeds `n`.
    pub fn new(inner: C, layout: &'a DataLayout, rows: Range<usize>, n: usize) -> Self {
        assert!(rows.end <= n, "vector index range out of bounds");
        let sweep_left = CG_SWEEP_REFS_PER_ROW * rows.len();
        CgCursor {
            inner,
            layout,
            pass: if rows.is_empty() { 4 } else { 0 },
            rows,
            n,
            i: 0,
            step: 0,
            sweep_left,
        }
    }
}

impl<C: TraceCursor> TraceCursor for CgCursor<'_, C> {
    fn next_access(&mut self) -> Option<Access> {
        if let Some(a) = self.inner.next_access() {
            return Some(a);
        }
        if self.pass >= 4 {
            return None;
        }
        let n = self.n;
        let i = self.rows.start + self.i;
        let (array, elem, store) = match (self.pass, self.step) {
            // pap = Σ p·ap
            (0, 0) => (Array::X, i, false),
            (0, 1) => (Array::Y, i, false),
            // x += α·p; r -= α·ap
            (1, 0) => (Array::X, i, false),
            (1, 1) => (Array::X, 2 * n + i, true),
            (1, 2) => (Array::Y, i, false),
            (1, 3) => (Array::X, n + i, true),
            // rs = Σ r²
            (2, 0) => (Array::X, n + i, false),
            // p = r + β·p
            (3, 0) => (Array::X, n + i, false),
            (3, 1) => (Array::X, i, false),
            (3, 2) => (Array::X, i, true),
            _ => unreachable!("pass/step out of range"),
        };
        self.step += 1;
        if usize::from(self.step) == CG_PASS_REFS[self.pass as usize] {
            self.step = 0;
            self.i += 1;
            if self.i == self.rows.len() {
                self.i = 0;
                self.pass += 1;
            }
        }
        self.sweep_left -= 1;
        let line = self.layout.line_of(array, elem);
        Some(if store {
            Access::store(line, array)
        } else {
            Access::load(line, array)
        })
    }

    fn remaining(&self) -> usize {
        self.inner.remaining() + self.sweep_left
    }

    fn next_block(&mut self, block: &mut AccessBlock) -> usize {
        let mut n = 0;
        // The SpMV prefix keeps its batched fill; the sweeps are emitted
        // per reference (their line arithmetic is already sequential).
        while self.inner.remaining() > 0 && !block.is_full() {
            n += self.inner.next_block(block);
        }
        while !block.is_full() {
            match self.next_access() {
                Some(a) => {
                    block.push(PackedAccess::pack(a));
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// Per-thread method (A) cursors for a row partition — the streaming
/// counterpart of
/// [`trace_spmv_partitioned`](crate::spmv_trace::trace_spmv_partitioned).
pub fn spmv_cursors<'a>(
    matrix: &'a CsrMatrix,
    layout: &'a DataLayout,
    partition: &sparsemat::RowPartition,
) -> Vec<SpmvCursor<'a>> {
    partition
        .iter()
        .map(|rows| SpmvCursor::new(matrix, layout, rows))
        .collect()
}

/// Per-thread method (B) cursors for a row partition — the streaming
/// counterpart of
/// [`trace_x_partitioned`](crate::xtrace::trace_x_partitioned).
pub fn x_cursors<'a>(
    matrix: &'a CsrMatrix,
    layout: &'a DataLayout,
    partition: &sparsemat::RowPartition,
) -> Vec<XCursor<'a>> {
    partition
        .iter()
        .map(|rows| XCursor::new(matrix, layout, rows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::spmv_trace::{trace_spmv_partitioned, trace_spmv_rows};
    use crate::xtrace::trace_x_rows;
    use sparsemat::{CooMatrix, RowPartition};

    fn fig1() -> (CsrMatrix, DataLayout) {
        let m = CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 7],
            vec![1, 2, 0, 2, 3, 1, 3],
            vec![1.0; 7],
        );
        let l = DataLayout::new(&m, 16);
        (m, l)
    }

    fn random_csr(n: usize, per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(r, (state >> 33) as usize % n, 1.0);
            }
        }
        coo.to_csr()
    }

    fn collect<C: TraceCursor>(mut c: C) -> Vec<Access> {
        let mut out = Vec::new();
        while let Some(a) = c.next_access() {
            out.push(a);
        }
        out
    }

    #[test]
    fn spmv_cursor_matches_sink_generator() {
        let (m, l) = fig1();
        for rows in [0..4, 0..1, 1..3, 2..2, 0..0] {
            let mut sink = VecSink::new();
            trace_spmv_rows(&m, &l, rows.clone(), &mut sink);
            let got = collect(SpmvCursor::new(&m, &l, rows.clone()));
            assert_eq!(got, sink.trace, "rows {rows:?}");
        }
    }

    #[test]
    fn spmv_cursor_matches_on_random_matrix_with_empty_rows() {
        let mut coo = CooMatrix::new(10, 10);
        // Rows 0, 4, 9 empty; others sparse.
        for (r, c) in [(1, 3), (2, 0), (2, 9), (3, 3), (5, 5), (6, 1), (8, 8)] {
            coo.push(r, c, 1.0);
        }
        let m = coo.to_csr();
        let l = DataLayout::new(&m, 16);
        let mut sink = VecSink::new();
        trace_spmv_rows(&m, &l, 0..10, &mut sink);
        assert_eq!(collect(SpmvCursor::new(&m, &l, 0..10)), sink.trace);
    }

    #[test]
    fn x_cursor_matches_sink_generator() {
        let (m, l) = fig1();
        for rows in [0..4, 1..3, 3..3] {
            let mut sink = VecSink::new();
            trace_x_rows(&m, &l, rows.clone(), &mut sink);
            assert_eq!(collect(XCursor::new(&m, &l, rows.clone())), sink.trace);
        }
    }

    #[test]
    fn remaining_counts_down_exactly() {
        let m = random_csr(64, 5, 9);
        let l = DataLayout::new(&m, 64);
        let mut c = SpmvCursor::new(&m, &l, 0..64);
        let total = c.remaining();
        assert_eq!(total, crate::spmv_trace::trace_len(64, m.nnz()));
        let mut seen = 0;
        while c.next_access().is_some() {
            seen += 1;
            assert_eq!(c.remaining(), total - seen);
        }
        assert_eq!(seen, total);
        assert_eq!(c.next_access(), None);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn partitioned_cursors_match_partitioned_traces() {
        let m = random_csr(100, 4, 3);
        let l = DataLayout::new(&m, 64);
        let p = RowPartition::static_rows(100, 7);
        let traces = trace_spmv_partitioned(&m, &l, &p);
        let cursors = spmv_cursors(&m, &l, &p);
        for (cursor, trace) in cursors.into_iter().zip(traces) {
            assert_eq!(collect(cursor), trace);
        }
    }

    #[test]
    fn slice_cursor_round_trips() {
        let (m, l) = fig1();
        let mut sink = VecSink::new();
        trace_spmv_rows(&m, &l, 0..4, &mut sink);
        let c = SliceCursor::new(&sink.trace);
        assert_eq!(c.remaining(), sink.trace.len());
        assert_eq!(collect(c), sink.trace);
    }

    #[test]
    fn drain_into_feeds_whole_trace() {
        let (m, l) = fig1();
        let mut direct = VecSink::new();
        trace_spmv_rows(&m, &l, 0..4, &mut direct);
        let mut drained = VecSink::new();
        SpmvCursor::new(&m, &l, 0..4).drain_into(&mut drained);
        assert_eq!(drained.trace, direct.trace);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn out_of_bounds_rejected() {
        let (m, l) = fig1();
        SpmvCursor::new(&m, &l, 0..5);
    }

    #[test]
    fn x_cursor_over_slice_matches_row_constructor() {
        let (m, l) = fig1();
        let by_rows = collect(XCursor::new(&m, &l, 1..3));
        let range = m.rowptr()[1] as usize..m.rowptr()[3] as usize;
        let by_slice = collect(XCursor::over(m.colidx(), &l, range));
        assert_eq!(by_slice, by_rows);
    }

    fn sell_fixture(seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(13, 13);
        let mut state = seed | 1;
        for r in 0..13usize {
            // Rows 4 and 9 left empty; varying lengths elsewhere.
            if r == 4 || r == 9 {
                continue;
            }
            for _ in 0..(r % 5) + 1 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                coo.push(r, (state >> 33) as usize % 13, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn sell_cursor_matches_sink_generator() {
        use crate::sell_trace::{sell_layout, trace_sell_chunks};
        let a = sell_fixture(5);
        for (c, sigma) in [(1, 1), (4, 8), (8, 16), (5, 5)] {
            let sell = sparsemat::SellMatrix::from_csr(&a, c, sigma);
            let l = sell_layout(&sell, 16);
            let n = sell.num_chunks();
            for chunks in [0..n, 0..1, 1..n, n..n, 0..0] {
                let mut sink = VecSink::new();
                trace_sell_chunks(&sell, &l, chunks.clone(), &mut sink);
                let cursor = SellCursor::new(&sell, &l, chunks.clone());
                assert_eq!(cursor.remaining(), sink.trace.len(), "C={c} {chunks:?}");
                assert_eq!(collect(cursor), sink.trace, "C={c} {chunks:?}");
            }
        }
    }

    #[test]
    fn sell_cursor_remaining_counts_down_exactly() {
        use crate::sell_trace::sell_layout;
        let a = sell_fixture(11);
        let sell = sparsemat::SellMatrix::from_csr(&a, 4, 8);
        let l = sell_layout(&sell, 64);
        let mut cursor = SellCursor::new(&sell, &l, 0..sell.num_chunks());
        let total = cursor.remaining();
        let mut seen = 0;
        while cursor.next_access().is_some() {
            seen += 1;
            assert_eq!(cursor.remaining(), total - seen);
        }
        assert_eq!(seen, total);
        assert_eq!(cursor.next_access(), None);
    }

    #[test]
    fn sell_x_cursor_matches_x_loads_of_full_trace() {
        use crate::sell_trace::{sell_layout, trace_sell_chunks};
        let a = sell_fixture(23);
        let sell = sparsemat::SellMatrix::from_csr(&a, 4, 8);
        let l = sell_layout(&sell, 16);
        let mut sink = VecSink::new();
        trace_sell_chunks(&sell, &l, 0..sell.num_chunks(), &mut sink);
        let expect: Vec<Access> = sink
            .trace
            .iter()
            .copied()
            .filter(|acc| acc.array == Array::X)
            .collect();
        let got = collect(XCursor::over(sell.colidx(), &l, 0..sell.stored_entries()));
        assert_eq!(got, expect);
    }

    fn collect_blocks<C: TraceCursor>(mut c: C) -> Vec<Access> {
        let mut out = Vec::new();
        let mut block = AccessBlock::new();
        loop {
            block.clear();
            if c.next_block(&mut block) == 0 {
                break;
            }
            out.extend(block.refs().iter().map(|p| p.unpack()));
        }
        out
    }

    #[test]
    fn spmv_next_block_matches_per_ref_path() {
        for (n, per_row, seed) in [(64usize, 5usize, 9u64), (100, 4, 3), (7, 120, 1)] {
            let m = random_csr(n, per_row, seed);
            for line_bytes in [16, 64, 24] {
                let l = DataLayout::new(&m, line_bytes);
                let expect = collect(SpmvCursor::new(&m, &l, 0..n));
                let got = collect_blocks(SpmvCursor::new(&m, &l, 0..n));
                assert_eq!(got, expect, "n={n} line_bytes={line_bytes}");
            }
        }
    }

    #[test]
    fn spmv_next_block_resumes_mid_row() {
        // Interleave per-ref and block pulls so blocks start mid-row.
        let m = random_csr(40, 6, 5);
        let l = DataLayout::new(&m, 64);
        let expect = collect(SpmvCursor::new(&m, &l, 0..40));
        let mut c = SpmvCursor::new(&m, &l, 0..40);
        let mut got = Vec::new();
        let mut block = AccessBlock::new();
        let mut flip = 0usize;
        loop {
            flip += 1;
            if flip % 2 == 1 {
                match c.next_access() {
                    Some(a) => got.push(a),
                    None => break,
                }
            } else {
                block.clear();
                if c.next_block(&mut block) == 0 {
                    break;
                }
                got.extend(block.refs().iter().map(|p| p.unpack()));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn x_and_slice_next_block_match_per_ref_path() {
        let m = random_csr(64, 7, 21);
        for line_bytes in [16, 24, 256] {
            let l = DataLayout::new(&m, line_bytes);
            let expect = collect(XCursor::new(&m, &l, 0..64));
            assert_eq!(collect_blocks(XCursor::new(&m, &l, 0..64)), expect);
            let mut sink = VecSink::new();
            trace_spmv_rows(&m, &l, 0..64, &mut sink);
            assert_eq!(collect_blocks(SliceCursor::new(&sink.trace)), sink.trace);
        }
    }

    #[test]
    fn sell_next_block_matches_per_ref_path() {
        use crate::sell_trace::sell_layout;
        let a = sell_fixture(7);
        for (c, sigma) in [(1, 1), (4, 8), (8, 16), (5, 5)] {
            let sell = sparsemat::SellMatrix::from_csr(&a, c, sigma);
            for line_bytes in [16, 64] {
                let l = sell_layout(&sell, line_bytes);
                let expect = collect(SellCursor::new(&sell, &l, 0..sell.num_chunks()));
                let got = collect_blocks(SellCursor::new(&sell, &l, 0..sell.num_chunks()));
                assert_eq!(got, expect, "C={c} line_bytes={line_bytes}");
            }
        }
    }

    #[test]
    fn next_block_on_empty_cursor_returns_zero() {
        let (m, l) = fig1();
        let mut c = SpmvCursor::new(&m, &l, 0..0);
        let mut block = AccessBlock::new();
        assert_eq!(c.next_block(&mut block), 0);
        assert!(block.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk range out of bounds")]
    fn sell_out_of_bounds_rejected() {
        use crate::sell_trace::sell_layout;
        let a = sell_fixture(3);
        let sell = sparsemat::SellMatrix::from_csr(&a, 4, 8);
        let l = sell_layout(&sell, 16);
        SellCursor::new(&sell, &l, 0..sell.num_chunks() + 1);
    }

    /// Layout of a k-RHS view of `m` (X and Y roles widen k-fold).
    fn rhs_layout(m: &CsrMatrix, k: usize, line_bytes: usize) -> DataLayout {
        DataLayout::from_counts(
            [
                m.num_cols() * k,
                m.num_rows() * k,
                m.nnz(),
                m.nnz(),
                m.num_rows() + 1,
            ],
            line_bytes,
        )
    }

    #[test]
    fn rhs_single_geometry_is_byte_identical_to_plain_cursors() {
        let m = random_csr(48, 6, 17);
        let l = DataLayout::new(&m, 64);
        let geom = RhsGeom::new(1, true, m.num_cols(), m.num_rows());
        assert_eq!(
            collect(SpmvCursor::with_rhs(&m, &l, 0..48, geom)),
            collect(SpmvCursor::new(&m, &l, 0..48))
        );
        assert_eq!(
            collect(XCursor::over_rhs(m.colidx(), &l, 0..m.nnz(), geom)),
            collect(XCursor::new(&m, &l, 0..48))
        );
        let geom_sep = RhsGeom::new(1, false, m.num_cols(), m.num_rows());
        assert_eq!(
            collect(SpmvCursor::with_rhs(&m, &l, 0..48, geom_sep)),
            collect(SpmvCursor::new(&m, &l, 0..48))
        );
    }

    #[test]
    fn rhs_cursor_widens_every_gather_and_store() {
        let m = random_csr(32, 4, 29);
        for k in [2usize, 5] {
            for interleaved in [true, false] {
                let l = rhs_layout(&m, k, 64);
                let geom = RhsGeom::new(k, interleaved, m.num_cols(), m.num_rows());
                let trace = collect(SpmvCursor::with_rhs(&m, &l, 0..32, geom));
                assert_eq!(trace.len(), 1 + 32 * (1 + k) + m.nnz() * (2 + k));
                let x_loads = trace.iter().filter(|a| a.array == Array::X).count();
                let y_stores = trace.iter().filter(|a| a.array == Array::Y).count();
                assert_eq!(x_loads, k * m.nnz());
                assert_eq!(y_stores, k * 32);
                let xs = collect(XCursor::over_rhs(m.colidx(), &l, 0..m.nnz(), geom));
                let expect: Vec<Access> = trace
                    .iter()
                    .copied()
                    .filter(|a| a.array == Array::X)
                    .collect();
                assert_eq!(xs, expect, "k={k} interleaved={interleaved}");
            }
        }
    }

    #[test]
    fn rhs_next_block_matches_per_ref_path() {
        let m = random_csr(40, 5, 41);
        let sell_src = sell_fixture(41);
        for k in [1usize, 3, 8] {
            for interleaved in [true, false] {
                let l = rhs_layout(&m, k, 64);
                let geom = RhsGeom::new(k, interleaved, m.num_cols(), m.num_rows());
                assert_eq!(
                    collect_blocks(SpmvCursor::with_rhs(&m, &l, 0..40, geom)),
                    collect(SpmvCursor::with_rhs(&m, &l, 0..40, geom)),
                    "csr k={k} interleaved={interleaved}"
                );
                assert_eq!(
                    collect_blocks(XCursor::over_rhs(m.colidx(), &l, 0..m.nnz(), geom)),
                    collect(XCursor::over_rhs(m.colidx(), &l, 0..m.nnz(), geom)),
                    "x k={k} interleaved={interleaved}"
                );
                let sell = sparsemat::SellMatrix::from_csr(&sell_src, 4, 8);
                let sl = DataLayout::from_counts(
                    [
                        sell.num_cols() * k,
                        sell.num_rows() * k,
                        sell.stored_entries(),
                        sell.stored_entries(),
                        sell.num_chunks() + 1,
                    ],
                    64,
                );
                let sgeom = RhsGeom::new(k, interleaved, sell.num_cols(), sell.num_rows());
                let n = sell.num_chunks();
                let per_ref = collect(SellCursor::with_rhs(&sell, &sl, 0..n, sgeom));
                assert_eq!(
                    collect_blocks(SellCursor::with_rhs(&sell, &sl, 0..n, sgeom)),
                    per_ref,
                    "sell k={k} interleaved={interleaved}"
                );
                assert_eq!(
                    per_ref.len(),
                    (2 + k) * sell.stored_entries() + n + k * sell.num_rows()
                );
            }
        }
    }

    #[test]
    fn rhs_remaining_counts_down_exactly() {
        let m = random_csr(24, 3, 53);
        let l = rhs_layout(&m, 4, 64);
        let geom = RhsGeom::new(4, true, m.num_cols(), m.num_rows());
        let mut c = SpmvCursor::with_rhs(&m, &l, 0..24, geom);
        let total = c.remaining();
        let mut seen = 0;
        while c.next_access().is_some() {
            seen += 1;
            assert_eq!(c.remaining(), total - seen);
        }
        assert_eq!(seen, total);
    }

    /// CG layout over `m`: `x` role holds p|r|x (3n), `y` holds ap.
    fn cg_layout(m: &CsrMatrix, line_bytes: usize) -> DataLayout {
        let n = m.num_rows();
        DataLayout::from_counts([3 * n, n, m.nnz(), m.nnz(), n + 1], line_bytes)
    }

    #[test]
    fn cg_cursor_conserves_traffic_vs_constituent_sweeps() {
        let m = random_csr(30, 4, 61);
        let l = cg_layout(&m, 64);
        let inner = SpmvCursor::new(&m, &l, 0..30);
        let spmv_len = inner.remaining();
        let c = CgCursor::new(inner, &l, 0..30, 30);
        assert_eq!(c.remaining(), spmv_len + CG_SWEEP_REFS_PER_ROW * 30);
        let trace = collect(c);
        assert_eq!(trace.len(), spmv_len + CG_SWEEP_REFS_PER_ROW * 30);
        // The SpMV prefix is the plain trace, untouched.
        assert_eq!(
            &trace[..spmv_len],
            &collect(SpmvCursor::new(&m, &l, 0..30))[..]
        );
        // Sweep refs per pass follow CG_PASS_REFS.
        assert_eq!(CG_PASS_REFS.iter().sum::<usize>(), CG_SWEEP_REFS_PER_ROW);
        let sweep = &trace[spmv_len..];
        let stores = sweep.iter().filter(|a| a.write).count();
        assert_eq!(stores, 3 * 30, "x, r and p stores per index");
    }

    #[test]
    fn cg_next_block_matches_per_ref_path() {
        let m = random_csr(30, 4, 67);
        let l = cg_layout(&m, 16);
        for rows in [0..30usize, 5..20, 12..12] {
            let per_ref = collect(CgCursor::new(
                SpmvCursor::new(&m, &l, rows.clone()),
                &l,
                rows.clone(),
                30,
            ));
            let blocks = collect_blocks(CgCursor::new(
                SpmvCursor::new(&m, &l, rows.clone()),
                &l,
                rows.clone(),
                30,
            ));
            assert_eq!(blocks, per_ref, "rows {rows:?}");
        }
    }

    #[test]
    fn cg_remaining_counts_down_exactly() {
        let m = random_csr(20, 3, 71);
        let l = cg_layout(&m, 64);
        let mut c = CgCursor::new(SpmvCursor::new(&m, &l, 3..17), &l, 3..17, 20);
        let total = c.remaining();
        let mut seen = 0;
        while c.next_access().is_some() {
            seen += 1;
            assert_eq!(c.remaining(), total - seen);
        }
        assert_eq!(seen, total);
        assert_eq!(c.next_access(), None);
    }
}
