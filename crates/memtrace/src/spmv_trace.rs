//! Method (A) trace generation: the full SpMV memory access pattern.
//!
//! The trace reproduces the reference pattern of the paper's Listing 1
//! kernel at cache-line granularity (Fig. 1 (b)):
//!
//! * at loop entry, `rowptr[r0]` is read once;
//! * for each row `r`: the loop bound `rowptr[r + 1]` is read, then for
//!   each nonzero `i` in the row the values `a[i]`, `colidx[i]` and
//!   `x[colidx[i]]` are read, and finally `y[r]` is updated (one store —
//!   the accumulator lives in a register during the inner loop, as the
//!   compiled kernel keeps it).
//!
//! A trace for rows `r0..r1` is exactly what the thread owning that row
//! block produces, so per-thread traces for the parallel analysis reuse the
//! same generator.

use crate::layout::{Array, DataLayout};
use crate::sink::TraceSink;
use crate::Access;
use sparsemat::CsrMatrix;

/// Number of references method (A) generates for rows `r0..r1` with `k`
/// nonzeros: `1 + (r1 - r0)` rowptr + `3k` (a, colidx, x) + `(r1 - r0)` y.
pub fn trace_len(num_rows_in_block: usize, nnz_in_block: usize) -> usize {
    1 + 2 * num_rows_in_block + 3 * nnz_in_block
}

/// Generates the method (A) trace for rows `rows` of `matrix` into `sink`.
///
/// # Panics
///
/// Panics if the row range is out of bounds.
pub fn trace_spmv_rows<S: TraceSink>(
    matrix: &CsrMatrix,
    layout: &DataLayout,
    rows: std::ops::Range<usize>,
    sink: &mut S,
) {
    assert!(rows.end <= matrix.num_rows(), "row range out of bounds");
    if rows.is_empty() {
        return;
    }
    let colidx = matrix.colidx();
    // Loop entry: rowptr[r0].
    sink.access(Access::load(
        layout.line_of(Array::RowPtr, rows.start),
        Array::RowPtr,
    ));
    for r in rows {
        // Loop bound for row r.
        sink.access(Access::load(
            layout.line_of(Array::RowPtr, r + 1),
            Array::RowPtr,
        ));
        for i in matrix.row_range(r) {
            sink.access(Access::load(layout.line_of(Array::A, i), Array::A));
            sink.access(Access::load(
                layout.line_of(Array::ColIdx, i),
                Array::ColIdx,
            ));
            let c = colidx[i] as usize;
            sink.access(Access::load(layout.line_of(Array::X, c), Array::X));
        }
        sink.access(Access::store(layout.line_of(Array::Y, r), Array::Y));
    }
}

/// Generates the full sequential method (A) trace of one SpMV iteration.
pub fn trace_spmv<S: TraceSink>(matrix: &CsrMatrix, layout: &DataLayout, sink: &mut S) {
    trace_spmv_rows(matrix, layout, 0..matrix.num_rows(), sink);
}

/// Generates the method (A) trace for rows `rows` with software-prefetch
/// hints for the gathered `x` accesses running `distance` nonzeros ahead —
/// the paper's future-work combination of software prefetching with the
/// sector cache.
///
/// After each nonzero's references, a prefetch hint for the `x` line of
/// the nonzero `distance` positions ahead (within the row block) is
/// emitted, mirroring a `prfm`-instrumented kernel.
///
/// # Panics
///
/// Panics if the row range is out of bounds or `distance` is zero.
pub fn trace_spmv_rows_swpf<S: TraceSink>(
    matrix: &CsrMatrix,
    layout: &DataLayout,
    rows: std::ops::Range<usize>,
    distance: usize,
    sink: &mut S,
) {
    assert!(rows.end <= matrix.num_rows(), "row range out of bounds");
    assert!(distance > 0, "prefetch distance must be positive");
    if rows.is_empty() {
        return;
    }
    let colidx = matrix.colidx();
    let block_end = matrix.rowptr()[rows.end] as usize;
    sink.access(Access::load(
        layout.line_of(Array::RowPtr, rows.start),
        Array::RowPtr,
    ));
    for r in rows {
        sink.access(Access::load(
            layout.line_of(Array::RowPtr, r + 1),
            Array::RowPtr,
        ));
        for i in matrix.row_range(r) {
            sink.access(Access::load(layout.line_of(Array::A, i), Array::A));
            sink.access(Access::load(
                layout.line_of(Array::ColIdx, i),
                Array::ColIdx,
            ));
            let c = colidx[i] as usize;
            sink.access(Access::load(layout.line_of(Array::X, c), Array::X));
            let ahead = i + distance;
            if ahead < block_end {
                let pc = colidx[ahead] as usize;
                sink.access(Access::prefetch(layout.line_of(Array::X, pc), Array::X));
            }
        }
        sink.access(Access::store(layout.line_of(Array::Y, r), Array::Y));
    }
}

/// Per-thread software-prefetch traces for a row partition (see
/// [`trace_spmv_rows_swpf`]).
pub fn trace_spmv_swpf_partitioned(
    matrix: &CsrMatrix,
    layout: &DataLayout,
    partition: &sparsemat::RowPartition,
    distance: usize,
) -> Vec<Vec<Access>> {
    partition
        .iter()
        .map(|rows| {
            let nnz = (matrix.rowptr()[rows.end] - matrix.rowptr()[rows.start]) as usize;
            let mut sink = Vec::with_capacity(trace_len(rows.len(), nnz) + nnz);
            trace_spmv_rows_swpf(matrix, layout, rows, distance, &mut sink);
            sink
        })
        .collect()
}

/// Generates per-thread method (A) traces for the given row partition.
///
/// Returns one trace per partition block, in block order. This is the
/// multi-threaded trace recording of the paper's §3.2.1, done
/// deterministically (each block's trace is independent of scheduling).
pub fn trace_spmv_partitioned(
    matrix: &CsrMatrix,
    layout: &DataLayout,
    partition: &sparsemat::RowPartition,
) -> Vec<Vec<Access>> {
    partition
        .iter()
        .map(|rows| {
            let nnz = (matrix.rowptr()[rows.end] - matrix.rowptr()[rows.start]) as usize;
            let mut sink = Vec::with_capacity(trace_len(rows.len(), nnz));
            trace_spmv_rows(matrix, layout, rows, &mut sink);
            sink
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountSink, VecSink};
    use sparsemat::{CooMatrix, RowPartition};

    /// The paper's Fig. 1 matrix: 4x4, 7 nonzeros, rows
    /// {1,2}, {0}, {2,3}, {1,3}; 16-byte cache lines.
    fn fig1() -> (CsrMatrix, DataLayout) {
        let m = CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 7],
            vec![1, 2, 0, 2, 3, 1, 3],
            vec![1.0; 7],
        );
        let l = DataLayout::new(&m, 16);
        (m, l)
    }

    #[test]
    fn reference_counts_match_formula() {
        let (m, l) = fig1();
        let mut sink = CountSink::new();
        trace_spmv(&m, &l, &mut sink);
        assert_eq!(sink.total() as usize, trace_len(4, 7));
        assert_eq!(sink.counts[Array::RowPtr as usize], 5); // M + 1
        assert_eq!(sink.counts[Array::A as usize], 7);
        assert_eq!(sink.counts[Array::ColIdx as usize], 7);
        assert_eq!(sink.counts[Array::X as usize], 7);
        assert_eq!(sink.counts[Array::Y as usize], 4);
        assert_eq!(sink.writes, 4); // only y stores
    }

    #[test]
    fn first_row_trace_order() {
        let (m, l) = fig1();
        let mut sink = VecSink::new();
        trace_spmv_rows(&m, &l, 0..1, &mut sink);
        let lines: Vec<(u64, Array)> = sink.trace.iter().map(|a| (a.line, a.array)).collect();
        // rowptr[0] (line 10), rowptr[1] (line 10), a[0] (4), col[0] (8),
        // x[1] (0), a[1] (4), col[1] (8), x[2] (1), y[0] (2).
        assert_eq!(
            lines,
            vec![
                (10, Array::RowPtr),
                (10, Array::RowPtr),
                (4, Array::A),
                (8, Array::ColIdx),
                (0, Array::X),
                (4, Array::A),
                (8, Array::ColIdx),
                (1, Array::X),
                (2, Array::Y),
            ]
        );
    }

    #[test]
    fn x_lines_follow_sparsity_pattern() {
        let (m, l) = fig1();
        let mut sink = VecSink::new();
        trace_spmv(&m, &l, &mut sink);
        let x_lines: Vec<u64> = sink
            .trace
            .iter()
            .filter(|a| a.array == Array::X)
            .map(|a| a.line)
            .collect();
        // Columns in row order: 1,2,0,2,3,1,3 -> lines 0,1,0,1,1,0,1.
        assert_eq!(x_lines, vec![0, 1, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn partitioned_traces_concatenate_to_sequential() {
        let (m, l) = fig1();
        // With chunk boundaries at rows, the concatenation of block traces
        // differs from the sequential trace only by the extra loop-entry
        // rowptr access per block.
        let p = RowPartition::static_rows(4, 2);
        let blocks = trace_spmv_partitioned(&m, &l, &p);
        assert_eq!(blocks.len(), 2);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, trace_len(2, 3) + trace_len(2, 4));
        // Each block's x accesses must match its own rows' columns.
        let x0: Vec<u64> = blocks[0]
            .iter()
            .filter(|a| a.array == Array::X)
            .map(|a| a.line)
            .collect();
        assert_eq!(x0, vec![0, 1, 0]); // rows 0..2: cols 1,2,0
    }

    #[test]
    fn swpf_trace_adds_x_prefetch_hints() {
        let (m, l) = fig1();
        let mut plain = VecSink::new();
        trace_spmv(&m, &l, &mut plain);
        let mut swpf = VecSink::new();
        trace_spmv_rows_swpf(&m, &l, 0..4, 2, &mut swpf);
        // One hint per nonzero except the last `distance` of the block.
        let hints: Vec<_> = swpf.trace.iter().filter(|a| a.sw_prefetch).collect();
        assert_eq!(hints.len(), m.nnz() - 2);
        assert!(hints.iter().all(|a| a.array == Array::X && !a.write));
        // Stripping the hints recovers the plain trace.
        let stripped: Vec<Access> = swpf
            .trace
            .iter()
            .copied()
            .filter(|a| !a.sw_prefetch)
            .collect();
        assert_eq!(stripped, plain.trace);
        // The first hint targets the x line of the nonzero 2 ahead:
        // colidx[2] = 0 -> x line 0.
        assert_eq!(hints[0].line, 0);
    }

    #[test]
    fn swpf_partitioned_hints_stay_in_block() {
        let (m, l) = fig1();
        let p = RowPartition::static_rows(4, 2);
        let blocks = trace_spmv_swpf_partitioned(&m, &l, &p, 1);
        // Each block loses exactly its last hint (distance 1).
        for (b, rows) in blocks.iter().zip(p.iter()) {
            let nnz = (m.rowptr()[rows.end] - m.rowptr()[rows.start]) as usize;
            let hints = b.iter().filter(|a| a.sw_prefetch).count();
            assert_eq!(hints, nnz - 1);
        }
    }

    #[test]
    fn empty_row_range_produces_nothing() {
        let (m, l) = fig1();
        let mut sink = VecSink::new();
        trace_spmv_rows(&m, &l, 2..2, &mut sink);
        assert!(sink.trace.is_empty());
    }

    #[test]
    fn empty_rows_still_touch_rowptr_and_y() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 1, 1.0);
        let m = coo.to_csr();
        let l = DataLayout::new(&m, 16);
        let mut sink = CountSink::new();
        trace_spmv(&m, &l, &mut sink);
        assert_eq!(sink.counts[Array::RowPtr as usize], 4);
        assert_eq!(sink.counts[Array::Y as usize], 3);
        assert_eq!(sink.counts[Array::X as usize], 1);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn out_of_bounds_rows_rejected() {
        let (m, l) = fig1();
        let mut sink = VecSink::new();
        trace_spmv_rows(&m, &l, 0..5, &mut sink);
    }
}
