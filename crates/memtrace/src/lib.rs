//! Cache-line-granular memory-trace generation for CSR SpMV.
//!
//! The paper's method (§3.2.1) does not instrument a running SpMV kernel;
//! instead it *derives* the memory trace the kernel would produce from the
//! matrix sparsity pattern alone. This crate implements that derivation:
//!
//! * [`layout::DataLayout`] assigns cache-line numbers to the elements of
//!   the five SpMV data structures (`x`, `y`, `a`, `colidx`, `rowptr`),
//!   each aligned to a cache-line boundary (the paper's Fig. 1c).
//! * [`spmv_trace`] generates the full method (A) trace (Fig. 1b): for each
//!   row the loop-bound `rowptr` access, then per nonzero the `a`,
//!   `colidx` and `x` accesses, then the `y` access.
//! * [`xtrace`] generates the reduced method (B) trace containing only the
//!   `x`-vector accesses implied by `colidx`.
//! * [`mcs::McsLock`] is a queue-based MCS lock (Mellor-Crummey & Scott)
//!   used to collate per-thread trace chunks with FIFO fairness, exactly as
//!   the paper orders concurrent accesses for shared-cache analysis.
//! * [`interleave`] merges per-thread traces into the order seen by a
//!   shared cache: deterministic round-robin collation or genuinely
//!   concurrent MCS-ordered collation.
//!
//! Traces are streams of [`Access`] events pushed into a [`sink::TraceSink`],
//! so consumers (stack processors, the cache simulator) can process
//! references on the fly without materialising multi-gigabyte traces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cursor;
pub mod interleave;
pub mod layout;
pub mod mcs;
pub mod sell_trace;
pub mod sink;
pub mod spmv_trace;
pub mod workload;
pub mod xtrace;

pub use cursor::{RhsGeom, TraceCursor, CG_SWEEP_REFS_PER_ROW};
pub use layout::{Array, DataLayout, A64FX_LINE_BYTES};
pub use sink::{
    AccessBlock, BlockSink, BlockTee, CountSink, PackedVecSink, RefSink, TraceSink, VecSink,
    BLOCK_REFS,
};
pub use workload::{
    CgWorkload, FormatSpec, ReorderSpec, RhsLayout, ScenarioSpec, SpmmWorkload, SpmvWorkload,
    WorkShare, Workload, WorkloadCursor,
};

/// A single memory reference at cache-line granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Global cache-line number (see [`DataLayout`]).
    pub line: u64,
    /// Which SpMV data structure the reference belongs to.
    pub array: Array,
    /// `true` for stores (only `y` accesses in SpMV), `false` for loads.
    pub write: bool,
    /// `true` for software-prefetch hints (`prfm`-style): they warm the
    /// caches but are not demand accesses and never stall the core.
    pub sw_prefetch: bool,
}

impl Access {
    /// Convenience constructor for a load.
    #[inline]
    pub fn load(line: u64, array: Array) -> Self {
        Access {
            line,
            array,
            write: false,
            sw_prefetch: false,
        }
    }

    /// Convenience constructor for a store.
    #[inline]
    pub fn store(line: u64, array: Array) -> Self {
        Access {
            line,
            array,
            write: true,
            sw_prefetch: false,
        }
    }

    /// Convenience constructor for a software-prefetch hint.
    #[inline]
    pub fn prefetch(line: u64, array: Array) -> Self {
        Access {
            line,
            array,
            write: false,
            sw_prefetch: true,
        }
    }
}

/// An [`Access`] packed into 8 bytes, for the paths that still *buffer*
/// references (MCS collation, two-level replay) rather than streaming
/// them through a cursor.
///
/// Layout: array tag in the line's high bits — bits 63..61 the [`Array`]
/// discriminant, bit 60 the write flag, bit 59 the software-prefetch
/// flag, bits 58..0 the global cache-line number. Halves the footprint of
/// a buffered trace relative to the 16-byte `Access` (the compiler pads
/// the `u64` + 3 small fields to 16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PackedAccess(u64);

impl PackedAccess {
    /// Highest representable cache-line number (59 bits).
    pub const MAX_LINE: u64 = (1 << 59) - 1;

    /// Packs an access.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the line number needs more than 59
    /// bits — unreachable for any [`DataLayout`] of a matrix that fits in
    /// memory.
    #[inline]
    pub fn pack(access: Access) -> Self {
        debug_assert!(
            access.line <= Self::MAX_LINE,
            "line number overflows 59 bits"
        );
        PackedAccess(
            ((access.array as u64) << 61)
                | ((access.write as u64) << 60)
                | ((access.sw_prefetch as u64) << 59)
                | (access.line & Self::MAX_LINE),
        )
    }

    /// Unpacks back to the full event.
    #[inline]
    pub fn unpack(self) -> Access {
        let array = match (self.0 >> 61) as u8 {
            0 => Array::X,
            1 => Array::Y,
            2 => Array::A,
            3 => Array::ColIdx,
            _ => Array::RowPtr,
        };
        Access {
            line: self.0 & Self::MAX_LINE,
            array,
            write: self.0 & (1 << 60) != 0,
            sw_prefetch: self.0 & (1 << 59) != 0,
        }
    }

    /// The packed line number without unpacking the rest.
    #[inline]
    pub fn line(self) -> u64 {
        self.0 & Self::MAX_LINE
    }

    /// The packed array tag without unpacking the rest.
    #[inline]
    pub fn array(self) -> Array {
        match (self.0 >> 61) as u8 {
            0 => Array::X,
            1 => Array::Y,
            2 => Array::A,
            3 => Array::ColIdx,
            _ => Array::RowPtr,
        }
    }
}

impl From<Access> for PackedAccess {
    #[inline]
    fn from(a: Access) -> Self {
        PackedAccess::pack(a)
    }
}

impl From<PackedAccess> for Access {
    #[inline]
    fn from(p: PackedAccess) -> Self {
        p.unpack()
    }
}

/// A set of SpMV data structures, used to assign arrays to cache sectors.
///
/// The paper's partitioning policy (Listing 1) assigns `a` and `colidx` to
/// sector 1 and everything else to sector 0; that set is
/// [`ArraySet::MATRIX_STREAM`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct ArraySet(u8);

impl ArraySet {
    /// The empty set.
    pub const EMPTY: ArraySet = ArraySet(0);
    /// `{a, colidx}` — the non-temporal matrix data of Listing 1.
    pub const MATRIX_STREAM: ArraySet =
        ArraySet((1 << Array::A as u8) | (1 << Array::ColIdx as u8));
    /// `{a, colidx, rowptr, y}` — the §3.1 class-(3) variant that also
    /// isolates the streaming `rowptr` and `y` accesses, leaving the whole
    /// other partition to `x`.
    pub const ALL_BUT_X: ArraySet = ArraySet(
        (1 << Array::A as u8)
            | (1 << Array::ColIdx as u8)
            | (1 << Array::RowPtr as u8)
            | (1 << Array::Y as u8),
    );

    /// Builds a set from a list of arrays.
    pub fn of(arrays: &[Array]) -> Self {
        let mut bits = 0u8;
        for &a in arrays {
            bits |= 1 << a as u8;
        }
        ArraySet(bits)
    }

    /// Tests membership.
    #[inline]
    pub fn contains(self, array: Array) -> bool {
        self.0 & (1 << array as u8) != 0
    }

    /// Inserts an array, returning the extended set.
    #[must_use]
    pub fn with(self, array: Array) -> Self {
        ArraySet(self.0 | (1 << array as u8))
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_set_membership() {
        let s = ArraySet::MATRIX_STREAM;
        assert!(s.contains(Array::A));
        assert!(s.contains(Array::ColIdx));
        assert!(!s.contains(Array::X));
        assert!(!s.contains(Array::Y));
        assert!(!s.contains(Array::RowPtr));
    }

    #[test]
    fn array_set_builders() {
        assert!(ArraySet::EMPTY.is_empty());
        let s = ArraySet::of(&[Array::X, Array::Y]);
        assert!(s.contains(Array::X) && s.contains(Array::Y));
        assert!(!s.contains(Array::A));
        let s2 = ArraySet::EMPTY.with(Array::RowPtr);
        assert!(s2.contains(Array::RowPtr));
    }

    #[test]
    fn packed_access_round_trips() {
        for array in Array::ALL {
            for (write, pf) in [(false, false), (true, false), (false, true)] {
                let a = Access {
                    line: 0x0123_4567_89AB,
                    array,
                    write,
                    sw_prefetch: pf,
                };
                let p = PackedAccess::pack(a);
                assert_eq!(p.unpack(), a);
                assert_eq!(p.line(), a.line);
            }
        }
    }

    #[test]
    fn packed_access_extremes() {
        let a = Access::store(PackedAccess::MAX_LINE, Array::RowPtr);
        assert_eq!(PackedAccess::pack(a).unpack(), a);
        let b = Access::load(0, Array::X);
        assert_eq!(PackedAccess::from(b).unpack(), b);
    }

    #[test]
    fn packed_access_is_8_bytes() {
        assert_eq!(std::mem::size_of::<PackedAccess>(), 8);
        assert!(std::mem::size_of::<Access>() > 8);
    }

    #[test]
    fn all_but_x_excludes_only_x() {
        let s = ArraySet::ALL_BUT_X;
        assert!(!s.contains(Array::X));
        for a in [Array::Y, Array::A, Array::ColIdx, Array::RowPtr] {
            assert!(s.contains(a));
        }
    }
}
