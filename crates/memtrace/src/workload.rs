//! The format-generic SpMV workload abstraction.
//!
//! The locality model takes nothing but an access pattern: dimensions, a
//! per-thread partition of the work, and the derived cache-line trace.
//! [`SpmvWorkload`] captures exactly that contract so every layer of the
//! pipeline — classification, profile computation, prediction, the
//! engine's cache keys and the validation harness — is written once
//! against the trait instead of hardwiring `&CsrMatrix`:
//!
//! * dimensions and working-set statistics (classify inputs),
//! * [`DataLayout`] construction (the single entry point all layers and
//!   the cache simulator route through),
//! * per-thread trace / x-trace cursor generation over a partition of the
//!   format's *work items* (rows for CSR, chunks for SELL-C-σ),
//! * a **format-tagged fingerprint** for persistent cache keys.
//!
//! Implementations exist for [`CsrMatrix`] (rows are the work items; the
//! fingerprint keeps its historical untagged value so existing cache keys
//! and reports are unchanged) and [`SellMatrix`] (chunks are the work
//! items; the fingerprint carries a `"sell-c-sigma"` tag plus the format
//! parameters). The [`Workload`] enum packages both behind one runtime
//! type for the engine, CLI and validator.
//!
//! # Adding a format
//!
//! Implement [`SpmvWorkload`] for the new storage type: map its data
//! structures onto the five array *roles* (`x`, `y`, `a`, `colidx`,
//! metadata in the `rowptr` slot), provide a cursor that yields the
//! kernel's reference order, and tag the fingerprint with a distinct
//! format label. Everything above the trait — profiles, sector sweeps,
//! the engine cache, the validators — works unmodified.

use crate::cursor::{SellCursor, SpmvCursor, TraceCursor, XCursor};
use crate::layout::DataLayout;
use sparsemat::{
    reorder::rcm_reorder, CsrMatrix, SellMatrix, COLIDX_BYTES, ROWPTR_BYTES, VALUE_BYTES,
    VECTOR_BYTES,
};
use std::ops::Range;

/// One thread group's share of a workload (for the analytic terms and
/// working-set fit checks of method B).
///
/// Shares are expressed in the model's units, not the format's: `rows`
/// is output rows covered, `x_refs` is `x`-gather references issued, and
/// `meta_elems` is metadata elements (the `rowptr` role) streamed. For
/// CSR these are the row count, the nonzero count and `rows + 1`; for
/// SELL-C-σ they are the rows of the chunk block, the *padded* stored
/// entries and the chunk count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkShare {
    /// Output rows covered by this share.
    pub rows: usize,
    /// `x` gather references issued per iteration (nonzeros for CSR,
    /// padded stored entries for SELL).
    pub x_refs: usize,
    /// Metadata elements (the `rowptr` role) streamed per iteration.
    pub meta_elems: usize,
}

/// A sparse-matrix storage format viewed as an SpMV *workload*: the
/// access pattern the locality model analyses.
///
/// The trait is the format axis of the pipeline. Work is partitioned over
/// abstract *work items* ([`num_work_items`](Self::num_work_items)); a
/// contiguous item range maps to a [`WorkShare`] of model quantities and
/// to trace cursors yielding the kernel's reference order.
pub trait SpmvWorkload: Sync {
    /// Method (A) cursor: the full per-item reference stream.
    type Cursor<'w>: TraceCursor
    where
        Self: 'w;
    /// Method (B) cursor: the `x`-gather references only.
    type XCursor<'w>: TraceCursor
    where
        Self: 'w;

    /// The storage format (and its parameters).
    fn format(&self) -> FormatSpec;

    /// Number of matrix rows.
    fn num_rows(&self) -> usize;

    /// Number of matrix columns.
    fn num_cols(&self) -> usize;

    /// Number of (unpadded) nonzeros.
    fn nnz(&self) -> usize;

    /// Number of schedulable work items: rows for CSR, chunks for
    /// SELL-C-σ. Thread partitions split `0..num_work_items()` into
    /// contiguous blocks.
    fn num_work_items(&self) -> usize;

    /// `x` gather references issued per SpMV iteration (`nnz` for CSR;
    /// the padded [`SellMatrix::stored_entries`] for SELL).
    fn x_refs(&self) -> usize;

    /// Metadata elements (the `rowptr` role) streamed per iteration:
    /// `rows + 1` row pointers for CSR, one descriptor per chunk for
    /// SELL.
    fn meta_elems(&self) -> usize;

    /// Bytes of partition-0 companion traffic (everything that shares
    /// partition 0 with `x` under the Listing-1 routing: `y` and the
    /// metadata stream) per iteration. Feeds the method (B) reuse-distance
    /// scaling factors; CSR uses the paper's `16·M` (8 bytes of `y` plus
    /// nominally 8 of `rowptr` per row).
    fn companion0_bytes(&self) -> usize;

    /// A stable 64-bit fingerprint of the structure, *tagged by format*
    /// so two storage views of one matrix can never collide in a
    /// fingerprint-keyed cache. The plain-CSR fingerprint keeps its
    /// historical untagged value.
    fn fingerprint(&self) -> u64;

    /// The cache-line layout of the five array roles — the single
    /// constructor every layer (trace generation, profiles, the cache
    /// simulator) routes through.
    fn layout(&self, line_bytes: usize) -> DataLayout;

    /// The model quantities of a contiguous work-item range.
    fn share(&self, items: Range<usize>) -> WorkShare;

    /// A method (A) cursor over a contiguous work-item range.
    fn trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> Self::Cursor<'w>;

    /// A method (B) (`x`-only) cursor over a contiguous work-item range.
    fn x_trace_cursor<'w>(
        &'w self,
        layout: &'w DataLayout,
        items: Range<usize>,
    ) -> Self::XCursor<'w>;

    /// Bytes of streamed matrix data per iteration (values + indices +
    /// metadata).
    fn matrix_bytes(&self) -> usize {
        self.x_refs() * (VALUE_BYTES + COLIDX_BYTES) + self.meta_elems() * ROWPTR_BYTES
    }

    /// Bytes of the `x` vector.
    fn x_bytes(&self) -> usize {
        self.num_cols() * VECTOR_BYTES
    }

    /// Bytes of the reusable (non-matrix-stream) data: `x`, `y` and the
    /// metadata stream — the classify input for the partitioned classes.
    fn reusable_bytes(&self) -> usize {
        self.x_bytes() + self.num_rows() * VECTOR_BYTES + self.meta_elems() * ROWPTR_BYTES
    }

    /// Total bytes of the SpMV working set.
    fn working_set_bytes(&self) -> usize {
        self.matrix_bytes() + (self.num_rows() + self.num_cols()) * VECTOR_BYTES
    }
}

impl SpmvWorkload for CsrMatrix {
    type Cursor<'w> = SpmvCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        FormatSpec::Csr
    }

    fn num_rows(&self) -> usize {
        CsrMatrix::num_rows(self)
    }

    fn num_cols(&self) -> usize {
        CsrMatrix::num_cols(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn num_work_items(&self) -> usize {
        CsrMatrix::num_rows(self)
    }

    fn x_refs(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn meta_elems(&self) -> usize {
        CsrMatrix::num_rows(self) + 1
    }

    fn companion0_bytes(&self) -> usize {
        16 * CsrMatrix::num_rows(self)
    }

    fn fingerprint(&self) -> u64 {
        CsrMatrix::fingerprint(self)
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        DataLayout::new(self, line_bytes)
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        let x_refs = if items.is_empty() {
            0
        } else {
            (self.rowptr()[items.end] - self.rowptr()[items.start]) as usize
        };
        WorkShare {
            rows: items.len(),
            x_refs,
            // The per-domain accounting charges `rows + 1` row pointers
            // (loop entry plus one bound per row), as in the paper.
            meta_elems: items.len() + 1,
        }
    }

    fn trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> SpmvCursor<'w> {
        SpmvCursor::new(self, layout, items)
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        XCursor::new(self, layout, items)
    }
}

impl SpmvWorkload for SellMatrix {
    type Cursor<'w> = SellCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        FormatSpec::Sell {
            chunk_size: self.chunk_size(),
            sigma: self.sigma(),
        }
    }

    fn num_rows(&self) -> usize {
        SellMatrix::num_rows(self)
    }

    fn num_cols(&self) -> usize {
        SellMatrix::num_cols(self)
    }

    fn nnz(&self) -> usize {
        SellMatrix::nnz(self)
    }

    fn num_work_items(&self) -> usize {
        self.num_chunks()
    }

    fn x_refs(&self) -> usize {
        self.stored_entries()
    }

    fn meta_elems(&self) -> usize {
        self.num_chunks()
    }

    fn companion0_bytes(&self) -> usize {
        // 8 bytes of `y` per row plus one 8-byte chunk descriptor per
        // chunk — the SELL analogue of CSR's 16·M.
        VECTOR_BYTES * SellMatrix::num_rows(self) + ROWPTR_BYTES * self.num_chunks()
    }

    fn fingerprint(&self) -> u64 {
        SellMatrix::fingerprint(self)
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        DataLayout::from_counts(
            [
                SellMatrix::num_cols(self),
                SellMatrix::num_rows(self),
                self.stored_entries(),
                self.stored_entries(),
                self.num_chunks() + 1,
            ],
            line_bytes,
        )
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        if items.is_empty() {
            return WorkShare {
                rows: 0,
                x_refs: 0,
                meta_elems: 0,
            };
        }
        let c = self.chunk_size();
        let n = SellMatrix::num_rows(self);
        WorkShare {
            rows: (items.end * c).min(n) - (items.start * c).min(n),
            x_refs: self.chunk_ptr()[items.end] - self.chunk_ptr()[items.start],
            meta_elems: items.len(),
        }
    }

    fn trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> SellCursor<'w> {
        SellCursor::new(self, layout, items)
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        assert!(items.end <= self.num_chunks(), "chunk range out of bounds");
        let entries = if items.is_empty() {
            0..0
        } else {
            self.chunk_ptr()[items.start]..self.chunk_ptr()[items.end]
        };
        XCursor::over(self.colidx(), layout, entries)
    }
}

/// A storage-format selector (with format parameters), parsed from specs
/// and CLI flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FormatSpec {
    /// Compressed Sparse Row — the paper's format.
    Csr,
    /// SELL-C-σ with the given chunk size `C` and sorting window `σ`.
    Sell {
        /// Rows per chunk (`C`).
        chunk_size: usize,
        /// Sorting window in rows (`σ`).
        sigma: usize,
    },
}

impl FormatSpec {
    /// Parses `"csr"`, `"sell:C,σ"` or `"sell:C"` (σ defaulting to `C`).
    pub fn parse(s: &str) -> Result<FormatSpec, String> {
        let lower = s.trim().to_ascii_lowercase();
        let s = lower.as_str();
        if s == "csr" {
            return Ok(FormatSpec::Csr);
        }
        if s == "sell" {
            return Err(format!(
                "format '{s}' needs parameters: sell:C,sigma (e.g. sell:32,128)"
            ));
        }
        if let Some(params) = s.strip_prefix("sell:") {
            let mut it = params.splitn(2, ',');
            let c: usize = it
                .next()
                .unwrap()
                .trim()
                .parse()
                .map_err(|_| format!("bad SELL chunk size in '{s}'"))?;
            if c == 0 {
                return Err(format!("SELL chunk size must be positive in '{s}'"));
            }
            let sigma = match it.next() {
                Some(v) => v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad SELL sigma in '{s}'"))?,
                None => c,
            };
            return Ok(FormatSpec::Sell {
                chunk_size: c,
                sigma,
            });
        }
        Err(format!(
            "unknown format '{s}' (expected csr or sell:C,sigma)"
        ))
    }

    /// Canonical label: `"csr"` or `"sell:C,σ"`.
    pub fn label(&self) -> String {
        match self {
            FormatSpec::Csr => "csr".to_string(),
            FormatSpec::Sell { chunk_size, sigma } => format!("sell:{chunk_size},{sigma}"),
        }
    }

    /// Builds the workload view of a CSR matrix under this format.
    pub fn build(&self, matrix: CsrMatrix) -> Workload {
        match *self {
            FormatSpec::Csr => Workload::Csr(matrix),
            FormatSpec::Sell { chunk_size, sigma } => {
                Workload::Sell(SellMatrix::from_csr(&matrix, chunk_size, sigma))
            }
        }
    }
}

/// A row-reordering selector applied before format conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ReorderSpec {
    /// Keep the natural row order.
    #[default]
    None,
    /// Reverse Cuthill–McKee (bandwidth-reducing; square matrices only).
    Rcm,
}

impl ReorderSpec {
    /// Parses `"none"` or `"rcm"`.
    pub fn parse(s: &str) -> Result<ReorderSpec, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(ReorderSpec::None),
            "rcm" => Ok(ReorderSpec::Rcm),
            other => Err(format!("unknown reorder '{other}' (expected none or rcm)")),
        }
    }

    /// Canonical label.
    pub fn label(&self) -> &'static str {
        match self {
            ReorderSpec::None => "none",
            ReorderSpec::Rcm => "rcm",
        }
    }

    /// Applies the reordering to a CSR matrix.
    ///
    /// # Panics
    ///
    /// RCM panics on non-square matrices.
    pub fn apply(&self, matrix: CsrMatrix) -> CsrMatrix {
        match self {
            ReorderSpec::None => matrix,
            ReorderSpec::Rcm => rcm_reorder(&matrix),
        }
    }

    /// Folds the reorder discriminant into a structure fingerprint.
    /// `None` is the identity, so plain (unreordered) fingerprints keep
    /// their historical values; `Rcm` perturbs the key so a reordered and
    /// an unreordered view can never share a cache entry even when the
    /// permutation happens to be the identity.
    pub fn tag_fingerprint(&self, fingerprint: u64) -> u64 {
        match self {
            ReorderSpec::None => fingerprint,
            // Mix with FNV-style multiply-xor using a fixed tag.
            ReorderSpec::Rcm => (fingerprint ^ 0x7263_6D5F_7461_675F) // "rcm_tag_"
                .wrapping_mul(0x0000_0100_0000_01B3),
        }
    }
}

/// A runtime-dispatched workload: the engine, CLI and validator hold one
/// of these and every layer underneath is generic over [`SpmvWorkload`].
#[derive(Clone, Debug)]
pub enum Workload {
    /// A CSR matrix (rows are the work items).
    Csr(CsrMatrix),
    /// A SELL-C-σ matrix (chunks are the work items).
    Sell(SellMatrix),
}

impl Workload {
    /// Builds a workload from a CSR matrix: reorder first, then convert.
    pub fn build(matrix: CsrMatrix, format: FormatSpec, reorder: ReorderSpec) -> Workload {
        format.build(reorder.apply(matrix))
    }

    /// The CSR view, if this is a CSR workload.
    pub fn as_csr(&self) -> Option<&CsrMatrix> {
        match self {
            Workload::Csr(m) => Some(m),
            Workload::Sell(_) => None,
        }
    }

    /// The SELL view, if this is a SELL workload.
    pub fn as_sell(&self) -> Option<&SellMatrix> {
        match self {
            Workload::Csr(_) => None,
            Workload::Sell(m) => Some(m),
        }
    }
}

/// Method (A) cursor of a [`Workload`].
#[derive(Clone, Debug)]
pub enum WorkloadCursor<'w> {
    /// CSR row-block cursor.
    Csr(SpmvCursor<'w>),
    /// SELL chunk-block cursor.
    Sell(SellCursor<'w>),
}

impl TraceCursor for WorkloadCursor<'_> {
    fn next_access(&mut self) -> Option<crate::Access> {
        match self {
            WorkloadCursor::Csr(c) => c.next_access(),
            WorkloadCursor::Sell(c) => c.next_access(),
        }
    }

    fn remaining(&self) -> usize {
        match self {
            WorkloadCursor::Csr(c) => c.remaining(),
            WorkloadCursor::Sell(c) => c.remaining(),
        }
    }

    fn next_block(&mut self, block: &mut crate::AccessBlock) -> usize {
        match self {
            WorkloadCursor::Csr(c) => c.next_block(block),
            WorkloadCursor::Sell(c) => c.next_block(block),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident => $e:expr) => {
        match $self {
            Workload::Csr($m) => $e,
            Workload::Sell($m) => $e,
        }
    };
}

impl SpmvWorkload for Workload {
    type Cursor<'w> = WorkloadCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        delegate!(self, m => m.format())
    }

    fn num_rows(&self) -> usize {
        delegate!(self, m => SpmvWorkload::num_rows(m))
    }

    fn num_cols(&self) -> usize {
        delegate!(self, m => SpmvWorkload::num_cols(m))
    }

    fn nnz(&self) -> usize {
        delegate!(self, m => SpmvWorkload::nnz(m))
    }

    fn num_work_items(&self) -> usize {
        delegate!(self, m => m.num_work_items())
    }

    fn x_refs(&self) -> usize {
        delegate!(self, m => m.x_refs())
    }

    fn meta_elems(&self) -> usize {
        delegate!(self, m => m.meta_elems())
    }

    fn companion0_bytes(&self) -> usize {
        delegate!(self, m => m.companion0_bytes())
    }

    fn fingerprint(&self) -> u64 {
        delegate!(self, m => SpmvWorkload::fingerprint(m))
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        delegate!(self, m => m.layout(line_bytes))
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        delegate!(self, m => m.share(items))
    }

    fn trace_cursor<'w>(
        &'w self,
        layout: &'w DataLayout,
        items: Range<usize>,
    ) -> WorkloadCursor<'w> {
        match self {
            Workload::Csr(m) => WorkloadCursor::Csr(m.trace_cursor(layout, items)),
            Workload::Sell(m) => WorkloadCursor::Sell(m.trace_cursor(layout, items)),
        }
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        delegate!(self, m => m.x_trace_cursor(layout, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use sparsemat::CooMatrix;

    fn sample(seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(30, 30);
        for r in 0..30usize {
            for _ in 0..(r % 5) + 1 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                coo.push(r, (state >> 33) as usize % 30, 1.0);
            }
        }
        coo.to_csr()
    }

    fn collect<C: TraceCursor>(mut c: C) -> Vec<crate::Access> {
        let mut out = Vec::new();
        while let Some(a) = c.next_access() {
            out.push(a);
        }
        out
    }

    #[test]
    fn csr_workload_keeps_legacy_fingerprint_and_stats() {
        let m = sample(3);
        assert_eq!(SpmvWorkload::fingerprint(&m), m.fingerprint());
        assert_eq!(SpmvWorkload::matrix_bytes(&m), m.matrix_bytes());
        assert_eq!(SpmvWorkload::working_set_bytes(&m), m.working_set_bytes());
        assert_eq!(m.x_refs(), m.nnz());
        assert_eq!(m.num_work_items(), m.num_rows());
        assert_eq!(m.companion0_bytes(), 16 * m.num_rows());
    }

    /// The satellite regression test: fingerprint keys of different
    /// format (and reorder) views of the same matrix never collide.
    #[test]
    fn fingerprints_are_format_and_reorder_tagged() {
        let m = sample(9);
        let csr = Workload::Csr(m.clone());
        let sell11 = FormatSpec::Sell {
            chunk_size: 1,
            sigma: 1,
        }
        .build(m.clone());
        let sell48 = FormatSpec::Sell {
            chunk_size: 4,
            sigma: 8,
        }
        .build(m.clone());
        let fp_csr = SpmvWorkload::fingerprint(&csr);
        let fp11 = SpmvWorkload::fingerprint(&sell11);
        let fp48 = SpmvWorkload::fingerprint(&sell48);
        assert_ne!(fp_csr, fp11, "CSR and SELL(1,1) views must not collide");
        assert_ne!(fp_csr, fp48);
        assert_ne!(fp11, fp48, "different SELL parameters must not collide");
        // Reorder discriminant: identity for None, a distinct key for RCM
        // (even if the permutation were the identity).
        assert_eq!(ReorderSpec::None.tag_fingerprint(fp_csr), fp_csr);
        assert_ne!(ReorderSpec::Rcm.tag_fingerprint(fp_csr), fp_csr);
    }

    #[test]
    fn layouts_route_through_single_constructor() {
        let m = sample(5);
        let direct = DataLayout::new(&m, 64);
        assert_eq!(SpmvWorkload::layout(&m, 64), direct);
        let sell = SellMatrix::from_csr(&m, 4, 8);
        assert_eq!(
            SpmvWorkload::layout(&sell, 64),
            crate::sell_trace::sell_layout(&sell, 64)
        );
    }

    #[test]
    fn csr_shares_partition_the_work() {
        let m = sample(7);
        let a = m.share(0..10);
        let b = m.share(10..30);
        assert_eq!(a.rows + b.rows, 30);
        assert_eq!(a.x_refs + b.x_refs, m.nnz());
        assert_eq!(a.meta_elems, 11);
        assert_eq!(
            m.share(4..4),
            WorkShare {
                rows: 0,
                x_refs: 0,
                meta_elems: 1
            }
        );
    }

    #[test]
    fn sell_shares_partition_the_work() {
        let m = sample(11);
        let sell = SellMatrix::from_csr(&m, 4, 8);
        let n = sell.num_chunks();
        let a = sell.share(0..2);
        let b = sell.share(2..n);
        assert_eq!(a.rows + b.rows, 30);
        assert_eq!(a.x_refs + b.x_refs, sell.stored_entries());
        assert_eq!(a.meta_elems + b.meta_elems, n);
        assert_eq!(
            sell.share(1..1),
            WorkShare {
                rows: 0,
                x_refs: 0,
                meta_elems: 0
            }
        );
    }

    #[test]
    fn workload_enum_cursors_match_concrete_cursors() {
        let m = sample(13);
        let sell = SellMatrix::from_csr(&m, 4, 8);
        let csr_wl = Workload::Csr(m.clone());
        let layout = SpmvWorkload::layout(&csr_wl, 16);
        assert_eq!(
            collect(csr_wl.trace_cursor(&layout, 0..30)),
            collect(m.trace_cursor(&layout, 0..30))
        );
        assert_eq!(
            collect(csr_wl.x_trace_cursor(&layout, 3..17)),
            collect(m.x_trace_cursor(&layout, 3..17))
        );

        let sell_wl = Workload::Sell(sell.clone());
        let slayout = SpmvWorkload::layout(&sell_wl, 16);
        let n = sell.num_chunks();
        assert_eq!(
            collect(sell_wl.trace_cursor(&slayout, 0..n)),
            collect(sell.trace_cursor(&slayout, 0..n))
        );
        assert_eq!(
            collect(sell_wl.x_trace_cursor(&slayout, 1..n)),
            collect(sell.x_trace_cursor(&slayout, 1..n))
        );
    }

    #[test]
    fn sell_x_cursor_yields_one_load_per_stored_entry() {
        let m = sample(17);
        let sell = SellMatrix::from_csr(&m, 8, 16);
        let layout = SpmvWorkload::layout(&sell, 64);
        let mut full = VecSink::new();
        sell.trace_cursor(&layout, 0..sell.num_chunks())
            .drain_into(&mut full);
        let x_only: Vec<_> = full
            .trace
            .into_iter()
            .filter(|a| a.array == crate::Array::X)
            .collect();
        assert_eq!(x_only.len(), sell.stored_entries());
        assert_eq!(
            collect(sell.x_trace_cursor(&layout, 0..sell.num_chunks())),
            x_only
        );
    }

    #[test]
    fn format_spec_parses_and_round_trips() {
        assert_eq!(FormatSpec::parse("csr").unwrap(), FormatSpec::Csr);
        assert_eq!(FormatSpec::parse("CSR").unwrap(), FormatSpec::Csr);
        assert_eq!(
            FormatSpec::parse("sell:32,128").unwrap(),
            FormatSpec::Sell {
                chunk_size: 32,
                sigma: 128
            }
        );
        assert_eq!(
            FormatSpec::parse("sell:8").unwrap(),
            FormatSpec::Sell {
                chunk_size: 8,
                sigma: 8
            }
        );
        for spec in [
            FormatSpec::Csr,
            FormatSpec::Sell {
                chunk_size: 32,
                sigma: 128,
            },
        ] {
            assert_eq!(FormatSpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(FormatSpec::parse("sell").is_err());
        assert!(FormatSpec::parse("sell:0,8").is_err());
        assert!(FormatSpec::parse("ellpack").is_err());
        assert!(FormatSpec::parse("sell:x,y").is_err());
    }

    #[test]
    fn reorder_spec_parses_and_applies() {
        assert_eq!(ReorderSpec::parse("none").unwrap(), ReorderSpec::None);
        assert_eq!(ReorderSpec::parse("rcm").unwrap(), ReorderSpec::Rcm);
        assert!(ReorderSpec::parse("amd").is_err());
        let m = sample(19);
        let same = ReorderSpec::None.apply(m.clone());
        assert_eq!(same.fingerprint(), m.fingerprint());
        let rcm = ReorderSpec::Rcm.apply(m.clone());
        assert_eq!(rcm.nnz(), m.nnz());
    }

    #[test]
    fn workload_build_composes_reorder_and_format() {
        let m = sample(23);
        let wl = Workload::build(
            m.clone(),
            FormatSpec::Sell {
                chunk_size: 4,
                sigma: 8,
            },
            ReorderSpec::Rcm,
        );
        assert_eq!(SpmvWorkload::nnz(&wl), m.nnz());
        assert!(wl.as_sell().is_some());
        assert_eq!(
            wl.format(),
            FormatSpec::Sell {
                chunk_size: 4,
                sigma: 8
            }
        );
    }
}
