//! The format-generic SpMV workload abstraction.
//!
//! The locality model takes nothing but an access pattern: dimensions, a
//! per-thread partition of the work, and the derived cache-line trace.
//! [`SpmvWorkload`] captures exactly that contract so every layer of the
//! pipeline — classification, profile computation, prediction, the
//! engine's cache keys and the validation harness — is written once
//! against the trait instead of hardwiring `&CsrMatrix`:
//!
//! * dimensions and working-set statistics (classify inputs),
//! * [`DataLayout`] construction (the single entry point all layers and
//!   the cache simulator route through),
//! * per-thread trace / x-trace cursor generation over a partition of the
//!   format's *work items* (rows for CSR, chunks for SELL-C-σ),
//! * a **format-tagged fingerprint** for persistent cache keys.
//!
//! Implementations exist for [`CsrMatrix`] (rows are the work items; the
//! fingerprint keeps its historical untagged value so existing cache keys
//! and reports are unchanged) and [`SellMatrix`] (chunks are the work
//! items; the fingerprint carries a `"sell-c-sigma"` tag plus the format
//! parameters). The [`Workload`] enum packages both behind one runtime
//! type for the engine, CLI and validator.
//!
//! # Adding a format
//!
//! Implement [`SpmvWorkload`] for the new storage type: map its data
//! structures onto the five array *roles* (`x`, `y`, `a`, `colidx`,
//! metadata in the `rowptr` slot), provide a cursor that yields the
//! kernel's reference order, and tag the fingerprint with a distinct
//! format label. Everything above the trait — profiles, sector sweeps,
//! the engine cache, the validators — works unmodified.

use crate::cursor::{SellCursor, SpmvCursor, TraceCursor, XCursor};
use crate::layout::DataLayout;
use sparsemat::{
    reorder::rcm_reorder, CsrMatrix, SellMatrix, COLIDX_BYTES, ROWPTR_BYTES, VALUE_BYTES,
    VECTOR_BYTES,
};
use std::ops::Range;

/// One thread group's share of a workload (for the analytic terms and
/// working-set fit checks of method B).
///
/// Shares are expressed in the model's units, not the format's: `rows`
/// is output rows covered, `x_refs` is `x`-gather references issued, and
/// `meta_elems` is metadata elements (the `rowptr` role) streamed. For
/// CSR these are the row count, the nonzero count and `rows + 1`; for
/// SELL-C-σ they are the rows of the chunk block, the *padded* stored
/// entries and the chunk count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkShare {
    /// Output rows covered by this share.
    pub rows: usize,
    /// `x` gather references issued per iteration (nonzeros for CSR,
    /// padded stored entries for SELL).
    pub x_refs: usize,
    /// Metadata elements (the `rowptr` role) streamed per iteration.
    pub meta_elems: usize,
}

/// A sparse-matrix storage format viewed as an SpMV *workload*: the
/// access pattern the locality model analyses.
///
/// The trait is the format axis of the pipeline. Work is partitioned over
/// abstract *work items* ([`num_work_items`](Self::num_work_items)); a
/// contiguous item range maps to a [`WorkShare`] of model quantities and
/// to trace cursors yielding the kernel's reference order.
pub trait SpmvWorkload: Sync {
    /// Method (A) cursor: the full per-item reference stream.
    type Cursor<'w>: TraceCursor
    where
        Self: 'w;
    /// Method (B) cursor: the `x`-gather references only.
    type XCursor<'w>: TraceCursor
    where
        Self: 'w;

    /// The storage format (and its parameters).
    fn format(&self) -> FormatSpec;

    /// Number of matrix rows.
    fn num_rows(&self) -> usize;

    /// Number of matrix columns.
    fn num_cols(&self) -> usize;

    /// Number of (unpadded) nonzeros.
    fn nnz(&self) -> usize;

    /// Number of schedulable work items: rows for CSR, chunks for
    /// SELL-C-σ. Thread partitions split `0..num_work_items()` into
    /// contiguous blocks.
    fn num_work_items(&self) -> usize;

    /// `x` gather references issued per SpMV iteration (`nnz` for CSR;
    /// the padded [`SellMatrix::stored_entries`] for SELL). A multi-RHS
    /// (SpMM) view multiplies this by `k`.
    fn x_refs(&self) -> usize;

    /// Stored matrix entries streamed per iteration (`a`/`colidx`
    /// elements). Equals [`x_refs`](Self::x_refs) for plain SpMV; an SpMM
    /// view keeps the stored-entry count while `x_refs` grows `k`-fold.
    fn stream_entries(&self) -> usize {
        self.x_refs()
    }

    /// Bytes of `y` written per output row per iteration: 8 for SpMV,
    /// `8k` for SpMM with `k` right-hand sides.
    fn y_row_bytes(&self) -> usize {
        VECTOR_BYTES
    }

    /// Metadata elements (the `rowptr` role) streamed per iteration:
    /// `rows + 1` row pointers for CSR, one descriptor per chunk for
    /// SELL.
    fn meta_elems(&self) -> usize;

    /// Bytes of partition-0 companion traffic (everything that shares
    /// partition 0 with `x` under the Listing-1 routing: `y` and the
    /// metadata stream) per iteration. Feeds the method (B) reuse-distance
    /// scaling factors; CSR uses the paper's `16·M` (8 bytes of `y` plus
    /// nominally 8 of `rowptr` per row).
    fn companion0_bytes(&self) -> usize;

    /// A stable 64-bit fingerprint of the structure, *tagged by format*
    /// so two storage views of one matrix can never collide in a
    /// fingerprint-keyed cache. The plain-CSR fingerprint keeps its
    /// historical untagged value.
    fn fingerprint(&self) -> u64;

    /// The cache-line layout of the five array roles — the single
    /// constructor every layer (trace generation, profiles, the cache
    /// simulator) routes through.
    fn layout(&self, line_bytes: usize) -> DataLayout;

    /// The model quantities of a contiguous work-item range.
    fn share(&self, items: Range<usize>) -> WorkShare;

    /// A method (A) cursor over a contiguous work-item range.
    fn trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> Self::Cursor<'w>;

    /// A method (B) (`x`-only) cursor over a contiguous work-item range.
    fn x_trace_cursor<'w>(
        &'w self,
        layout: &'w DataLayout,
        items: Range<usize>,
    ) -> Self::XCursor<'w>;

    /// Bytes of streamed matrix data per iteration (values + indices +
    /// metadata). Independent of the RHS count: the matrix is streamed
    /// once per iteration however many vectors it multiplies.
    fn matrix_bytes(&self) -> usize {
        self.stream_entries() * (VALUE_BYTES + COLIDX_BYTES) + self.meta_elems() * ROWPTR_BYTES
    }

    /// Bytes of the `x`-role data (all right-hand sides / reused solver
    /// vectors).
    fn x_bytes(&self) -> usize {
        self.num_cols() * VECTOR_BYTES
    }

    /// Bytes of the reusable (non-matrix-stream) data: `x`, `y` and the
    /// metadata stream — the classify input for the partitioned classes.
    fn reusable_bytes(&self) -> usize {
        self.x_bytes() + self.num_rows() * self.y_row_bytes() + self.meta_elems() * ROWPTR_BYTES
    }

    /// Total bytes of the SpMV working set.
    fn working_set_bytes(&self) -> usize {
        self.matrix_bytes() + self.num_rows() * self.y_row_bytes() + self.x_bytes()
    }
}

impl SpmvWorkload for CsrMatrix {
    type Cursor<'w> = SpmvCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        FormatSpec::Csr
    }

    fn num_rows(&self) -> usize {
        CsrMatrix::num_rows(self)
    }

    fn num_cols(&self) -> usize {
        CsrMatrix::num_cols(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn num_work_items(&self) -> usize {
        CsrMatrix::num_rows(self)
    }

    fn x_refs(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn meta_elems(&self) -> usize {
        CsrMatrix::num_rows(self) + 1
    }

    fn companion0_bytes(&self) -> usize {
        16 * CsrMatrix::num_rows(self)
    }

    fn fingerprint(&self) -> u64 {
        CsrMatrix::fingerprint(self)
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        DataLayout::new(self, line_bytes)
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        let x_refs = if items.is_empty() {
            0
        } else {
            (self.rowptr()[items.end] - self.rowptr()[items.start]) as usize
        };
        WorkShare {
            rows: items.len(),
            x_refs,
            // The per-domain accounting charges `rows + 1` row pointers
            // (loop entry plus one bound per row), as in the paper.
            meta_elems: items.len() + 1,
        }
    }

    fn trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> SpmvCursor<'w> {
        SpmvCursor::new(self, layout, items)
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        XCursor::new(self, layout, items)
    }
}

impl SpmvWorkload for SellMatrix {
    type Cursor<'w> = SellCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        FormatSpec::Sell {
            chunk_size: self.chunk_size(),
            sigma: self.sigma(),
        }
    }

    fn num_rows(&self) -> usize {
        SellMatrix::num_rows(self)
    }

    fn num_cols(&self) -> usize {
        SellMatrix::num_cols(self)
    }

    fn nnz(&self) -> usize {
        SellMatrix::nnz(self)
    }

    fn num_work_items(&self) -> usize {
        self.num_chunks()
    }

    fn x_refs(&self) -> usize {
        self.stored_entries()
    }

    fn meta_elems(&self) -> usize {
        self.num_chunks()
    }

    fn companion0_bytes(&self) -> usize {
        // 8 bytes of `y` per row plus one 8-byte chunk descriptor per
        // chunk — the SELL analogue of CSR's 16·M.
        VECTOR_BYTES * SellMatrix::num_rows(self) + ROWPTR_BYTES * self.num_chunks()
    }

    fn fingerprint(&self) -> u64 {
        SellMatrix::fingerprint(self)
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        DataLayout::from_counts(
            [
                SellMatrix::num_cols(self),
                SellMatrix::num_rows(self),
                self.stored_entries(),
                self.stored_entries(),
                self.num_chunks() + 1,
            ],
            line_bytes,
        )
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        if items.is_empty() {
            return WorkShare {
                rows: 0,
                x_refs: 0,
                meta_elems: 0,
            };
        }
        let c = self.chunk_size();
        let n = SellMatrix::num_rows(self);
        WorkShare {
            rows: (items.end * c).min(n) - (items.start * c).min(n),
            x_refs: self.chunk_ptr()[items.end] - self.chunk_ptr()[items.start],
            meta_elems: items.len(),
        }
    }

    fn trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> SellCursor<'w> {
        SellCursor::new(self, layout, items)
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        assert!(items.end <= self.num_chunks(), "chunk range out of bounds");
        let entries = if items.is_empty() {
            0..0
        } else {
            self.chunk_ptr()[items.start]..self.chunk_ptr()[items.end]
        };
        XCursor::over(self.colidx(), layout, entries)
    }
}

/// A storage-format selector (with format parameters), parsed from specs
/// and CLI flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FormatSpec {
    /// Compressed Sparse Row — the paper's format.
    Csr,
    /// SELL-C-σ with the given chunk size `C` and sorting window `σ`.
    Sell {
        /// Rows per chunk (`C`).
        chunk_size: usize,
        /// Sorting window in rows (`σ`).
        sigma: usize,
    },
}

impl FormatSpec {
    /// Parses `"csr"`, `"sell:C,σ"` or `"sell:C"` (σ defaulting to `C`).
    pub fn parse(s: &str) -> Result<FormatSpec, String> {
        let lower = s.trim().to_ascii_lowercase();
        let s = lower.as_str();
        if s == "csr" {
            return Ok(FormatSpec::Csr);
        }
        if s == "sell" {
            return Err(format!(
                "format '{s}' needs parameters: sell:C,sigma (e.g. sell:32,128)"
            ));
        }
        if let Some(params) = s.strip_prefix("sell:") {
            let mut it = params.split(',');
            let c: usize = it
                .next()
                .unwrap()
                .trim()
                .parse()
                .map_err(|_| format!("bad SELL chunk size in '{s}'"))?;
            if c == 0 {
                return Err(format!("SELL chunk size must be positive in '{s}'"));
            }
            let sigma = match it.next() {
                Some(v) if v.trim().is_empty() => {
                    return Err(format!(
                        "SELL sigma missing after ',' in '{s}' (expected sell:C,sigma)"
                    ));
                }
                Some(v) => v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad SELL sigma in '{s}'"))?,
                None => c,
            };
            if let Some(extra) = it.next() {
                return Err(format!(
                    "unexpected trailing SELL parameter '{extra}' in '{s}' \
                     (expected sell:C,sigma)"
                ));
            }
            return Ok(FormatSpec::Sell {
                chunk_size: c,
                sigma,
            });
        }
        Err(format!(
            "unknown format '{s}' (expected csr or sell:C,sigma)"
        ))
    }

    /// Canonical label: `"csr"` or `"sell:C,σ"`.
    pub fn label(&self) -> String {
        match self {
            FormatSpec::Csr => "csr".to_string(),
            FormatSpec::Sell { chunk_size, sigma } => format!("sell:{chunk_size},{sigma}"),
        }
    }

    /// Builds the workload view of a CSR matrix under this format.
    pub fn build(&self, matrix: CsrMatrix) -> Workload {
        match *self {
            FormatSpec::Csr => Workload::Csr(matrix),
            FormatSpec::Sell { chunk_size, sigma } => {
                Workload::Sell(SellMatrix::from_csr(&matrix, chunk_size, sigma))
            }
        }
    }
}

/// A row-reordering selector applied before format conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ReorderSpec {
    /// Keep the natural row order.
    #[default]
    None,
    /// Reverse Cuthill–McKee (bandwidth-reducing; square matrices only).
    Rcm,
}

impl ReorderSpec {
    /// Parses `"none"` or `"rcm"`.
    pub fn parse(s: &str) -> Result<ReorderSpec, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(ReorderSpec::None),
            "rcm" => Ok(ReorderSpec::Rcm),
            other => Err(format!("unknown reorder '{other}' (expected none or rcm)")),
        }
    }

    /// Canonical label.
    pub fn label(&self) -> &'static str {
        match self {
            ReorderSpec::None => "none",
            ReorderSpec::Rcm => "rcm",
        }
    }

    /// Applies the reordering to a CSR matrix.
    ///
    /// # Panics
    ///
    /// RCM panics on non-square matrices.
    pub fn apply(&self, matrix: CsrMatrix) -> CsrMatrix {
        match self {
            ReorderSpec::None => matrix,
            ReorderSpec::Rcm => rcm_reorder(&matrix),
        }
    }

    /// Folds the reorder discriminant into a structure fingerprint.
    /// `None` is the identity, so plain (unreordered) fingerprints keep
    /// their historical values; `Rcm` perturbs the key so a reordered and
    /// an unreordered view can never share a cache entry even when the
    /// permutation happens to be the identity.
    pub fn tag_fingerprint(&self, fingerprint: u64) -> u64 {
        match self {
            ReorderSpec::None => fingerprint,
            // Mix with FNV-style multiply-xor using a fixed tag.
            ReorderSpec::Rcm => (fingerprint ^ 0x7263_6D5F_7461_675F) // "rcm_tag_"
                .wrapping_mul(0x0000_0100_0000_01B3),
        }
    }
}

/// Memory layout of the `k` right-hand sides of an SpMM workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RhsLayout {
    /// Row-major interleaved: RHS `j` of logical element `c` lives at
    /// `x[c*k + j]`, so one gather touches `k` consecutive elements.
    #[default]
    Interleaved,
    /// Column-major separate vectors: RHS `j` is a contiguous vector at
    /// offset `j·N`, so one gather touches `k` strided elements.
    Separate,
}

impl RhsLayout {
    /// Parses `"row"` (interleaved) or `"col"` (separate vectors).
    pub fn parse(s: &str) -> Result<RhsLayout, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "row" => Ok(RhsLayout::Interleaved),
            "col" => Ok(RhsLayout::Separate),
            other => Err(format!(
                "unknown RHS layout '{other}' (expected row or col)"
            )),
        }
    }

    /// Canonical label.
    pub fn label(&self) -> &'static str {
        match self {
            RhsLayout::Interleaved => "row",
            RhsLayout::Separate => "col",
        }
    }
}

/// The kernel scenario a workload models, parsed from specs and CLI
/// flags. Applied *on top* of the storage format: the same matrix in the
/// same format can be traced as one SpMV, a `k`-RHS SpMM, or a full CG
/// iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ScenarioSpec {
    /// Plain single-vector SpMV — the paper's kernel.
    #[default]
    Spmv,
    /// Multi-vector SpMM with `k` right-hand sides.
    Spmm {
        /// Number of right-hand sides.
        k: usize,
        /// RHS memory layout.
        layout: RhsLayout,
    },
    /// One conjugate-gradient iteration (SpMV plus the solver's vector
    /// sweeps).
    Cg,
}

impl ScenarioSpec {
    /// Parses `"spmv"`, `"cg"`, `"spmm:K"` or `"spmm:K,row|col"`.
    pub fn parse(s: &str) -> Result<ScenarioSpec, String> {
        let lower = s.trim().to_ascii_lowercase();
        let s = lower.as_str();
        match s {
            "spmv" => return Ok(ScenarioSpec::Spmv),
            "cg" => return Ok(ScenarioSpec::Cg),
            "spmm" => {
                return Err(format!(
                    "scenario '{s}' needs a RHS count: spmm:K[,row|col] (e.g. spmm:16)"
                ))
            }
            _ => {}
        }
        if let Some(params) = s.strip_prefix("spmm:") {
            let mut it = params.split(',');
            let k: usize = it
                .next()
                .unwrap()
                .trim()
                .parse()
                .map_err(|_| format!("bad SpMM RHS count in '{s}'"))?;
            if k == 0 {
                return Err(format!("SpMM RHS count must be positive in '{s}'"));
            }
            let layout = match it.next() {
                Some(v) => RhsLayout::parse(v)?,
                None => RhsLayout::default(),
            };
            if let Some(extra) = it.next() {
                return Err(format!(
                    "unexpected trailing SpMM parameter '{extra}' in '{s}' \
                     (expected spmm:K[,row|col])"
                ));
            }
            return Ok(ScenarioSpec::Spmm { k, layout });
        }
        Err(format!(
            "unknown scenario '{s}' (expected spmv, cg or spmm:K[,row|col])"
        ))
    }

    /// Canonical label: `"spmv"`, `"cg"` or `"spmm:K,row|col"`.
    pub fn label(&self) -> String {
        match self {
            ScenarioSpec::Spmv => "spmv".to_string(),
            ScenarioSpec::Cg => "cg".to_string(),
            ScenarioSpec::Spmm { k, layout } => format!("spmm:{k},{}", layout.label()),
        }
    }

    /// Wraps a storage workload in this scenario's view.
    ///
    /// # Panics
    ///
    /// Panics if `base` is already a scenario view, or (for CG) is not
    /// square.
    pub fn apply(&self, base: Workload) -> Workload {
        match *self {
            ScenarioSpec::Spmv => base,
            ScenarioSpec::Spmm { k, layout } => {
                Workload::Spmm(Box::new(SpmmWorkload::new(base, k, layout)))
            }
            ScenarioSpec::Cg => Workload::Cg(Box::new(CgWorkload::new(base))),
        }
    }
}

/// FNV-style fingerprint mixing for scenario tags (the same pattern as
/// [`ReorderSpec::tag_fingerprint`]).
fn mix_fingerprint(fingerprint: u64, tag: u64) -> u64 {
    (fingerprint ^ tag).wrapping_mul(0x0000_0100_0000_01B3)
}

/// A multi-vector (SpMM) view of a storage workload: `k` right-hand
/// sides, each `x` gather widening to `k` loads and each `y` store to
/// `k` stores, with the matrix streamed once.
///
/// With `k = 1` the view is **byte-identical** to the base workload —
/// same fingerprint (so cache keys and reports are unchanged), same
/// layout, same traces.
#[derive(Clone, Debug)]
pub struct SpmmWorkload {
    base: Workload,
    k: usize,
    rhs_layout: RhsLayout,
}

impl SpmmWorkload {
    /// Wraps `base` with `k` right-hand sides in `rhs_layout`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `base` is already a scenario view.
    pub fn new(base: Workload, k: usize, rhs_layout: RhsLayout) -> Self {
        assert!(k > 0, "need at least one right-hand side");
        assert!(
            matches!(base, Workload::Csr(_) | Workload::Sell(_)),
            "SpMM base must be a storage workload, not another scenario view"
        );
        SpmmWorkload {
            base,
            k,
            rhs_layout,
        }
    }

    /// The number of right-hand sides.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The RHS memory layout.
    pub fn rhs_layout(&self) -> RhsLayout {
        self.rhs_layout
    }

    /// The underlying storage workload.
    pub fn base(&self) -> &Workload {
        &self.base
    }

    fn geom(&self) -> crate::cursor::RhsGeom {
        crate::cursor::RhsGeom::new(
            self.k,
            matches!(self.rhs_layout, RhsLayout::Interleaved),
            self.base.num_cols(),
            SpmvWorkload::num_rows(&self.base),
        )
    }

    /// Metadata element count of the layout's `rowptr` role.
    fn meta_count(&self) -> usize {
        match &self.base {
            Workload::Csr(m) => CsrMatrix::num_rows(m) + 1,
            Workload::Sell(s) => s.num_chunks() + 1,
            _ => unreachable!("SpMM base is a storage workload"),
        }
    }
}

impl SpmvWorkload for SpmmWorkload {
    type Cursor<'w> = WorkloadCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        self.base.format()
    }

    fn num_rows(&self) -> usize {
        SpmvWorkload::num_rows(&self.base)
    }

    fn num_cols(&self) -> usize {
        SpmvWorkload::num_cols(&self.base)
    }

    fn nnz(&self) -> usize {
        SpmvWorkload::nnz(&self.base)
    }

    fn num_work_items(&self) -> usize {
        self.base.num_work_items()
    }

    fn x_refs(&self) -> usize {
        self.k * self.base.x_refs()
    }

    fn stream_entries(&self) -> usize {
        self.base.x_refs()
    }

    fn y_row_bytes(&self) -> usize {
        self.k * VECTOR_BYTES
    }

    fn x_bytes(&self) -> usize {
        self.k * SpmvWorkload::num_cols(&self.base) * VECTOR_BYTES
    }

    fn meta_elems(&self) -> usize {
        self.base.meta_elems()
    }

    fn companion0_bytes(&self) -> usize {
        // The partition-0 companion traffic gains (k-1) extra `y` stores
        // per row; the metadata stream is unchanged.
        self.base.companion0_bytes()
            + (self.k - 1) * VECTOR_BYTES * SpmvWorkload::num_rows(&self.base)
    }

    fn fingerprint(&self) -> u64 {
        if self.k == 1 {
            // Identity: a k=1 SpMM view shares the base's cache entries
            // (its traces and predictions are byte-identical).
            return SpmvWorkload::fingerprint(&self.base);
        }
        let tag = 0x7370_6D6D_5F74_6167u64 // "spmm_tag"
            ^ ((self.k as u64) << 8)
            ^ matches!(self.rhs_layout, RhsLayout::Separate) as u64;
        mix_fingerprint(SpmvWorkload::fingerprint(&self.base), tag)
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        DataLayout::from_counts(
            [
                SpmvWorkload::num_cols(&self.base) * self.k,
                SpmvWorkload::num_rows(&self.base) * self.k,
                self.base.x_refs(),
                self.base.x_refs(),
                self.meta_count(),
            ],
            line_bytes,
        )
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        // Shares stay in stored-entry units: the matrix-stream terms and
        // metadata accounting are RHS-independent.
        self.base.share(items)
    }

    fn trace_cursor<'w>(
        &'w self,
        layout: &'w DataLayout,
        items: Range<usize>,
    ) -> WorkloadCursor<'w> {
        let geom = self.geom();
        match &self.base {
            Workload::Csr(m) => WorkloadCursor::Csr(SpmvCursor::with_rhs(m, layout, items, geom)),
            Workload::Sell(s) => WorkloadCursor::Sell(SellCursor::with_rhs(s, layout, items, geom)),
            _ => unreachable!("SpMM base is a storage workload"),
        }
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        let geom = self.geom();
        match &self.base {
            Workload::Csr(m) => {
                assert!(
                    items.end <= CsrMatrix::num_rows(m),
                    "row range out of bounds"
                );
                let entries = if items.is_empty() {
                    0..0
                } else {
                    m.rowptr()[items.start] as usize..m.rowptr()[items.end] as usize
                };
                XCursor::over_rhs(m.colidx(), layout, entries, geom)
            }
            Workload::Sell(s) => {
                assert!(items.end <= s.num_chunks(), "chunk range out of bounds");
                let entries = if items.is_empty() {
                    0..0
                } else {
                    s.chunk_ptr()[items.start]..s.chunk_ptr()[items.end]
                };
                XCursor::over_rhs(s.colidx(), layout, entries, geom)
            }
            _ => unreachable!("SpMM base is a storage workload"),
        }
    }
}

/// A CG-iteration view of a storage workload, mirroring
/// `examples/cg_solver.rs`: the SpMV (`ap = A·p`) plus the four vector
/// sweeps of one iteration, traced pass for pass (see
/// [`CgCursor`](crate::cursor::CgCursor)).
///
/// The `x` array role holds the three reused solver vectors (`p`, `r`,
/// `x`) as consecutive segments — `p` at offset 0, so the SpMV gathers
/// are unchanged — and the `y` role holds `ap`.
#[derive(Clone, Debug)]
pub struct CgWorkload {
    base: Workload,
}

impl CgWorkload {
    /// Wraps `base` in a CG-iteration view.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not square or is already a scenario view.
    pub fn new(base: Workload) -> Self {
        assert!(
            matches!(base, Workload::Csr(_) | Workload::Sell(_)),
            "CG base must be a storage workload, not another scenario view"
        );
        assert_eq!(
            SpmvWorkload::num_rows(&base),
            SpmvWorkload::num_cols(&base),
            "CG needs a square matrix"
        );
        CgWorkload { base }
    }

    /// The underlying storage workload.
    pub fn base(&self) -> &Workload {
        &self.base
    }

    /// Metadata element count of the layout's `rowptr` role.
    fn meta_count(&self) -> usize {
        match &self.base {
            Workload::Csr(m) => CsrMatrix::num_rows(m) + 1,
            Workload::Sell(s) => s.num_chunks() + 1,
            _ => unreachable!("CG base is a storage workload"),
        }
    }

    /// The vector-index span covered by a contiguous work-item range (the
    /// rows for CSR; the chunk block's row span for SELL, a documented
    /// approximation of the solver's row-block sweep partition).
    fn vector_span(&self, items: &Range<usize>) -> Range<usize> {
        match &self.base {
            Workload::Csr(_) => items.clone(),
            Workload::Sell(s) => {
                let c = s.chunk_size();
                let n = SellMatrix::num_rows(s);
                (items.start * c).min(n)..(items.end * c).min(n)
            }
            _ => unreachable!("CG base is a storage workload"),
        }
    }
}

impl SpmvWorkload for CgWorkload {
    type Cursor<'w> = crate::cursor::CgCursor<'w, WorkloadCursor<'w>>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        self.base.format()
    }

    fn num_rows(&self) -> usize {
        SpmvWorkload::num_rows(&self.base)
    }

    fn num_cols(&self) -> usize {
        SpmvWorkload::num_cols(&self.base)
    }

    fn nnz(&self) -> usize {
        SpmvWorkload::nnz(&self.base)
    }

    fn num_work_items(&self) -> usize {
        self.base.num_work_items()
    }

    fn x_refs(&self) -> usize {
        self.base.x_refs()
    }

    fn x_bytes(&self) -> usize {
        // Three reused solver vectors live in the `x` role.
        3 * SpmvWorkload::num_rows(&self.base) * VECTOR_BYTES
    }

    fn meta_elems(&self) -> usize {
        self.base.meta_elems()
    }

    fn companion0_bytes(&self) -> usize {
        // The vector sweeps add CG_SWEEP_REFS_PER_ROW 8-byte partition-0
        // references per row on top of the SpMV's companion traffic.
        self.base.companion0_bytes()
            + crate::cursor::CG_SWEEP_REFS_PER_ROW
                * VECTOR_BYTES
                * SpmvWorkload::num_rows(&self.base)
    }

    fn fingerprint(&self) -> u64 {
        // Always tagged: a CG view never shares cache entries with the
        // plain SpMV view of the same matrix.
        mix_fingerprint(
            SpmvWorkload::fingerprint(&self.base),
            0x6367_5F74_6167_5F5Fu64, // "cg_tag__"
        )
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        let n = SpmvWorkload::num_rows(&self.base);
        DataLayout::from_counts(
            [
                3 * n,
                n,
                self.base.x_refs(),
                self.base.x_refs(),
                self.meta_count(),
            ],
            line_bytes,
        )
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        self.base.share(items)
    }

    fn trace_cursor<'w>(
        &'w self,
        layout: &'w DataLayout,
        items: Range<usize>,
    ) -> crate::cursor::CgCursor<'w, WorkloadCursor<'w>> {
        let span = self.vector_span(&items);
        let inner = self.base.trace_cursor(layout, items);
        crate::cursor::CgCursor::new(inner, layout, span, SpmvWorkload::num_rows(&self.base))
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        // Method (B) tracks the `x` gathers only; the sweeps stream and
        // are accounted analytically via companion0_bytes.
        self.base.x_trace_cursor(layout, items)
    }
}

/// A runtime-dispatched workload: the engine, CLI and validator hold one
/// of these and every layer underneath is generic over [`SpmvWorkload`].
#[derive(Clone, Debug)]
pub enum Workload {
    /// A CSR matrix (rows are the work items).
    Csr(CsrMatrix),
    /// A SELL-C-σ matrix (chunks are the work items).
    Sell(SellMatrix),
    /// A multi-RHS (SpMM) view over a storage workload.
    Spmm(Box<SpmmWorkload>),
    /// A CG-iteration view over a storage workload.
    Cg(Box<CgWorkload>),
}

impl Workload {
    /// Builds a workload from a CSR matrix: reorder first, then convert.
    pub fn build(matrix: CsrMatrix, format: FormatSpec, reorder: ReorderSpec) -> Workload {
        format.build(reorder.apply(matrix))
    }

    /// Builds a workload and wraps it in a scenario view: reorder, then
    /// convert, then apply the scenario.
    pub fn build_scenario(
        matrix: CsrMatrix,
        format: FormatSpec,
        reorder: ReorderSpec,
        scenario: ScenarioSpec,
    ) -> Workload {
        scenario.apply(Self::build(matrix, format, reorder))
    }

    /// The scenario this workload models.
    pub fn scenario(&self) -> ScenarioSpec {
        match self {
            Workload::Csr(_) | Workload::Sell(_) => ScenarioSpec::Spmv,
            Workload::Spmm(w) => ScenarioSpec::Spmm {
                k: w.k(),
                layout: w.rhs_layout(),
            },
            Workload::Cg(_) => ScenarioSpec::Cg,
        }
    }

    /// The CSR view, if this is a CSR workload.
    pub fn as_csr(&self) -> Option<&CsrMatrix> {
        match self {
            Workload::Csr(m) => Some(m),
            _ => None,
        }
    }

    /// The SELL view, if this is a SELL workload.
    pub fn as_sell(&self) -> Option<&SellMatrix> {
        match self {
            Workload::Sell(m) => Some(m),
            _ => None,
        }
    }
}

/// Method (A) cursor of a [`Workload`].
#[derive(Clone, Debug)]
pub enum WorkloadCursor<'w> {
    /// CSR row-block cursor (single- or multi-RHS).
    Csr(SpmvCursor<'w>),
    /// SELL chunk-block cursor (single- or multi-RHS).
    Sell(SellCursor<'w>),
    /// CG-iteration cursor wrapping a storage cursor.
    Cg(Box<crate::cursor::CgCursor<'w, WorkloadCursor<'w>>>),
}

impl TraceCursor for WorkloadCursor<'_> {
    fn next_access(&mut self) -> Option<crate::Access> {
        match self {
            WorkloadCursor::Csr(c) => c.next_access(),
            WorkloadCursor::Sell(c) => c.next_access(),
            WorkloadCursor::Cg(c) => c.next_access(),
        }
    }

    fn remaining(&self) -> usize {
        match self {
            WorkloadCursor::Csr(c) => c.remaining(),
            WorkloadCursor::Sell(c) => c.remaining(),
            WorkloadCursor::Cg(c) => c.remaining(),
        }
    }

    fn next_block(&mut self, block: &mut crate::AccessBlock) -> usize {
        match self {
            WorkloadCursor::Csr(c) => c.next_block(block),
            WorkloadCursor::Sell(c) => c.next_block(block),
            WorkloadCursor::Cg(c) => c.next_block(block),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident => $e:expr) => {
        match $self {
            Workload::Csr($m) => $e,
            Workload::Sell($m) => $e,
            Workload::Spmm(boxed) => {
                let $m = &**boxed;
                $e
            }
            Workload::Cg(boxed) => {
                let $m = &**boxed;
                $e
            }
        }
    };
}

impl SpmvWorkload for Workload {
    type Cursor<'w> = WorkloadCursor<'w>;
    type XCursor<'w> = XCursor<'w>;

    fn format(&self) -> FormatSpec {
        delegate!(self, m => m.format())
    }

    fn num_rows(&self) -> usize {
        delegate!(self, m => SpmvWorkload::num_rows(m))
    }

    fn num_cols(&self) -> usize {
        delegate!(self, m => SpmvWorkload::num_cols(m))
    }

    fn nnz(&self) -> usize {
        delegate!(self, m => SpmvWorkload::nnz(m))
    }

    fn num_work_items(&self) -> usize {
        delegate!(self, m => m.num_work_items())
    }

    fn x_refs(&self) -> usize {
        delegate!(self, m => m.x_refs())
    }

    fn stream_entries(&self) -> usize {
        delegate!(self, m => m.stream_entries())
    }

    fn y_row_bytes(&self) -> usize {
        delegate!(self, m => m.y_row_bytes())
    }

    fn x_bytes(&self) -> usize {
        delegate!(self, m => m.x_bytes())
    }

    fn meta_elems(&self) -> usize {
        delegate!(self, m => m.meta_elems())
    }

    fn companion0_bytes(&self) -> usize {
        delegate!(self, m => m.companion0_bytes())
    }

    fn fingerprint(&self) -> u64 {
        delegate!(self, m => SpmvWorkload::fingerprint(m))
    }

    fn layout(&self, line_bytes: usize) -> DataLayout {
        delegate!(self, m => m.layout(line_bytes))
    }

    fn share(&self, items: Range<usize>) -> WorkShare {
        delegate!(self, m => m.share(items))
    }

    fn trace_cursor<'w>(
        &'w self,
        layout: &'w DataLayout,
        items: Range<usize>,
    ) -> WorkloadCursor<'w> {
        match self {
            Workload::Csr(m) => WorkloadCursor::Csr(m.trace_cursor(layout, items)),
            Workload::Sell(m) => WorkloadCursor::Sell(m.trace_cursor(layout, items)),
            Workload::Spmm(w) => w.trace_cursor(layout, items),
            Workload::Cg(w) => WorkloadCursor::Cg(Box::new(w.trace_cursor(layout, items))),
        }
    }

    fn x_trace_cursor<'w>(&'w self, layout: &'w DataLayout, items: Range<usize>) -> XCursor<'w> {
        delegate!(self, m => m.x_trace_cursor(layout, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::A64FX_LINE_BYTES;
    use crate::sink::VecSink;
    use sparsemat::CooMatrix;

    fn sample(seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut coo = CooMatrix::new(30, 30);
        for r in 0..30usize {
            for _ in 0..(r % 5) + 1 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                coo.push(r, (state >> 33) as usize % 30, 1.0);
            }
        }
        coo.to_csr()
    }

    fn collect<C: TraceCursor>(mut c: C) -> Vec<crate::Access> {
        let mut out = Vec::new();
        while let Some(a) = c.next_access() {
            out.push(a);
        }
        out
    }

    #[test]
    fn csr_workload_keeps_legacy_fingerprint_and_stats() {
        let m = sample(3);
        assert_eq!(SpmvWorkload::fingerprint(&m), m.fingerprint());
        assert_eq!(SpmvWorkload::matrix_bytes(&m), m.matrix_bytes());
        assert_eq!(SpmvWorkload::working_set_bytes(&m), m.working_set_bytes());
        assert_eq!(m.x_refs(), m.nnz());
        assert_eq!(m.num_work_items(), m.num_rows());
        assert_eq!(m.companion0_bytes(), 16 * m.num_rows());
    }

    /// The satellite regression test: fingerprint keys of different
    /// format (and reorder) views of the same matrix never collide.
    #[test]
    fn fingerprints_are_format_and_reorder_tagged() {
        let m = sample(9);
        let csr = Workload::Csr(m.clone());
        let sell11 = FormatSpec::Sell {
            chunk_size: 1,
            sigma: 1,
        }
        .build(m.clone());
        let sell48 = FormatSpec::Sell {
            chunk_size: 4,
            sigma: 8,
        }
        .build(m.clone());
        let fp_csr = SpmvWorkload::fingerprint(&csr);
        let fp11 = SpmvWorkload::fingerprint(&sell11);
        let fp48 = SpmvWorkload::fingerprint(&sell48);
        assert_ne!(fp_csr, fp11, "CSR and SELL(1,1) views must not collide");
        assert_ne!(fp_csr, fp48);
        assert_ne!(fp11, fp48, "different SELL parameters must not collide");
        // Reorder discriminant: identity for None, a distinct key for RCM
        // (even if the permutation were the identity).
        assert_eq!(ReorderSpec::None.tag_fingerprint(fp_csr), fp_csr);
        assert_ne!(ReorderSpec::Rcm.tag_fingerprint(fp_csr), fp_csr);
    }

    #[test]
    fn layouts_route_through_single_constructor() {
        let m = sample(5);
        let direct = DataLayout::new(&m, 64);
        assert_eq!(SpmvWorkload::layout(&m, 64), direct);
        let sell = SellMatrix::from_csr(&m, 4, 8);
        assert_eq!(
            SpmvWorkload::layout(&sell, 64),
            crate::sell_trace::sell_layout(&sell, 64)
        );
    }

    #[test]
    fn csr_shares_partition_the_work() {
        let m = sample(7);
        let a = m.share(0..10);
        let b = m.share(10..30);
        assert_eq!(a.rows + b.rows, 30);
        assert_eq!(a.x_refs + b.x_refs, m.nnz());
        assert_eq!(a.meta_elems, 11);
        assert_eq!(
            m.share(4..4),
            WorkShare {
                rows: 0,
                x_refs: 0,
                meta_elems: 1
            }
        );
    }

    #[test]
    fn sell_shares_partition_the_work() {
        let m = sample(11);
        let sell = SellMatrix::from_csr(&m, 4, 8);
        let n = sell.num_chunks();
        let a = sell.share(0..2);
        let b = sell.share(2..n);
        assert_eq!(a.rows + b.rows, 30);
        assert_eq!(a.x_refs + b.x_refs, sell.stored_entries());
        assert_eq!(a.meta_elems + b.meta_elems, n);
        assert_eq!(
            sell.share(1..1),
            WorkShare {
                rows: 0,
                x_refs: 0,
                meta_elems: 0
            }
        );
    }

    #[test]
    fn workload_enum_cursors_match_concrete_cursors() {
        let m = sample(13);
        let sell = SellMatrix::from_csr(&m, 4, 8);
        let csr_wl = Workload::Csr(m.clone());
        let layout = SpmvWorkload::layout(&csr_wl, 16);
        assert_eq!(
            collect(csr_wl.trace_cursor(&layout, 0..30)),
            collect(m.trace_cursor(&layout, 0..30))
        );
        assert_eq!(
            collect(csr_wl.x_trace_cursor(&layout, 3..17)),
            collect(m.x_trace_cursor(&layout, 3..17))
        );

        let sell_wl = Workload::Sell(sell.clone());
        let slayout = SpmvWorkload::layout(&sell_wl, 16);
        let n = sell.num_chunks();
        assert_eq!(
            collect(sell_wl.trace_cursor(&slayout, 0..n)),
            collect(sell.trace_cursor(&slayout, 0..n))
        );
        assert_eq!(
            collect(sell_wl.x_trace_cursor(&slayout, 1..n)),
            collect(sell.x_trace_cursor(&slayout, 1..n))
        );
    }

    #[test]
    fn sell_x_cursor_yields_one_load_per_stored_entry() {
        let m = sample(17);
        let sell = SellMatrix::from_csr(&m, 8, 16);
        let layout = SpmvWorkload::layout(&sell, 64);
        let mut full = VecSink::new();
        sell.trace_cursor(&layout, 0..sell.num_chunks())
            .drain_into(&mut full);
        let x_only: Vec<_> = full
            .trace
            .into_iter()
            .filter(|a| a.array == crate::Array::X)
            .collect();
        assert_eq!(x_only.len(), sell.stored_entries());
        assert_eq!(
            collect(sell.x_trace_cursor(&layout, 0..sell.num_chunks())),
            x_only
        );
    }

    #[test]
    fn format_spec_parses_and_round_trips() {
        assert_eq!(FormatSpec::parse("csr").unwrap(), FormatSpec::Csr);
        assert_eq!(FormatSpec::parse("CSR").unwrap(), FormatSpec::Csr);
        assert_eq!(
            FormatSpec::parse("sell:32,128").unwrap(),
            FormatSpec::Sell {
                chunk_size: 32,
                sigma: 128
            }
        );
        assert_eq!(
            FormatSpec::parse("sell:8").unwrap(),
            FormatSpec::Sell {
                chunk_size: 8,
                sigma: 8
            }
        );
        for spec in [
            FormatSpec::Csr,
            FormatSpec::Sell {
                chunk_size: 32,
                sigma: 128,
            },
        ] {
            assert_eq!(FormatSpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(FormatSpec::parse("sell").is_err());
        assert!(FormatSpec::parse("sell:0,8").is_err());
        assert!(FormatSpec::parse("ellpack").is_err());
        assert!(FormatSpec::parse("sell:x,y").is_err());
    }

    #[test]
    fn reorder_spec_parses_and_applies() {
        assert_eq!(ReorderSpec::parse("none").unwrap(), ReorderSpec::None);
        assert_eq!(ReorderSpec::parse("rcm").unwrap(), ReorderSpec::Rcm);
        assert!(ReorderSpec::parse("amd").is_err());
        let m = sample(19);
        let same = ReorderSpec::None.apply(m.clone());
        assert_eq!(same.fingerprint(), m.fingerprint());
        let rcm = ReorderSpec::Rcm.apply(m.clone());
        assert_eq!(rcm.nnz(), m.nnz());
    }

    #[test]
    fn workload_build_composes_reorder_and_format() {
        let m = sample(23);
        let wl = Workload::build(
            m.clone(),
            FormatSpec::Sell {
                chunk_size: 4,
                sigma: 8,
            },
            ReorderSpec::Rcm,
        );
        assert_eq!(SpmvWorkload::nnz(&wl), m.nnz());
        assert!(wl.as_sell().is_some());
        assert_eq!(
            wl.format(),
            FormatSpec::Sell {
                chunk_size: 4,
                sigma: 8
            }
        );
    }

    #[test]
    fn format_spec_rejects_malformed_sell_parameters() {
        let err = FormatSpec::parse("sell:32,").unwrap_err();
        assert!(err.contains("sigma missing"), "{err}");
        let err = FormatSpec::parse("sell:32,128,extra").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn scenario_spec_parses_labels_and_rejects() {
        assert_eq!(ScenarioSpec::parse("spmv").unwrap(), ScenarioSpec::Spmv);
        assert_eq!(ScenarioSpec::parse("CG").unwrap(), ScenarioSpec::Cg);
        assert_eq!(
            ScenarioSpec::parse("spmm:16").unwrap(),
            ScenarioSpec::Spmm {
                k: 16,
                layout: RhsLayout::Interleaved
            }
        );
        assert_eq!(
            ScenarioSpec::parse("spmm:4,col").unwrap(),
            ScenarioSpec::Spmm {
                k: 4,
                layout: RhsLayout::Separate
            }
        );
        for spec in [
            ScenarioSpec::Spmv,
            ScenarioSpec::Cg,
            ScenarioSpec::Spmm {
                k: 8,
                layout: RhsLayout::Separate,
            },
        ] {
            assert_eq!(ScenarioSpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(ScenarioSpec::parse("spmm")
            .unwrap_err()
            .contains("RHS count"));
        assert!(ScenarioSpec::parse("spmm:0")
            .unwrap_err()
            .contains("positive"));
        assert!(ScenarioSpec::parse("spmm:4,diag")
            .unwrap_err()
            .contains("row or col"));
        assert!(ScenarioSpec::parse("spmm:4,row,extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(ScenarioSpec::parse("lu")
            .unwrap_err()
            .contains("unknown scenario"));
    }

    #[test]
    fn spmm_k1_view_is_identical_to_its_base() {
        let m = sample(23);
        for format in [
            FormatSpec::Csr,
            FormatSpec::Sell {
                chunk_size: 4,
                sigma: 8,
            },
        ] {
            let base = format.build(m.clone());
            for layout in [RhsLayout::Interleaved, RhsLayout::Separate] {
                let spmm = SpmmWorkload::new(base.clone(), 1, layout);
                assert_eq!(
                    SpmvWorkload::fingerprint(&spmm),
                    SpmvWorkload::fingerprint(&base)
                );
                assert_eq!(spmm.layout(A64FX_LINE_BYTES), base.layout(A64FX_LINE_BYTES));
                assert_eq!(spmm.x_refs(), base.x_refs());
                assert_eq!(spmm.stream_entries(), base.stream_entries());
                assert_eq!(spmm.y_row_bytes(), base.y_row_bytes());
                assert_eq!(SpmvWorkload::x_bytes(&spmm), SpmvWorkload::x_bytes(&base));
                assert_eq!(spmm.companion0_bytes(), base.companion0_bytes());
            }
        }
    }

    #[test]
    fn scenario_fingerprints_are_tagged_and_distinct() {
        let m = sample(23);
        let base = Workload::Csr(m);
        let all = [
            SpmvWorkload::fingerprint(&base),
            SpmvWorkload::fingerprint(&SpmmWorkload::new(base.clone(), 4, RhsLayout::Interleaved)),
            SpmvWorkload::fingerprint(&SpmmWorkload::new(base.clone(), 4, RhsLayout::Separate)),
            SpmvWorkload::fingerprint(&SpmmWorkload::new(base.clone(), 8, RhsLayout::Interleaved)),
            SpmvWorkload::fingerprint(&CgWorkload::new(base.clone())),
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "scenario views must never share cache keys");
            }
        }
    }

    #[test]
    fn build_scenario_applies_and_reports_the_scenario() {
        let m = sample(23);
        let spec = ScenarioSpec::Spmm {
            k: 4,
            layout: RhsLayout::Separate,
        };
        let wl = Workload::build_scenario(m.clone(), FormatSpec::Csr, ReorderSpec::None, spec);
        assert_eq!(wl.scenario(), spec);
        assert_eq!(SpmvWorkload::x_refs(&wl), 4 * m.nnz());
        let cg = Workload::build_scenario(
            m.clone(),
            FormatSpec::Csr,
            ReorderSpec::None,
            ScenarioSpec::Cg,
        );
        assert_eq!(cg.scenario(), ScenarioSpec::Cg);
        assert_eq!(SpmvWorkload::x_bytes(&cg), 3 * m.num_rows() * 8);
    }
}
