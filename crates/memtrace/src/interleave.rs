//! Interleaving of per-thread traces into shared-cache reference order.
//!
//! The cache behaviour of a shared cache depends on the order in which the
//! sharing threads' references reach it (concurrent reuse distance, Schuff
//! et al.). Two collation strategies are provided:
//!
//! * [`round_robin`] — deterministic: threads submit fixed-size chunks in
//!   cyclic order. This models threads progressing at identical rates and
//!   is the reproducible default used by tests and experiments.
//! * [`mcs_interleave`] — concurrent: real threads submit chunks guarded by
//!   the FIFO-fair [`McsLock`], as in the paper's
//!   §3.2.1. The resulting order depends on actual scheduling; over equal-
//!   rate threads it statistically approximates round-robin.
//!
//! [`domain_groups`] maps a flat thread list onto the A64FX topology (12
//! cores per L2/NUMA domain) so each shared L2 can be analysed with only
//! its own threads' references.

use crate::cursor::TraceCursor;
use crate::mcs::McsLock;
use crate::sink::{AccessBlock, BlockSink, TraceSink};
use crate::Access;
use std::ops::Range;

/// Deterministically interleaves per-thread traces in cyclic order with the
/// given chunk size.
///
/// Threads whose traces are exhausted drop out of the cycle; the result
/// contains every input reference exactly once, in a round-robin order.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn round_robin(traces: &[Vec<Access>], chunk: usize) -> Vec<Access> {
    assert!(chunk > 0, "chunk size must be positive");
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; traces.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (t, cursor) in traces.iter().zip(cursors.iter_mut()) {
            if *cursor >= t.len() {
                continue;
            }
            let end = (*cursor + chunk).min(t.len());
            out.extend_from_slice(&t[*cursor..end]);
            remaining -= end - *cursor;
            *cursor = end;
        }
    }
    out
}

/// Streams the round-robin interleaving of per-thread traces directly into
/// a sink, without materialising the merged trace.
///
/// Equivalent to `sink.access_all(&round_robin(traces, chunk))`.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn round_robin_into<S: TraceSink>(traces: &[Vec<Access>], chunk: usize, sink: &mut S) {
    assert!(chunk > 0, "chunk size must be positive");
    let mut cursors = vec![0usize; traces.len()];
    let mut remaining: usize = traces.iter().map(|t| t.len()).sum();
    let _span = obs::span("trace.stream");
    if obs::enabled() {
        obs::add("memtrace.buffered.refs", remaining as u64);
        obs::observe("memtrace.stream.refs", remaining as u64);
    }
    while remaining > 0 {
        for (t, cursor) in traces.iter().zip(cursors.iter_mut()) {
            if *cursor >= t.len() {
                continue;
            }
            let end = (*cursor + chunk).min(t.len());
            sink.access_all(&t[*cursor..end]);
            remaining -= end - *cursor;
            *cursor = end;
        }
    }
}

/// Streams the round-robin interleaving of per-thread trace *cursors*
/// directly into a sink.
///
/// The order is identical to [`round_robin_into`] over the traces the
/// cursors would produce, but the merged stream is generated on demand:
/// total state is O(threads) regardless of trace length, and no
/// per-thread trace is ever materialised. This is the collation the
/// streaming profile pipeline uses per L2 domain.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn round_robin_cursors<C: TraceCursor, S: TraceSink>(
    cursors: &mut [C],
    chunk: usize,
    sink: &mut S,
) {
    assert!(chunk > 0, "chunk size must be positive");
    let mut remaining: usize = cursors.iter().map(|c| c.remaining()).sum();
    // One span + three counter updates per *feed* (a whole domain pass),
    // not per reference: the inner loop stays uninstrumented.
    let _span = obs::span("trace.stream");
    if obs::enabled() {
        obs::add("memtrace.cursor.feeds", 1);
        obs::add("memtrace.cursor.refs", remaining as u64);
        obs::observe("memtrace.stream.refs", remaining as u64);
    }
    while remaining > 0 {
        for cursor in cursors.iter_mut() {
            for _ in 0..chunk {
                match cursor.next_access() {
                    Some(a) => {
                        sink.access(a);
                        remaining -= 1;
                    }
                    None => break,
                }
            }
        }
    }
}

/// Streams the round-robin interleaving of per-thread trace cursors into
/// a [`BlockSink`], in blocks of up to [`crate::BLOCK_REFS`] references.
///
/// The reference order is *identical* to
/// [`round_robin_cursors`]`(cursors, 1, sink)` — one reference per
/// cursor per cycle — but the stream moves in blocks at both ends: each
/// cursor refills a staging block via
/// [`TraceCursor::next_block`] (amortising its per-reference layout
/// arithmetic) and the merged output reaches the sink as full blocks
/// (amortising the virtual dispatch). A single-cursor "interleaving"
/// skips the staging entirely and forwards the cursor's blocks as-is.
pub fn round_robin_cursors_blocks<C: TraceCursor, S: BlockSink>(cursors: &mut [C], sink: &mut S) {
    let total: usize = cursors.iter().map(|c| c.remaining()).sum();
    let _span = obs::span("trace.stream");
    if obs::enabled() {
        obs::add("memtrace.cursor.feeds", 1);
        obs::add("memtrace.cursor.refs", total as u64);
        obs::observe("memtrace.stream.refs", total as u64);
    }
    if let [cursor] = cursors {
        let mut block = AccessBlock::new();
        loop {
            block.clear();
            if cursor.next_block(&mut block) == 0 {
                return;
            }
            sink.consume(&block);
        }
    }
    // Multi-cursor: each cursor refills a staging block via its
    // specialised `next_block` (amortising per-reference layout
    // arithmetic), and whole staging blocks are merged by striding —
    // `rounds` complete cycles at a time, one already-packed copy per
    // reference, no per-reference refill checks. `rounds` is the
    // shortest staged length, and a cursor's block is short only at
    // exhaustion, so refill checks run once per *block*, not per
    // reference; a cursor drops out when its refill comes back empty —
    // exactly when `round_robin_cursors` would see `next_access() ==
    // None`.
    let mut staging: Vec<AccessBlock> = cursors.iter().map(|_| AccessBlock::new()).collect();
    let mut active: Vec<usize> = Vec::with_capacity(cursors.len());
    for (i, c) in cursors.iter_mut().enumerate() {
        if c.next_block(&mut staging[i]) > 0 {
            active.push(i);
        }
    }
    let mut out = AccessBlock::new();
    while !active.is_empty() {
        let rounds = active
            .iter()
            .map(|&i| staging[i].len())
            .min()
            .expect("active cursors have staged references");
        for j in 0..rounds {
            for &i in &active {
                out.push(staging[i].refs()[j]);
                if out.is_full() {
                    sink.consume(&out);
                    out.clear();
                }
            }
        }
        // Drop the `rounds` merged references from every staging block;
        // refill the drained ones and retire exhausted cursors.
        let mut kept = 0;
        for k in 0..active.len() {
            let i = active[k];
            staging[i].discard_front(rounds);
            let keep = !staging[i].is_empty() || cursors[i].next_block(&mut staging[i]) > 0;
            if keep {
                active[kept] = i;
                kept += 1;
            }
        }
        active.truncate(kept);
    }
    if !out.is_empty() {
        sink.consume(&out);
    }
}

/// Interleaves per-thread traces by actually running one thread per trace,
/// each submitting chunks of `chunk` references under an MCS lock.
///
/// The MCS lock's FIFO ordering guarantees starvation freedom: a thread
/// that requests the collation queue is served before any thread that
/// requests it later. The exact global order depends on OS scheduling and
/// is therefore not deterministic; every reference appears exactly once and
/// per-thread subsequences preserve program order.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn mcs_interleave(traces: &[Vec<Access>], chunk: usize) -> Vec<Access> {
    assert!(chunk > 0, "chunk size must be positive");
    if traces.is_empty() {
        return Vec::new();
    }
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let lock = McsLock::new(traces.len());
    // The MCS lock serialises writers; the Mutex only provides the safe
    // `&mut` projection (it is always uncontended because acquisition order
    // is decided by the MCS queue).
    let out = std::sync::Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for (slot, trace) in traces.iter().enumerate() {
            let lock = &lock;
            let out = &out;
            scope.spawn(move || {
                let mut cursor = 0;
                while cursor < trace.len() {
                    let end = (cursor + chunk).min(trace.len());
                    let _g = lock.lock(slot);
                    out.lock()
                        .expect("collation buffer poisoned")
                        .extend_from_slice(&trace[cursor..end]);
                    cursor = end;
                }
            });
        }
    });
    out.into_inner().expect("collation buffer poisoned")
}

/// Splits `num_threads` thread indices into groups of `threads_per_group`,
/// mirroring the A64FX topology where consecutive cores share an L2.
///
/// The last group may be smaller if the counts do not divide evenly.
///
/// # Panics
///
/// Panics if `threads_per_group` is zero.
pub fn domain_groups(num_threads: usize, threads_per_group: usize) -> Vec<Range<usize>> {
    assert!(threads_per_group > 0, "group size must be positive");
    let mut groups = Vec::new();
    let mut start = 0;
    while start < num_threads {
        let end = (start + threads_per_group).min(num_threads);
        groups.push(start..end);
        start = end;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Array;

    fn acc(line: u64) -> Access {
        Access::load(line, Array::X)
    }

    fn traces_of(lens: &[usize]) -> Vec<Vec<Access>> {
        // Thread t's i-th access has line t * 1000 + i, so provenance and
        // order are recoverable.
        lens.iter()
            .enumerate()
            .map(|(t, &n)| (0..n as u64).map(|i| acc(t as u64 * 1000 + i)).collect())
            .collect()
    }

    #[test]
    fn round_robin_chunk1_cycles() {
        let traces = traces_of(&[3, 3]);
        let out = round_robin(&traces, 1);
        let lines: Vec<u64> = out.iter().map(|a| a.line).collect();
        assert_eq!(lines, vec![0, 1000, 1, 1001, 2, 1002]);
    }

    #[test]
    fn round_robin_chunked() {
        let traces = traces_of(&[4, 2]);
        let out = round_robin(&traces, 2);
        let lines: Vec<u64> = out.iter().map(|a| a.line).collect();
        assert_eq!(lines, vec![0, 1, 1000, 1001, 2, 3]);
    }

    #[test]
    fn round_robin_uneven_lengths_drop_out() {
        let traces = traces_of(&[1, 4]);
        let out = round_robin(&traces, 1);
        let lines: Vec<u64> = out.iter().map(|a| a.line).collect();
        assert_eq!(lines, vec![0, 1000, 1001, 1002, 1003]);
    }

    #[test]
    fn round_robin_into_matches_round_robin() {
        let traces = traces_of(&[5, 3, 7]);
        let direct = round_robin(&traces, 2);
        let mut sink = crate::sink::VecSink::new();
        round_robin_into(&traces, 2, &mut sink);
        assert_eq!(sink.trace, direct);
    }

    #[test]
    fn round_robin_cursors_matches_materialized() {
        use crate::cursor::SliceCursor;
        for lens in [vec![5, 3, 7], vec![1, 4], vec![0, 0, 2], vec![]] {
            for chunk in [1, 2, 5] {
                let traces = traces_of(&lens);
                let direct = round_robin(&traces, chunk);
                let mut cursors: Vec<SliceCursor> =
                    traces.iter().map(|t| SliceCursor::new(t)).collect();
                let mut sink = crate::sink::VecSink::new();
                round_robin_cursors(&mut cursors, chunk, &mut sink);
                assert_eq!(sink.trace, direct, "lens {lens:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn round_robin_cursors_blocks_matches_chunk1_order() {
        use crate::cursor::SliceCursor;
        // Lengths straddling several block boundaries, plus drop-outs,
        // single-cursor and empty edge cases.
        for lens in [
            vec![500, 300, 700],
            vec![1, 4],
            vec![0, 0, 2],
            vec![999],
            vec![],
        ] {
            let traces = traces_of(&lens);
            let direct = round_robin(&traces, 1);
            let mut cursors: Vec<SliceCursor> =
                traces.iter().map(|t| SliceCursor::new(t)).collect();
            let mut sink = crate::sink::VecSink::new();
            round_robin_cursors_blocks(&mut cursors, &mut sink);
            assert_eq!(sink.trace, direct, "lens {lens:?}");
        }
    }

    #[test]
    fn round_robin_empty_inputs() {
        assert!(round_robin(&[], 1).is_empty());
        let traces = traces_of(&[0, 0]);
        assert!(round_robin(&traces, 3).is_empty());
    }

    fn assert_valid_interleaving(traces: &[Vec<Access>], out: &[Access]) {
        // Every reference exactly once and per-thread order preserved.
        let total: usize = traces.iter().map(|t| t.len()).sum();
        assert_eq!(out.len(), total);
        let mut cursors = vec![0usize; traces.len()];
        for a in out {
            let t = (a.line / 1000) as usize;
            let i = a.line % 1000;
            assert_eq!(i, cursors[t] as u64, "thread {t} out of order");
            cursors[t] += 1;
        }
        for (t, (&c, tr)) in cursors.iter().zip(traces).enumerate() {
            assert_eq!(c, tr.len(), "thread {t} incomplete");
        }
    }

    #[test]
    fn mcs_interleave_is_a_valid_interleaving() {
        let traces = traces_of(&[50, 70, 30, 60]);
        let out = mcs_interleave(&traces, 4);
        assert_valid_interleaving(&traces, &out);
    }

    #[test]
    fn mcs_interleave_chunk1() {
        let traces = traces_of(&[25, 25]);
        let out = mcs_interleave(&traces, 1);
        assert_valid_interleaving(&traces, &out);
    }

    #[test]
    fn mcs_interleave_single_thread_preserves_order() {
        let traces = traces_of(&[10]);
        let out = mcs_interleave(&traces, 3);
        let lines: Vec<u64> = out.iter().map(|a| a.line).collect();
        assert_eq!(lines, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn domain_groups_a64fx_topology() {
        let groups = domain_groups(48, 12);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0], 0..12);
        assert_eq!(groups[3], 36..48);
    }

    #[test]
    fn domain_groups_uneven() {
        let groups = domain_groups(10, 4);
        assert_eq!(groups, vec![0..4, 4..8, 8..10]);
    }
}
