//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no cargo registry, so the real `rand` cannot
//! be fetched. This crate provides the small, deterministic subset of its
//! 0.8 API that the workspace uses — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling methods
//! (`gen`, `gen_range`, `gen_bool`) — backed by SplitMix64. Streams are
//! deterministic in the seed but are **not** bit-identical to the real
//! crate's; all in-repo consumers only rely on seed-determinism, never on
//! particular values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Value types samplable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value of this type.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (like `rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniformly distributed value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Rejection-free-enough uniform integer in `[0, bound)` via Lemire's
/// multiply-shift with a rejection loop for exactness.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    // Zone rejection keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core).
    ///
    /// Stands in for `rand::rngs::SmallRng`; seed-deterministic but not
    /// stream-compatible with the real crate.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small seeds.
            let mut rng = SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        let first: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        let mut a = SmallRng::seed_from_u64(7);
        assert_ne!(first, (0..4).map(|_| a.gen()).collect::<Vec<u64>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (700..1300).contains(&trues),
            "gen_bool badly biased: {trues}"
        );
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
