//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no cargo registry, so the real `criterion`
//! cannot be fetched. This harness keeps the workspace's `harness = false`
//! benches compiling and runnable: each benchmark is timed with
//! `std::time::Instant` over a fixed number of samples and the mean/min
//! per-iteration time (plus derived throughput) is printed. There are no
//! statistics, baselines, or plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations of the most recent `iter` call.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first with one warm-up call, then `samples` timed
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (display symmetry with the real crate).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("{label:<48} (no measurement)");
        return;
    }
    let total: Duration = bencher.times.iter().sum();
    let mean = total / bencher.times.len() as u32;
    let min = *bencher.times.iter().min().expect("nonempty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!(" {:>10.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(
                " {:>10.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1u64 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{label:<48} mean {mean:>12.3?}  min {min:>12.3?}{rate}");
}

/// Declares the benchmark entry list (subset of the real macro: the
/// `name`/`config`/`targets` form and the plain list form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-n", 50usize), &50usize, |b, &n| {
            b.iter(|| (0..n as u64).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
