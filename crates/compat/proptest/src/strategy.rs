//! The [`Strategy`] trait and primitive strategies.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type (subset of
/// `proptest::strategy::Strategy`; generation only, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_clones() {
        let mut rng = TestRng::from_name("just");
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.generate(&mut rng), vec![1, 2, 3]);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1usize..4)
            .prop_flat_map(|n| (Just(n), 0usize..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n && n < 4);
        }
    }

    #[test]
    fn inclusive_ranges() {
        let mut rng = TestRng::from_name("incl");
        for _ in 0..100 {
            let v = (2u8..=4).generate(&mut rng);
            assert!((2..=4).contains(&v));
        }
    }
}
