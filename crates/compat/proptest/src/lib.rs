//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no cargo registry, so the real `proptest`
//! cannot be fetched. This crate implements the subset of its API that the
//! workspace's property tests use: the [`Strategy`] trait with `prop_map`
//! and `prop_flat_map`, range/tuple/[`Just`] strategies,
//! [`collection::vec`] and [`collection::btree_set`], the [`proptest!`]
//! macro with a `#![proptest_config(...)]` header, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test's name), so runs are fully reproducible without a persistence
//!   file;
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message of the raw generated inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets with *target* sizes drawn from `size` (duplicates
    /// are retried a bounded number of times, as in the real crate).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 16 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Strategies drawing from explicit value lists (subset of
/// `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy selecting uniformly from a fixed list of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// Selects uniformly from `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "cannot select from an empty list");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy producing both booleans with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestRng};

    /// Alias of the crate root, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{bool, collection, sample};
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` generated inputs.
///
/// Supports the optional `#![proptest_config(expr)]` header of the real
/// crate; the attribute list of each function (including `#[test]`) is
/// passed through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..10, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_collections(
            (a, b) in (0usize..8, 0usize..8),
            v in small_vec(),
        ) {
            prop_assert!(a < 8 && b < 8);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn mapped_strategies(n in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0 && (2..10).contains(&n));
        }

        #[test]
        fn flat_mapped_strategies(v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0usize..n, 1..4))) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn sets_respect_bounds(s in prop::collection::btree_set(0u64..100, 1..6)) {
            prop_assert!(!s.is_empty() && s.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
