//! Naive O(N·n) LRU-stack reuse-distance oracle.
//!
//! Maintains the LRU stack as a plain vector and scans it linearly on each
//! access. Far too slow for real traces but unbeatable as a test oracle for
//! the Fenwick-based exact processor and the marker stack.

/// Naive reuse-distance processor (test oracle).
#[derive(Clone, Debug, Default)]
pub struct NaiveStack {
    stack: Vec<u64>,
}

impl NaiveStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one access and returns its reuse distance, or `None` for a
    /// first-ever (infinite-distance) access.
    ///
    /// The reuse distance is the number of *distinct* other lines accessed
    /// since the previous access to `line` — its 0-based depth in the LRU
    /// stack.
    pub fn access(&mut self, line: u64) -> Option<u64> {
        if let Some(pos) = self.stack.iter().position(|&l| l == line) {
            self.stack.remove(pos);
            self.stack.insert(0, line);
            Some(pos as u64)
        } else {
            self.stack.insert(0, line);
            None
        }
    }

    /// Number of distinct lines seen so far.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// Computes per-access reuse distances for an entire trace of line numbers.
pub fn reuse_distances(lines: &[u64]) -> Vec<Option<u64>> {
    let mut s = NaiveStack::new();
    lines.iter().map(|&l| s.access(l)).collect()
}

/// Counts misses of a fully associative LRU cache of `capacity` lines over
/// a trace, using Eq. (1) of the paper: an access misses iff its reuse
/// distance is `>= capacity` (cold accesses always miss).
pub fn lru_misses(lines: &[u64], capacity: usize) -> u64 {
    reuse_distances(lines)
        .into_iter()
        .filter(|d| match d {
            None => true,
            Some(d) => *d >= capacity as u64,
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Classic trace: a b c a -> distances inf, inf, inf, 2.
        let d = reuse_distances(&[1, 2, 3, 1]);
        assert_eq!(d, vec![None, None, None, Some(2)]);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let d = reuse_distances(&[5, 5, 5]);
        assert_eq!(d, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn distance_counts_distinct_not_total() {
        // a b b b a: only one distinct line (b) between the two a's.
        let d = reuse_distances(&[1, 2, 2, 2, 1]);
        assert_eq!(d.last().unwrap(), &Some(1));
    }

    #[test]
    fn lru_miss_counting() {
        // Cyclic trace over 3 lines with capacity 2: everything misses.
        let trace = [1, 2, 3, 1, 2, 3];
        assert_eq!(lru_misses(&trace, 2), 6);
        // Capacity 3: only the 3 cold misses.
        assert_eq!(lru_misses(&trace, 3), 3);
    }

    #[test]
    fn depth_tracks_distinct_lines() {
        let mut s = NaiveStack::new();
        for l in [1, 2, 1, 3, 2, 1] {
            s.access(l);
        }
        assert_eq!(s.depth(), 3);
    }
}
