//! Sampled reuse-distance estimation (SHARDS-style spatial sampling).
//!
//! The paper's §2.2 notes that full trace processing "involves a
//! significant overhead, and, recently, more lightweight techniques have
//! been developed based on hardware event sampling and statistical
//! methods". This module provides the classic spatially hashed sampling
//! estimator: only lines whose hash falls under a threshold are tracked
//! (rate `R`), distances are computed exactly *among sampled lines*, and
//! both the distance and the counts are rescaled by `1/R`. Constant
//! memory and ~`R`-fraction processing cost buy a small, quantifiable
//! estimation error.

use crate::histogram::ReuseHistogram;
use std::collections::HashMap;
use std::fmt;

/// Maximum accepted `sample_shift`: rates below `2^-31` leave too few
/// sampled lines to estimate anything.
pub const MAX_SAMPLE_SHIFT: u32 = 31;

/// Error returned by [`SampledStack::new`] for an unusably low sampling
/// rate (`sample_shift > MAX_SAMPLE_SHIFT`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleShiftError {
    /// The rejected shift (requested rate `2^-shift`).
    pub shift: u32,
}

impl fmt::Display for SampleShiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sample shift {} out of range: rate 2^-{} is too low (max shift {})",
            self.shift, self.shift, MAX_SAMPLE_SHIFT
        )
    }
}

impl std::error::Error for SampleShiftError {}

/// Splitmix64: a fast, well-distributed 64-bit hash.
#[inline]
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A sampling reuse-distance estimator.
///
/// With `sample_shift = s`, a line is tracked iff `hash(line) < 2^(64-s)`,
/// i.e. the sampling rate is `R = 2^-s`. `s = 0` tracks everything
/// (exact).
#[derive(Clone, Debug)]
pub struct SampledStack {
    threshold: u64,
    rate_inv: u64,
    /// Exact stack over sampled lines only: last-seen time + Fenwick over
    /// compressed time, reusing the exact engine.
    inner: crate::exact::ExactStack,
    sampled_lines: HashMap<u64, ()>,
    accesses: u64,
    sampled_accesses: u64,
    hist: ReuseHistogram,
}

impl SampledStack {
    /// Creates an estimator sampling `2^-sample_shift` of all lines.
    ///
    /// # Errors
    ///
    /// Returns [`SampleShiftError`] if `sample_shift > MAX_SAMPLE_SHIFT`
    /// (rate too low to be useful).
    pub fn new(sample_shift: u32) -> Result<Self, SampleShiftError> {
        if sample_shift > MAX_SAMPLE_SHIFT {
            return Err(SampleShiftError {
                shift: sample_shift,
            });
        }
        Ok(SampledStack {
            threshold: if sample_shift == 0 {
                u64::MAX
            } else {
                u64::MAX >> sample_shift
            },
            rate_inv: 1u64 << sample_shift,
            inner: crate::exact::ExactStack::new(),
            sampled_lines: HashMap::new(),
            accesses: 0,
            sampled_accesses: 0,
            hist: ReuseHistogram::new(),
        })
    }

    /// Processes one access.
    #[inline]
    pub fn access(&mut self, line: u64) {
        self.accesses += 1;
        if hash64(line) > self.threshold {
            return;
        }
        self.sampled_accesses += 1;
        self.sampled_lines.insert(line, ());
        let d = self.inner.access(line);
        // Scale the sampled distance up to the full-population estimate.
        self.hist.record(d.map(|d| d * self.rate_inv));
    }

    /// Total accesses seen (sampled or not).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that hit the sample.
    pub fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Number of distinct sampled lines.
    pub fn sampled_lines(&self) -> usize {
        self.sampled_lines.len()
    }

    /// Estimated total misses for a cache of `capacity` lines: the sampled
    /// miss count rescaled by the sampling rate.
    pub fn estimated_misses(&self, capacity: usize) -> u64 {
        self.hist.misses(capacity) * self.rate_inv
    }

    /// Estimated miss *ratio* for a cache of `capacity` lines (unbiased
    /// without rescaling, since both numerator and denominator are
    /// sampled).
    pub fn estimated_miss_ratio(&self, capacity: usize) -> f64 {
        if self.sampled_accesses == 0 {
            0.0
        } else {
            self.hist.misses(capacity) as f64 / self.sampled_accesses as f64
        }
    }

    /// The scaled reuse-distance histogram (distances are pre-multiplied
    /// by `1/R`; counts are per *sampled* access).
    pub fn histogram(&self) -> &ReuseHistogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStack;

    fn trace(len: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(77);
                (state >> 33) % universe
            })
            .collect()
    }

    #[test]
    fn shift_zero_is_exact() {
        let t = trace(5000, 200, 3);
        let mut s = SampledStack::new(0).unwrap();
        let mut hist = crate::histogram::ReuseHistogram::new();
        let mut ex = ExactStack::new();
        for &l in &t {
            s.access(l);
            hist.record(ex.access(l));
        }
        assert_eq!(s.sampled_accesses(), t.len() as u64);
        for cap in [10, 50, 100, 200, 400] {
            assert_eq!(s.estimated_misses(cap), hist.misses(cap));
        }
    }

    #[test]
    fn sampled_estimate_tracks_exact_miss_ratio() {
        // Large universe so a 1/8 sample still covers many lines.
        let t = trace(400_000, 20_000, 9);
        let mut exact = ExactStack::new();
        let mut hist = crate::histogram::ReuseHistogram::new();
        let mut sampled = SampledStack::new(3).unwrap(); // rate 1/8
        for &l in &t {
            hist.record(exact.access(l));
            sampled.access(l);
        }
        for cap in [1000usize, 4000, 12000, 20000] {
            let true_ratio = hist.misses(cap) as f64 / t.len() as f64;
            let est_ratio = sampled.estimated_miss_ratio(cap);
            let err = (true_ratio - est_ratio).abs();
            assert!(
                err < 0.03,
                "capacity {cap}: true {true_ratio:.4} vs est {est_ratio:.4}"
            );
        }
        // Roughly 1/8 of accesses processed.
        let frac = sampled.sampled_accesses() as f64 / t.len() as f64;
        assert!((frac - 0.125).abs() < 0.02, "sampling fraction {frac}");
    }

    #[test]
    fn estimated_total_misses_scale() {
        let t = trace(200_000, 10_000, 21);
        let mut hist = crate::histogram::ReuseHistogram::new();
        let mut exact = ExactStack::new();
        let mut sampled = SampledStack::new(2).unwrap(); // rate 1/4
        for &l in &t {
            hist.record(exact.access(l));
            sampled.access(l);
        }
        for cap in [2000usize, 6000] {
            let truth = hist.misses(cap) as f64;
            let est = sampled.estimated_misses(cap) as f64;
            let rel = (truth - est).abs() / truth.max(1.0);
            assert!(rel < 0.12, "capacity {cap}: {truth} vs {est} ({rel:.3})");
        }
    }

    #[test]
    fn deterministic_sampling() {
        let t = trace(10_000, 1000, 5);
        let mut a = SampledStack::new(4).unwrap();
        let mut b = SampledStack::new(4).unwrap();
        for &l in &t {
            a.access(l);
            b.access(l);
        }
        assert_eq!(a.sampled_accesses(), b.sampled_accesses());
        assert_eq!(a.estimated_misses(100), b.estimated_misses(100));
    }

    #[test]
    fn absurd_rate_rejected() {
        let err = SampledStack::new(40).unwrap_err();
        assert_eq!(err, SampleShiftError { shift: 40 });
        assert!(err.to_string().contains("too low"));
        // The boundary shift is still accepted.
        assert!(SampledStack::new(MAX_SAMPLE_SHIFT).is_ok());
    }
}
