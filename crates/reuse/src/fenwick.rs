//! Fenwick tree (binary indexed tree) over integer counts.
//!
//! Backs the exact stack-distance processor: one slot per trace position,
//! holding 1 while that position is the *most recent* access to its cache
//! line. The number of distinct lines accessed between two trace positions
//! is then a range sum.

/// A Fenwick tree over `len` slots of `u64` counts.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a zeroed tree with `len` slots (indices `0..len`).
    pub fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (in debug builds via indexing).
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..=i`.
    ///
    /// `i` must be a valid slot index (`i < len`). Debug builds assert
    /// this; release builds clamp to the last slot, returning the total —
    /// out-of-range queries are a caller bug, and the clamp merely keeps
    /// the answer monotone instead of panicking mid-experiment.
    pub fn prefix_sum(&self, i: usize) -> u64 {
        debug_assert!(
            i < self.len(),
            "prefix_sum index {i} out of range for {} slots",
            self.len()
        );
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut sum = 0u64;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of slots in `range` (half-open).
    pub fn range_sum(&self, range: std::ops::Range<usize>) -> u64 {
        if range.is_empty() {
            return 0;
        }
        let hi = self.prefix_sum(range.end - 1);
        let lo = if range.start == 0 {
            0
        } else {
            self.prefix_sum(range.start - 1)
        };
        hi.wrapping_sub(lo)
    }

    /// Sum of all slots.
    pub fn total(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }

    /// Grows the tree to at least `new_len` slots, preserving contents.
    pub fn grow(&mut self, new_len: usize) {
        if new_len <= self.len() {
            return;
        }
        // Rebuild from per-slot values (O(n log n), amortised by doubling).
        let mut values = vec![0i64; new_len];
        for (i, v) in values.iter_mut().enumerate().take(self.len()) {
            *v = self.range_sum(i..i + 1) as i64;
        }
        let mut fresh = Fenwick::new(new_len);
        for (i, &v) in values.iter().enumerate() {
            if v != 0 {
                fresh.add(i, v);
            }
        }
        *self = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 1);
        f.add(3, 2);
        f.add(9, 5);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(2), 1);
        assert_eq!(f.prefix_sum(3), 3);
        assert_eq!(f.prefix_sum(9), 8);
        assert_eq!(f.total(), 8);
    }

    #[test]
    fn range_sums() {
        let mut f = Fenwick::new(8);
        for i in 0..8 {
            f.add(i, 1);
        }
        assert_eq!(f.range_sum(0..8), 8);
        assert_eq!(f.range_sum(2..5), 3);
        assert_eq!(f.range_sum(4..4), 0);
        assert_eq!(f.range_sum(7..8), 1);
    }

    #[test]
    fn negative_deltas_remove() {
        let mut f = Fenwick::new(4);
        f.add(1, 1);
        f.add(2, 1);
        f.add(1, -1);
        assert_eq!(f.total(), 1);
        assert_eq!(f.range_sum(1..2), 0);
        assert_eq!(f.range_sum(2..3), 1);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut f = Fenwick::new(4);
        f.add(0, 3);
        f.add(3, 1);
        f.grow(16);
        assert_eq!(f.len(), 16);
        assert_eq!(f.range_sum(0..1), 3);
        assert_eq!(f.range_sum(3..4), 1);
        assert_eq!(f.total(), 4);
        f.add(15, 2);
        assert_eq!(f.total(), 6);
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn prefix_sum_out_of_range_asserts_in_debug() {
        let f = Fenwick::new(4);
        f.prefix_sum(4);
    }

    #[test]
    fn prefix_sum_last_slot_equals_total() {
        // The documented release-mode clamp target: the last valid index
        // must already cover the whole tree.
        let mut f = Fenwick::new(6);
        f.add(0, 2);
        f.add(5, 3);
        assert_eq!(f.prefix_sum(5), f.total());
    }

    #[test]
    fn matches_naive_prefix_sums() {
        // Deterministic pseudo-random adds compared against a plain array.
        let mut f = Fenwick::new(64);
        let mut naive = [0i64; 64];
        let mut state = 12345u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as usize % 64;
            let delta = ((state >> 20) % 7) as i64 - 3;
            f.add(i, delta);
            naive[i] += delta;
        }
        let mut acc = 0i64;
        for (i, &n) in naive.iter().enumerate() {
            acc += n;
            assert_eq!(f.prefix_sum(i), acc as u64, "prefix {i}");
        }
    }
}
