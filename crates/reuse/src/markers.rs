//! Marker-based stack processing (Kim et al., SIGMETRICS 1991).
//!
//! The paper chose this stack-processing algorithm "because of its constant
//! time complexity per reference" — unlike a plain LRU-stack scan, the cost
//! per reference does not depend on the reuse distance. The trick: we do
//! not need exact distances, only *hit or miss for a fixed set of cache
//! capacities*. A marker is kept at each capacity's depth in the LRU stack,
//! and each node remembers which inter-marker segment (its *group*) it lies
//! in. An access to a node in group `g` misses in exactly the capacities
//! below it (`caps[0..g]`); moving the node to the front shifts each of
//! those markers up by one list position — O(#capacities) work per
//! reference, independent of locality.
//!
//! Miss counts are kept per capacity *and per originating array*, which the
//! model uses to decompose traffic (`x`-traffic fraction, §4.5.5) and to
//! account partitions separately (Eq. 2).

use crate::fxhash::LineTable;
use crate::histogram::ReuseHistogram;
use memtrace::{Access, Array, TraceSink};

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    prev: u32,
    next: u32,
    line: u64,
    /// Number of capacities whose marker lies strictly above this node,
    /// i.e. `#{j : caps[j] < depth}`.
    group: u8,
}

/// Multi-capacity LRU hit/miss counter with locality-independent cost per
/// reference.
#[derive(Clone, Debug)]
pub struct MarkerStack {
    caps: Vec<usize>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    index: LineTable,
    head: u32,
    tail: u32,
    len: usize,
    /// Per capacity: the slot currently at depth `caps[j]`, or NIL while the
    /// stack is shorter than that.
    markers: Vec<u32>,
    /// Demand misses per capacity per array (cold misses included).
    misses: Vec<[u64; 5]>,
    /// Cold (infinite-distance) accesses per array.
    cold: [u64; 5],
    /// Accesses per array since the last counter reset.
    accesses_by_array: [u64; 5],
    accesses: u64,
}

impl MarkerStack {
    /// Creates a marker stack counting hits/misses for the given cache
    /// capacities (in lines).
    ///
    /// Capacities are sorted and deduplicated; zero capacities are
    /// rejected (a zero-line cache misses always and needs no stack).
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, contains zero, or has more than 64
    /// entries.
    pub fn new(capacities: &[usize]) -> Self {
        let mut caps = capacities.to_vec();
        caps.sort_unstable();
        caps.dedup();
        assert!(!caps.is_empty(), "need at least one capacity");
        assert!(caps[0] > 0, "capacities must be positive");
        assert!(caps.len() <= 64, "too many capacities for one stack");
        let n = caps.len();
        MarkerStack {
            caps,
            nodes: Vec::new(),
            free: Vec::new(),
            index: LineTable::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            markers: vec![NIL; n],
            misses: vec![[0; 5]; n],
            cold: [0; 5],
            accesses_by_array: [0; 5],
            accesses: 0,
        }
    }

    /// Like [`new`](Self::new), but pre-sizes the line index for an
    /// expected number of distinct lines (avoids rehashing when the
    /// footprint is known, e.g. from a [`memtrace::DataLayout`]).
    pub fn with_line_capacity(capacities: &[usize], distinct_lines: usize) -> Self {
        let mut s = Self::new(capacities);
        s.index = LineTable::with_capacity(distinct_lines);
        s.nodes.reserve(distinct_lines);
        s
    }

    /// The (sorted, deduplicated) capacities this stack tracks.
    pub fn capacities(&self) -> &[usize] {
        &self.caps
    }

    /// Total accesses since the last counter reset.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cold accesses (all arrays) since the last counter reset.
    pub fn cold_total(&self) -> u64 {
        self.cold.iter().sum()
    }

    /// Cold accesses of one array since the last counter reset.
    pub fn cold_by_array(&self, array: Array) -> u64 {
        self.cold[array as usize]
    }

    /// Accesses of one array since the last counter reset.
    pub fn accesses_by_array(&self, array: Array) -> u64 {
        self.accesses_by_array[array as usize]
    }

    /// Misses (cold included) at capacity index `j` since the last reset.
    pub fn misses(&self, j: usize) -> u64 {
        self.misses[j].iter().sum()
    }

    /// Misses at capacity index `j` attributable to `array`.
    pub fn misses_by_array(&self, j: usize, array: Array) -> u64 {
        self.misses[j][array as usize]
    }

    /// Index of a tracked capacity value, if present.
    pub fn capacity_index(&self, capacity: usize) -> Option<usize> {
        self.caps.iter().position(|&c| c == capacity)
    }

    /// Misses at the tracked capacity with value `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not one of the tracked capacities.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let j = self
            .capacity_index(capacity)
            .expect("capacity not tracked by this stack");
        self.misses(j)
    }

    /// Misses attributable to `array` at the tracked capacity value.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not one of the tracked capacities.
    pub fn misses_by_array_at(&self, capacity: usize, array: Array) -> u64 {
        let j = self
            .capacity_index(capacity)
            .expect("capacity not tracked by this stack");
        self.misses_by_array(j, array)
    }

    /// Number of distinct lines currently in the stack.
    pub fn depth(&self) -> usize {
        self.len
    }

    /// Zeroes the hit/miss/cold/access counters while keeping the stack
    /// state — used to discard the warm-up iteration, matching the paper's
    /// "model the cache behavior after a warm-up iteration".
    pub fn reset_counters(&mut self) {
        for m in &mut self.misses {
            *m = [0; 5];
        }
        self.cold = [0; 5];
        self.accesses_by_array = [0; 5];
        self.accesses = 0;
    }

    /// Processes one reference.
    pub fn access(&mut self, line: u64, array: Array) {
        self.accesses += 1;
        let ai = array as usize;
        self.accesses_by_array[ai] += 1;
        if let Some(slot) = self.index.get(line) {
            if self.head == slot {
                // Depth 1: hit everywhere, nothing moves.
                return;
            }
            let g = self.nodes[slot as usize].group as usize;
            // Miss in every capacity whose marker lies above the node.
            for j in 0..g {
                self.misses[j][ai] += 1;
                // Shift marker j up one position: the node formerly at
                // depth caps[j] - 1 will be at caps[j] after the move.
                let m = self.markers[j];
                debug_assert_ne!(m, NIL);
                self.nodes[m as usize].group += 1;
                self.markers[j] = self.nodes[m as usize].prev;
            }
            // A marker pointing at the accessed node itself (possible only
            // for the first capacity >= its depth) also retargets to the
            // node that will take its depth.
            if g < self.caps.len() && self.markers[g] == slot {
                self.markers[g] = self.nodes[slot as usize].prev;
            }
            self.unlink(slot);
            self.push_front(slot);
            self.nodes[slot as usize].group = 0;
            self.fix_depth1_markers();
        } else {
            // Cold access: misses at every capacity; the whole stack shifts
            // down, so every existing marker shifts up.
            self.cold[ai] += 1;
            for j in 0..self.caps.len() {
                self.misses[j][ai] += 1;
                let m = self.markers[j];
                if m != NIL {
                    self.nodes[m as usize].group += 1;
                    self.markers[j] = self.nodes[m as usize].prev;
                }
            }
            let slot = self.alloc(line);
            self.push_front(slot);
            self.len += 1;
            self.index.insert(line, slot);
            debug_assert!(
                self.len < u32::MAX as usize,
                "line universe overflows u32 slots"
            );
            self.fix_depth1_markers();
            // Markers spring into existence when the stack first reaches
            // their capacity: the tail is then exactly at that depth.
            for j in 0..self.caps.len() {
                if self.markers[j] == NIL && self.len == self.caps[j] {
                    self.markers[j] = self.tail;
                }
            }
        }
    }

    /// Restores markers orphaned by a `prev`-of-head shift: only a
    /// capacity of 1 can be affected, and its marker is the new head.
    fn fix_depth1_markers(&mut self) {
        if self.caps[0] == 1 && self.markers[0] == NIL && self.len >= 1 {
            self.markers[0] = self.head;
        }
    }

    /// Distils one array's counters into a reuse-distance histogram that
    /// is **exact at every tracked capacity**.
    ///
    /// An access classified into inter-marker group `g` has a true
    /// distance `d` with `caps[g-1] <= d < caps[g]`; the histogram
    /// records it at the representative distance `caps[g-1]` (0 for
    /// accesses that hit at every capacity, infinite for cold ones). For
    /// any tracked capacity `c`, `histogram.misses(c)` then equals the
    /// marker counter exactly; between tracked capacities the curve is a
    /// step-function approximation. This is how the streaming profile
    /// pipeline routes the Kim et al. counter under evaluate-compatible
    /// histograms: a way sweep pays O(#capacities) per reference instead
    /// of the exact processor's O(log N) Fenwick updates.
    pub fn quantized_histogram(&self, array: Array) -> ReuseHistogram {
        let ai = array as usize;
        let n = self.caps.len();
        let total = self.accesses_by_array[ai];
        let cold = self.cold[ai];
        let mut h = ReuseHistogram::new();
        // Hits at every capacity: distance below caps[0].
        h.record_n(Some(0), total - self.misses[0][ai]);
        // Between adjacent capacities: misses at caps[j], hits at caps[j+1].
        for j in 0..n - 1 {
            h.record_n(
                Some(self.caps[j] as u64),
                self.misses[j][ai] - self.misses[j + 1][ai],
            );
        }
        // Warm misses beyond the largest capacity, then the cold tail.
        h.record_n(Some(self.caps[n - 1] as u64), self.misses[n - 1][ai] - cold);
        h.record_n(None, cold);
        h
    }

    /// Reports this stack's accumulated statistics to the telemetry
    /// counters (`reuse.marker.*`, `reuse.linetable.*`). No-op when
    /// telemetry is disabled; everything reported is state the stack
    /// tracks anyway, so the per-reference path never touches obs.
    pub fn flush_obs(&self) {
        if !obs::enabled() {
            return;
        }
        let cold = self.cold_total();
        obs::add("reuse.marker.accesses", self.accesses);
        obs::add("reuse.marker.cold", cold);
        obs::add(
            "reuse.marker.warm_accesses",
            self.accesses.saturating_sub(cold),
        );
        obs::observe("reuse.marker.depth", self.len as u64);
        let probes = self.index.probe_stats();
        obs::add("reuse.linetable.entries", probes.entries);
        obs::add(
            "reuse.linetable.displacement_total",
            probes.total_displacement,
        );
        obs::gauge_max("reuse.linetable.displacement_max", probes.max_displacement);
        obs::gauge_max("reuse.linetable.slots_max", probes.slots);
    }

    fn alloc(&mut self, line: u64) -> u32 {
        if let Some(slot) = self.free.pop() {
            let n = &mut self.nodes[slot as usize];
            n.line = line;
            n.group = 0;
            slot
        } else {
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                line,
                group: 0,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.nodes[slot as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    /// Debug helper: walks the list and checks all structural invariants
    /// (marker depths, group labels). O(n); test use only.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut depth = 0usize;
        let mut slot = self.head;
        let mut prev = NIL;
        while slot != NIL {
            depth += 1;
            let n = &self.nodes[slot as usize];
            assert_eq!(n.prev, prev, "prev link broken at depth {depth}");
            let expected_group = self.caps.iter().filter(|&&c| c < depth).count();
            assert_eq!(
                n.group as usize, expected_group,
                "group label wrong at depth {depth} (line {})",
                n.line
            );
            for (j, &m) in self.markers.iter().enumerate() {
                if m == slot {
                    assert_eq!(depth, self.caps[j], "marker {j} at wrong depth");
                }
            }
            prev = slot;
            slot = n.next;
        }
        assert_eq!(depth, self.len, "length mismatch");
        assert_eq!(self.tail, prev, "tail mismatch");
        for (j, &m) in self.markers.iter().enumerate() {
            if self.len >= self.caps[j] {
                assert_ne!(m, NIL, "marker {j} missing although stack is deep enough");
            } else {
                assert_eq!(m, NIL, "marker {j} present although stack is shallow");
            }
        }
    }
}

impl TraceSink for MarkerStack {
    #[inline]
    fn access(&mut self, access: Access) {
        MarkerStack::access(self, access.line, access.array);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStack;
    use crate::histogram::ReuseHistogram;

    fn pseudorandom_trace(len: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % universe
            })
            .collect()
    }

    fn compare_with_exact(trace: &[u64], caps: &[usize]) {
        let mut ms = MarkerStack::new(caps);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for &l in trace {
            ms.access(l, Array::X);
            hist.record(ex.access(l));
        }
        for (j, &c) in ms.capacities().to_vec().iter().enumerate() {
            assert_eq!(ms.misses(j), hist.misses(c), "capacity {c}");
        }
        assert_eq!(ms.cold_total(), hist.cold());
        ms.check_invariants();
    }

    #[test]
    fn matches_exact_small_universe() {
        let trace = pseudorandom_trace(3000, 50, 3);
        compare_with_exact(&trace, &[1, 2, 8, 16, 40, 64]);
    }

    #[test]
    fn matches_exact_large_universe() {
        let trace = pseudorandom_trace(2000, 5000, 17);
        compare_with_exact(&trace, &[4, 100, 1000, 4096]);
    }

    #[test]
    fn matches_exact_sequential_streaming() {
        // Pure streaming: every access cold.
        let trace: Vec<u64> = (0..500).collect();
        compare_with_exact(&trace, &[1, 10, 100]);
    }

    #[test]
    fn matches_exact_cyclic() {
        // Cyclic reuse just above/below capacities.
        let trace: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        compare_with_exact(&trace, &[9, 10, 11]);
    }

    #[test]
    fn capacity_one() {
        // Only immediate re-references hit with capacity 1.
        let trace = [1, 1, 2, 2, 2, 1, 3, 3];
        let mut ms = MarkerStack::new(&[1]);
        for &l in &trace {
            ms.access(l, Array::Y);
        }
        // Misses: 1(cold), 2(cold), 1(dist 1), 3(cold) -> 4; hits: 4.
        assert_eq!(ms.misses(0), 4);
        assert_eq!(ms.cold_total(), 3);
        ms.check_invariants();
    }

    #[test]
    fn per_array_attribution() {
        let mut ms = MarkerStack::new(&[2]);
        ms.access(0, Array::X); // cold
        ms.access(100, Array::A); // cold
        ms.access(200, Array::A); // cold
        ms.access(0, Array::X); // distance 2 -> miss at cap 2
        assert_eq!(ms.misses_by_array(0, Array::X), 2);
        assert_eq!(ms.misses_by_array(0, Array::A), 2);
        assert_eq!(ms.cold_by_array(Array::X), 1);
        assert_eq!(ms.cold_by_array(Array::A), 2);
    }

    #[test]
    fn reset_counters_keeps_stack_state() {
        let mut ms = MarkerStack::new(&[4]);
        for l in 0..10u64 {
            ms.access(l, Array::X);
        }
        ms.reset_counters();
        assert_eq!(ms.misses(0), 0);
        assert_eq!(ms.accesses(), 0);
        // Line 9 is at depth 1: hit; line 0 is at depth 10: miss, not cold.
        ms.access(9, Array::X);
        ms.access(0, Array::X);
        assert_eq!(ms.misses(0), 1);
        assert_eq!(ms.cold_total(), 0);
        ms.check_invariants();
    }

    #[test]
    fn invariants_hold_during_mixed_workload() {
        let trace = pseudorandom_trace(400, 30, 9);
        let mut ms = MarkerStack::new(&[1, 3, 7, 20]);
        for (i, &l) in trace.iter().enumerate() {
            ms.access(l, Array::ColIdx);
            if i % 37 == 0 {
                ms.check_invariants();
            }
        }
        ms.check_invariants();
    }

    #[test]
    fn misses_at_by_capacity_value() {
        let mut ms = MarkerStack::new(&[8, 2]);
        for l in [1, 2, 3, 1] {
            ms.access(l, Array::X);
        }
        // Distance of final access to 1 is 2: miss at cap 2, hit at cap 8.
        assert_eq!(ms.misses_at(2), 4); // 3 cold + 1
        assert_eq!(ms.misses_at(8), 3); // cold only
    }

    #[test]
    fn quantized_histogram_exact_at_tracked_capacities() {
        let trace = pseudorandom_trace(3000, 120, 5);
        let caps = [1, 4, 16, 64, 128];
        let mut ms = MarkerStack::new(&caps);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for &l in &trace {
            ms.access(l, Array::A);
            hist.record(ex.access(l));
        }
        let q = ms.quantized_histogram(Array::A);
        assert_eq!(q.total(), hist.total());
        assert_eq!(q.cold(), hist.cold());
        for &c in &caps {
            assert_eq!(q.misses(c), hist.misses(c), "capacity {c}");
        }
        // Arrays that never appeared produce an empty histogram.
        assert_eq!(ms.quantized_histogram(Array::X).total(), 0);
    }

    #[test]
    fn quantized_histogram_steps_conservatively_between_capacities() {
        // Between tracked capacities the quantized curve must report the
        // miss count of the next tracked capacity (distances are rounded
        // down to the representative), never fewer misses than reality.
        let trace = pseudorandom_trace(2000, 60, 11);
        let caps = [2, 8, 32];
        let mut ms = MarkerStack::new(&caps);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for &l in &trace {
            ms.access(l, Array::X);
            hist.record(ex.access(l));
        }
        let q = ms.quantized_histogram(Array::X);
        for c in 3..=8 {
            assert_eq!(q.misses(c), hist.misses(8), "capacity {c}");
            assert!(q.misses(c) <= hist.misses(c));
        }
    }

    #[test]
    fn quantized_histogram_partitions_by_array() {
        let mut ms = MarkerStack::new(&[2, 4]);
        for (l, a) in [
            (0, Array::X),
            (10, Array::A),
            (20, Array::A),
            (0, Array::X),
            (30, Array::Y),
            (10, Array::A),
        ] {
            ms.access(l, a);
        }
        let qx = ms.quantized_histogram(Array::X);
        let qa = ms.quantized_histogram(Array::A);
        let qy = ms.quantized_histogram(Array::Y);
        assert_eq!(qx.total() + qa.total() + qy.total(), ms.accesses());
        assert_eq!(qx.cold() + qa.cold() + qy.cold(), ms.cold_total());
        for (j, &c) in ms.capacities().to_vec().iter().enumerate() {
            assert_eq!(
                qx.misses(c) + qa.misses(c) + qy.misses(c),
                ms.misses(j),
                "capacity {c}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity not tracked")]
    fn misses_at_unknown_capacity_panics() {
        let ms = MarkerStack::new(&[2]);
        ms.misses_at(3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        MarkerStack::new(&[0, 4]);
    }
}
