//! Marker-based stack processing (Kim et al., SIGMETRICS 1991).
//!
//! The paper chose this stack-processing algorithm "because of its constant
//! time complexity per reference" — unlike a plain LRU-stack scan, the cost
//! per reference does not depend on the reuse distance. The trick: we do
//! not need exact distances, only *hit or miss for a fixed set of cache
//! capacities*. A marker is kept at each capacity's depth in the LRU stack,
//! and each node remembers which inter-marker segment (its *group*) it lies
//! in. An access to a node in group `g` misses in exactly the capacities
//! below it (`caps[0..g]`); moving the node to the front shifts each of
//! those markers up by one list position — O(#capacities) work per
//! reference, independent of locality.
//!
//! Miss counts are kept per capacity *and per originating array*, which the
//! model uses to decompose traffic (`x`-traffic fraction, §4.5.5) and to
//! account partitions separately (Eq. 2).

use crate::fxhash::{LineTable, ProbeStats, PROBE_ABSENT};
use crate::histogram::ReuseHistogram;
use memtrace::{Access, AccessBlock, Array, BlockSink, PackedAccess, TraceSink, BLOCK_REFS};

const NIL: u32 = u32::MAX;

/// The stack's line → node map. Two representations:
///
/// * `Hash` — the open-addressing [`LineTable`], for arbitrary `u64`
///   line universes (the general-purpose default);
/// * `Dense` — a flat `Vec<u32>` indexed by line id directly. A
///   [`memtrace::DataLayout`] packs the five arrays' lines into a dense
///   `0..total_lines` range, so when the caller knows that bound the
///   probe collapses to a single indexed load: no hashing, no collision
///   chains, no growth. On the block-batched pipeline this removes what
///   profiling showed to be the single largest per-reference cost.
#[derive(Clone, Debug)]
enum LineIndex {
    Hash(LineTable),
    Dense {
        slots: Vec<u32>,
        len: usize,
        probe_refs: u64,
    },
}

impl LineIndex {
    #[inline]
    fn get(&self, line: u64) -> u32 {
        match self {
            LineIndex::Hash(t) => t.get(line).unwrap_or(PROBE_ABSENT),
            LineIndex::Dense { slots, .. } => slots[line as usize],
        }
    }

    #[inline]
    fn insert(&mut self, line: u64, slot: u32) {
        match self {
            LineIndex::Hash(t) => {
                t.insert(line, slot);
            }
            LineIndex::Dense { slots, len, .. } => {
                debug_assert_eq!(slots[line as usize], PROBE_ABSENT, "line already mapped");
                slots[line as usize] = slot;
                *len += 1;
            }
        }
    }

    fn rehashes(&self) -> u64 {
        match self {
            LineIndex::Hash(t) => t.rehashes(),
            LineIndex::Dense { .. } => 0,
        }
    }

    fn block_probe_refs(&self) -> u64 {
        match self {
            LineIndex::Hash(t) => t.block_probe_refs(),
            LineIndex::Dense { probe_refs, .. } => *probe_refs,
        }
    }

    fn block_probe_steps(&self) -> u64 {
        match self {
            LineIndex::Hash(t) => t.block_probe_steps(),
            // A dense probe is always exactly one slot inspection.
            LineIndex::Dense { probe_refs, .. } => *probe_refs,
        }
    }

    fn probe_stats(&self) -> ProbeStats {
        match self {
            LineIndex::Hash(t) => t.probe_stats(),
            LineIndex::Dense { slots, len, .. } => ProbeStats {
                entries: *len as u64,
                slots: slots.len() as u64,
                total_displacement: 0,
                max_displacement: 0,
            },
        }
    }
}

// The node does NOT store its line: the line → node index is never walked
// backwards (hits arrive with the slot already resolved), so keeping the
// node at 12 bytes roughly halves the LRU list's cache traffic.
#[derive(Clone, Debug)]
struct Node {
    prev: u32,
    next: u32,
    /// Number of capacities whose marker lies strictly above this node,
    /// i.e. `#{j : caps[j] < depth}`.
    group: u8,
}

/// Multi-capacity LRU hit/miss counter with locality-independent cost per
/// reference.
#[derive(Clone, Debug)]
pub struct MarkerStack {
    caps: Vec<usize>,
    nodes: Vec<Node>,
    index: LineIndex,
    head: u32,
    tail: u32,
    len: usize,
    /// Per capacity: the slot currently at depth `caps[j]`, or NIL while the
    /// stack is shorter than that.
    markers: Vec<u32>,
    /// Demand misses per capacity per array (cold misses included).
    misses: Vec<[u64; 5]>,
    /// Cold (infinite-distance) accesses per array.
    cold: [u64; 5],
    /// Accesses per array since the last counter reset.
    accesses_by_array: [u64; 5],
    accesses: u64,
}

impl MarkerStack {
    /// Creates a marker stack counting hits/misses for the given cache
    /// capacities (in lines).
    ///
    /// Capacities are sorted and deduplicated; zero capacities are
    /// rejected (a zero-line cache misses always and needs no stack).
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, contains zero, or has more than 64
    /// entries.
    pub fn new(capacities: &[usize]) -> Self {
        let mut caps = capacities.to_vec();
        caps.sort_unstable();
        caps.dedup();
        assert!(!caps.is_empty(), "need at least one capacity");
        assert!(caps[0] > 0, "capacities must be positive");
        assert!(caps.len() <= 64, "too many capacities for one stack");
        let n = caps.len();
        MarkerStack {
            caps,
            nodes: Vec::new(),
            index: LineIndex::Hash(LineTable::new()),
            head: NIL,
            tail: NIL,
            len: 0,
            markers: vec![NIL; n],
            misses: vec![[0; 5]; n],
            cold: [0; 5],
            accesses_by_array: [0; 5],
            accesses: 0,
        }
    }

    /// Like [`new`](Self::new), but pre-sizes the line index for an
    /// expected number of distinct lines (avoids rehashing when the
    /// footprint is known, e.g. from a [`memtrace::DataLayout`]).
    pub fn with_line_capacity(capacities: &[usize], distinct_lines: usize) -> Self {
        let mut s = Self::new(capacities);
        s.index = LineIndex::Hash(LineTable::with_capacity(distinct_lines));
        s.nodes.reserve(distinct_lines);
        s
    }

    /// Like [`new`](Self::new), but for callers that know every line id
    /// is below `total_lines` (a [`memtrace::DataLayout`] numbers lines
    /// densely as `0..total_lines`). The line index then becomes a flat
    /// direct-mapped array: each lookup is a single indexed load instead
    /// of a hash probe, which profiling shows is the largest single
    /// per-reference cost of the block pipeline. Memory is 4 bytes per
    /// line of the universe, touched lines or not.
    ///
    /// Accessing a line `>= total_lines` panics (index out of bounds);
    /// use [`new`](Self::new) / [`with_line_capacity`](Self::with_line_capacity)
    /// for unbounded universes.
    pub fn with_line_universe(capacities: &[usize], total_lines: usize) -> Self {
        let mut s = Self::new(capacities);
        s.index = LineIndex::Dense {
            slots: vec![PROBE_ABSENT; total_lines],
            len: 0,
            probe_refs: 0,
        };
        s
    }

    /// The (sorted, deduplicated) capacities this stack tracks.
    pub fn capacities(&self) -> &[usize] {
        &self.caps
    }

    /// Total accesses since the last counter reset.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cold accesses (all arrays) since the last counter reset.
    pub fn cold_total(&self) -> u64 {
        self.cold.iter().sum()
    }

    /// Cold accesses of one array since the last counter reset.
    pub fn cold_by_array(&self, array: Array) -> u64 {
        self.cold[array as usize]
    }

    /// Accesses of one array since the last counter reset.
    pub fn accesses_by_array(&self, array: Array) -> u64 {
        self.accesses_by_array[array as usize]
    }

    /// Misses (cold included) at capacity index `j` since the last reset.
    pub fn misses(&self, j: usize) -> u64 {
        self.misses[j].iter().sum()
    }

    /// Misses at capacity index `j` attributable to `array`.
    pub fn misses_by_array(&self, j: usize, array: Array) -> u64 {
        self.misses[j][array as usize]
    }

    /// Index of a tracked capacity value, if present.
    pub fn capacity_index(&self, capacity: usize) -> Option<usize> {
        self.caps.iter().position(|&c| c == capacity)
    }

    /// Misses at the tracked capacity with value `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not one of the tracked capacities.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let j = self
            .capacity_index(capacity)
            .expect("capacity not tracked by this stack");
        self.misses(j)
    }

    /// Misses attributable to `array` at the tracked capacity value.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not one of the tracked capacities.
    pub fn misses_by_array_at(&self, capacity: usize, array: Array) -> u64 {
        let j = self
            .capacity_index(capacity)
            .expect("capacity not tracked by this stack");
        self.misses_by_array(j, array)
    }

    /// Number of distinct lines currently in the stack.
    pub fn depth(&self) -> usize {
        self.len
    }

    /// Rebuilds the exact stack state a full replay of a reference stream
    /// would leave behind, from nothing but the stream's distinct lines in
    /// most-recently-accessed-first order. Counters stay zero, as after
    /// [`reset_counters`](Self::reset_counters).
    ///
    /// Why this is sufficient: every access (re-reference or cold insert)
    /// moves its line to the front of the LRU list, so the post-replay
    /// list *is* the last-access order; marker `j` is maintained at depth
    /// exactly `caps[j]` whenever the stack is that deep, and each node's
    /// group label equals the number of capacities above its depth — both
    /// pure functions of the final order. Replacing a warm-up replay (a
    /// full stack simulation per reference) with a seed from a cheap
    /// last-access-position scan is therefore byte-identical, and turns
    /// the warm-up from O(refs · caps) stack work into O(distinct lines).
    ///
    /// # Panics
    ///
    /// Panics if the stack is not empty.
    pub fn seed_lru(&mut self, lines_most_recent_first: &[u64]) {
        assert!(self.len == 0, "seed_lru requires an empty stack");
        let n = lines_most_recent_first.len();
        self.nodes.reserve(n);
        // caps is sorted: advance `group` as depth passes each capacity.
        let mut group = 0u8;
        for (i, &line) in lines_most_recent_first.iter().enumerate() {
            let depth = i + 1;
            while (group as usize) < self.caps.len() && self.caps[group as usize] < depth {
                group += 1;
            }
            let slot = i as u32;
            self.nodes.push(Node {
                prev: if i == 0 { NIL } else { slot - 1 },
                next: if i + 1 == n { NIL } else { slot + 1 },
                group,
            });
            self.index.insert(line, slot);
        }
        self.len = n;
        self.head = if n == 0 { NIL } else { 0 };
        self.tail = if n == 0 { NIL } else { (n - 1) as u32 };
        for (j, &c) in self.caps.iter().enumerate() {
            self.markers[j] = if n >= c { (c - 1) as u32 } else { NIL };
        }
        debug_assert!(n < u32::MAX as usize, "line universe overflows u32 slots");
    }

    /// Zeroes the hit/miss/cold/access counters while keeping the stack
    /// state — used to discard the warm-up iteration, matching the paper's
    /// "model the cache behavior after a warm-up iteration".
    pub fn reset_counters(&mut self) {
        for m in &mut self.misses {
            *m = [0; 5];
        }
        self.cold = [0; 5];
        self.accesses_by_array = [0; 5];
        self.accesses = 0;
    }

    /// Processes one reference.
    pub fn access(&mut self, line: u64, array: Array) {
        self.accesses += 1;
        let ai = array as usize;
        self.accesses_by_array[ai] += 1;
        let slot = self.index.get(line);
        if slot != PROBE_ABSENT {
            self.hit(slot, ai);
        } else {
            self.cold_insert(line, ai);
        }
    }

    /// Processes a block of packed references — the block-batched hot
    /// path. Equivalent to calling [`access`](Self::access) per reference
    /// in order, but the line-index lookups go through the bulk
    /// [`LineTable::probe_block`], which hoists the hash/mask arithmetic
    /// out of the per-reference loop.
    ///
    /// Correctness of the pre-probe: a node id, once assigned to a line,
    /// never changes (nodes are never freed and the index is never
    /// re-pointed), so a hint probed at block start stays valid however
    /// many stack reorderings happen before it is consumed. Only an
    /// *absent* hint can go stale — a line cold at probe time may be
    /// inserted by an earlier reference of the same block — so the miss
    /// path re-checks the index before counting a cold access.
    pub fn access_block(&mut self, refs: &[PackedAccess]) {
        if matches!(self.index, LineIndex::Dense { .. }) {
            // Dense mode: a probe is already a single indexed load, so
            // bulk hashing buys nothing — go straight through the
            // per-reference loop. The refs still count as bulk-probed
            // (one step each) so the block path's telemetry contract
            // (`block_probe_refs > 0`, `steps >= refs`) holds in both
            // index modes.
            if let LineIndex::Dense { probe_refs, .. } = &mut self.index {
                *probe_refs += refs.len() as u64;
            }
            self.accesses += refs.len() as u64;
            for &p in refs {
                let ai = p.array() as usize;
                self.accesses_by_array[ai] += 1;
                let line = p.line();
                let slot = self.index.get(line);
                if slot != PROBE_ABSENT {
                    self.hit(slot, ai);
                } else {
                    self.cold_insert(line, ai);
                }
            }
            return;
        }
        let mut lines = [0u64; BLOCK_REFS];
        let mut hints = [0u32; BLOCK_REFS];
        for chunk in refs.chunks(BLOCK_REFS) {
            let n = chunk.len();
            for (l, p) in lines[..n].iter_mut().zip(chunk) {
                *l = p.line();
            }
            match &mut self.index {
                LineIndex::Hash(t) => t.probe_block(&lines[..n], &mut hints[..n]),
                LineIndex::Dense { .. } => unreachable!("dense mode handled above"),
            }
            self.accesses += n as u64;
            for ((&line, &hint), &p) in lines[..n].iter().zip(&hints[..n]).zip(chunk) {
                let ai = p.array() as usize;
                self.accesses_by_array[ai] += 1;
                if hint != PROBE_ABSENT {
                    self.hit(hint, ai);
                } else {
                    let slot = self.index.get(line);
                    if slot != PROBE_ABSENT {
                        self.hit(slot, ai);
                    } else {
                        self.cold_insert(line, ai);
                    }
                }
            }
        }
    }

    /// Re-reference of the line stored at node `slot`.
    #[inline]
    fn hit(&mut self, slot: u32, ai: usize) {
        if self.head == slot {
            // Depth 1: hit everywhere, nothing moves.
            return;
        }
        let g = self.nodes[slot as usize].group as usize;
        // Miss in every capacity whose marker lies above the node.
        for j in 0..g {
            self.misses[j][ai] += 1;
            // Shift marker j up one position: the node formerly at
            // depth caps[j] - 1 will be at caps[j] after the move.
            let m = self.markers[j];
            debug_assert_ne!(m, NIL);
            self.nodes[m as usize].group += 1;
            self.markers[j] = self.nodes[m as usize].prev;
        }
        // A marker pointing at the accessed node itself (possible only
        // for the first capacity >= its depth) also retargets to the
        // node that will take its depth.
        if g < self.caps.len() && self.markers[g] == slot {
            self.markers[g] = self.nodes[slot as usize].prev;
        }
        self.unlink(slot);
        self.push_front(slot);
        self.nodes[slot as usize].group = 0;
        self.fix_depth1_markers();
    }

    /// First-ever reference of `line`: misses at every capacity; the
    /// whole stack shifts down, so every existing marker shifts up.
    fn cold_insert(&mut self, line: u64, ai: usize) {
        self.cold[ai] += 1;
        for j in 0..self.caps.len() {
            self.misses[j][ai] += 1;
            let m = self.markers[j];
            if m != NIL {
                self.nodes[m as usize].group += 1;
                self.markers[j] = self.nodes[m as usize].prev;
            }
        }
        let slot = self.alloc();
        self.push_front(slot);
        self.len += 1;
        self.index.insert(line, slot);
        debug_assert!(
            self.len < u32::MAX as usize,
            "line universe overflows u32 slots"
        );
        self.fix_depth1_markers();
        // Markers spring into existence when the stack first reaches
        // their capacity: the tail is then exactly at that depth.
        for j in 0..self.caps.len() {
            if self.markers[j] == NIL && self.len == self.caps[j] {
                self.markers[j] = self.tail;
            }
        }
    }

    /// Restores markers orphaned by a `prev`-of-head shift: only a
    /// capacity of 1 can be affected, and its marker is the new head.
    fn fix_depth1_markers(&mut self) {
        if self.caps[0] == 1 && self.markers[0] == NIL && self.len >= 1 {
            self.markers[0] = self.head;
        }
    }

    /// Distils one array's counters into a reuse-distance histogram that
    /// is **exact at every tracked capacity**.
    ///
    /// An access classified into inter-marker group `g` has a true
    /// distance `d` with `caps[g-1] <= d < caps[g]`; the histogram
    /// records it at the representative distance `caps[g-1]` (0 for
    /// accesses that hit at every capacity, infinite for cold ones). For
    /// any tracked capacity `c`, `histogram.misses(c)` then equals the
    /// marker counter exactly; between tracked capacities the curve is a
    /// step-function approximation. This is how the streaming profile
    /// pipeline routes the Kim et al. counter under evaluate-compatible
    /// histograms: a way sweep pays O(#capacities) per reference instead
    /// of the exact processor's O(log N) Fenwick updates.
    pub fn quantized_histogram(&self, array: Array) -> ReuseHistogram {
        histogram_from(
            &self.caps,
            &self.misses,
            &self.cold,
            &self.accesses_by_array,
            array,
        )
    }

    /// Snapshots the per-capacity counters backing
    /// [`quantized_histogram`](Self::quantized_histogram) — the mergeable
    /// form used by sharded profile computation: each shard tracks a
    /// subset of the capacity grid against the same stream, and
    /// [`QuantizedCounts::concat`] splices the subsets back together.
    pub fn counts(&self) -> QuantizedCounts {
        QuantizedCounts {
            caps: self.caps.clone(),
            misses: self.misses.clone(),
            cold: self.cold,
            accesses_by_array: self.accesses_by_array,
        }
    }

    /// Reports this stack's accumulated statistics to the telemetry
    /// counters (`reuse.marker.*`, `reuse.linetable.*`). No-op when
    /// telemetry is disabled; everything reported is state the stack
    /// tracks anyway, so the per-reference path never touches obs.
    pub fn flush_obs(&self) {
        if !obs::enabled() {
            return;
        }
        let cold = self.cold_total();
        obs::add("reuse.marker.accesses", self.accesses);
        obs::add("reuse.marker.cold", cold);
        obs::add(
            "reuse.marker.warm_accesses",
            self.accesses.saturating_sub(cold),
        );
        obs::observe("reuse.marker.depth", self.len as u64);
        let probes = self.index.probe_stats();
        obs::add("reuse.linetable.entries", probes.entries);
        obs::add(
            "reuse.linetable.displacement_total",
            probes.total_displacement,
        );
        obs::gauge_max("reuse.linetable.displacement_max", probes.max_displacement);
        obs::gauge_max("reuse.linetable.slots_max", probes.slots);
        obs::add("reuse.linetable.rehashes", self.index.rehashes());
        obs::add(
            "reuse.linetable.block_probe_refs",
            self.index.block_probe_refs(),
        );
        obs::add(
            "reuse.linetable.block_probe_steps",
            self.index.block_probe_steps(),
        );
    }

    /// Times the line index grew (rehashing every entry) over this
    /// stack's lifetime; 0 when the index was pre-sized correctly via
    /// [`with_line_capacity`](Self::with_line_capacity).
    pub fn index_rehashes(&self) -> u64 {
        self.index.rehashes()
    }

    fn alloc(&mut self) -> u32 {
        // Lines are never evicted from the stack, so nodes are never
        // freed and a node id stays valid for the stack's lifetime (the
        // stability that lets `access_block` pre-probe a whole block).
        self.nodes.push(Node {
            prev: NIL,
            next: NIL,
            group: 0,
        });
        (self.nodes.len() - 1) as u32
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.nodes[slot as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    /// Debug helper: walks the list and checks all structural invariants
    /// (marker depths, group labels). O(n); test use only.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut depth = 0usize;
        let mut slot = self.head;
        let mut prev = NIL;
        while slot != NIL {
            depth += 1;
            let n = &self.nodes[slot as usize];
            assert_eq!(n.prev, prev, "prev link broken at depth {depth}");
            let expected_group = self.caps.iter().filter(|&&c| c < depth).count();
            assert_eq!(
                n.group as usize, expected_group,
                "group label wrong at depth {depth}"
            );
            for (j, &m) in self.markers.iter().enumerate() {
                if m == slot {
                    assert_eq!(depth, self.caps[j], "marker {j} at wrong depth");
                }
            }
            prev = slot;
            slot = n.next;
        }
        assert_eq!(depth, self.len, "length mismatch");
        assert_eq!(self.tail, prev, "tail mismatch");
        for (j, &m) in self.markers.iter().enumerate() {
            if self.len >= self.caps[j] {
                assert_ne!(m, NIL, "marker {j} missing although stack is deep enough");
            } else {
                assert_eq!(m, NIL, "marker {j} present although stack is shallow");
            }
        }
    }
}

impl TraceSink for MarkerStack {
    #[inline]
    fn access(&mut self, access: Access) {
        MarkerStack::access(self, access.line, access.array);
    }
}

impl BlockSink for MarkerStack {
    #[inline]
    fn consume(&mut self, block: &AccessBlock) {
        self.access_block(block.refs());
    }
}

/// Builds the quantized histogram of one array from marker counters —
/// the single construction shared by [`MarkerStack::quantized_histogram`]
/// and [`QuantizedCounts::histogram`], so direct and shard-merged
/// profiles produce bit-identical histograms by construction.
fn histogram_from(
    caps: &[usize],
    misses: &[[u64; 5]],
    cold_by_array: &[u64; 5],
    accesses_by_array: &[u64; 5],
    array: Array,
) -> ReuseHistogram {
    let ai = array as usize;
    let n = caps.len();
    debug_assert!(n > 0, "quantized histogram needs at least one capacity");
    let total = accesses_by_array[ai];
    let cold = cold_by_array[ai];
    let mut h = ReuseHistogram::new();
    // Hits at every capacity: distance below caps[0].
    h.record_n(Some(0), total - misses[0][ai]);
    // Between adjacent capacities: misses at caps[j], hits at caps[j+1].
    for j in 0..n - 1 {
        h.record_n(Some(caps[j] as u64), misses[j][ai] - misses[j + 1][ai]);
    }
    // Warm misses beyond the largest capacity, then the cold tail.
    h.record_n(Some(caps[n - 1] as u64), misses[n - 1][ai] - cold);
    h.record_n(None, cold);
    h
}

/// A [`MarkerStack`]'s per-capacity counters in mergeable form.
///
/// The marker algorithm's miss count at a capacity `c` depends only on
/// the reference stream, not on which *other* capacities the same stack
/// happens to track (each marker is maintained independently at its own
/// depth). Sharded profile computation exploits exactly that: the
/// capacity grid is split across shards, every shard replays the same
/// stream through a stack tracking only its slice, and concatenating the
/// slices' counters reproduces the unsharded stack's counters
/// bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantizedCounts {
    /// Tracked capacities, sorted ascending.
    pub caps: Vec<usize>,
    /// `misses[j][array]`: demand misses (cold included) at `caps[j]`.
    pub misses: Vec<[u64; 5]>,
    /// Cold (first-reference) accesses per array.
    pub cold: [u64; 5],
    /// Accesses per array.
    pub accesses_by_array: [u64; 5],
}

impl QuantizedCounts {
    /// Distils one array's counters into the quantized reuse-distance
    /// histogram — identical to [`MarkerStack::quantized_histogram`] on
    /// the stack these counts were (or could have been) taken from.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty (debug builds).
    pub fn histogram(&self, array: Array) -> ReuseHistogram {
        histogram_from(
            &self.caps,
            &self.misses,
            &self.cold,
            &self.accesses_by_array,
            array,
        )
    }

    /// Splices capacity-sharded counts back into one grid.
    ///
    /// The parts must hold disjoint, ascending capacity slices (in shard
    /// order) of one stream's grid; the per-array access and cold tallies
    /// must agree across parts, since every shard saw the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, capacities are not strictly ascending
    /// across the concatenation, or the tallies disagree.
    pub fn concat<I: IntoIterator<Item = QuantizedCounts>>(parts: I) -> QuantizedCounts {
        let mut it = parts.into_iter();
        let mut out = it.next().expect("at least one shard");
        for part in it {
            assert_eq!(
                part.cold, out.cold,
                "shards of one stream must agree on cold counts"
            );
            assert_eq!(
                part.accesses_by_array, out.accesses_by_array,
                "shards of one stream must agree on access counts"
            );
            let hi = *out.caps.last().expect("non-empty shard slice");
            let lo = *part.caps.first().expect("non-empty shard slice");
            assert!(hi < lo, "shard capacity slices must ascend");
            out.caps.extend_from_slice(&part.caps);
            out.misses.extend_from_slice(&part.misses);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStack;
    use crate::histogram::ReuseHistogram;

    fn pseudorandom_trace(len: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % universe
            })
            .collect()
    }

    fn compare_with_exact(trace: &[u64], caps: &[usize]) {
        let mut ms = MarkerStack::new(caps);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for &l in trace {
            ms.access(l, Array::X);
            hist.record(ex.access(l));
        }
        for (j, &c) in ms.capacities().to_vec().iter().enumerate() {
            assert_eq!(ms.misses(j), hist.misses(c), "capacity {c}");
        }
        assert_eq!(ms.cold_total(), hist.cold());
        ms.check_invariants();
    }

    #[test]
    fn matches_exact_small_universe() {
        let trace = pseudorandom_trace(3000, 50, 3);
        compare_with_exact(&trace, &[1, 2, 8, 16, 40, 64]);
    }

    #[test]
    fn matches_exact_large_universe() {
        let trace = pseudorandom_trace(2000, 5000, 17);
        compare_with_exact(&trace, &[4, 100, 1000, 4096]);
    }

    #[test]
    fn matches_exact_sequential_streaming() {
        // Pure streaming: every access cold.
        let trace: Vec<u64> = (0..500).collect();
        compare_with_exact(&trace, &[1, 10, 100]);
    }

    #[test]
    fn matches_exact_cyclic() {
        // Cyclic reuse just above/below capacities.
        let trace: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        compare_with_exact(&trace, &[9, 10, 11]);
    }

    #[test]
    fn capacity_one() {
        // Only immediate re-references hit with capacity 1.
        let trace = [1, 1, 2, 2, 2, 1, 3, 3];
        let mut ms = MarkerStack::new(&[1]);
        for &l in &trace {
            ms.access(l, Array::Y);
        }
        // Misses: 1(cold), 2(cold), 1(dist 1), 3(cold) -> 4; hits: 4.
        assert_eq!(ms.misses(0), 4);
        assert_eq!(ms.cold_total(), 3);
        ms.check_invariants();
    }

    #[test]
    fn per_array_attribution() {
        let mut ms = MarkerStack::new(&[2]);
        ms.access(0, Array::X); // cold
        ms.access(100, Array::A); // cold
        ms.access(200, Array::A); // cold
        ms.access(0, Array::X); // distance 2 -> miss at cap 2
        assert_eq!(ms.misses_by_array(0, Array::X), 2);
        assert_eq!(ms.misses_by_array(0, Array::A), 2);
        assert_eq!(ms.cold_by_array(Array::X), 1);
        assert_eq!(ms.cold_by_array(Array::A), 2);
    }

    #[test]
    fn reset_counters_keeps_stack_state() {
        let mut ms = MarkerStack::new(&[4]);
        for l in 0..10u64 {
            ms.access(l, Array::X);
        }
        ms.reset_counters();
        assert_eq!(ms.misses(0), 0);
        assert_eq!(ms.accesses(), 0);
        // Line 9 is at depth 1: hit; line 0 is at depth 10: miss, not cold.
        ms.access(9, Array::X);
        ms.access(0, Array::X);
        assert_eq!(ms.misses(0), 1);
        assert_eq!(ms.cold_total(), 0);
        ms.check_invariants();
    }

    #[test]
    fn invariants_hold_during_mixed_workload() {
        let trace = pseudorandom_trace(400, 30, 9);
        let mut ms = MarkerStack::new(&[1, 3, 7, 20]);
        for (i, &l) in trace.iter().enumerate() {
            ms.access(l, Array::ColIdx);
            if i % 37 == 0 {
                ms.check_invariants();
            }
        }
        ms.check_invariants();
    }

    #[test]
    fn misses_at_by_capacity_value() {
        let mut ms = MarkerStack::new(&[8, 2]);
        for l in [1, 2, 3, 1] {
            ms.access(l, Array::X);
        }
        // Distance of final access to 1 is 2: miss at cap 2, hit at cap 8.
        assert_eq!(ms.misses_at(2), 4); // 3 cold + 1
        assert_eq!(ms.misses_at(8), 3); // cold only
    }

    #[test]
    fn quantized_histogram_exact_at_tracked_capacities() {
        let trace = pseudorandom_trace(3000, 120, 5);
        let caps = [1, 4, 16, 64, 128];
        let mut ms = MarkerStack::new(&caps);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for &l in &trace {
            ms.access(l, Array::A);
            hist.record(ex.access(l));
        }
        let q = ms.quantized_histogram(Array::A);
        assert_eq!(q.total(), hist.total());
        assert_eq!(q.cold(), hist.cold());
        for &c in &caps {
            assert_eq!(q.misses(c), hist.misses(c), "capacity {c}");
        }
        // Arrays that never appeared produce an empty histogram.
        assert_eq!(ms.quantized_histogram(Array::X).total(), 0);
    }

    #[test]
    fn quantized_histogram_steps_conservatively_between_capacities() {
        // Between tracked capacities the quantized curve must report the
        // miss count of the next tracked capacity (distances are rounded
        // down to the representative), never fewer misses than reality.
        let trace = pseudorandom_trace(2000, 60, 11);
        let caps = [2, 8, 32];
        let mut ms = MarkerStack::new(&caps);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for &l in &trace {
            ms.access(l, Array::X);
            hist.record(ex.access(l));
        }
        let q = ms.quantized_histogram(Array::X);
        for c in 3..=8 {
            assert_eq!(q.misses(c), hist.misses(8), "capacity {c}");
            assert!(q.misses(c) <= hist.misses(c));
        }
    }

    #[test]
    fn quantized_histogram_partitions_by_array() {
        let mut ms = MarkerStack::new(&[2, 4]);
        for (l, a) in [
            (0, Array::X),
            (10, Array::A),
            (20, Array::A),
            (0, Array::X),
            (30, Array::Y),
            (10, Array::A),
        ] {
            ms.access(l, a);
        }
        let qx = ms.quantized_histogram(Array::X);
        let qa = ms.quantized_histogram(Array::A);
        let qy = ms.quantized_histogram(Array::Y);
        assert_eq!(qx.total() + qa.total() + qy.total(), ms.accesses());
        assert_eq!(qx.cold() + qa.cold() + qy.cold(), ms.cold_total());
        for (j, &c) in ms.capacities().to_vec().iter().enumerate() {
            assert_eq!(
                qx.misses(c) + qa.misses(c) + qy.misses(c),
                ms.misses(j),
                "capacity {c}"
            );
        }
    }

    #[test]
    fn access_block_matches_per_ref_path() {
        // Mixed arrays, several block boundaries, immediate re-references
        // (depth-1 fast path) and absent-then-present within one block.
        let trace = pseudorandom_trace(5000, 900, 29);
        let arrays = [Array::X, Array::A, Array::ColIdx, Array::Y, Array::RowPtr];
        let packed: Vec<PackedAccess> = trace
            .iter()
            .enumerate()
            .map(|(i, &l)| PackedAccess::pack(Access::load(l, arrays[i % arrays.len()])))
            .collect();
        let caps = [1, 4, 16, 64, 256];
        let mut per_ref = MarkerStack::new(&caps);
        for p in &packed {
            let a = p.unpack();
            per_ref.access(a.line, a.array);
        }
        let mut blocked = MarkerStack::new(&caps);
        // Ragged sub-block boundaries exercise the chunking.
        for chunk in packed.chunks(97) {
            blocked.access_block(chunk);
        }
        blocked.check_invariants();
        assert_eq!(blocked.accesses(), per_ref.accesses());
        assert_eq!(blocked.cold_total(), per_ref.cold_total());
        for (j, &cap) in caps.iter().enumerate() {
            for &a in &arrays {
                assert_eq!(
                    blocked.misses_by_array(j, a),
                    per_ref.misses_by_array(j, a),
                    "cap {cap} array {a:?}"
                );
            }
        }
        assert_eq!(blocked.counts(), per_ref.counts());
    }

    #[test]
    fn dense_index_matches_hash_index() {
        // A stack with a direct-mapped line index must be byte-identical
        // — counts, cold, depth, per-array misses — to one with the hash
        // index, over both the per-ref and block paths, seeding included.
        let universe = 700u64;
        let warm = pseudorandom_trace(3000, universe, 41);
        let trace = pseudorandom_trace(6000, universe, 43);
        let arrays = [Array::X, Array::A, Array::ColIdx, Array::Y, Array::RowPtr];
        let packed: Vec<PackedAccess> = trace
            .iter()
            .enumerate()
            .map(|(i, &l)| PackedAccess::pack(Access::load(l, arrays[i % arrays.len()])))
            .collect();
        for caps in [vec![1, 4, 16, 64], vec![8, 512], vec![2]] {
            let mut hash = MarkerStack::with_line_capacity(&caps, universe as usize);
            let mut dense = MarkerStack::with_line_universe(&caps, universe as usize);
            for &l in &warm {
                hash.access(l, Array::A);
                dense.access(l, Array::A);
            }
            for chunk in packed.chunks(113) {
                hash.access_block(chunk);
                dense.access_block(chunk);
            }
            dense.check_invariants();
            assert_eq!(dense.counts(), hash.counts(), "caps {caps:?}");
            assert_eq!(dense.depth(), hash.depth());
            assert_eq!(dense.cold_total(), hash.cold_total());
            assert_eq!(dense.index_rehashes(), 0);
        }
    }

    #[test]
    fn dense_index_seed_lru_matches_hash_seed() {
        let lines: Vec<u64> = [9u64, 2, 17, 0, 30, 11, 4].to_vec();
        let measured = pseudorandom_trace(2000, 32, 13);
        let mut hash = MarkerStack::new(&[2, 8]);
        let mut dense = MarkerStack::with_line_universe(&[2, 8], 32);
        hash.seed_lru(&lines);
        dense.seed_lru(&lines);
        dense.check_invariants();
        for &l in &measured {
            hash.access(l, Array::X);
            dense.access(l, Array::X);
        }
        assert_eq!(dense.counts(), hash.counts());
    }

    #[test]
    fn seed_lru_matches_replayed_warm_up() {
        // A stack seeded from the warm-up stream's last-access order must
        // be indistinguishable — counter-for-counter, on any subsequent
        // stream — from a stack that replayed the warm-up and reset its
        // counters. Exercises capacity 1 (depth-1 marker edge), caps
        // larger than the line universe, and multi-capacity grids.
        for caps in [vec![1, 4, 16], vec![8], vec![2, 64, 4096], vec![1]] {
            for (universe, seed) in [(40u64, 7u64), (300, 19), (5, 3)] {
                let warm = pseudorandom_trace(2500, universe, seed);
                let measured = pseudorandom_trace(2500, universe, seed ^ 0x5a5a);

                let mut replayed = MarkerStack::new(&caps);
                for &l in &warm {
                    replayed.access(l, Array::X);
                }
                replayed.reset_counters();

                // Last-access order, most recent first.
                let mut last: std::collections::HashMap<u64, usize> = Default::default();
                for (i, &l) in warm.iter().enumerate() {
                    last.insert(l, i);
                }
                let mut order: Vec<(usize, u64)> = last.into_iter().map(|(l, i)| (i, l)).collect();
                order.sort_unstable_by_key(|&(i, _)| std::cmp::Reverse(i));
                let lines: Vec<u64> = order.into_iter().map(|(_, l)| l).collect();

                let mut seeded = MarkerStack::new(&caps);
                seeded.seed_lru(&lines);
                seeded.check_invariants();
                assert_eq!(seeded.depth(), replayed.depth());
                assert_eq!(seeded.accesses(), 0);

                for &l in &measured {
                    replayed.access(l, Array::X);
                    seeded.access(l, Array::X);
                }
                assert_eq!(
                    seeded.counts(),
                    replayed.counts(),
                    "caps {caps:?} universe {universe} seed {seed}"
                );
                seeded.check_invariants();
            }
        }
    }

    #[test]
    fn seed_lru_empty_order_is_fresh_stack() {
        let mut s = MarkerStack::new(&[2, 8]);
        s.seed_lru(&[]);
        s.check_invariants();
        s.access(5, Array::A);
        assert_eq!(s.cold_total(), 1);
    }

    #[test]
    #[should_panic(expected = "requires an empty stack")]
    fn seed_lru_rejects_non_empty_stack() {
        let mut s = MarkerStack::new(&[2]);
        s.access(1, Array::X);
        s.seed_lru(&[9]);
    }

    #[test]
    fn capacity_sharded_counts_concat_to_full_grid() {
        // A stack per capacity-slice over the same stream must reproduce
        // the full stack's counters exactly (the marker independence the
        // sharded profile computation relies on).
        let trace = pseudorandom_trace(4000, 300, 41);
        let caps = [1, 2, 8, 32, 64, 128, 512];
        let mut full = MarkerStack::new(&caps);
        for &l in &trace {
            full.access(l, Array::X);
        }
        for split in [1usize, 2, 3, 7] {
            let parts: Vec<QuantizedCounts> = (0..split)
                .map(|s| {
                    let lo = s * caps.len() / split;
                    let hi = (s + 1) * caps.len() / split;
                    let mut stack = MarkerStack::new(&caps[lo..hi]);
                    for &l in &trace {
                        stack.access(l, Array::X);
                    }
                    stack.counts()
                })
                .collect();
            let merged = QuantizedCounts::concat(parts);
            assert_eq!(merged, full.counts(), "split {split}");
            for &a in &[Array::X, Array::A] {
                assert_eq!(merged.histogram(a), full.quantized_histogram(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must agree on cold counts")]
    fn concat_rejects_mismatched_streams() {
        let mut a = MarkerStack::new(&[2]);
        a.access(1, Array::X);
        let mut b = MarkerStack::new(&[4]);
        b.access(1, Array::X);
        b.access(2, Array::X);
        QuantizedCounts::concat([a.counts(), b.counts()]);
    }

    #[test]
    #[should_panic(expected = "capacity not tracked")]
    fn misses_at_unknown_capacity_panics() {
        let ms = MarkerStack::new(&[2]);
        ms.misses_at(3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        MarkerStack::new(&[0, 4]);
    }
}
