//! Exact stack-distance processor (Bennett–Kruskal / Olken style).
//!
//! Computes the exact reuse distance of every reference in O(log N) per
//! reference using a hash map of last-access times plus a [`Fenwick`] tree
//! in which position `t` holds 1 while the access at trace time `t` is the
//! most recent access to its line. The reuse distance of a reference to a
//! line last touched at `t0` is then the number of set positions strictly
//! between `t0` and now.
//!
//! This is the precise reference implementation; the production path for
//! the way-sweep experiments is the locality-independent
//! [`MarkerStack`](crate::markers::MarkerStack) (Kim et al.), which this
//! processor validates.

use crate::fenwick::Fenwick;
use crate::fxhash::LineTable;
use crate::histogram::ReuseHistogram;

/// Exact reuse-distance processor over a stream of cache-line numbers.
///
/// The last-access map is an open-addressing [`LineTable`] (`u64 → u32`)
/// rather than the default SipHash `HashMap`: one insert-or-update per
/// reference is the processor's hot path, and the offline trace data needs
/// no DoS-resistant hashing. The `u32` timestamps cap a single processor
/// at `u32::MAX` references (~4.3 × 10⁹ — two full replays of a
/// 700M-nonzero matrix), checked with an assertion.
#[derive(Clone, Debug)]
pub struct ExactStack {
    last: LineTable,
    live: Fenwick,
    time: usize,
}

impl Default for ExactStack {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactStack {
    /// Creates a processor with a small initial time capacity.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Creates a processor sized for an expected trace length (avoids
    /// regrowth when the length is known up front).
    pub fn with_capacity(expected_len: usize) -> Self {
        ExactStack {
            last: LineTable::new(),
            live: Fenwick::new(expected_len.max(16)),
            time: 0,
        }
    }

    /// Like [`with_capacity`](Self::with_capacity), but also pre-sizes
    /// the last-access map for an expected number of distinct lines, so
    /// neither structure regrows (nor rehashes) during the trace.
    pub fn with_line_capacity(expected_len: usize, distinct_lines: usize) -> Self {
        ExactStack {
            last: LineTable::with_capacity(distinct_lines),
            live: Fenwick::new(expected_len.max(16)),
            time: 0,
        }
    }

    /// Processes one access, returning its exact reuse distance
    /// (`None` = cold).
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` accesses (the last-access table stores
    /// 32-bit timestamps).
    pub fn access(&mut self, line: u64) -> Option<u64> {
        if self.time >= self.live.len() {
            self.live.grow(self.live.len() * 2);
        }
        let t = self.time;
        assert!(t < u32::MAX as usize, "trace exceeds u32 timestamp range");
        self.time += 1;
        let distance = match self.last.insert(line, t as u32) {
            Some(t0) => {
                let t0 = t0 as usize;
                // Count most-recent accesses strictly between t0 and t.
                let d = self.live.range_sum(t0 + 1..t);
                self.live.add(t0, -1);
                Some(d)
            }
            None => None,
        };
        self.live.add(t, 1);
        distance
    }

    /// Number of distinct lines seen so far.
    pub fn distinct_lines(&self) -> usize {
        self.last.len()
    }

    /// Number of accesses processed so far.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Reports this processor's accumulated statistics to the telemetry
    /// counters (`reuse.exact.*`, `reuse.linetable.*`). No-op when
    /// telemetry is disabled; the per-reference path never touches obs —
    /// everything reported here is state the processor tracks anyway.
    pub fn flush_obs(&self) {
        if !obs::enabled() {
            return;
        }
        let accesses = self.time as u64;
        let cold = self.last.len() as u64;
        obs::add("reuse.exact.accesses", accesses);
        obs::add("reuse.exact.cold", cold);
        obs::add("reuse.exact.warm_accesses", accesses - cold);
        obs::observe("reuse.exact.distinct_lines", cold);
        let probes = self.last.probe_stats();
        obs::add("reuse.linetable.entries", probes.entries);
        obs::add(
            "reuse.linetable.displacement_total",
            probes.total_displacement,
        );
        obs::gauge_max("reuse.linetable.displacement_max", probes.max_displacement);
        obs::gauge_max("reuse.linetable.slots_max", probes.slots);
        obs::add("reuse.linetable.rehashes", self.last.rehashes());
    }

    /// Processes a whole trace, returning its reuse-distance histogram.
    pub fn histogram_of(lines: impl IntoIterator<Item = u64>) -> ReuseHistogram {
        let mut s = ExactStack::new();
        let mut h = ReuseHistogram::new();
        for line in lines {
            h.record(s.access(line));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn matches_textbook_example() {
        let mut s = ExactStack::new();
        assert_eq!(s.access(1), None);
        assert_eq!(s.access(2), None);
        assert_eq!(s.access(3), None);
        assert_eq!(s.access(1), Some(2));
        assert_eq!(s.access(1), Some(0));
        assert_eq!(s.access(2), Some(2));
    }

    #[test]
    fn matches_naive_on_pseudorandom_trace() {
        let mut state = 42u64;
        let trace: Vec<u64> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % 64
            })
            .collect();
        let expect = naive::reuse_distances(&trace);
        let mut s = ExactStack::new();
        for (i, &l) in trace.iter().enumerate() {
            assert_eq!(s.access(l), expect[i], "position {i}");
        }
    }

    #[test]
    fn growth_preserves_correctness() {
        // Start tiny so the Fenwick tree must grow several times.
        let mut s = ExactStack::with_capacity(4);
        let trace: Vec<u64> = (0..500).map(|i| i % 10).collect();
        let expect = naive::reuse_distances(&trace);
        for (i, &l) in trace.iter().enumerate() {
            assert_eq!(s.access(l), expect[i], "position {i}");
        }
    }

    #[test]
    fn histogram_matches_naive_miss_counts() {
        let mut state = 7u64;
        let trace: Vec<u64> = (0..1500)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 40) % 48
            })
            .collect();
        let h = ExactStack::histogram_of(trace.iter().copied());
        for cap in [1, 2, 4, 8, 16, 32, 48, 64] {
            assert_eq!(
                h.misses(cap),
                naive::lru_misses(&trace, cap),
                "capacity {cap}"
            );
        }
    }

    #[test]
    fn distinct_and_access_counters() {
        let mut s = ExactStack::new();
        for l in [9, 9, 8, 7, 9] {
            s.access(l);
        }
        assert_eq!(s.distinct_lines(), 3);
        assert_eq!(s.accesses(), 5);
    }
}
