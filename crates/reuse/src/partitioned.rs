//! Partitioned-cache miss accounting — Eq. (2) of the paper.
//!
//! A way-partitioned cache is modelled as two independent LRU caches of
//! capacities `n0` and `n1` with `n0 + n1 = n`. References are routed by
//! the array they touch: arrays in the sector-1 set are counted in
//! partition 1, everything else in partition 0. Disabling partitioning is
//! the special case of routing all references to partition 0.
//!
//! [`PartitionedStack`] tracks both partitions for a whole *sweep* of
//! partition sizes at once (each partition side is a multi-capacity
//! [`MarkerStack`]), so one pass over the trace yields Eq. (2) for every
//! way split of interest. This works because LRU stack contents are
//! capacity-independent: partition contents depend only on the routing,
//! not on the partition sizes.

use crate::markers::MarkerStack;
use memtrace::{Access, Array, ArraySet, TraceSink};

/// Eq. (2) evaluator: two marker stacks with a routing predicate.
#[derive(Clone, Debug)]
pub struct PartitionedStack {
    sector1: ArraySet,
    p0: MarkerStack,
    p1: MarkerStack,
}

impl PartitionedStack {
    /// Creates an evaluator routing arrays in `sector1` to partition 1.
    ///
    /// `caps0` and `caps1` are the partition-capacity sweeps (in cache
    /// lines) to evaluate for partition 0 and 1 respectively.
    pub fn new(sector1: ArraySet, caps0: &[usize], caps1: &[usize]) -> Self {
        PartitionedStack {
            sector1,
            p0: MarkerStack::new(caps0),
            p1: MarkerStack::new(caps1),
        }
    }

    /// Processes one reference, routing it to the appropriate partition.
    pub fn access(&mut self, line: u64, array: Array) {
        if self.sector1.contains(array) {
            self.p1.access(line, array);
        } else {
            self.p0.access(line, array);
        }
    }

    /// Resets miss counters in both partitions (keeps stack state), used to
    /// discard the warm-up iteration.
    pub fn reset_counters(&mut self) {
        self.p0.reset_counters();
        self.p1.reset_counters();
    }

    /// The partition-0 marker stack (non-isolated data: `x`, `y`,
    /// `rowptr` under the Listing 1 policy).
    pub fn partition0(&self) -> &MarkerStack {
        &self.p0
    }

    /// The partition-1 marker stack (isolated data: `a`, `colidx` under
    /// the Listing 1 policy).
    pub fn partition1(&self) -> &MarkerStack {
        &self.p1
    }

    /// Total Eq. (2) misses for partition capacities `(n0, n1)` given by
    /// capacity indices into the respective sweeps.
    pub fn total_misses(&self, cap0_idx: usize, cap1_idx: usize) -> u64 {
        self.p0.misses(cap0_idx) + self.p1.misses(cap1_idx)
    }
}

impl TraceSink for PartitionedStack {
    #[inline]
    fn access(&mut self, access: Access) {
        PartitionedStack::access(self, access.line, access.array);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStack;
    use crate::histogram::ReuseHistogram;
    use memtrace::Access;

    fn mixed_trace(seed: u64, len: usize) -> Vec<Access> {
        // Alternates x-vector lines (0..32, reused) with streaming matrix
        // lines (1000.., never reused), approximating SpMV structure.
        let mut state = seed | 1;
        let mut stream = 1000u64;
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                if i % 3 == 2 {
                    stream += 1;
                    Access::load(stream, Array::A)
                } else {
                    Access::load((state >> 33) % 32, Array::X)
                }
            })
            .collect()
    }

    #[test]
    fn unpartitioned_special_case_matches_single_stack() {
        // Routing nothing to partition 1 must reproduce a single LRU cache.
        let trace = mixed_trace(5, 2000);
        let mut ps = PartitionedStack::new(ArraySet::EMPTY, &[16, 64], &[1]);
        let mut ex = ExactStack::new();
        let mut hist = ReuseHistogram::new();
        for a in &trace {
            ps.access(a.line, a.array);
            hist.record(ex.access(a.line));
        }
        assert_eq!(ps.partition0().misses_at(16), hist.misses(16));
        assert_eq!(ps.partition0().misses_at(64), hist.misses(64));
        assert_eq!(ps.partition1().accesses(), 0);
    }

    #[test]
    fn partitioned_isolates_streaming_data() {
        let trace = mixed_trace(9, 3000);
        let mut ps = PartitionedStack::new(ArraySet::MATRIX_STREAM, &[32], &[4]);
        for a in &trace {
            ps.access(a.line, a.array);
        }
        // x lines (universe 32) fit fully in partition 0 -> only cold misses.
        assert_eq!(ps.partition0().misses(0), ps.partition0().cold_total());
        // streaming lines never reuse -> every access cold in partition 1.
        assert_eq!(ps.partition1().misses(0), ps.partition1().accesses());
    }

    #[test]
    fn eq2_totals_are_sum_of_partitions() {
        let trace = mixed_trace(13, 1000);
        let mut ps = PartitionedStack::new(ArraySet::MATRIX_STREAM, &[8, 32], &[2, 4]);
        for a in &trace {
            ps.access(a.line, a.array);
        }
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    ps.total_misses(i, j),
                    ps.partition0().misses(i) + ps.partition1().misses(j)
                );
            }
        }
    }

    #[test]
    fn partitioning_reduces_misses_for_thrashing_reusable_data() {
        // Universe of 40 x-lines with a shared cache of 32 lines: the
        // streaming data pollutes the cache without partitioning.
        let trace = mixed_trace(21, 6000);
        // Without partitioning: total cache 32 lines.
        let mut unpart = PartitionedStack::new(ArraySet::EMPTY, &[32], &[1]);
        // With partitioning: 28 lines for x, 4 for the stream.
        let mut part = PartitionedStack::new(ArraySet::MATRIX_STREAM, &[28], &[4]);
        for a in &trace {
            unpart.access(a.line, a.array);
            part.access(a.line, a.array);
        }
        let m_unpart = unpart.total_misses(0, 0);
        let m_part = part.total_misses(0, 0);
        assert!(
            m_part <= m_unpart,
            "partitioning should not hurt here: {m_part} vs {m_unpart}"
        );
    }

    #[test]
    fn warmup_reset() {
        let trace = mixed_trace(33, 500);
        let mut ps = PartitionedStack::new(ArraySet::MATRIX_STREAM, &[16], &[2]);
        for a in &trace {
            ps.access(a.line, a.array);
        }
        ps.reset_counters();
        assert_eq!(ps.partition0().accesses(), 0);
        assert_eq!(ps.partition1().misses(0), 0);
        // The x lines are warm now: a second pass has no cold x misses.
        for a in &trace {
            ps.access(a.line, a.array);
        }
        assert_eq!(ps.partition0().cold_total(), 0);
    }
}
