//! Reuse-distance histograms.
//!
//! A histogram of reuse distances fully determines LRU miss counts for
//! *every* cache capacity at once (the property that makes reuse distance
//! preferable to per-size cache simulation, as the paper's §2.2 notes):
//! `misses(n) = #\{accesses with RD >= n\} + #cold`.

use std::collections::BTreeMap;

/// A histogram of reuse distances with an explicit infinite (cold) bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    finite: BTreeMap<u64, u64>,
    infinite: u64,
}

impl ReuseHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access with the given reuse distance (`None` = cold).
    pub fn record(&mut self, distance: Option<u64>) {
        self.record_n(distance, 1);
    }

    /// Records `count` accesses sharing one reuse distance. Recording a
    /// zero count is a no-op (no empty bucket is created, so equality
    /// with an access-by-access histogram is preserved).
    pub fn record_n(&mut self, distance: Option<u64>, count: u64) {
        if count == 0 {
            return;
        }
        match distance {
            Some(d) => *self.finite.entry(d).or_insert(0) += count,
            None => self.infinite += count,
        }
    }

    /// Total number of recorded accesses.
    pub fn total(&self) -> u64 {
        self.infinite + self.finite.values().sum::<u64>()
    }

    /// Number of cold (infinite-distance) accesses.
    pub fn cold(&self) -> u64 {
        self.infinite
    }

    /// Number of accesses with finite reuse distance `>= n`.
    pub fn finite_at_least(&self, n: u64) -> u64 {
        self.finite.range(n..).map(|(_, c)| c).sum()
    }

    /// Misses of a fully associative LRU cache with `capacity` lines,
    /// Eq. (1) of the paper (cold accesses always miss).
    pub fn misses(&self, capacity: usize) -> u64 {
        self.infinite + self.finite_at_least(capacity as u64)
    }

    /// Hits of a fully associative LRU cache with `capacity` lines.
    pub fn hits(&self, capacity: usize) -> u64 {
        self.total() - self.misses(capacity)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        self.infinite += other.infinite;
        for (&d, &c) in &other.finite {
            *self.finite.entry(d).or_insert(0) += c;
        }
    }

    /// Iterates over `(distance, count)` in increasing distance order.
    pub fn iter_finite(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.finite.iter().map(|(&d, &c)| (d, c))
    }

    /// Mean finite reuse distance, or `None` if no finite distances.
    pub fn mean_finite(&self) -> Option<f64> {
        let count: u64 = self.finite.values().sum();
        if count == 0 {
            return None;
        }
        let sum: u128 = self
            .finite
            .iter()
            .map(|(&d, &c)| d as u128 * c as u128)
            .sum();
        Some(sum as f64 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReuseHistogram {
        let mut h = ReuseHistogram::new();
        for d in [None, None, Some(0), Some(2), Some(2), Some(5)] {
            h.record(d);
        }
        h
    }

    #[test]
    fn totals_and_cold() {
        let h = sample();
        assert_eq!(h.total(), 6);
        assert_eq!(h.cold(), 2);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let h = sample();
        // capacity 0: everything misses.
        assert_eq!(h.misses(0), 6);
        assert_eq!(h.misses(1), 5); // RD 0 hits
        assert_eq!(h.misses(2), 5);
        assert_eq!(h.misses(3), 3); // the two RD-2 accesses hit
        assert_eq!(h.misses(6), 2); // only cold
        assert_eq!(h.misses(1000), 2);
        let mut prev = u64::MAX;
        for n in 0..10 {
            let m = h.misses(n);
            assert!(m <= prev);
            prev = m;
        }
    }

    #[test]
    fn hits_complement_misses() {
        let h = sample();
        for n in 0..8 {
            assert_eq!(h.hits(n) + h.misses(n), h.total());
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 12);
        assert_eq!(a.misses(3), 6);
    }

    #[test]
    fn mean_finite_distance() {
        let h = sample();
        // (0 + 2 + 2 + 5) / 4 = 2.25
        assert_eq!(h.mean_finite(), Some(2.25));
        assert_eq!(ReuseHistogram::new().mean_finite(), None);
    }
}
