//! Reuse-distance (stack-distance) machinery.
//!
//! Reuse distance is the hardware-independent locality metric the paper's
//! cache-miss model is built on (§2.2): for a fully associative LRU cache
//! of `n` lines, a reference hits iff its reuse distance is `< n`
//! (Eq. 1). Computing it once yields miss counts for *every* capacity.
//!
//! * [`naive::NaiveStack`] — O(N·n) LRU-stack oracle for tests.
//! * [`exact::ExactStack`] — exact distances in O(log N) per reference via
//!   a hash map of last-access times and a [`fenwick::Fenwick`] tree.
//! * [`fxhash`] — FxHash hasher and the open-addressing [`fxhash::LineTable`]
//!   backing the processors' per-reference map operations.
//! * [`markers::MarkerStack`] — the Kim et al. (1991) algorithm the paper
//!   uses: hit/miss classification against a fixed set of capacities in
//!   O(#capacities) per reference, *independent of locality*. Counts are
//!   kept per capacity and per SpMV array.
//! * [`histogram::ReuseHistogram`] — distance histogram with `misses(n)`
//!   queries.
//! * [`partitioned::PartitionedStack`] — Eq. (2): two marker stacks with
//!   array-based routing, modelling a way-partitioned (sector) cache.
//! * [`sampled::SampledStack`] — SHARDS-style spatially hashed sampling
//!   estimator of the same miss curve at a fraction of the cost.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exact;
pub mod fenwick;
pub mod fxhash;
pub mod histogram;
pub mod markers;
pub mod naive;
pub mod partitioned;
pub mod sampled;

pub use exact::ExactStack;
pub use fxhash::{FxHashMap, LineTable, PROBE_ABSENT};
pub use histogram::ReuseHistogram;
pub use markers::{MarkerStack, QuantizedCounts};
pub use partitioned::PartitionedStack;
pub use sampled::{SampleShiftError, SampledStack, MAX_SAMPLE_SHIFT};
