//! Fast hashing for the stack processors' hot path.
//!
//! The standard library's default `HashMap` hasher is SipHash-1-3 — a
//! keyed, DoS-resistant function that costs tens of cycles per lookup.
//! The stack processors perform exactly one map operation *per trace
//! reference*, on offline data derived from a matrix the user chose, so
//! there is no adversary to resist and the SipHash cost is pure
//! overhead. Two replacements:
//!
//! * [`FxHasher`] — the rustc `FxHash` multiply-rotate mix (one rotate,
//!   one xor, one multiply per word), for drop-in `HashMap` replacement
//!   via [`FxHashMap`];
//! * [`LineTable`] — an open-addressing `u64 → u32` table for the
//!   last-access/index maps, which are *insert-or-update only* (a cache
//!   line, once seen, is never forgotten). Fibonacci-hashed linear
//!   probing over a flat pair of arrays: no bucket pointers, no
//!   tombstones, one cache line touched per lookup in the common case.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the FxHash mix (same as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` hasher: not cryptographic, extremely cheap, good
/// enough dispersion for trust-the-input workloads like trace analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] instead of SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Sentinel marking an empty [`LineTable`] slot. Cache-line numbers come
/// from a [`memtrace::DataLayout`], whose line space is far below
/// `u64::MAX`, so the sentinel can never collide with a real key.
const EMPTY: u64 = u64::MAX;

/// Open-addressing `u64 → u32` hash table specialised for the stack
/// processors' last-access and node-index maps.
///
/// Supports insert-or-update and lookup only — entries are never removed,
/// which is exactly the lifecycle of a cache line in a stack processor —
/// so linear probing needs no tombstones. Capacity is a power of two;
/// the table grows at 70 % load.
#[derive(Clone, Debug)]
pub struct LineTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
    mask: usize,
    /// Times the table grew (every growth rehashes all entries).
    rehashes: u64,
    /// Keys looked up through [`probe_block`](Self::probe_block).
    block_probe_refs: u64,
    /// Slot inspections those lookups cost (≥ `block_probe_refs`; the
    /// ratio is the mean probe-chain length).
    block_probe_steps: u64,
}

/// Sentinel value returned by [`LineTable::probe_block`] for absent keys.
/// Collision-free because values are stack-node indices or timestamps,
/// both of which the stack processors cap below `u32::MAX`.
pub const PROBE_ABSENT: u32 = u32::MAX;

impl Default for LineTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LineTable {
    /// An empty table with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// An empty table pre-sized to hold `n` entries without growing.
    pub fn with_capacity(n: usize) -> Self {
        // Slots so that n entries stay under the 70 % load factor.
        let slots = (n.max(8) * 10 / 7).next_power_of_two();
        LineTable {
            keys: vec![EMPTY; slots],
            vals: vec![0; slots],
            len: 0,
            mask: slots - 1,
            rehashes: 0,
            block_probe_refs: 0,
            block_probe_steps: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fibonacci-hash probe start for a key.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // High bits of the golden-ratio product disperse best; fold them
        // down to the table size.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Inserts `key → val`, returning the previous value if the key was
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `key` is the reserved sentinel
    /// `u64::MAX`.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the reserved empty sentinel");
        if (self.len + 1) * 10 > self.keys.len() * 7 {
            self.grow();
        }
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                let prev = self.vals[slot];
                self.vals[slot] = val;
                return Some(prev);
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks a key up.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.vals[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up a whole block of keys: `out[i]` receives the value stored
    /// under `keys[i]`, or [`PROBE_ABSENT`] if the key is not present.
    ///
    /// The hot-path counterpart of calling [`get`](Self::get) per key,
    /// with the hash/mask work hoisted into a first pass over the block
    /// (a branchless multiply-shift-mask loop the compiler can
    /// autovectorise) and the common resolved-on-first-probe case split
    /// from the out-of-line collision walk. Probe-length telemetry is
    /// accumulated per block, not per key — see
    /// [`block_probe_refs`](Self::block_probe_refs).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `keys`.
    pub fn probe_block(&mut self, keys: &[u64], out: &mut [u32]) {
        assert!(out.len() >= keys.len(), "output buffer too small");
        // Phase 1: home slots for the whole block (pure arithmetic).
        let mask = self.mask;
        debug_assert!(mask <= u32::MAX as usize, "slot index overflows u32");
        for (o, &key) in out.iter_mut().zip(keys) {
            *o = ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask) as u32;
        }
        // Phase 2: resolve. The 70 % load cap plus Fibonacci dispersion
        // resolve almost every key at its home slot; longer chains take
        // the out-of-line walk.
        let mut steps = keys.len() as u64;
        for (o, &key) in out.iter_mut().zip(keys) {
            let slot = *o as usize;
            let k = self.keys[slot];
            *o = if k == key {
                self.vals[slot]
            } else if k == EMPTY {
                PROBE_ABSENT
            } else {
                self.probe_chain(key, (slot + 1) & mask, &mut steps)
            };
        }
        self.block_probe_refs += keys.len() as u64;
        self.block_probe_steps += steps;
    }

    /// Collision-chain walk continuing a probe that missed its home slot.
    #[inline(never)]
    fn probe_chain(&self, key: u64, mut slot: usize, steps: &mut u64) -> u32 {
        loop {
            *steps += 1;
            let k = self.keys[slot];
            if k == key {
                return self.vals[slot];
            }
            if k == EMPTY {
                return PROBE_ABSENT;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Times the table grew (each growth rehashes every entry).
    pub fn rehashes(&self) -> u64 {
        self.rehashes
    }

    /// Keys looked up through [`probe_block`](Self::probe_block).
    pub fn block_probe_refs(&self) -> u64 {
        self.block_probe_refs
    }

    /// Total slot inspections spent in [`probe_block`](Self::probe_block).
    pub fn block_probe_steps(&self) -> u64 {
        self.block_probe_steps
    }

    /// Offline probe-quality statistics: walks the table once, measuring
    /// each entry's displacement from its home slot. Costs O(slots) and is
    /// only called when a telemetry snapshot is taken — the hot lookup
    /// path is untouched.
    pub fn probe_stats(&self) -> ProbeStats {
        let mut total_displacement = 0u64;
        let mut max_displacement = 0u64;
        let slots = self.keys.len();
        for (slot, &k) in self.keys.iter().enumerate() {
            if k == EMPTY {
                continue;
            }
            let home = self.slot_of(k);
            let d = ((slot + slots - home) & self.mask) as u64;
            total_displacement += d;
            max_displacement = max_displacement.max(d);
        }
        ProbeStats {
            entries: self.len as u64,
            slots: slots as u64,
            total_displacement,
            max_displacement,
        }
    }

    fn grow(&mut self) {
        self.rehashes += 1;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let slots = (old_keys.len() * 2).max(16);
        self.keys = vec![EMPTY; slots];
        self.vals = vec![0; slots];
        self.mask = slots - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut slot = self.slot_of(k);
            while self.keys[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.keys[slot] = k;
            self.vals[slot] = v;
        }
    }
}

/// Snapshot of a [`LineTable`]'s occupancy and probe quality, reported
/// through the telemetry counters (`reuse.linetable.*`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Entries stored.
    pub entries: u64,
    /// Slot-array length (power of two).
    pub slots: u64,
    /// Sum over entries of (occupied slot − home slot) mod table size; 0
    /// means every key sits in its home slot.
    pub total_displacement: u64,
    /// Longest single displacement — an upper bound on any lookup's probe
    /// chain length.
    pub max_displacement: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update() {
        let mut t = LineTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(42, 7), None);
        assert_eq!(t.get(42), Some(7));
        assert_eq!(t.insert(42, 9), Some(7));
        assert_eq!(t.get(42), Some(9));
        assert_eq!(t.get(43), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matches_std_hashmap_under_growth() {
        let mut t = LineTable::with_capacity(4);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut state = 1u64;
        for i in 0..10_000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 30) % 3000; // plenty of updates
            assert_eq!(t.insert(key, i), reference.insert(key, i), "step {i}");
        }
        assert_eq!(t.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn adversarially_clustered_keys() {
        // Sequential keys (dense line ranges) and strided keys both occur
        // in real layouts; the table must stay correct under clustering.
        let mut t = LineTable::new();
        for k in 0..5000u64 {
            t.insert(k, k as u32);
        }
        for k in (0..5_000_000u64).step_by(4096) {
            t.insert(k, 1);
        }
        for k in 0..5000u64 {
            let expect = if k == 0 || (k % 4096 == 0) {
                1
            } else {
                k as u32
            };
            assert_eq!(t.get(k), Some(expect));
        }
        assert_eq!(t.get(5001), None);
    }

    #[test]
    fn probe_stats_count_displacements() {
        let mut t = LineTable::with_capacity(64);
        assert_eq!(
            t.probe_stats(),
            ProbeStats {
                entries: 0,
                slots: t.probe_stats().slots,
                total_displacement: 0,
                max_displacement: 0,
            }
        );
        for k in 0..40u64 {
            t.insert(k, k as u32);
        }
        let stats = t.probe_stats();
        assert_eq!(stats.entries, 40);
        assert!(stats.slots.is_power_of_two());
        // The max displacement is one of the summands of the total.
        assert!(stats.max_displacement <= stats.total_displacement);
        // With a 70 % load cap a probe chain can never wrap the table.
        assert!(stats.max_displacement < stats.slots);
    }

    #[test]
    fn probe_block_matches_get() {
        let mut t = LineTable::with_capacity(4); // force growth under inserts
        let mut state = 7u64;
        let mut keys = Vec::new();
        for i in 0..4000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 29) % 2500;
            t.insert(key, i);
            keys.push(key.wrapping_add(i as u64 % 3)); // mix of present/absent
        }
        let mut out = vec![0u32; keys.len()];
        for chunk in keys.chunks(256) {
            t.probe_block(chunk, &mut out[..chunk.len()]);
            for (&key, &got) in chunk.iter().zip(&out) {
                match t.get(key) {
                    Some(v) => assert_eq!(got, v, "key {key}"),
                    None => assert_eq!(got, PROBE_ABSENT, "key {key}"),
                }
            }
        }
        assert_eq!(t.block_probe_refs(), keys.len() as u64);
        assert!(t.block_probe_steps() >= t.block_probe_refs());
    }

    #[test]
    fn rehashes_counted_and_avoided_by_presizing() {
        let mut small = LineTable::with_capacity(4);
        let mut sized = LineTable::with_capacity(10_000);
        for k in 0..10_000u64 {
            small.insert(k, k as u32);
            sized.insert(k, k as u32);
        }
        assert!(small.rehashes() > 0);
        assert_eq!(sized.rehashes(), 0, "pre-sized table must never grow");
    }

    #[test]
    fn fx_hashmap_smoke() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&31), Some(&961));
    }

    #[test]
    fn fx_hasher_mixes_bytes_and_words() {
        use std::hash::Hasher as _;
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello worlt"); // different tail byte
        assert_ne!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(77);
        assert_ne!(c.finish(), 0);
    }
}
