//! Structured divergence records and per-run accounting.
//!
//! Every invariant violation becomes one JSON line carrying enough state
//! to reproduce it offline: the corpus coordinates (harness seed, case
//! index, generator parameters), the matrix fingerprint, the machine
//! setting under test, and the expected/actual pair. Hand-written JSON,
//! same as `locality_engine::report` — the schema is flat and fixed, and
//! the offline build has no serde.

use locality_core::SectorSetting;
use std::fmt::Write as _;

/// Which cross-implementation invariant a record refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Check {
    /// Streaming profile vs materialized oracle vs marker-sweep profile:
    /// predictions must be byte-identical.
    PipelineAgreement,
    /// Partition-1 misses non-increasing / partition-0 misses
    /// non-decreasing as partition 1 gains ways.
    Monotonicity,
    /// `by_array` components must sum to `l2_misses` in every prediction.
    TrafficConservation,
    /// Method B within its documented envelope of Method A.
    MethodEnvelope,
    /// Model-predicted L2 misses vs simulator PMU counters within the
    /// per-class tolerance.
    ModelVsSim,
    /// PMU self-consistency: refill split, per-core/per-domain sums.
    PmuIdentity,
    /// SELL-C-σ with C=1, σ=1 (no padding, natural order) must predict
    /// within the padding-only tolerance of the CSR view of the same
    /// matrix.
    CrossFormat,
    /// The k=1 SpMM view of a storage workload must predict
    /// byte-identically to the workload itself, in either RHS layout, at
    /// every thread count.
    ScenarioIdentity,
    /// The CG-iteration trace must be exactly the inner SpMV trace plus
    /// `CG_SWEEP_REFS_PER_ROW` references per row — counted by the
    /// cursor's own accounting and by a full drain.
    ScenarioConservation,
    /// Adding right-hand sides must never reduce predicted misses, and
    /// must leave the matrix-stream (compulsory) misses unchanged.
    ScenarioAmplification,
    /// The a64fx preset projected through the `machine` hierarchy must
    /// reproduce the frozen pre-refactor geometry constants and predict
    /// byte-identically to the legacy constructor.
    MachineIdentity,
}

impl Check {
    /// Stable identifier used in the JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Check::PipelineAgreement => "pipeline_agreement",
            Check::Monotonicity => "monotonicity",
            Check::TrafficConservation => "traffic_conservation",
            Check::MethodEnvelope => "method_envelope",
            Check::ModelVsSim => "model_vs_sim",
            Check::PmuIdentity => "pmu_identity",
            Check::CrossFormat => "cross_format",
            Check::ScenarioIdentity => "scenario_identity",
            Check::ScenarioConservation => "scenario_conservation",
            Check::ScenarioAmplification => "scenario_amplification",
            Check::MachineIdentity => "machine_identity",
        }
    }
}

/// One invariant violation, with its reproduction coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Invariant that failed.
    pub check: Check,
    /// Corpus case name (`c3a-banded-104`).
    pub matrix: String,
    /// Generator family.
    pub family: String,
    /// Working-set class label (`"1"`, `"2"`, `"3a"`, `"3b"`).
    pub class: String,
    /// Structural fingerprint of the matrix.
    pub fingerprint: u64,
    /// Harness seed the corpus was drawn from.
    pub seed: u64,
    /// Corpus case index (with `seed`, reproduces the matrix).
    pub index: usize,
    /// Sector setting under test, if the check is per-setting.
    pub setting: Option<SectorSetting>,
    /// Thread count under test.
    pub threads: usize,
    /// Expected value (reference side of the comparison).
    pub expected: f64,
    /// Actual value (implementation under test).
    pub actual: f64,
    /// Tolerance the comparison was allowed (0 for exact checks).
    pub tolerance: f64,
    /// Human-oriented context (which arrays, which pipeline, ...).
    pub detail: String,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn setting_json(setting: Option<SectorSetting>) -> String {
    match setting {
        None => "null".to_string(),
        Some(SectorSetting::Off) => "\"off\"".to_string(),
        Some(SectorSetting::L2Ways(w)) => w.to_string(),
    }
}

/// Formats an f64 so integers stay integral in the JSON (`15` not `15.0`
/// stays readable next to the integer counters it compares against).
fn num_json(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Divergence {
    /// One JSON object on one line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"check\":\"{}\",\"matrix\":\"", self.check.name());
        json_escape(&mut out, &self.matrix);
        out.push_str("\",\"family\":\"");
        json_escape(&mut out, &self.family);
        let _ = write!(
            out,
            "\",\"class\":\"{}\",\"fingerprint\":\"{:016x}\",\"seed\":{},\"index\":{},\
             \"setting\":{},\"threads\":{},\"expected\":{},\"actual\":{},\"tolerance\":{}",
            self.class,
            self.fingerprint,
            self.seed,
            self.index,
            setting_json(self.setting),
            self.threads,
            num_json(self.expected),
            num_json(self.actual),
            num_json(self.tolerance),
        );
        out.push_str(",\"detail\":\"");
        json_escape(&mut out, &self.detail);
        out.push_str("\"}");
        out
    }
}

/// Wall-clock nanoseconds per harness stage, summed over cases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Matrix generation.
    pub build: u64,
    /// Streaming profile computation.
    pub profile: u64,
    /// Materialized oracle computation.
    pub oracle: u64,
    /// Marker-stack sweep computation.
    pub sweep: u64,
    /// Cache simulator runs.
    pub simulate: u64,
    /// Invariant evaluation.
    pub check: u64,
}

impl StageNanos {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &StageNanos) {
        self.build += other.build;
        self.profile += other.profile;
        self.oracle += other.oracle;
        self.sweep += other.sweep;
        self.simulate += other.simulate;
        self.check += other.check;
    }
}

/// Whole-run accounting, emitted as the final JSON line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Corpus size.
    pub matrices: usize,
    /// Cases per class, in class order 1, 2, 3a, 3b.
    pub by_class: [usize; 4],
    /// Individual invariant evaluations performed.
    pub checks_run: u64,
    /// Invariant violations recorded.
    pub divergences: usize,
    /// Per-stage wall-clock totals.
    pub nanos: StageNanos,
}

impl RunStats {
    /// The final summary line of a run's JSON-lines output.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"summary\":{{\"matrices\":{},\"by_class\":{{\"1\":{},\"2\":{},\"3a\":{},\
             \"3b\":{}}},\"checks_run\":{},\"divergences\":{},\"stage_ns\":{{\"build\":{},\
             \"profile\":{},\"oracle\":{},\"sweep\":{},\"simulate\":{},\"check\":{}}}}}}}",
            self.matrices,
            self.by_class[0],
            self.by_class[1],
            self.by_class[2],
            self.by_class[3],
            self.checks_run,
            self.divergences,
            self.nanos.build,
            self.nanos.profile,
            self.nanos.oracle,
            self.nanos.sweep,
            self.nanos.simulate,
            self.nanos.check,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Divergence {
        Divergence {
            check: Check::ModelVsSim,
            matrix: "c2-banded-17".to_string(),
            family: "banded".to_string(),
            class: "2".to_string(),
            fingerprint: 0xDEAD_BEEF,
            seed: 2023,
            index: 17,
            setting: Some(SectorSetting::L2Ways(5)),
            threads: 8,
            expected: 1500.0,
            actual: 1701.0,
            tolerance: 120.0,
            detail: "method A vs sim \"l2\"".to_string(),
        }
    }

    #[test]
    fn divergence_json_schema() {
        assert_eq!(
            sample().to_json_line(),
            "{\"check\":\"model_vs_sim\",\"matrix\":\"c2-banded-17\",\
             \"family\":\"banded\",\"class\":\"2\",\"fingerprint\":\"00000000deadbeef\",\
             \"seed\":2023,\"index\":17,\"setting\":5,\"threads\":8,\"expected\":1500,\
             \"actual\":1701,\"tolerance\":120,\"detail\":\"method A vs sim \\\"l2\\\"\"}"
        );
    }

    #[test]
    fn off_and_absent_settings() {
        let mut d = sample();
        d.setting = Some(SectorSetting::Off);
        assert!(d.to_json_line().contains("\"setting\":\"off\""));
        d.setting = None;
        assert!(d.to_json_line().contains("\"setting\":null"));
    }

    #[test]
    fn fractional_tolerances_keep_their_fraction() {
        let mut d = sample();
        d.tolerance = 0.08;
        assert!(d.to_json_line().contains("\"tolerance\":0.08"));
    }

    #[test]
    fn summary_line_shape() {
        let stats = RunStats {
            matrices: 8,
            by_class: [2, 2, 2, 2],
            checks_run: 96,
            divergences: 0,
            nanos: StageNanos {
                build: 1,
                profile: 2,
                oracle: 3,
                sweep: 4,
                simulate: 5,
                check: 6,
            },
        };
        let line = stats.to_json_line();
        assert!(line.starts_with("{\"summary\":{\"matrices\":8,"));
        assert!(line.contains("\"by_class\":{\"1\":2,\"2\":2,\"3a\":2,\"3b\":2}"));
        assert!(line.contains("\"divergences\":0"));
        assert!(line.contains(
            "\"stage_ns\":{\"build\":1,\"profile\":2,\"oracle\":3,\
             \"sweep\":4,\"simulate\":5,\"check\":6}"
        ));
    }

    #[test]
    fn stage_nanos_accumulate() {
        let mut a = StageNanos {
            build: 1,
            profile: 1,
            oracle: 1,
            sweep: 1,
            simulate: 1,
            check: 1,
        };
        a.add(&a.clone());
        assert_eq!(a.build, 2);
        assert_eq!(a.check, 2);
    }
}
