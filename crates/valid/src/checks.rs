//! The cross-implementation invariants and their per-case evaluation.
//!
//! One case = one corpus matrix pushed through every prediction path and
//! the cache simulator at a sweep of sector settings and thread counts,
//! with six invariants checked along the way:
//!
//! 1. **Pipeline agreement** — the streaming profile, the materialized
//!    oracle, and the marker-stack sweep must produce byte-identical
//!    predictions (they implement the same mathematics three ways).
//! 2. **Monotonicity** — giving the matrix-stream partition more ways
//!    must never increase its misses, and the complementary partition's
//!    misses must never decrease (LRU miss curves are monotone in
//!    capacity).
//! 3. **Traffic conservation** — per-array misses sum to the total in
//!    every prediction.
//! 4. **Method envelope** — method (B) stays within its documented band
//!    of method (A).
//! 5. **Model vs simulator** — method (A) predictions track the
//!    simulator's PMU-style `l2_misses()` within per-class tolerances
//!    (the machine is configured LRU + no prefetch, where the model's
//!    only blind spot is set-conflict noise).
//! 6. **PMU identity** — each simulation's counter snapshot is
//!    self-consistent: refills split into demand + prefetch, per-core
//!    and per-domain attributions sum to the aggregates, and the §4.4
//!    traffic formula holds.
//!
//! The model-side invariants (1–4) additionally re-run on every SELL-C-σ
//! view in [`CheckPlan::sell_formats`] — the pipelines are format-generic,
//! so the same mathematics must agree for chunked workloads too (the
//! simulator is CSR-only, so 5–6 stay CSR). A seventh, cross-format
//! invariant ties the formats together:
//!
//! 7. **Cross-format** — SELL with C=1, σ=1 stores exactly the CSR
//!    nonzeros in the CSR order (no padding, no sorting), so its
//!    predictions must match the CSR view within a padding-only
//!    tolerance (the residual difference is the metadata stream: one
//!    descriptor per row instead of `rows+1` row pointers).
//!
//! Three further invariants tie the scenario views (multi-RHS SpMM and
//! the CG iteration) back to the plain SpMV predictions:
//!
//! 8. **Scenario identity** — the k=1 SpMM view of any storage workload
//!    predicts byte-identically to the workload itself, in either RHS
//!    layout, at every thread count.
//! 9. **Scenario conservation** — the CG-iteration trace is exactly the
//!    inner SpMV trace plus `CG_SWEEP_REFS_PER_ROW` references per row
//!    (the cursor's accounting and a full drain must both land on the
//!    formula), and the CG view additionally re-runs the model-side
//!    invariants 1–3 (the envelope check is skipped: method (B)
//!    accounts the vector sweeps analytically, so the documented band
//!    applies to the SpMV inside the iteration, not the iteration).
//! 10. **Scenario amplification** — adding right-hand sides never
//!     reduces the predicted misses, in total or for the matrix stream
//!     alone, checked with k=16 against the base view.
//!
//! Tolerances live in [`CheckPlan`] and are documented in
//! `EXPERIMENTS.md` (divergence triage).

use crate::corpus::{build, CaseSpec, SCALE};
use crate::record::{Check, Divergence, StageNanos};
use a64fx::config::{MachineConfig, PrefetchConfig};
use a64fx::sim_spmv::simulate_spmv;
use a64fx::Replacement;
use locality_core::{
    classify_for, CgWorkload, LocalityProfile, MatrixClass, Method, Prediction, ReorderSpec,
    RhsLayout, SectorSetting, SpmmWorkload, SpmvWorkload, Workload,
};
use machine::{CacheHierarchy, HierarchyConfig, MachineSpec};
use memtrace::{Array, ArraySet, TraceCursor, CG_SWEEP_REFS_PER_ROW};
use sparsemat::SellMatrix;
use std::time::Instant;

/// Tolerance band for the soft (statistical) checks: a relative term, a
/// *cliff slack* proportional to the matrix's per-iteration line
/// footprint, and an absolute floor in cache lines.
///
/// The cliff term exists because both soft comparisons are dominated by
/// the same mechanism when a working set sits within a few lines of a
/// partition's capacity: the fully associative LRU model flips the whole
/// footprint between hit and miss at once, while the 16-way simulator
/// (or the other method's slightly different footprint estimate) lands
/// on the other side of the cliff. The resulting gap is bounded by the
/// footprint itself, not by any fraction of the compared value — so the
/// band must carry a footprint-proportional term to separate this
/// benign, explained effect from genuine model bugs. See EXPERIMENTS.md,
/// "Divergence triage".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Relative band, as a fraction of the expected value.
    pub rel: f64,
    /// Capacity-cliff slack, as a fraction of the matrix's working-set
    /// line footprint.
    pub cliff: f64,
    /// Absolute floor in cache lines.
    pub floor: f64,
}

impl Tolerance {
    /// The allowed absolute deviation for a given expected value and
    /// working-set footprint (in lines).
    pub fn allowed(&self, expected: f64, ws_lines: f64) -> f64 {
        (self.rel * expected.abs() + self.cliff * ws_lines).max(self.floor)
    }

    /// Whether `actual` is inside the band around `expected`.
    pub fn accepts(&self, expected: f64, actual: f64, ws_lines: f64) -> bool {
        (expected - actual).abs() <= self.allowed(expected, ws_lines)
    }
}

/// What to run per case: settings, thread counts, and tolerances.
#[derive(Clone, Debug)]
pub struct CheckPlan {
    /// Thread counts to validate (1 = sequential, 8 = four 2-core domains).
    pub threads: Vec<usize>,
    /// Settings for the envelope and model-vs-sim checks (each costs one
    /// simulation per thread count).
    pub check_settings: Vec<SectorSetting>,
    /// Settings for the pipeline-agreement and monotonicity sweep
    /// (model-only, so a wider sweep is cheap).
    pub sweep_settings: Vec<SectorSetting>,
    /// Model-vs-sim tolerance per class (order: 1, 2, 3a, 3b),
    /// sequential runs.
    pub sim_tol: [Tolerance; 4],
    /// Extra relative slack for parallel (multi-domain) runs, where
    /// thread-partition boundary effects add noise.
    pub sim_parallel_extra_rel: f64,
    /// Method (B) vs method (A) envelope per class.
    pub envelope_tol: [Tolerance; 4],
    /// SELL-C-σ `(C, σ)` views that re-run the model-side invariants
    /// (the C=1, σ=1 cross-format view runs regardless).
    pub sell_formats: Vec<(usize, usize)>,
    /// Row reordering applied to every corpus matrix before checking.
    pub reorder: ReorderSpec,
    /// CSR vs SELL (C=1, σ=1) cross-format band: the two views differ
    /// only in their metadata stream, so the band is tight.
    pub cross_format_tol: Tolerance,
    /// The machine the invariants run against (default: the a64fx
    /// preset, byte-identical to the pre-refactor harness).
    pub machine_spec: MachineSpec,
    /// Run the simulator cross-checks (5–6)? Off for non-a64fx machines:
    /// the tolerance bands were calibrated against the A64FX simulator,
    /// so other hierarchies get a model-only pass.
    pub simulate: bool,
}

impl CheckPlan {
    /// The full plan (CI's deep tier and the default CLI run), or the
    /// smoke plan (fast CI tier: fewer settings, same invariants).
    pub fn new(smoke: bool) -> Self {
        let check_settings = if smoke {
            vec![SectorSetting::Off, SectorSetting::L2Ways(5)]
        } else {
            vec![
                SectorSetting::Off,
                SectorSetting::L2Ways(2),
                SectorSetting::L2Ways(5),
            ]
        };
        let mut sweep_settings = vec![SectorSetting::Off];
        if smoke {
            sweep_settings.extend([2, 4, 6].map(SectorSetting::L2Ways));
        } else {
            sweep_settings.extend((1..=7).map(SectorSetting::L2Ways));
        }
        CheckPlan {
            threads: vec![1, 8],
            check_settings,
            sweep_settings,
            // Calibrated on the 200-matrix seed-2023 corpus; see
            // EXPERIMENTS.md "Divergence triage" for the measured error
            // distributions behind these bands.
            sim_tol: [
                Tolerance {
                    rel: 0.10,
                    cliff: 0.75,
                    floor: 96.0,
                },
                Tolerance {
                    rel: 0.10,
                    cliff: 0.75,
                    floor: 96.0,
                },
                Tolerance {
                    rel: 0.12,
                    cliff: 0.75,
                    floor: 96.0,
                },
                Tolerance {
                    rel: 0.12,
                    cliff: 0.75,
                    floor: 96.0,
                },
            ],
            sim_parallel_extra_rel: 0.06,
            envelope_tol: [
                Tolerance {
                    rel: 0.35,
                    cliff: 1.0,
                    floor: 64.0,
                },
                Tolerance {
                    rel: 0.35,
                    cliff: 1.0,
                    floor: 64.0,
                },
                Tolerance {
                    rel: 0.35,
                    cliff: 1.0,
                    floor: 64.0,
                },
                Tolerance {
                    rel: 0.35,
                    cliff: 1.0,
                    floor: 64.0,
                },
            ],
            sell_formats: vec![(8, 32)],
            reorder: ReorderSpec::None,
            // The C=1, σ=1 view differs from CSR only in the metadata
            // stream and trace interleaving; <5% relative was measured on
            // the seed-2023 corpus, with the usual capacity-cliff slack.
            cross_format_tol: Tolerance {
                rel: 0.05,
                cliff: 0.75,
                floor: 96.0,
            },
            machine_spec: MachineSpec::A64fx,
            simulate: true,
        }
    }

    /// Retargets the plan at `spec`'s machine. The a64fx preset keeps the
    /// calibrated bands and the simulator cross-checks; any other
    /// hierarchy runs model-only (the simulator bands were calibrated on
    /// the A64FX) with a widened method envelope — the documented (B)
    /// vs (A) band was measured on 256 B lines, and shorter lines put
    /// more of the footprint on partition boundaries.
    pub fn with_machine(mut self, spec: &MachineSpec) -> Self {
        self.machine_spec = spec.clone();
        if !spec.is_default() {
            self.simulate = false;
            for tol in &mut self.envelope_tol {
                tol.rel = tol.rel.max(0.45);
            }
        }
        self
    }

    /// The machine every check runs against: the plan's hierarchy at the
    /// corpus scale, with true LRU and the prefetcher off — the
    /// configuration under which the model is exact up to set conflicts
    /// (see `tests/model_vs_sim.rs`). The harness pins two cores per
    /// domain so the `threads` sweep exercises multi-domain runs. For the
    /// a64fx preset this is byte-identical to the pre-refactor
    /// `a64fx_scaled(SCALE)` construction (the machine-identity invariant
    /// pins that).
    pub fn machine(&self) -> MachineConfig {
        let mut cfg = match &self.machine_spec {
            MachineSpec::A64fx => MachineConfig::a64fx_scaled(SCALE),
            spec => MachineConfig::from_hierarchy(&spec.hierarchy(SCALE)),
        }
        .with_prefetch(PrefetchConfig::off());
        cfg.replacement = Replacement::Lru;
        cfg.cores_per_domain = 2;
        cfg
    }
}

/// The machine-identity invariant: run once per validation, on the a64fx
/// preset only. Pins (a) the unscaled preset hierarchy to the frozen
/// pre-refactor A64FX geometry constants, (b) the hierarchy-projected
/// harness config to the legacy `a64fx_scaled` constructor field for
/// field, and (c) predictions computed through the projected config to
/// the legacy config's bytes on one corpus matrix. Any drift in the
/// machine crate that would silently change every downstream prediction
/// surfaces here as an exact-comparison divergence.
pub fn machine_identity(plan: &CheckPlan, harness_seed: u64) -> (Vec<Divergence>, u64) {
    let mut divergences = Vec::new();
    let mut checks = 0u64;
    if !plan.machine_spec.is_default() {
        return (divergences, checks);
    }
    let mut record = |checks: &mut u64, what: &str, expected: f64, actual: f64| {
        *checks += 1;
        if expected != actual {
            divergences.push(Divergence {
                check: Check::MachineIdentity,
                matrix: "machine:a64fx".to_string(),
                family: "preset".to_string(),
                class: "-".to_string(),
                fingerprint: 0,
                seed: harness_seed,
                index: 0,
                setting: None,
                threads: 1,
                expected,
                actual,
                tolerance: 0.0,
                detail: what.to_string(),
            });
        }
    };

    // (a) Frozen unscaled geometry: the constants the models were built on.
    let hier = HierarchyConfig::a64fx();
    record(
        &mut checks,
        "preset line bytes",
        256.0,
        hier.line_bytes() as f64,
    );
    record(
        &mut checks,
        "preset L1 size",
        (64 << 10) as f64,
        hier.level(0).geometry.size_bytes as f64,
    );
    record(
        &mut checks,
        "preset L1 ways",
        4.0,
        hier.level(0).geometry.ways as f64,
    );
    record(
        &mut checks,
        "preset L2 size",
        // The frozen pre-refactor value, spelled out: this oracle must
        // not be derived from the machine crate it is checking.
        8.0 * 1024.0 * 1024.0,
        hier.last_level().geometry.size_bytes as f64,
    );
    record(
        &mut checks,
        "preset L2 ways",
        16.0,
        hier.last_level().geometry.ways as f64,
    );
    record(&mut checks, "preset cores", 48.0, hier.num_cores as f64);
    record(
        &mut checks,
        "preset cores per domain",
        12.0,
        hier.cores_per_domain as f64,
    );

    // (b) The harness config through both constructions.
    let legacy = plan.machine();
    let mut projected = MachineConfig::from_hierarchy(&HierarchyConfig::a64fx().scaled(SCALE))
        .with_prefetch(PrefetchConfig::off());
    projected.replacement = Replacement::Lru;
    projected.cores_per_domain = 2;
    record(
        &mut checks,
        "projected L1 size",
        legacy.l1.size_bytes as f64,
        projected.l1.size_bytes as f64,
    );
    record(
        &mut checks,
        "projected L2 size",
        legacy.l2.size_bytes as f64,
        projected.l2.size_bytes as f64,
    );
    record(
        &mut checks,
        "projected L2 ways",
        legacy.l2.ways as f64,
        projected.l2.ways as f64,
    );
    record(
        &mut checks,
        "projected line bytes",
        legacy.l2.line_bytes as f64,
        projected.l2.line_bytes as f64,
    );
    record(
        &mut checks,
        "projected == legacy (full config)",
        1.0,
        (projected == legacy) as u64 as f64,
    );

    // (c) Prediction byte-identity on one corpus matrix, both methods.
    let spec0 = &crate::corpus::stratified(4, harness_seed)[0];
    let matrix = build(spec0);
    for method in [Method::A, Method::B] {
        let expected = LocalityProfile::compute(&matrix, &legacy, method, 1)
            .evaluate(&legacy, &plan.sweep_settings);
        let actual = LocalityProfile::compute(&matrix, &projected, method, 1)
            .evaluate(&projected, &plan.sweep_settings);
        checks += 1;
        if expected != actual {
            let (e, a) = (expected[0].l2_misses as f64, actual[0].l2_misses as f64);
            divergences.push(Divergence {
                check: Check::MachineIdentity,
                matrix: spec0.name.clone(),
                family: spec0.family.to_string(),
                class: "-".to_string(),
                fingerprint: matrix.fingerprint(),
                seed: harness_seed,
                index: 0,
                setting: None,
                threads: 1,
                expected: e,
                actual: a,
                tolerance: 0.0,
                detail: format!(
                    "method {method:?}: hierarchy-projected config predicts differently \
                     from the legacy a64fx constructor"
                ),
            });
        }
    }
    (divergences, checks)
}

/// Everything `run_case` learned about one matrix.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Stratum the case actually classified into (sequential, 5 ways).
    pub class_index: usize,
    /// Violations found.
    pub divergences: Vec<Divergence>,
    /// Individual comparisons evaluated.
    pub checks_run: u64,
    /// Per-stage wall-clock.
    pub nanos: StageNanos,
}

fn class_label(class: MatrixClass) -> (&'static str, usize) {
    match class {
        MatrixClass::Class1 => ("1", 0),
        MatrixClass::Class2 => ("2", 1),
        MatrixClass::Class3a => ("3a", 2),
        MatrixClass::Class3b => ("3b", 3),
    }
}

/// Per-case coordinates shared by every divergence record and check pass.
struct CaseCtx<'a> {
    spec: &'a CaseSpec,
    plan: &'a CheckPlan,
    cfg: &'a MachineConfig,
    class: &'static str,
    class_index: usize,
    harness_seed: u64,
    /// CSR working-set footprint in lines (the cliff-slack scale for
    /// every view of the matrix).
    ws_lines: f64,
    /// All settings any model-side check needs, deduplicated: the sweep
    /// profile must be computed for exactly the capacities it will be
    /// asked to evaluate.
    all_settings: Vec<SectorSetting>,
}

impl CaseCtx<'_> {
    #[allow(clippy::too_many_arguments)]
    fn diverge(
        &self,
        out: &mut Vec<Divergence>,
        check: Check,
        name: &str,
        fingerprint: u64,
        setting: Option<SectorSetting>,
        threads: usize,
        expected: f64,
        actual: f64,
        tolerance: f64,
        detail: String,
    ) {
        out.push(Divergence {
            check,
            matrix: name.to_string(),
            family: self.spec.family.to_string(),
            class: self.class.to_string(),
            fingerprint,
            seed: self.harness_seed,
            index: self.spec.index,
            setting,
            threads,
            expected,
            actual,
            tolerance,
            detail,
        });
    }
}

/// Running tallies for one case, threaded through every check pass.
struct CaseTally {
    divergences: Vec<Divergence>,
    checks_run: u64,
    nanos: StageNanos,
}

/// Runs the model-side invariants — pipeline agreement, traffic
/// conservation, monotonicity, method envelope — for one workload view at
/// one thread count. `oracle` supplies the reference profile per method
/// (the verbatim CSR oracle for the CSR view, the generic
/// materialize-then-replay oracle for chunked views); `name` labels any
/// divergence with the view (e.g. `c2-banded-17@sell:8,32`); `envelope`
/// turns the method-(B)-vs-(A) band off for views where the band is not
/// documented (the CG iteration, whose vector sweeps method (B) accounts
/// analytically). Returns the oracle-evaluated predictions for methods
/// (A, B), over `ctx.all_settings`, for downstream cross-checks.
fn model_invariants<W: SpmvWorkload>(
    ctx: &CaseCtx<'_>,
    workload: &W,
    name: &str,
    oracle: &dyn Fn(Method) -> LocalityProfile,
    threads: usize,
    envelope: bool,
    tally: &mut CaseTally,
) -> (Vec<Prediction>, Vec<Prediction>) {
    let cfg = ctx.cfg;
    let all_settings = &ctx.all_settings;
    let fingerprint = workload.fingerprint();
    let mut preds_a: Option<Vec<Prediction>> = None;
    let mut preds_b: Option<Vec<Prediction>> = None;
    for method in [Method::A, Method::B] {
        let t = Instant::now();
        let streaming = LocalityProfile::compute(workload, cfg, method, threads);
        tally.nanos.profile += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let reference = oracle(method);
        tally.nanos.oracle += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let sweep =
            LocalityProfile::compute_for_sweep(workload, cfg, method, threads, all_settings);
        tally.nanos.sweep += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let expected = reference.evaluate(cfg, all_settings);
        for (pipeline, profile) in [("streaming", &streaming), ("marker-sweep", &sweep)] {
            let actual = profile.evaluate(cfg, all_settings);
            tally.checks_run += 1;
            for (e, a) in expected.iter().zip(&actual) {
                if e != a {
                    ctx.diverge(
                        &mut tally.divergences,
                        Check::PipelineAgreement,
                        name,
                        fingerprint,
                        Some(e.setting),
                        threads,
                        e.l2_misses as f64,
                        a.l2_misses as f64,
                        0.0,
                        format!(
                            "method {method:?}: {pipeline} pipeline disagrees with the \
                             materialized oracle (by_array {:?} vs {:?})",
                            a.by_array, e.by_array
                        ),
                    );
                }
            }
        }

        // Traffic conservation inside each prediction.
        for p in &expected {
            tally.checks_run += 1;
            let sum: u64 = p.by_array.iter().sum();
            if sum != p.l2_misses {
                ctx.diverge(
                    &mut tally.divergences,
                    Check::TrafficConservation,
                    name,
                    fingerprint,
                    Some(p.setting),
                    threads,
                    p.l2_misses as f64,
                    sum as f64,
                    0.0,
                    format!(
                        "method {method:?}: by_array {:?} does not sum to total",
                        p.by_array
                    ),
                );
            }
        }

        // Monotonicity across the way sweep: partition 1 (A + ColIdx)
        // gains capacity with w, partition 0 (X + Y + RowPtr) loses it.
        let mut ways: Vec<&Prediction> = expected
            .iter()
            .filter(|p| matches!(p.setting, SectorSetting::L2Ways(_)))
            .collect();
        ways.sort_by_key(|p| match p.setting {
            SectorSetting::L2Ways(w) => w,
            SectorSetting::Off => 0,
        });
        for pair in ways.windows(2) {
            let stream = |p: &Prediction| p.misses_of(Array::A) + p.misses_of(Array::ColIdx);
            let reused = |p: &Prediction| {
                p.misses_of(Array::X) + p.misses_of(Array::Y) + p.misses_of(Array::RowPtr)
            };
            tally.checks_run += 1;
            if stream(pair[1]) > stream(pair[0]) {
                ctx.diverge(
                    &mut tally.divergences,
                    Check::Monotonicity,
                    name,
                    fingerprint,
                    Some(pair[1].setting),
                    threads,
                    stream(pair[0]) as f64,
                    stream(pair[1]) as f64,
                    0.0,
                    format!(
                        "method {method:?}: matrix-stream misses grew when partition 1 \
                         gained a way ({:?} -> {:?})",
                        pair[0].setting, pair[1].setting
                    ),
                );
            }
            tally.checks_run += 1;
            if reused(pair[1]) < reused(pair[0]) {
                ctx.diverge(
                    &mut tally.divergences,
                    Check::Monotonicity,
                    name,
                    fingerprint,
                    Some(pair[1].setting),
                    threads,
                    reused(pair[0]) as f64,
                    reused(pair[1]) as f64,
                    0.0,
                    format!(
                        "method {method:?}: x/y/rowptr misses shrank when partition 0 \
                         lost a way ({:?} -> {:?})",
                        pair[0].setting, pair[1].setting
                    ),
                );
            }
        }
        tally.nanos.check += t.elapsed().as_nanos() as u64;

        match method {
            Method::A => preds_a = Some(expected),
            Method::B => preds_b = Some(expected),
        }
    }

    let preds_a = preds_a.expect("method A always runs");
    let preds_b = preds_b.expect("method B always runs");

    // Method (B) inside its envelope of method (A).
    let t = Instant::now();
    let tol = ctx.plan.envelope_tol[ctx.class_index];
    for (a, b) in preds_a.iter().zip(&preds_b) {
        if !envelope || !ctx.plan.check_settings.contains(&a.setting) {
            continue;
        }
        tally.checks_run += 1;
        let (ea, eb) = (a.l2_misses as f64, b.l2_misses as f64);
        if !tol.accepts(ea, eb, ctx.ws_lines) {
            ctx.diverge(
                &mut tally.divergences,
                Check::MethodEnvelope,
                name,
                fingerprint,
                Some(a.setting),
                threads,
                ea,
                eb,
                tol.allowed(ea, ctx.ws_lines),
                "method B left its envelope of method A".to_string(),
            );
        }
    }
    tally.nanos.check += t.elapsed().as_nanos() as u64;

    (preds_a, preds_b)
}

/// Invariant 8 — scenario identity. The k=1 SpMM view of `base` must
/// evaluate byte-identically to the base workload's own predictions
/// (`reference`: the oracle-evaluated methods (A, B) per thread count),
/// in either RHS layout. The comparison is exact: a k=1 view shares the
/// base's layout, fingerprint, and traces, so any difference is a bug in
/// the RHS widening, not a modelling choice.
fn spmm_identity(
    ctx: &CaseCtx<'_>,
    base: &Workload,
    base_name: &str,
    reference: &[(usize, Vec<Prediction>, Vec<Prediction>)],
    tally: &mut CaseTally,
) {
    let cfg = ctx.cfg;
    for layout in [RhsLayout::Interleaved, RhsLayout::Separate] {
        let spmm = SpmmWorkload::new(base.clone(), 1, layout);
        let fingerprint = SpmvWorkload::fingerprint(&spmm);
        let suffix = match layout {
            RhsLayout::Interleaved => "",
            RhsLayout::Separate => ":col",
        };
        let name = format!("{base_name}@rhs1{suffix}");
        for (threads, ref_a, ref_b) in reference {
            for (method, expected) in [(Method::A, ref_a), (Method::B, ref_b)] {
                let t = Instant::now();
                let profile = LocalityProfile::compute(&spmm, cfg, method, *threads);
                tally.nanos.profile += t.elapsed().as_nanos() as u64;
                let t = Instant::now();
                let actual = profile.evaluate(cfg, &ctx.all_settings);
                tally.checks_run += 1;
                for (e, a) in expected.iter().zip(&actual) {
                    if e != a {
                        ctx.diverge(
                            &mut tally.divergences,
                            Check::ScenarioIdentity,
                            &name,
                            fingerprint,
                            Some(e.setting),
                            *threads,
                            e.l2_misses as f64,
                            a.l2_misses as f64,
                            0.0,
                            format!(
                                "method {method:?}: k=1 SpMM view diverged from the base \
                                 workload (by_array {:?} vs {:?})",
                                a.by_array, e.by_array
                            ),
                        );
                    }
                }
                tally.nanos.check += t.elapsed().as_nanos() as u64;
            }
        }
    }
}

/// Invariant 9 — scenario conservation. The CG-iteration trace of `base`
/// must be exactly the inner SpMV trace plus `CG_SWEEP_REFS_PER_ROW`
/// references per row: the cursor's own `remaining()` accounting and a
/// full drain must both land on the formula. The CG view then re-runs
/// the model-side invariants (pipeline agreement, conservation,
/// monotonicity) against the generic materialized oracle — with the
/// method envelope off, since (B) accounts the sweeps analytically.
fn cg_invariants(ctx: &CaseCtx<'_>, base: &Workload, base_name: &str, tally: &mut CaseTally) {
    let cfg = ctx.cfg;
    let cg = CgWorkload::new(base.clone());
    let fingerprint = SpmvWorkload::fingerprint(&cg);
    let name = format!("{base_name}@cg");

    let t = Instant::now();
    let layout = cg.layout(cfg.l2.line_bytes);
    let mut cursor = cg.trace_cursor(&layout, 0..cg.num_work_items());
    let declared = cursor.remaining();
    let mut drained = 0usize;
    while cursor.next_access().is_some() {
        drained += 1;
    }
    let base_layout = base.layout(cfg.l2.line_bytes);
    let inner = base
        .trace_cursor(&base_layout, 0..base.num_work_items())
        .remaining();
    let expected = inner + CG_SWEEP_REFS_PER_ROW * SpmvWorkload::num_rows(&cg);
    for (what, actual) in [("remaining()", declared), ("drained trace", drained)] {
        tally.checks_run += 1;
        if actual != expected {
            ctx.diverge(
                &mut tally.divergences,
                Check::ScenarioConservation,
                &name,
                fingerprint,
                None,
                1,
                expected as f64,
                actual as f64,
                0.0,
                format!(
                    "CG {what} is not the inner trace plus \
                     {CG_SWEEP_REFS_PER_ROW} refs per row"
                ),
            );
        }
    }
    tally.nanos.check += t.elapsed().as_nanos() as u64;

    for &threads in &ctx.plan.threads {
        model_invariants(
            ctx,
            &cg,
            &name,
            &|method| LocalityProfile::compute_materialized_workload(&cg, cfg, method, threads),
            threads,
            false,
            tally,
        );
    }
}

/// Invariant 10 — scenario amplification. Adding right-hand sides only
/// grows the traffic: the total misses must be at least the base's at
/// every setting, and so must the matrix-stream misses (the stream data
/// is untouched, but the k-fold x/y footprint can push a previously
/// cache-resident stream out of steady-state residence — it can start
/// missing, never stop).
fn rhs_amplification(
    ctx: &CaseCtx<'_>,
    base: &Workload,
    base_name: &str,
    threads: usize,
    ref_a: &[Prediction],
    ref_b: &[Prediction],
    tally: &mut CaseTally,
) {
    const AMP_K: usize = 16;
    let cfg = ctx.cfg;
    let spmm = SpmmWorkload::new(base.clone(), AMP_K, RhsLayout::Interleaved);
    let fingerprint = SpmvWorkload::fingerprint(&spmm);
    let name = format!("{base_name}@rhs{AMP_K}");
    let stream = |p: &Prediction| p.misses_of(Array::A) + p.misses_of(Array::ColIdx);
    for (method, reference) in [(Method::A, ref_a), (Method::B, ref_b)] {
        let t = Instant::now();
        let profile = LocalityProfile::compute(&spmm, cfg, method, threads);
        tally.nanos.profile += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let actual = profile.evaluate(cfg, &ctx.all_settings);
        for (b, a) in reference.iter().zip(&actual) {
            tally.checks_run += 1;
            if stream(a) < stream(b) {
                ctx.diverge(
                    &mut tally.divergences,
                    Check::ScenarioAmplification,
                    &name,
                    fingerprint,
                    Some(b.setting),
                    threads,
                    stream(b) as f64,
                    stream(a) as f64,
                    0.0,
                    format!(
                        "method {method:?}: the matrix-stream misses shrank under \
                         extra right-hand sides"
                    ),
                );
            }
            tally.checks_run += 1;
            if a.l2_misses < b.l2_misses {
                ctx.diverge(
                    &mut tally.divergences,
                    Check::ScenarioAmplification,
                    &name,
                    fingerprint,
                    Some(b.setting),
                    threads,
                    b.l2_misses as f64,
                    a.l2_misses as f64,
                    0.0,
                    format!(
                        "method {method:?}: k={AMP_K} predicted fewer misses than \
                         the single-RHS view"
                    ),
                );
            }
        }
        tally.nanos.check += t.elapsed().as_nanos() as u64;
    }
}

/// Per-case check driver. Builds the matrix, runs the three prediction
/// pipelines (for the CSR view and every planned SELL view) and the
/// simulator over the plan's sweep, and records every invariant
/// violation.
pub fn run_case(spec: &CaseSpec, plan: &CheckPlan, harness_seed: u64) -> CaseResult {
    let t = Instant::now();
    let matrix = plan.reorder.apply(build(spec));
    let mut tally = CaseTally {
        divergences: Vec::new(),
        checks_run: 0,
        nanos: StageNanos {
            build: t.elapsed().as_nanos() as u64,
            ..StageNanos::default()
        },
    };

    let cfg = plan.machine();
    let (class, class_index) =
        class_label(classify_for(&matrix, &cfg.clone().with_l2_sector(5), 1));
    let fingerprint = matrix.fingerprint();
    let mut all_settings = plan.sweep_settings.clone();
    for &s in &plan.check_settings {
        if !all_settings.contains(&s) {
            all_settings.push(s);
        }
    }
    let ctx = CaseCtx {
        spec,
        plan,
        cfg: &cfg,
        class,
        class_index,
        harness_seed,
        ws_lines: matrix.working_set_bytes().div_ceil(cfg.l2.line_bytes) as f64,
        all_settings,
    };

    // CSR view: model-side invariants against the verbatim CSR oracle,
    // then the simulator cross-checks. Predictions are kept per thread
    // count for the cross-format comparison below.
    let mut csr_preds: Vec<(usize, Vec<Prediction>, Vec<Prediction>)> = Vec::new();
    for &threads in &plan.threads {
        let (preds_a, preds_b) = model_invariants(
            &ctx,
            &matrix,
            &spec.name,
            &|method| LocalityProfile::compute_materialized(&matrix, &cfg, method, threads),
            threads,
            true,
            &mut tally,
        );

        // Simulator cross-check: method (A) vs PMU-style counters, plus
        // PMU self-consistency on every snapshot. Skipped on non-a64fx
        // machines (model-only pass — see `CheckPlan::with_machine`).
        for &setting in plan.check_settings.iter().filter(|_| plan.simulate) {
            let t = Instant::now();
            let sim = match setting {
                SectorSetting::Off => simulate_spmv(&matrix, &cfg, ArraySet::EMPTY, threads, 1),
                SectorSetting::L2Ways(w) => {
                    let cfg_w = cfg.clone().with_l2_sector(w);
                    simulate_spmv(&matrix, &cfg_w, ArraySet::MATRIX_STREAM, threads, 1)
                }
            };
            tally.nanos.simulate += t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let pmu = &sim.pmu;
            let measured = pmu.l2_misses() as f64;
            let predicted = preds_a
                .iter()
                .find(|p| p.setting == setting)
                .expect("check settings are a subset of the sweep")
                .l2_misses as f64;
            let mut tol = plan.sim_tol[class_index];
            if threads > 1 {
                tol.rel += plan.sim_parallel_extra_rel;
            }
            tally.checks_run += 1;
            if !tol.accepts(measured, predicted, ctx.ws_lines) {
                ctx.diverge(
                    &mut tally.divergences,
                    Check::ModelVsSim,
                    &spec.name,
                    fingerprint,
                    Some(setting),
                    threads,
                    measured,
                    predicted,
                    tol.allowed(measured, ctx.ws_lines),
                    "method A prediction left the simulator tolerance band".to_string(),
                );
            }

            // PMU identities are exact.
            let line = cfg.l2.line_bytes;
            let identities: [(&str, u64, u64); 6] = [
                (
                    "refill == refill_dm + refill_prf",
                    pmu.l2d_cache_refill,
                    pmu.l2d_cache_refill_dm + pmu.l2d_cache_refill_prf,
                ),
                (
                    "per-core l1 sums to aggregate",
                    pmu.l1d_demand_misses,
                    pmu.per_core_l1_demand_misses.iter().sum(),
                ),
                (
                    "per-core l2 dm sums to aggregate",
                    pmu.l2d_cache_refill_dm,
                    pmu.per_core_l2_demand_misses.iter().sum(),
                ),
                (
                    "per-domain refill sums to aggregate",
                    pmu.l2d_cache_refill,
                    pmu.per_domain_l2_refill.iter().sum(),
                ),
                (
                    "per-domain wb sums to aggregate",
                    pmu.l2d_cache_wb,
                    pmu.per_domain_l2_wb.iter().sum(),
                ),
                (
                    "memory_bytes == (refill + wb - swaps) * line",
                    pmu.memory_bytes(line),
                    (pmu.l2d_cache_refill + pmu.l2d_cache_wb
                        - pmu.l2d_swap_dm
                        - pmu.l2d_cache_mibmch_prf)
                        * line as u64,
                ),
            ];
            for (what, lhs, rhs) in identities {
                tally.checks_run += 1;
                if lhs != rhs {
                    ctx.diverge(
                        &mut tally.divergences,
                        Check::PmuIdentity,
                        &spec.name,
                        fingerprint,
                        Some(setting),
                        threads,
                        lhs as f64,
                        rhs as f64,
                        0.0,
                        what.to_string(),
                    );
                }
            }
            tally.nanos.check += t.elapsed().as_nanos() as u64;
        }

        csr_preds.push((threads, preds_a, preds_b));
    }

    // SELL views: the same model-side invariants on the chunked
    // workloads, with the generic materialize-then-replay oracle as the
    // reference (the simulator stays CSR-only).
    for &(c, sigma) in &plan.sell_formats {
        let sell = SellMatrix::from_csr(&matrix, c, sigma);
        let name = format!("{}@sell:{c},{sigma}", spec.name);
        let mut sell_preds: Vec<(usize, Vec<Prediction>, Vec<Prediction>)> = Vec::new();
        for &threads in &plan.threads {
            let (preds_a, preds_b) = model_invariants(
                &ctx,
                &sell,
                &name,
                &|method| {
                    LocalityProfile::compute_materialized_workload(&sell, &cfg, method, threads)
                },
                threads,
                true,
                &mut tally,
            );
            sell_preds.push((threads, preds_a, preds_b));
        }
        // Scenario identity on the chunked view: the k=1 SpMM wrapper
        // must reproduce the SELL predictions byte for byte too.
        spmm_identity(
            &ctx,
            &Workload::Sell(sell.clone()),
            &name,
            &sell_preds,
            &mut tally,
        );
    }

    // Cross-format invariant: the C=1, σ=1 SELL view stores exactly the
    // CSR nonzeros in the CSR order (no padding, no sorting), so after
    // its own invariant pass its predictions must sit within the
    // padding-only band of the CSR predictions.
    let sell11 = SellMatrix::from_csr(&matrix, 1, 1);
    let name11 = format!("{}@sell:1,1", spec.name);
    let tol = plan.cross_format_tol;
    for (threads, csr_a, csr_b) in &csr_preds {
        let (sell_a, sell_b) = model_invariants(
            &ctx,
            &sell11,
            &name11,
            &|method| {
                LocalityProfile::compute_materialized_workload(&sell11, &cfg, method, *threads)
            },
            *threads,
            true,
            &mut tally,
        );
        let t = Instant::now();
        for (method, csr, sell) in [(Method::A, csr_a, &sell_a), (Method::B, csr_b, &sell_b)] {
            for (cp, sp) in csr.iter().zip(sell) {
                if !plan.check_settings.contains(&cp.setting) {
                    continue;
                }
                tally.checks_run += 1;
                let (expected, actual) = (cp.l2_misses as f64, sp.l2_misses as f64);
                if !tol.accepts(expected, actual, ctx.ws_lines) {
                    ctx.diverge(
                        &mut tally.divergences,
                        Check::CrossFormat,
                        &name11,
                        SpmvWorkload::fingerprint(&sell11),
                        Some(cp.setting),
                        *threads,
                        expected,
                        actual,
                        tol.allowed(expected, ctx.ws_lines),
                        format!(
                            "method {method:?}: SELL C=1, σ=1 prediction left the \
                             padding-only band of the CSR view"
                        ),
                    );
                }
            }
        }
        tally.nanos.check += t.elapsed().as_nanos() as u64;
    }

    // Scenario invariants on the CSR view: the k=1 SpMM identity (both
    // layouts, every thread count), the CG-iteration conservation and
    // model-side rerun, and the k=16 amplification (sequential — the
    // engine's own tests cover sharded amplification, and the identity
    // pass above already exercises sharded scenario traces here).
    let base = Workload::Csr(matrix.clone());
    spmm_identity(&ctx, &base, &spec.name, &csr_preds, &mut tally);
    cg_invariants(&ctx, &base, &spec.name, &mut tally);
    if let Some((threads, ref_a, ref_b)) = csr_preds.first() {
        rhs_amplification(&ctx, &base, &spec.name, *threads, ref_a, ref_b, &mut tally);
    }

    CaseResult {
        class_index,
        divergences: tally.divergences,
        checks_run: tally.checks_run,
        nanos: tally.nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::stratified;

    #[test]
    fn tolerance_band_combines_rel_cliff_and_floor() {
        let t = Tolerance {
            rel: 0.1,
            cliff: 0.5,
            floor: 96.0,
        };
        // Floor governs tiny cases.
        assert_eq!(t.allowed(10.0, 0.0), 96.0);
        // Relative band plus cliff slack otherwise.
        assert_eq!(t.allowed(10_000.0, 200.0), 1100.0);
        assert!(t.accepts(100.0, 150.0, 0.0)); // inside floor
        assert!(!t.accepts(10_000.0, 12_000.0, 200.0)); // outside band
                                                        // The cliff term admits a whole-footprint flip.
        let t = Tolerance {
            rel: 0.1,
            cliff: 1.0,
            floor: 64.0,
        };
        assert!(t.accepts(0.0, 1800.0, 1850.0));
    }

    #[test]
    fn smoke_plan_is_a_subset_of_full() {
        let full = CheckPlan::new(false);
        let smoke = CheckPlan::new(true);
        for s in &smoke.check_settings {
            assert!(full.check_settings.contains(s));
        }
        assert!(smoke.sweep_settings.len() < full.sweep_settings.len());
        assert_eq!(smoke.threads, full.threads);
    }

    #[test]
    fn clean_case_produces_no_divergences() {
        // One cheap class-1 case end to end through the smoke plan.
        let spec = &stratified(4, 5)[0];
        let plan = CheckPlan::new(true);
        let result = run_case(spec, &plan, 5);
        assert!(
            result.divergences.is_empty(),
            "unexpected divergences: {:#?}",
            result.divergences
        );
        assert!(result.checks_run > 20);
        assert_eq!(result.class_index, 0);
    }

    #[test]
    fn sell_views_are_checked_per_case() {
        // The per-format reruns and the cross-format pass multiply the
        // check count: strip the plan to one thread count and verify the
        // SELL passes contribute beyond the CSR-only baseline.
        let spec = &stratified(4, 5)[1];
        let mut plan = CheckPlan::new(true);
        plan.threads = vec![1];
        let with_sell = run_case(spec, &plan, 5);
        assert!(
            with_sell.divergences.is_empty(),
            "unexpected divergences: {:#?}",
            with_sell.divergences
        );
        plan.sell_formats.clear();
        let without_sell = run_case(spec, &plan, 5);
        // Dropping the (8,32) view removes one full model-invariant pass;
        // the C=1, σ=1 cross-format pass still runs.
        assert!(with_sell.checks_run > without_sell.checks_run);
    }

    /// A ready-made context plus doctored reference predictions for the
    /// planted-violation tests below.
    fn planted_fixture() -> (
        CheckPlan,
        a64fx::config::MachineConfig,
        sparsemat::CsrMatrix,
        Vec<Prediction>,
        Vec<Prediction>,
    ) {
        let spec = &stratified(4, 5)[0];
        let plan = CheckPlan::new(true);
        let cfg = plan.machine();
        let matrix = plan.reorder.apply(build(spec));
        let settings = plan.sweep_settings.clone();
        let ref_a = LocalityProfile::compute(&matrix, &cfg, Method::A, 1).evaluate(&cfg, &settings);
        let ref_b = LocalityProfile::compute(&matrix, &cfg, Method::B, 1).evaluate(&cfg, &settings);
        (plan, cfg, matrix, ref_a, ref_b)
    }

    fn planted_ctx<'a>(
        spec: &'a CaseSpec,
        plan: &'a CheckPlan,
        cfg: &'a a64fx::config::MachineConfig,
    ) -> CaseCtx<'a> {
        CaseCtx {
            spec,
            plan,
            cfg,
            class: "1",
            class_index: 0,
            harness_seed: 5,
            ws_lines: 0.0,
            all_settings: plan.sweep_settings.clone(),
        }
    }

    fn fresh_tally() -> CaseTally {
        CaseTally {
            divergences: Vec::new(),
            checks_run: 0,
            nanos: StageNanos::default(),
        }
    }

    #[test]
    fn scenario_identity_catches_a_planted_mismatch() {
        // Doctor one reference prediction: the byte-identity comparison
        // must surface it as a scenario_identity divergence carrying the
        // @rhs1 view name.
        let (plan, cfg, matrix, mut ref_a, ref_b) = planted_fixture();
        ref_a[0].l2_misses += 1;
        let specs = stratified(4, 5);
        let ctx = planted_ctx(&specs[0], &plan, &cfg);
        let mut tally = fresh_tally();
        let base = Workload::Csr(matrix);
        spmm_identity(&ctx, &base, "planted", &[(1, ref_a, ref_b)], &mut tally);
        let hit = tally
            .divergences
            .iter()
            .find(|d| d.check == Check::ScenarioIdentity)
            .expect("planted mismatch must diverge");
        assert!(hit.matrix.starts_with("planted@rhs1"), "{}", hit.matrix);
        assert_eq!(hit.tolerance, 0.0);
    }

    #[test]
    fn amplification_check_catches_a_planted_regression() {
        // Inflate the base predictions far past anything k=16 can reach:
        // the >= comparison must flag every setting.
        let (plan, cfg, matrix, mut ref_a, mut ref_b) = planted_fixture();
        for p in ref_a.iter_mut().chain(ref_b.iter_mut()) {
            p.l2_misses = u64::MAX / 2;
        }
        let specs = stratified(4, 5);
        let ctx = planted_ctx(&specs[0], &plan, &cfg);
        let mut tally = fresh_tally();
        let base = Workload::Csr(matrix);
        rhs_amplification(&ctx, &base, "planted", 1, &ref_a, &ref_b, &mut tally);
        let hit = tally
            .divergences
            .iter()
            .find(|d| d.check == Check::ScenarioAmplification && d.detail.contains("fewer misses"))
            .expect("planted regression must diverge");
        assert!(hit.matrix.ends_with("@rhs16"), "{}", hit.matrix);
    }

    #[test]
    fn cross_format_band_catches_a_planted_gap() {
        // Sanity-check the tolerance wiring: with a zero-width band, the
        // (benign) CSR-vs-SELL metadata difference must surface as a
        // cross_format divergence somewhere in a stratified corpus, and
        // the record must carry the SELL view's name.
        let mut plan = CheckPlan::new(true);
        plan.sell_formats.clear();
        plan.cross_format_tol = Tolerance {
            rel: 0.0,
            cliff: 0.0,
            floor: 0.0,
        };
        let cross: Vec<Divergence> = stratified(8, 5)
            .iter()
            .flat_map(|spec| run_case(spec, &plan, 5).divergences)
            .filter(|d| d.check == Check::CrossFormat)
            .collect();
        assert!(
            !cross.is_empty(),
            "zero-width band accepted every cross-format comparison"
        );
        assert!(
            cross[0].matrix.ends_with("@sell:1,1"),
            "{}",
            cross[0].matrix
        );
    }
}
