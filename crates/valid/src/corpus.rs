//! Stratified random corpus generation over the §3.1 working-set classes.
//!
//! The validation harness needs matrices in every class — (1) everything
//! cached, (2) reusable data fits the partition, (3a) only `x` fits,
//! (3b) nothing fits — at the scaled machine geometry. The strata are
//! sized against `MachineConfig::a64fx_scaled(SCALE)` with the paper's
//! 5-way sector split: one L2 segment holds `8 MiB / SCALE` bytes and
//! partition 0 holds `11/16` of that. Sizes inside each stratum are drawn
//! deterministically from the harness seed, cycling through structural
//! families, so every case is reproducible from `(seed, index)` alone.

use sparsemat::CsrMatrix;

/// Machine scale divisor the harness validates at (also used by the
/// repo's model-vs-simulator calibration tests).
pub const SCALE: usize = 64;

/// Number of working-set strata (classes 1, 2, 3a, 3b).
pub const NUM_CLASSES: usize = 4;

/// One corpus member, fully determined by its fields: `build` maps a spec
/// back to the same matrix bit-for-bit, so a divergence record holding
/// these fields is a complete reproduction recipe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Display name (`c2-banded-17`).
    pub name: String,
    /// Stratum index 0..4 (classes 1, 2, 3a, 3b).
    pub class_target: usize,
    /// Structural family of the generator.
    pub family: &'static str,
    /// Rows (== cols).
    pub n: usize,
    /// Target nonzeros per row.
    pub p: usize,
    /// Generator seed (already mixed from the harness seed and index).
    pub seed: u64,
    /// Position in the corpus.
    pub index: usize,
}

/// Splitmix64 step, used to derive per-case dimensions from the seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A deterministic value in `[lo, hi]` from a hash state.
fn pick(state: u64, lo: usize, hi: usize) -> usize {
    lo + (state % (hi - lo + 1) as u64) as usize
}

/// Class-1 partition-0 capacity in bytes at [`SCALE`] with the 5-way
/// sector split (`11/16` of one segment).
pub fn partition0_bytes() -> usize {
    segment_bytes() * 11 / 16
}

/// One L2 segment in bytes at [`SCALE`].
pub fn segment_bytes() -> usize {
    a64fx::MachineConfig::a64fx_scaled(SCALE).l2.size_bytes
}

/// Builds the stratified corpus: `count` specs split evenly over the four
/// classes (remainder to the lower classes), all derived from `seed`.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn stratified(count: usize, seed: u64) -> Vec<CaseSpec> {
    assert!(count > 0, "need at least one matrix");
    let per_class = count / NUM_CLASSES;
    let extra = count % NUM_CLASSES;
    let mut specs = Vec::with_capacity(count);
    let mut index = 0;
    for class in 0..NUM_CLASSES {
        let in_class = per_class + usize::from(class < extra);
        for i in 0..in_class {
            specs.push(case_spec(class, i, index, seed));
            index += 1;
        }
    }
    specs
}

/// Families compatible with each stratum's `(n, p)` envelope.
const FAMILIES: [&[&str]; NUM_CLASSES] = [
    &["random", "banded", "grid-2d", "circuit"],
    &["random", "banded", "block-banded"],
    &["random", "banded", "power-law", "grid-2d"],
    &["random", "circuit", "power-law", "banded"],
];

/// Draws one spec for stratum `class`, member `i`.
///
/// Dimension envelopes (sequential classification at [`SCALE`], sector
/// 5 ways; segment = 128 KiB, partition 0 = 88 KiB):
///
/// * class (1): working set `n·(12p + 24) + 8` within ~85 % of a segment;
/// * class (2): working set over a segment, reusable `24n + 8 ≤` part-0
///   (`n ≤ 3754`), dense rows so the matrix streams;
/// * class (3a): reusable over part-0 (`n ≥ 3755`) but `8n ≤` part-0
///   (`n ≤ 11264`);
/// * class (3b): `8n >` part-0 (`n ≥ 11265`).
fn case_spec(class: usize, i: usize, index: usize, seed: u64) -> CaseSpec {
    let h = mix(seed ^ ((class as u64) << 32) ^ (i as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
    let family = FAMILIES[class][i % FAMILIES[class].len()];
    let (mut n, p) = match class {
        0 => {
            let p = pick(h, 3, 8);
            // Keep the working set under ~85 % of one segment.
            let n_max = (segment_bytes() * 85 / 100) / (12 * p + 24);
            (pick(mix(h), 400, n_max.max(401)), p)
        }
        1 => (pick(mix(h), 1300, 3600), pick(h, 16, 40)),
        2 => (pick(mix(h), 4000, 11000), pick(h, 6, 12)),
        _ => (pick(mix(h), 12000, 24000), pick(h, 3, 5)),
    };
    if family == "grid-2d" {
        // n becomes side^2; keep it inside the stratum envelope.
        let side = (n as f64).sqrt().round() as usize;
        n = side.max(2) * side.max(2);
    }
    CaseSpec {
        name: format!("c{}-{family}-{index}", ["1", "2", "3a", "3b"][class.min(3)]),
        class_target: class,
        family,
        n,
        p,
        seed: mix(h ^ 0xA076_1D64_78BD_642F),
        index,
    }
}

/// Materialises a spec into its matrix. Deterministic: the same spec
/// always yields the same matrix.
pub fn build(spec: &CaseSpec) -> CsrMatrix {
    let (n, p, seed) = (spec.n, spec.p, spec.seed);
    match spec.family {
        "random" => corpus::random::uniform_random(n, p, seed),
        "banded" => corpus::banded::random_banded(n, (n / 16).max(8), p, seed),
        "power-law" => corpus::random::power_law(n, p, 0.7, seed),
        "circuit" => corpus::banded::tridiag_plus_random(n, p.saturating_sub(3).max(1), seed),
        "block-banded" => {
            let block = 4;
            let per = (p / block).max(2);
            corpus::banded::block_banded(n.div_ceil(block) * block, block, per, per * 3, seed)
        }
        "grid-2d" => {
            let side = ((n as f64).sqrt().round() as usize).max(2);
            corpus::stencil::laplacian_2d(side, side)
        }
        other => unreachable!("unknown family {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a64fx::MachineConfig;
    use locality_core::{classify_for, MatrixClass};

    #[test]
    fn stratified_is_deterministic() {
        let a = stratified(8, 7);
        let b = stratified(8, 7);
        assert_eq!(a, b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(build(x), build(y));
        }
    }

    #[test]
    fn strata_split_evenly_with_remainder_low() {
        let specs = stratified(10, 1);
        let counts: Vec<usize> = (0..NUM_CLASSES)
            .map(|c| specs.iter().filter(|s| s.class_target == c).count())
            .collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn sequential_classification_matches_target() {
        // The envelopes are sized so the sequential classification at the
        // harness geometry lands in the targeted stratum.
        let cfg = MachineConfig::a64fx_scaled(SCALE).with_l2_sector(5);
        let expect = [
            MatrixClass::Class1,
            MatrixClass::Class2,
            MatrixClass::Class3a,
            MatrixClass::Class3b,
        ];
        for spec in stratified(16, 2023) {
            let m = build(&spec);
            let got = classify_for(&m, &cfg, 1);
            assert_eq!(
                got, expect[spec.class_target],
                "{}: n={} p={} landed in {:?}",
                spec.name, spec.n, spec.p, got
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(stratified(4, 1), stratified(4, 2));
    }
}
