//! Differential validation harness for the locality model.
//!
//! The repo implements the same mathematics several times over — a
//! streaming profile, a materialized oracle, a marker-stack sweep, two
//! prediction methods, and a cycle-free cache simulator. This crate
//! cross-checks them against each other over a stratified random corpus
//! covering the paper's §3.1 working-set classes, and emits every
//! violation as a structured JSON-lines divergence record that carries
//! its own reproduction recipe (harness seed + case index + generator
//! parameters). The model-side invariants run per storage format — the
//! CSR view and the planned SELL-C-σ views of each matrix — and a
//! cross-format invariant pins the degenerate SELL (C=1, σ=1) view to
//! the CSR predictions within a padding-only tolerance. Three scenario
//! invariants tie the multi-RHS (SpMM) and CG-iteration views back to
//! the plain SpMV predictions: the k=1 identity, the CG trace
//! conservation, and the k-fold RHS amplification.
//!
//! The harness is both a bug-finder and a regression gate: `scripts/ci.sh`
//! runs the smoke tier (`spmv-locality validate --smoke`) on every build.
//!
//! * [`corpus`] — stratified corpus generation (classes 1, 2, 3a, 3b);
//! * [`checks`] — the ten invariants and the per-case driver;
//! * [`record`] — divergence records and run accounting;
//! * [`run_validation`] — parallel orchestration over the engine's
//!   work-stealing pool.

pub mod checks;
pub mod corpus;
pub mod record;

pub use checks::{CaseResult, CheckPlan, Tolerance};
pub use corpus::{stratified, CaseSpec};
pub use record::{Check, Divergence, RunStats, StageNanos};

use locality_core::ReorderSpec;
use locality_engine::pool;
use machine::MachineSpec;

/// Knobs for one validation run.
#[derive(Clone, Debug)]
pub struct ValidationConfig {
    /// Corpus size (split evenly over the four classes).
    pub matrices: usize,
    /// Corpus seed; the same seed always yields the same corpus and the
    /// same verdict.
    pub seed: u64,
    /// Worker threads (0 = one per host core).
    pub workers: usize,
    /// Run the reduced smoke plan instead of the full sweep.
    pub smoke: bool,
    /// Override for the SELL `(C, σ)` views the model-side invariants
    /// re-run on: `None` keeps the plan default, `Some(vec![])` skips
    /// the SELL reruns (the C=1, σ=1 cross-format pass always runs).
    pub sell_formats: Option<Vec<(usize, usize)>>,
    /// Row reordering applied to every corpus matrix before checking —
    /// validates the invariants on reordered workloads.
    pub reorder: ReorderSpec,
    /// The machine the invariants run against. The default a64fx preset
    /// keeps the calibrated bands and the simulator cross-checks; other
    /// machines run the model-only plan (see `CheckPlan::with_machine`).
    pub machine: MachineSpec,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            matrices: 200,
            seed: 2023,
            workers: 0,
            smoke: false,
            sell_formats: None,
            reorder: ReorderSpec::None,
            machine: MachineSpec::A64fx,
        }
    }
}

/// A finished validation run: all divergences plus run accounting.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Every invariant violation, in corpus order.
    pub divergences: Vec<Divergence>,
    /// Run accounting (corpus composition, checks run, stage timings).
    pub stats: RunStats,
}

impl ValidationReport {
    /// A run passes iff no invariant was violated.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }

    /// The full JSON-lines document: one line per divergence, then the
    /// summary line.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for d in &self.divergences {
            out.push_str(&d.to_json_line());
            out.push('\n');
        }
        out.push_str(&self.stats.to_json_line());
        out.push('\n');
        out
    }
}

/// Runs the whole harness: generates the stratified corpus, fans the
/// cases out over the work-stealing pool, and folds the per-case results
/// into one report. The verdict, divergence records, and counters are
/// deterministic for a fixed `(matrices, seed, smoke)` triple regardless
/// of `workers`; only the `stage_ns` wall-clock metrics vary run to run.
pub fn run_validation(config: &ValidationConfig) -> ValidationReport {
    let specs = corpus::stratified(config.matrices, config.seed);
    let mut plan = CheckPlan::new(config.smoke).with_machine(&config.machine);
    if let Some(formats) = &config.sell_formats {
        plan.sell_formats = formats.clone();
    }
    plan.reorder = config.reorder;
    let seed = config.seed;

    // The run-level machine-identity pass: pins the a64fx preset's
    // hierarchy projection to the frozen pre-refactor constants and
    // prediction bytes before any per-case work runs.
    let (mut divergences, identity_checks) = checks::machine_identity(&plan, seed);

    let results = pool::run_indexed(config.workers, &specs, |_, spec| {
        checks::run_case(spec, &plan, seed)
    });

    let mut stats = RunStats {
        matrices: specs.len(),
        checks_run: identity_checks,
        ..RunStats::default()
    };
    for r in results {
        stats.by_class[r.class_index] += 1;
        stats.checks_run += r.checks_run;
        stats.nanos.add(&r.nanos);
        divergences.extend(r.divergences);
    }
    stats.divergences = divergences.len();
    ValidationReport { divergences, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 gate on the harness itself: a small smoke corpus must
    /// come back clean, cover every stratum, and be worker-independent.
    #[test]
    fn smoke_corpus_validates_cleanly() {
        let config = ValidationConfig {
            matrices: 4,
            seed: 2023,
            workers: 2,
            smoke: true,
            ..ValidationConfig::default()
        };
        let report = run_validation(&config);
        assert!(
            report.passed(),
            "divergences on the smoke corpus:\n{}",
            report.to_json_lines()
        );
        assert_eq!(report.stats.by_class, [1, 1, 1, 1]);
        assert!(report.stats.checks_run > 80);
        let line = report.to_json_lines();
        assert!(line.contains("\"divergences\":0"));
    }

    /// The model-only pass for a non-a64fx hierarchy: same corpus, same
    /// model invariants, no simulator cross-checks, and a clean verdict.
    #[test]
    fn generic_x86_smoke_runs_model_only() {
        let a64fx = ValidationConfig {
            matrices: 4,
            seed: 2023,
            workers: 2,
            smoke: true,
            ..ValidationConfig::default()
        };
        let x86 = ValidationConfig {
            machine: MachineSpec::GenericX86,
            ..a64fx.clone()
        };
        let report = run_validation(&x86);
        assert!(
            report.passed(),
            "divergences on the generic-x86 smoke corpus:\n{}",
            report.to_json_lines()
        );
        // No simulator cross-checks and no machine-identity pass: strictly
        // fewer comparisons than the a64fx run of the same corpus.
        let reference = run_validation(&a64fx);
        assert!(
            report.stats.checks_run < reference.stats.checks_run,
            "{} vs {}",
            report.stats.checks_run,
            reference.stats.checks_run
        );
    }

    /// The machine-identity pass runs (and passes) on the default plan,
    /// and is skipped entirely for non-a64fx machines.
    #[test]
    fn machine_identity_pins_the_a64fx_preset() {
        let plan = checks::CheckPlan::new(true);
        let (divergences, checks_run) = checks::machine_identity(&plan, 2023);
        assert!(divergences.is_empty(), "{divergences:#?}");
        assert!(checks_run >= 10, "{checks_run}");

        let x86 = checks::CheckPlan::new(true).with_machine(&MachineSpec::GenericX86);
        let (divergences, checks_run) = checks::machine_identity(&x86, 2023);
        assert!(divergences.is_empty() && checks_run == 0);
        assert!(!x86.simulate, "non-a64fx machines run model-only");
    }

    #[test]
    fn report_serializes_divergences_before_summary() {
        let report = ValidationReport {
            divergences: vec![Divergence {
                check: Check::Monotonicity,
                matrix: "m".into(),
                family: "random".into(),
                class: "2".into(),
                fingerprint: 1,
                seed: 7,
                index: 0,
                setting: None,
                threads: 1,
                expected: 1.0,
                actual: 2.0,
                tolerance: 0.0,
                detail: "d".into(),
            }],
            stats: RunStats::default(),
        };
        assert!(!report.passed());
        let doc = report.to_json_lines();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"check\":\"monotonicity\""));
        assert!(lines[1].starts_with("{\"summary\""));
    }
}
