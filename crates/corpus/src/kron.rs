//! R-MAT (recursive-matrix, Kronecker-like) graph generator.
//!
//! Produces the skewed, community-structured adjacency patterns of real
//! graph workloads (`kkt_power`-like optimisation graphs, social/road
//! networks) that stress `x`-vector locality differently from both the
//! uniform generator (no structure at all) and the banded families
//! (strong structure): R-MAT patterns have localised dense blocks at all
//! scales plus heavy-tailed degrees.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparsemat::{CooMatrix, CsrMatrix};

/// R-MAT parameters: quadrant probabilities (must sum to ~1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left (both endpoints in the low half).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
}

impl RmatParams {
    /// The classic skewed setting (a=0.57, b=c=0.19, d=0.05).
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// A mildly skewed setting producing less extreme hubs.
    pub fn mild() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
        }
    }
}

/// Generates an R-MAT matrix of order `2^scale` with ~`edges` nonzeros
/// (duplicates merge, so the final count is slightly lower), plus a unit
/// diagonal.
pub fn rmat(scale: u32, edges: usize, params: RmatParams, seed: u64) -> CsrMatrix {
    assert!((1..31).contains(&scale), "scale out of range");
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, edges + n);
    for v in 0..n {
        coo.push(v, v, 1.0);
    }
    for _ in 0..edges {
        let (mut r, mut c) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let bit = 1usize << level;
            let u: f64 = rng.gen();
            if u < params.a {
                // top-left: nothing set
            } else if u < params.a + params.b {
                c |= bit;
            } else if u < params.a + params.b + params.c {
                r |= bit;
            } else {
                r |= bit;
                c |= bit;
            }
        }
        coo.push(r, c, -1.0);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::MatrixStats;

    #[test]
    fn dimensions_and_nnz() {
        let m = rmat(10, 8192, RmatParams::graph500(), 42);
        assert_eq!(m.num_rows(), 1024);
        assert_eq!(m.num_cols(), 1024);
        // Diagonal plus merged edges.
        assert!(m.nnz() > 1024 + 6000);
        assert!(m.nnz() <= 1024 + 8192);
    }

    #[test]
    fn graph500_is_heavily_skewed() {
        let m = rmat(11, 20_000, RmatParams::graph500(), 7);
        let s = MatrixStats::compute(&m);
        assert!(
            s.row_nnz_max as f64 > 10.0 * s.row_nnz_mean,
            "expected hubs: max {} mean {}",
            s.row_nnz_max,
            s.row_nnz_mean
        );
        assert!(s.row_nnz_cv > 1.0, "CV = {}", s.row_nnz_cv);
    }

    #[test]
    fn mild_is_less_skewed_than_graph500() {
        let hub = rmat(11, 20_000, RmatParams::graph500(), 3);
        let mild = rmat(11, 20_000, RmatParams::mild(), 3);
        let s_hub = MatrixStats::compute(&hub);
        let s_mild = MatrixStats::compute(&mild);
        assert!(s_mild.row_nnz_cv < s_hub.row_nnz_cv);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            rmat(8, 1000, RmatParams::mild(), 5),
            rmat(8, 1000, RmatParams::mild(), 5)
        );
        assert_ne!(
            rmat(8, 1000, RmatParams::mild(), 5),
            rmat(8, 1000, RmatParams::mild(), 6)
        );
    }

    #[test]
    fn diagonal_always_present() {
        let m = rmat(7, 300, RmatParams::graph500(), 9);
        for r in 0..m.num_rows() {
            assert!(m.get(r, r).is_some(), "row {r} lost its diagonal");
        }
    }
}
