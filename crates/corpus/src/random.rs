//! Unstructured random matrix generators.
//!
//! Uniform (Erdős–Rényi-style) patterns model the worst case for
//! `x`-vector locality (`kkt_power`/`delaunay`-like irregularity); the
//! Zipf-column power-law generator models scale-free structures with a few
//! very hot columns and a heavy-tailed row-length distribution
//! (`bundle_adj`-like), which is exactly the regime where method (B)'s
//! average-based scaling degrades (§4.5.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparsemat::{CooMatrix, CsrMatrix};

/// Uniform random square matrix: each row draws `nnz_per_row` columns
/// uniformly (duplicates merged, so rows may end up slightly shorter).
/// A unit diagonal is always included to keep the matrix structurally
/// nonsingular.
pub fn uniform_random(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (nnz_per_row + 1));
    for r in 0..n {
        coo.push(r, r, nnz_per_row as f64 + 1.0);
        for _ in 0..nnz_per_row {
            coo.push(r, rng.gen_range(0..n), -1.0);
        }
    }
    coo.to_csr()
}

/// Power-law matrix: row lengths follow a truncated Pareto distribution
/// with the given mean, and columns are drawn Zipf-like (column `c` with
/// probability ∝ `1 / (c + 1)^alpha` under a random column permutation, so
/// the hot columns are scattered). `alpha` in `[0, 1.5]`; 0 degenerates to
/// uniform.
pub fn power_law(n: usize, mean_nnz_per_row: usize, alpha: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Random permutation so hot columns are not contiguous.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut coo = CooMatrix::with_capacity(n, n, n * (mean_nnz_per_row + 1));
    for r in 0..n {
        coo.push(r, r, 1.0);
        // Pareto-ish row length with mean `mean_nnz_per_row`: draw from a
        // geometric-like heavy tail, capped at 16x the mean.
        let u: f64 = rng.gen_range(1e-6..1.0f64);
        let len = ((mean_nnz_per_row as f64 * 0.5) / u.powf(0.5))
            .min(16.0 * mean_nnz_per_row as f64) as usize;
        for _ in 0..len {
            let c = zipf_like(&mut rng, n, alpha);
            coo.push(r, perm[c] as usize, -1.0);
        }
    }
    coo.to_csr()
}

/// Draws an index in `0..n` with probability ∝ `1/(i+1)^alpha` using
/// inverse-CDF on the continuous approximation.
fn zipf_like(rng: &mut SmallRng, n: usize, alpha: f64) -> usize {
    if alpha <= f64::EPSILON {
        return rng.gen_range(0..n);
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    if (alpha - 1.0).abs() < 1e-9 {
        // CDF ~ ln(1 + x) / ln(1 + n).
        let x = ((1.0 + n as f64).powf(u) - 1.0).floor() as usize;
        x.min(n - 1)
    } else {
        // CDF ~ ((1+x)^(1-a) - 1) / ((1+n)^(1-a) - 1).
        let p = 1.0 - alpha;
        let x = ((u * ((1.0 + n as f64).powf(p) - 1.0) + 1.0).powf(1.0 / p) - 1.0).floor();
        (x as usize).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::MatrixStats;

    #[test]
    fn uniform_random_shape() {
        let m = uniform_random(500, 8, 42);
        assert_eq!(m.num_rows(), 500);
        // Duplicates merge, so nnz is close to but at most n * 9.
        assert!(m.nnz() <= 500 * 9);
        assert!(m.nnz() > 500 * 7);
        // Diagonal present everywhere.
        for r in [0, 250, 499] {
            assert!(m.get(r, r).is_some());
        }
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let a = uniform_random(200, 5, 7);
        let b = uniform_random(200, 5, 7);
        let c = uniform_random(200, 5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_random_has_large_bandwidth() {
        let s = MatrixStats::compute(&uniform_random(1000, 6, 3));
        assert!(s.bandwidth > 500, "uniform columns should span the matrix");
    }

    #[test]
    fn power_law_rows_are_skewed() {
        let m = power_law(2000, 10, 1.0, 11);
        let s = MatrixStats::compute(&m);
        // Heavy tail: max row much longer than the mean, CV noticeable.
        assert!(s.row_nnz_max as f64 > 4.0 * s.row_nnz_mean);
        assert!(s.row_nnz_cv > 0.5, "CV = {}", s.row_nnz_cv);
    }

    #[test]
    fn power_law_columns_are_skewed() {
        let m = power_law(2000, 10, 1.0, 13);
        // Count column frequencies via the transpose's row lengths.
        let t = m.transpose();
        let s = MatrixStats::compute(&t);
        assert!(
            s.row_nnz_max as f64 > 10.0 * s.row_nnz_mean,
            "hot columns expected: max {} mean {}",
            s.row_nnz_max,
            s.row_nnz_mean
        );
    }

    #[test]
    fn zero_alpha_degenerates_to_uniform() {
        let m = power_law(800, 6, 0.0, 17);
        let t = m.transpose();
        let s = MatrixStats::compute(&t);
        // No hot columns: max column count within a small factor of mean.
        assert!((s.row_nnz_max as f64) < 8.0 * s.row_nnz_mean.max(1.0));
    }
}
