//! Banded and block-structured matrix generators.
//!
//! FEM discretisations (`shipsec1`, `pwtk`, `msdoor`, `af_shell`,
//! `audikw_1`-like) are block matrices with nonzeros clustered near the
//! diagonal; circuit matrices (`Hamrle3`-like) are nearly tridiagonal with
//! sparse random long-range connections; optimisation/saddle-point systems
//! (`bundle_adj`-like) have an arrow shape with a dense border.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparsemat::{CooMatrix, CsrMatrix};

/// Random banded matrix: each row has a diagonal entry plus
/// `nnz_per_row` entries uniform within `±half_band` of the diagonal.
pub fn random_banded(n: usize, half_band: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (nnz_per_row + 1));
    for r in 0..n {
        coo.push(r, r, nnz_per_row as f64 + 1.0);
        let lo = r.saturating_sub(half_band);
        let hi = (r + half_band).min(n - 1);
        for _ in 0..nnz_per_row {
            coo.push(r, rng.gen_range(lo..=hi), -1.0);
        }
    }
    coo.to_csr()
}

/// Block-banded FEM-like matrix of `n / block` dense `block`×`block`
/// blocks: each block row couples to itself and `blocks_per_row - 1`
/// random nearby block columns (within `±block_band` block indices).
pub fn block_banded(
    n: usize,
    block: usize,
    blocks_per_row: usize,
    block_band: usize,
    seed: u64,
) -> CsrMatrix {
    assert!(
        block > 0 && n.is_multiple_of(block),
        "n must be a multiple of the block size"
    );
    let nb = n / block;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * block * blocks_per_row);
    for brow in 0..nb {
        // Self block plus distinct random neighbours.
        let mut cols = vec![brow];
        let lo = brow.saturating_sub(block_band);
        let hi = (brow + block_band).min(nb - 1);
        for _ in 0..blocks_per_row.saturating_sub(1) {
            cols.push(rng.gen_range(lo..=hi));
        }
        cols.sort_unstable();
        cols.dedup();
        for &bcol in &cols {
            for i in 0..block {
                for j in 0..block {
                    let v = if brow == bcol && i == j {
                        block as f64
                    } else {
                        -0.25
                    };
                    coo.push(brow * block + i, bcol * block + j, v);
                }
            }
        }
    }
    coo.to_csr()
}

/// Nearly tridiagonal matrix with `extras_per_row` additional uniformly
/// random entries per row (`Hamrle3`-like circuit structure).
pub fn tridiag_plus_random(n: usize, extras_per_row: usize, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (3 + extras_per_row));
    for r in 0..n {
        coo.push(r, r, 4.0);
        if r > 0 {
            coo.push(r, r - 1, -1.0);
        }
        if r + 1 < n {
            coo.push(r, r + 1, -1.0);
        }
        for _ in 0..extras_per_row {
            coo.push(r, rng.gen_range(0..n), -0.125);
        }
    }
    coo.to_csr()
}

/// Arrow matrix: block diagonal of dense `block`×`block` blocks plus a
/// dense border of `border` rows/columns coupling everything
/// (`bundle_adj`-like bundle-adjustment structure).
pub fn arrow(n: usize, block: usize, border: usize, seed: u64) -> CsrMatrix {
    assert!(border < n, "border must be smaller than the matrix");
    let body = n - border;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, body * block + 2 * border * n);
    // Dense diagonal blocks over the body.
    let mut r = 0;
    while r < body {
        let b = block.min(body - r);
        for i in 0..b {
            for j in 0..b {
                let v = if i == j { block as f64 } else { -0.5 };
                coo.push(r + i, r + j, v);
            }
        }
        r += b;
    }
    // Border rows and columns (sampled at 50% density to vary row lengths).
    for br in body..n {
        coo.push(br, br, n as f64);
        for c in 0..body {
            if rng.gen_bool(0.5) {
                coo.push(br, c, -0.1);
                coo.push(c, br, -0.1);
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::MatrixStats;

    #[test]
    fn random_banded_respects_band() {
        let m = random_banded(1000, 25, 8, 5);
        let s = MatrixStats::compute(&m);
        assert!(s.bandwidth <= 25);
        assert_eq!(s.empty_rows, 0);
    }

    #[test]
    fn block_banded_has_dense_blocks() {
        let m = block_banded(120, 6, 4, 5, 9);
        // Every row has at least its own block's width.
        for r in 0..120 {
            assert!(m.row_nnz(r) >= 6, "row {r} has {}", m.row_nnz(r));
        }
        // Diagonal block is dense: entries (0,0..6).
        for j in 0..6 {
            assert!(m.get(0, j).is_some());
        }
    }

    #[test]
    fn block_banded_rejects_misaligned_size() {
        let r = std::panic::catch_unwind(|| block_banded(100, 7, 3, 2, 1));
        assert!(r.is_err());
    }

    #[test]
    fn tridiag_plus_random_structure() {
        let m = tridiag_plus_random(500, 1, 3);
        assert!(m.get(250, 249).is_some());
        assert!(m.get(250, 251).is_some());
        assert!(m.get(250, 250).is_some());
        let s = MatrixStats::compute(&m);
        // Mean close to 4 (3 tridiag + 1 extra), low but nonzero CV.
        assert!(s.row_nnz_mean > 3.2 && s.row_nnz_mean < 4.2);
    }

    #[test]
    fn arrow_shape() {
        let m = arrow(200, 5, 8, 7);
        let s = MatrixStats::compute(&m);
        // Border rows are long.
        assert!(s.row_nnz_max > 50);
        // Full bandwidth because of the border.
        assert!(s.bandwidth > 150);
        // Body rows stay short.
        assert!(m.row_nnz(0) <= 5 + 8);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_banded(300, 10, 5, 77), random_banded(300, 10, 5, 77));
        assert_eq!(arrow(100, 4, 5, 3), arrow(100, 4, 5, 3));
    }
}
