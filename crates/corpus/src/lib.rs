//! Synthetic sparse-matrix corpus.
//!
//! Stands in for the paper's evaluation population — 490 square,
//! non-complex SuiteSparse matrices with more than 1 M nonzeros — and for
//! the 18 named matrices of Table 1. Generators cover the structural
//! families that drive SpMV locality behaviour:
//!
//! * [`stencil`] — 2-D/3-D grid Laplacians and 27-point stencils (regular,
//!   narrow-band, uniform rows);
//! * [`banded`] — random banded, dense-block FEM-like, nearly-tridiagonal
//!   circuit, and arrow (dense-border) matrices;
//! * [`random`] — uniform random (worst-case `x` locality) and power-law
//!   (hot columns, heavy-tailed row lengths);
//! * [`suite`] — the assembled corpora: [`suite::table1_suite`] and
//!   [`suite::corpus`].
//!
//! All generators are deterministic in their seed, so every experiment is
//! reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod banded;
pub mod kron;
pub mod random;
pub mod stencil;
pub mod suite;

pub use suite::{corpus, table1_suite, NamedMatrix};
